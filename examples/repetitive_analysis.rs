//! The repetitive-computation problem (§3.1) and the Summary Database
//! solution, measured.
//!
//! A months-long analysis asks for the same medians, means, and
//! extremes over and over, interleaved with occasional edits. This
//! example runs that workload twice — once with the Summary Database
//! maintaining results incrementally, once recomputing everything from
//! data — and prints the I/O and timing difference.
//!
//! Run with: `cargo run --release --example repetitive_analysis`

use std::time::Instant;

use sdbms::core::{
    AccuracyPolicy, Expr, MaintenancePolicy, Predicate, StatDbms, StatFunction, ViewDefinition,
};
use sdbms::data::census::{microdata_census, CensusConfig};

/// One "analysis day": a burst of summary queries plus a couple of
/// corrections.
fn analysis_day(
    dbms: &mut StatDbms,
    day: usize,
    accuracy: AccuracyPolicy,
) -> Result<(), Box<dyn std::error::Error>> {
    let queries = [
        ("INCOME", StatFunction::Median),
        ("INCOME", StatFunction::Mean),
        ("INCOME", StatFunction::StdDev),
        ("AGE", StatFunction::Median),
        ("AGE", StatFunction::Min),
        ("AGE", StatFunction::Max),
        ("HOURS_WORKED", StatFunction::Mean),
        ("INCOME", StatFunction::Quantile(50)),
        ("INCOME", StatFunction::Quantile(950)),
    ];
    for (attr, f) in &queries {
        dbms.compute("survey", attr, f, accuracy)?;
    }
    // Two corrections per day (§3.1: outliers get investigated and
    // fixed as the analysis proceeds).
    for k in 0..2 {
        let id = (day * 17 + k * 7) % 5_000;
        dbms.update_where(
            "survey",
            &Predicate::col_eq("PERSON_ID", id as i64),
            &[("INCOME", Expr::lit(20_000.0 + (day * 13 + k) as f64))],
        )?;
    }
    Ok(())
}

fn run_with_policy(
    policy: Option<MaintenancePolicy>,
    days: usize,
) -> Result<(u128, u64, String), Box<dyn std::error::Error>> {
    let mut dbms = StatDbms::new(1024);
    let raw = microdata_census(&CensusConfig {
        rows: 5_000,
        invalid_fraction: 0.0,
        outlier_fraction: 0.0,
        ..Default::default()
    })?;
    dbms.load_raw(&raw)?;
    dbms.materialize(
        ViewDefinition::scan("survey", "census_microdata"),
        "analyst",
    )?;
    // `None` models a system without a Summary Database: every query
    // recomputes. We emulate it by always demanding exactness and
    // invalidating eagerly after every update — worst case — plus
    // clearing between queries is unnecessary because InvalidateLazy +
    // an update each day already forces recomputation.
    if let Some(p) = policy {
        dbms.set_policy("survey", p)?;
    } else {
        dbms.set_policy("survey", MaintenancePolicy::InvalidateLazy)?;
    }
    dbms.env().tracker.reset();
    let t0 = Instant::now();
    for day in 0..days {
        analysis_day(&mut dbms, day, AccuracyPolicy::Exact)?;
    }
    let elapsed = t0.elapsed().as_micros();
    let io = dbms.io();
    let stats = dbms.cache_stats("survey")?;
    Ok((
        elapsed,
        io.page_reads + io.pool_hits / 16, // rough cost proxy
        format!(
            "hits {:>4}  recomputes {:>4}  incremental {:>4}",
            stats.hits, stats.recomputes, stats.incremental_updates
        ),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let days = 60;
    println!("workload: {days} analysis days × 9 summary queries + 2 corrections\n");
    let (t_inc, io_inc, s_inc) = run_with_policy(Some(MaintenancePolicy::Incremental), days)?;
    let (t_lazy, io_lazy, s_lazy) = run_with_policy(None, days)?;
    println!("incremental Summary DB : {t_inc:>9} µs  cost {io_inc:>7}  {s_inc}");
    println!("recompute-on-demand    : {t_lazy:>9} µs  cost {io_lazy:>7}  {s_lazy}");
    let speedup = t_lazy as f64 / t_inc.max(1) as f64;
    println!("\nspeedup from caching + incremental maintenance: {speedup:.1}×");
    Ok(())
}
