//! The life of a concrete view (§2.3 and Figure 3).
//!
//! Demonstrates the Management Database working: SUBJECT-style metadata
//! navigation that becomes a view request, materialization with
//! duplicate detection, checkpoints and rollback, publishing, and a
//! second analyst reusing the first one's cleaned view — plus
//! access-pattern-driven storage reorganization.
//!
//! Run with: `cargo run --example view_lifecycle`

use sdbms::core::{CmpOp, CoreError, Expr, Layout, Predicate, StatDbms, ViewDefinition};
use sdbms::data::census::{microdata_census, CensusConfig};
use sdbms::data::NodeKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dbms = StatDbms::new(512);
    let raw = microdata_census(&CensusConfig {
        rows: 4_000,
        invalid_fraction: 0.005,
        ..Default::default()
    })?;
    dbms.load_raw(&raw)?;

    // ---- Metadata navigation (SUBJECT, §2.3) ------------------------------
    dbms.metadata_mut()
        .add_node("Economics", NodeKind::Topic, "income-related attributes");
    dbms.metadata_mut()
        .add_edge("Economics", "census_microdata.INCOME")?;
    dbms.metadata_mut()
        .add_edge("Economics", "census_microdata.HOURS_WORKED")?;
    let mut nav = dbms.metadata().navigate_from("Economics")?;
    println!("navigating from {:?}:", nav.current().name);
    for child in dbms.metadata().children_of("Economics")? {
        println!("  child: {} — {}", child.name, child.description);
    }
    nav.descend("census_microdata.INCOME")?;
    let request = nav.view_request();
    println!("view request from the walk: {request:?}\n");

    // ---- Materialization with duplicate detection --------------------------
    let def = ViewDefinition::scan("earners", "census_microdata").select(Predicate::cmp(
        Expr::col("INCOME"),
        CmpOp::Gt,
        Expr::lit(0.0),
    ));
    dbms.materialize(def.clone(), "alice")?;
    println!(
        "alice materialized `earners` ({} rows)",
        dbms.dataset("earners")?.len()
    );

    // Alice tries to rebuild the same thing under another name.
    let dup = ViewDefinition::scan("earners_again", "census_microdata").select(Predicate::cmp(
        Expr::col("INCOME"),
        CmpOp::Gt,
        Expr::lit(0.0),
    ));
    match dbms.materialize(dup, "alice") {
        Err(CoreError::EquivalentViewExists { existing, .. }) => {
            println!("duplicate detected: told to reuse {existing:?}");
        }
        other => panic!("expected duplicate detection, got {other:?}"),
    }

    // ---- Cleaning with checkpoints and rollback ----------------------------
    dbms.checkpoint("earners", "raw")?;
    let bad = dbms.suspicious_rows("earners", "AGE")?;
    dbms.invalidate_where(
        "earners",
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(110i64)),
        "AGE",
    )?;
    dbms.annotate(
        "earners",
        &format!("{} impossible ages invalidated", bad.len()),
    )?;
    println!("\ncleaned {} impossible ages", bad.len());

    // Oops — one edit too many; demonstrate rollback.
    dbms.checkpoint("earners", "clean")?;
    dbms.update_where(
        "earners",
        &Predicate::True,
        &[("HOURS_WORKED", Expr::lit(0i64))],
    )?;
    println!(
        "destructive edit: mean hours now {:?}",
        sdbms::stats::descriptive::mean(&dbms.dataset("earners")?.column_f64("HOURS_WORKED")?.0)?
    );
    let undone = dbms.rollback_to_checkpoint("earners", "clean")?;
    println!(
        "rolled back {} changes: mean hours restored to {:.1}",
        undone,
        sdbms::stats::descriptive::mean(&dbms.dataset("earners")?.column_f64("HOURS_WORKED")?.0)?
    );

    // ---- Publishing and reuse ----------------------------------------------
    dbms.publish("earners", "alice")?;
    println!("\nbob reads alice's cleaning log:");
    for line in dbms.cleaning_log("earners", "bob")?.iter().rev().take(2) {
        println!("  {line}");
    }
    // Bob now gets redirected to the published view instead of
    // re-extracting from tape.
    let bobs = ViewDefinition::scan("bob_earners", "census_microdata").select(Predicate::cmp(
        Expr::col("INCOME"),
        CmpOp::Gt,
        Expr::lit(0.0),
    ));
    match dbms.materialize(bobs, "bob") {
        Err(CoreError::EquivalentViewExists { existing, owner }) => {
            println!("bob redirected to {existing:?} (owner {owner})");
        }
        other => panic!("expected redirect, got {other:?}"),
    }

    // ---- Access-pattern-driven reorganization -------------------------------
    dbms.materialize_with(
        ViewDefinition::scan("rowview", "census_microdata"),
        "carol",
        Layout::Row,
    )?;
    for _ in 0..15 {
        dbms.column("rowview", "INCOME")?; // statistical access pattern
    }
    if let Some(layout) = dbms.auto_reorganize("rowview")? {
        println!("\n`rowview` automatically reorganized to the {layout} layout");
    }
    println!("views in the catalog: {:?}", dbms.view_names());
    Ok(())
}
