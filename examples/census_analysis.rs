//! A full exploratory → confirmatory analysis session (§2.2).
//!
//! An analyst receives 20,000 census microdata records containing
//! planted data-entry errors and legitimate outliers, and works through
//! the paper's workflow: sample-based exploration, data checking and
//! invalidation (with history checkpoints), derived columns, and
//! finally confirmatory hypothesis tests on the cleaned view.
//!
//! Run with: `cargo run --example census_analysis`

use sdbms::core::{
    AccuracyPolicy, CmpOp, Expr, Predicate, ScalarFunc, StatDbms, StatFunction, ViewDefinition,
};
use sdbms::data::census::{microdata_census, region_codebook, CensusConfig};
use sdbms::data::DataType;
use sdbms::stats::{crosstab::CrossTab, hypothesis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dbms = StatDbms::new(1024);

    // Load the raw survey (with seeded invalid ages and outlier
    // incomes) onto archive storage.
    let raw = microdata_census(&CensusConfig {
        rows: 20_000,
        invalid_fraction: 0.004,
        outlier_fraction: 0.01,
        ..Default::default()
    })?;
    dbms.load_raw(&raw)?;
    dbms.register_codebook(region_codebook(4));
    println!("loaded {} raw records onto tape", raw.len());

    // Materialize the working view (transposed layout by default).
    dbms.materialize(
        ViewDefinition::scan("survey", "census_microdata"),
        "analyst",
    )?;

    // ---- Exploratory phase -------------------------------------------------
    // First impressions from a 5% sample (§2.2: responsiveness).
    let sample = dbms.sample("survey", 1_000, 7)?;
    let (sample_incomes, _) = sample.column_f64("INCOME")?;
    let d = sdbms::stats::describe(&sample_incomes)?;
    println!(
        "\nsample of 1000: income mean ≈ {:.0}, sd ≈ {:.0}, range [{:.0}, {:.0}]",
        d.mean, d.std_dev, d.min, d.max
    );

    // Data checking on the full view: histogram + range scan.
    let (ages, _) = dbms.dataset("survey")?.column_f64("AGE")?;
    let hist = sdbms::stats::Histogram::from_data(&ages, 12)?;
    println!(
        "\nAGE histogram (bins of {:.0}):",
        hist.edges()[1] - hist.edges()[0]
    );
    for (i, &c) in hist.counts().iter().enumerate() {
        println!(
            "  [{:>5.0}, {:>5.0})  {}",
            hist.edges()[i],
            hist.edges()[i + 1],
            "#".repeat((c / 150 + 1) as usize)
        );
    }

    let suspicious = dbms.suspicious_rows("survey", "AGE")?;
    println!("\n{} rows have impossible AGE values", suspicious.len());

    // Checkpoint, then invalidate the bad measurements (§3.1).
    dbms.checkpoint("survey", "before-cleaning")?;
    dbms.annotate(
        "survey",
        "ages > 110 are data-entry errors; marking missing",
    )?;
    let report = dbms.invalidate_where(
        "survey",
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(110i64)),
        "AGE",
    )?;
    println!(
        "invalidated {} cells ({} summary entries maintained incrementally)",
        report.rows_matched, report.maintenance.incremental
    );

    // Outlier incomes are investigated, found legitimate, and kept
    // (the Beverly Hills case) — record that decision.
    let rich = dbms.suspicious_rows("survey", "INCOME")?;
    dbms.annotate(
        "survey",
        &format!(
            "{} incomes above the plausibility range verified as real",
            rich.len()
        ),
    )?;

    // Standing summaries for later work — all cached.
    let warmed = dbms.warm_standing_summaries("survey")?;
    println!("warmed {warmed} standing summary entries");

    // The M ± k·SD query of §3.1, straight from cached values.
    let (mean, _) = dbms.compute(
        "survey",
        "INCOME",
        &StatFunction::Mean,
        AccuracyPolicy::Exact,
    )?;
    let (sd, _) = dbms.compute(
        "survey",
        "INCOME",
        &StatFunction::StdDev,
        AccuracyPolicy::Exact,
    )?;
    let (m, s) = (mean.as_scalar().unwrap(), sd.as_scalar().unwrap());
    let (incomes, _) = dbms.dataset("survey")?.column_f64("INCOME")?;
    let (inside, outside) = sdbms::stats::descriptive::count_within_band(&incomes, m, s, 3.0);
    println!("\nincome M ± 3·SD: {inside} inside, {outside} outside");

    // A derived column with a row-local rule.
    dbms.add_derived_column(
        "survey",
        "LOG_INCOME",
        DataType::Float,
        Expr::col("INCOME").apply(ScalarFunc::Ln),
    )?;
    // And the residuals of INCOME ~ AGE with the regenerate rule.
    dbms.add_residuals_column("survey", "RESID", "AGE", "INCOME")?;
    println!("added derived columns LOG_INCOME (local rule) and RESID (regenerate rule)");

    // ---- Confirmatory phase ------------------------------------------------
    let view = dbms.dataset("survey")?;

    // Is the proportion who live past 40 dependent on race? (§2.2's
    // literal example — chi-squared on a cross-tabulation.)
    let (ct, _) = CrossTab::from_dataset(&view, "RACE", "AGE_GROUP")?;
    let chi = hypothesis::chi_squared_independence(&ct)?;
    println!(
        "\nchi-squared(RACE × AGE_GROUP): χ² = {:.1}, df = {}, p = {:.4}",
        chi.statistic, chi.df, chi.p_value
    );

    // Does LOG_INCOME look normal? K-S against a fitted normal.
    let (log_incomes, _) = view.column_f64("LOG_INCOME")?;
    let ld = sdbms::stats::describe(&log_incomes)?;
    let ks = hypothesis::ks_one_sample(&log_incomes, |x| {
        sdbms::stats::special::normal_cdf((x - ld.mean) / ld.std_dev)
    })?;
    println!(
        "K-S LOG_INCOME vs N({:.2}, {:.2}): D = {:.4}, p = {:.4}",
        ld.mean, ld.std_dev, ks.statistic, ks.p_value
    );

    // Trimmed mean between the 5th and 95th quantiles (§3.1).
    let (trimmed, _) = dbms.compute(
        "survey",
        "INCOME",
        &StatFunction::TrimmedMean(50, 950),
        AccuracyPolicy::Exact,
    )?;
    println!("5%-95% trimmed mean income = {trimmed}");

    // Publish the cleaned view so colleagues reuse the work (§2.3).
    dbms.publish("survey", "analyst")?;
    println!("\ncleaning log now visible to other analysts:");
    for line in dbms.cleaning_log("survey", "colleague")?.iter().take(3) {
        println!("  {line}");
    }
    println!(
        "  … ({} entries total)",
        dbms.cleaning_log("survey", "colleague")?.len()
    );

    let stats = dbms.cache_stats("survey")?;
    println!("\nSummary Database: {stats:?}");
    Ok(())
}
