//! The failure model end to end (DESIGN.md §8).
//!
//! Demonstrates the fault-injection storage layer working underneath a
//! live analysis session: transient I/O errors absorbed by retry with
//! backoff, silent page corruption caught by checksums and quarantined
//! out of the Summary Database, answers recovered from the raw archive
//! when the view itself is damaged, a mid-update crash honored by the
//! write-ahead intent log on recovery, and finally a view that
//! *self-heals*: bit flips found by the background scrubber, triaged,
//! and repaired from the raw archive with the analyst's edit history
//! replayed back on top. The finale puts the front-line server on top
//! of the same faulty hardware: a slow fault eats a request deadline
//! (typed, never partial), consecutive engine failures open the
//! view's circuit breaker, cached reads keep serving while it is
//! open, and a half-open probe closes it once the disk heals
//! (DESIGN.md §16).
//!
//! Run with: `cargo run --example fault_tolerance`

use sdbms::core::{
    AccuracyPolicy, BinOp, CmpOp, ComputeSource, Expr, Predicate, StatFunction, ViewDefinition,
};
use sdbms::storage::{DeviceFaults, FaultPlan};
use sdbms_testkit::CensusFixture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- A DBMS on faulty hardware ----------------------------------------
    // The shared census fixture, demo-sized and cold (no warmed
    // summaries — each section below earns its own cache state).
    let mut dbms = CensusFixture::new()
        .rows(500)
        .owner("alice")
        .warm(false)
        .build()?;

    // ---- 1. Transients are retried, not surfaced ---------------------------
    // Drop the (clean, just-flushed) pool frames so the computation
    // actually reads the faulty disk instead of warm memory.
    dbms.env().restart()?;
    dbms.env().injector.set_plan(FaultPlan {
        seed: 42,
        disk: DeviceFaults {
            transient_read: 0.10,
            transient_write: 0.10,
            ..DeviceFaults::default()
        },
        ..FaultPlan::none()
    });
    let (mean, _) = dbms.compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)?;
    let io = dbms.io();
    println!("mean(INCOME) = {mean} on a disk with 10% transient faults");
    println!(
        "  retries absorbed: {}, backoff units paid: {}",
        io.retries, io.backoff_units
    );
    assert!(io.retries > 0, "the plan should have fired transients");

    // ---- 2. Silent corruption is quarantined -------------------------------
    dbms.env().injector.set_plan(FaultPlan::none());
    dbms.env().pool.flush_all()?;
    // Flip one bit in every allocated disk page (the intent log keeps
    // its pages; recovery needs them readable for this demo's part 4).
    let wal_pages = dbms.view("v")?.wal.as_ref().expect("wal").log_pages();
    for pid in 0..dbms.env().disk.allocated_pages() as u32 {
        if !wal_pages.contains(&pid) {
            let _ = dbms.env().disk.corrupt_page(pid, 7);
        }
    }
    dbms.recover()?; // restart: drop clean frames, next reads hit the damage
    let (served, source) =
        dbms.compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)?;
    let stats = dbms.cache_stats("v")?;
    println!("\nafter corrupting every data page:");
    println!("  mean(INCOME) = {served} (source: {source:?})");
    println!(
        "  quarantined entries: {}, checksum failures seen: {}",
        stats.quarantined,
        dbms.io().checksum_failures
    );
    assert_eq!(
        source,
        ComputeSource::Fallback,
        "answer came from the archive"
    );
    assert!(served.approx_eq(&mean, 1e-9), "…and it is still correct");

    // ---- 3. Rebuild a healthy view and warm its cache ----------------------
    dbms.drop_view("v", "alice")?;
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "alice")?;
    dbms.compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)?;

    // ---- 4. Crash mid-update; the intent log makes recovery exact ----------
    let ops = dbms.env().injector.ops();
    dbms.env().injector.set_plan(FaultPlan {
        seed: 7,
        crash_at_op: Some(ops + 25),
        ..FaultPlan::none()
    });
    let crashed = dbms.update_where(
        "v",
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(40i64)),
        &[(
            "INCOME",
            Expr::col("INCOME").binary(BinOp::Add, Expr::lit(1_000i64)),
        )],
    );
    println!("\nupdate under a scheduled crash: {crashed:?}");
    assert!(dbms.is_crashed());

    dbms.env().injector.set_plan(FaultPlan::none());
    let report = dbms.recover()?;
    println!("recovery: {report:?}");
    let col = dbms.column("v", "INCOME")?;
    let (after, _) = dbms.compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)?;
    let fresh = StatFunction::Mean.compute(&col)?;
    assert!(after.approx_eq(&fresh, 1e-9));
    println!("served mean(INCOME) = {after} == recompute {fresh}");

    // The audit trail shows recovery acted.
    for (ver, rec) in dbms.catalog().view("v")?.history.records() {
        if rec.to_string().starts_with("recovery:") {
            println!("history v{ver}: {rec}");
        }
    }
    // ---- 5. Corrupt, then self-heal ----------------------------------------
    // Flip bits in a couple of the view's data pages, let the budgeted
    // scrubber find them, read through the degradation, then repair:
    // regenerate from the archive and replay the update history so the
    // analyst's edits (part 4's surviving cells included) come back.
    use sdbms::core::ViewHealth;
    let before_col = dbms.column("v", "INCOME")?;
    dbms.env().pool.flush_all()?;
    let pages = dbms.view("v")?.store.data_page_ids();
    for pid in pages.iter().take(2) {
        dbms.env().disk.corrupt_page(*pid, 13)?;
    }
    let scrubbed = dbms.scrub(10_000)?;
    println!(
        "\nscrub: {} pages verified, {} finding(s), health now {:?}",
        scrubbed.pages_verified,
        scrubbed.findings.len(),
        dbms.health("v")?
    );
    assert_eq!(dbms.health("v")?, ViewHealth::Degraded);

    // Degraded reads still answer — from the archive, never cached.
    let (degraded, src) =
        dbms.compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)?;
    println!("degraded read: mean(INCOME) = {degraded} (source: {src:?})");
    assert_eq!(src, ComputeSource::Fallback);

    let repaired = dbms.repair_view("v")?;
    println!(
        "repair: {:?}\n  store regenerated: {}, history records replayed: {}, \
         zone maps rebuilt: {}, summary reset: {}",
        repaired.actions,
        repaired.store_regenerated,
        repaired.history_replayed,
        repaired.zone_maps_rebuilt,
        repaired.summary_reset
    );
    assert_eq!(dbms.health("v")?, ViewHealth::Healthy);
    let after_col = dbms.column("v", "INCOME")?;
    assert_eq!(before_col, after_col, "repair restored the edited column");
    let (healed, src) = dbms.compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)?;
    assert_ne!(src, ComputeSource::Fallback);
    println!("healed read: mean(INCOME) = {healed} (source: {src:?})");

    // ---- 6. Two analysts: a pinned snapshot vs. a committing batch ---------
    // Alice opens a read snapshot and starts analyzing. While she
    // works, Bob stages and commits a transactional update batch on the
    // same view, and the background scrubber runs a pass. Alice's
    // numbers stay exactly what they were when she opened the snapshot
    // — a new version is only visible once she re-opens.
    let alice = dbms.snapshot("v")?;
    let alice_mean_before = alice.compute("INCOME", &StatFunction::Mean)?.0;
    let alice_rows_before = alice.len();
    println!(
        "\nalice pins version {} ({} rows): mean(INCOME) = {alice_mean_before}",
        alice.version(),
        alice_rows_before
    );

    let bob = dbms.begin_batch("v")?;
    dbms.batch_update_where(
        bob,
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(30i64)),
        &[(
            "INCOME",
            Expr::col("INCOME").binary(BinOp::Add, Expr::lit(5_000i64)),
        )],
    )?;
    // While Bob's batch holds the view lock, the scrubber simply skips
    // the view — it never blocks and never sees half a batch.
    let mid_scrub = dbms.scrub(10_000)?;
    println!(
        "scrub during bob's batch: {} view(s) skipped (writer holds the lock)",
        mid_scrub.views_skipped
    );
    let committed = dbms.commit_batch(bob)?;
    println!(
        "bob commits: {} row(s) matched, {} cell(s) changed",
        committed.rows_matched, committed.cells_changed
    );
    let post_scrub = dbms.scrub(10_000)?;
    assert!(post_scrub.findings.is_empty(), "the commit left no damage");

    // Alice's pinned snapshot is untouched by all of that.
    let alice_mean_after = alice.compute("INCOME", &StatFunction::Mean)?.0;
    assert!(
        alice_mean_after.approx_eq(&alice_mean_before, 0.0),
        "a pinned snapshot never moves"
    );
    assert_eq!(alice.len(), alice_rows_before);
    println!("alice re-reads her snapshot: mean(INCOME) = {alice_mean_after} (unchanged)");

    // Only a fresh snapshot observes Bob's batch — atomically.
    let alice2 = dbms.snapshot("v")?;
    let fresh_mean = alice2.compute("INCOME", &StatFunction::Mean)?.0;
    println!(
        "alice re-opens at version {}: mean(INCOME) = {fresh_mean}",
        alice2.version()
    );
    assert!(alice2.version() > alice.version());
    assert!(!fresh_mean.approx_eq(&alice_mean_before, 1e-9));
    drop(alice);
    drop(alice2);

    // ---- 7. The front door: deadlines, a breaker, and cached reads ---------
    // Put the serving layer on top of the same engine: every request
    // now carries a 60-unit op budget, and two consecutive engine
    // failures open the view's circuit breaker.
    use sdbms::serve::{
        BreakerConfig, BreakerState, Query, ServeConfig, ServeError, Served, Server,
    };

    let server = Server::start(
        dbms,
        ServeConfig {
            deadline_ops: Some(60),
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_ticks: 4,
                half_open_probes: 1,
            },
            ..ServeConfig::default()
        },
    );
    let session = server.open_session("alice", "v")?;
    let warm = server.query(session, Query::summary("INCOME", StatFunction::Mean))?;
    println!(
        "\nserver: mean(INCOME) computed and cached (served: {:?})",
        warm.served
    );

    // A slow fault: reads succeed but stall 100 simulated units each,
    // and the second stall finds the 60-unit budget already overdrawn —
    // a typed deadline error, never a partial result.
    server.with_dbms_mut(|d| {
        d.env().pool.flush_all().expect("flush");
        d.env().pool.discard_frames().expect("discard");
        d.env().injector.set_plan(FaultPlan {
            seed: 16,
            disk: DeviceFaults {
                slow_read: 1.0,
                slow_read_units: 100,
                ..DeviceFaults::default()
            },
            ..FaultPlan::none()
        });
    });
    let tripped = server
        .query(session, Query::summary("AGE", StatFunction::Max))
        .expect_err("a slow scan cannot beat a 60-unit deadline");
    println!("slow disk vs the deadline: {tripped}");
    assert!(matches!(tripped, ServeError::DeadlineExceeded));

    // Now the disk goes fully dark. The deadline trip was failure one;
    // this engine failure is the second consecutive one — the breaker
    // opens and fast-fails further work without touching the engine.
    server.with_dbms_mut(|d| {
        d.env().pool.discard_frames().expect("discard");
        d.env().injector.set_plan(FaultPlan {
            seed: 17,
            disk: DeviceFaults {
                transient_read: 1.0,
                ..DeviceFaults::default()
            },
            ..FaultPlan::none()
        });
    });
    let dead = server
        .query(session, Query::summary("AGE", StatFunction::Max))
        .expect_err("retries exhaust against a dead disk");
    println!("dead disk: {dead}");
    let open = server
        .query(session, Query::summary("AGE", StatFunction::Max))
        .expect_err("the breaker is open");
    println!("breaker: {open}");
    assert!(matches!(open, ServeError::BreakerOpen { .. }));
    assert!(open.retry_after_ms().is_some(), "fast-fails carry a hint");
    assert!(matches!(server.breaker_state("v"), BreakerState::Open));

    // The front cache bypasses the broken disk entirely: the warmed
    // query keeps serving while the breaker holds the engine safe.
    let hit = server.query(session, Query::summary("INCOME", StatFunction::Mean))?;
    assert_eq!(hit.served, Served::FrontCache);
    println!("cached mean(INCOME) still serves while the breaker is open");

    // Heal the disk. The open window elapses as requests arrive; the
    // first half-open probe succeeds and closes the breaker.
    server.with_dbms_mut(|d| d.env().injector.set_plan(FaultPlan::none()));
    let mut healed = None;
    for _ in 0..8 {
        match server.query(session, Query::summary("AGE", StatFunction::Max)) {
            Ok(resp) => {
                healed = Some(resp);
                break;
            }
            Err(ServeError::BreakerOpen { .. }) => {}
            Err(other) => return Err(other.into()),
        }
    }
    let healed = healed.expect("a probe must get through within the window");
    assert_eq!(server.breaker_state("v"), BreakerState::Closed);
    println!(
        "healed: max(AGE) recomputed (served: {:?}), breaker closed again",
        healed.served
    );
    let _dbms = server.shutdown().expect("engine handed back");

    println!("\ninvariant held: no fault made the cache lie.");
    Ok(())
}
