//! Quickstart: the paper's running example, end to end.
//!
//! Loads the Figure 1 data set into the raw database, materializes a
//! concrete view, decodes AGE_GROUP through the Figure 2 code book with
//! a relational join, and reproduces the Figure 4 Summary Database by
//! running the paper's three queries.
//!
//! Run with: `cargo run --example quickstart`

use sdbms::core::{paper_demo_dbms, AccuracyPolicy, ComputeSource, StatFunction, ViewDefinition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A DBMS whose raw database ("tape") already holds Figure 1, with
    // the Figure 2 AGE_GROUP code book registered.
    let mut dbms = paper_demo_dbms(256)?;

    println!("== Raw database (on archive storage) ==");
    for name in dbms.raw().dataset_names() {
        println!("  reel: {name}");
    }

    // Materialize the analyst's concrete view. This is the expensive
    // tape-to-disk step the paper amortizes.
    dbms.materialize(ViewDefinition::scan("census", "figure1"), "analyst")?;
    println!("\n== Concrete view `census` (paper Figure 1) ==");
    println!("{}", dbms.dataset("census")?);

    // Decode AGE_GROUP with a join instead of a manual code book
    // lookup (§2.4's complaint about statistical packages).
    let decoded = ViewDefinition::scan("decoded", "figure1")
        .join("AGE_GROUP_codes", "AGE_GROUP", "CATEGORY")
        .project(&["SEX", "RACE", "VALUE", "POPULATION", "AVE_SALARY"]);
    dbms.materialize(decoded, "analyst")?;
    println!("== Decoded view (Figure 2 joined in) ==");
    println!("{}", dbms.dataset("decoded")?);

    // The paper's Figure 4 queries: min/max of POPULATION, median of
    // AVE_SALARY. First execution computes; every later one hits the
    // Summary Database.
    for (attr, f) in [
        ("POPULATION", StatFunction::Min),
        ("POPULATION", StatFunction::Max),
        ("AVE_SALARY", StatFunction::Median),
    ] {
        let (value, source) = dbms.compute("census", attr, &f, AccuracyPolicy::Exact)?;
        println!("{}({attr}) = {value}   [{source:?}]", f.name());
    }

    // Run the median again: a pure cache hit.
    let (median, source) = dbms.compute(
        "census",
        "AVE_SALARY",
        &StatFunction::Median,
        AccuracyPolicy::Exact,
    )?;
    assert_eq!(source, ComputeSource::Cache);
    println!("\nmedian again = {median}   [{source:?}] — no data access");

    // The view's Summary Database now *is* paper Figure 4.
    println!("\n== Summary Database (paper Figure 4) ==");
    print!("{}", dbms.view("census")?.summary.render_figure4()?);

    let stats = dbms.cache_stats("census")?;
    println!("\ncache stats: {stats:?}");
    let io = dbms.io();
    println!(
        "I/O so far: {} page reads, {} page writes, {} archive blocks",
        io.page_reads, io.page_writes, io.archive_block_reads
    );
    Ok(())
}
