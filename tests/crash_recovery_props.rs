//! Property-based crash-recovery tests: wherever a crash lands inside
//! an update's durable section, recovery must leave the Summary
//! Database consistent with whatever cell state actually survived on
//! disk — served summaries always equal a from-scratch recompute of
//! the post-recovery column.

use proptest::prelude::*;

use sdbms::core::{AccuracyPolicy, BinOp, CmpOp, Expr, Predicate, StatDbms, ViewHealth};
use sdbms::storage::FaultPlan;
use sdbms_testkit::{checked_functions as functions, CensusFixture, CENSUS_ATTRS as ATTRS};

/// A crash-consistent DBMS over a small census view with warm caches —
/// the testkit fixture at this harness's historical sizing.
fn setup() -> StatDbms {
    CensusFixture::new()
        .rows(60)
        .pool_pages(192)
        .owner("props")
        .build()
        .expect("fixture")
}

/// Every summary the recovered DBMS serves must match a recompute of
/// the column it now actually holds.
fn assert_consistent(dbms: &mut StatDbms) -> Result<(), TestCaseError> {
    for a in ATTRS {
        let col = dbms.column("v", a).expect("post-recovery column");
        for f in functions() {
            let (served, _) = dbms
                .compute("v", a, &f, AccuracyPolicy::Exact)
                .expect("post-recovery compute");
            let fresh = f.compute(&col).expect("recompute");
            prop_assert!(
                served.approx_eq(&fresh, 1e-9),
                "{f:?}({a}) served {served} != recompute {fresh}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_anywhere_in_an_update_recovers_to_a_consistent_cache(
        crash_offset in 1u64..140,
        threshold in 18i64..60,
        bump in 1i64..400,
        preludes in prop::collection::vec((20i64..55, 1i64..200), 0..3)
    ) {
        let mut dbms = setup();

        // Some committed updates first, so the crash can land on a view
        // whose durable state already diverged from materialization.
        for (t, b) in preludes {
            dbms.update_where(
                "v",
                &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(t)),
                &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(b)))],
            )
            .expect("prelude update");
        }

        // Crash at an arbitrary I/O operation inside the next update's
        // durable section (intent write, cell writes, maintenance,
        // commit flush — wherever `crash_offset` lands).
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: crash_offset,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let outcome = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Mul, Expr::lit(bump)))],
        );

        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            prop_assert!(outcome.is_err(), "a crash must abort the update");
            dbms.recover().expect("recover on healthy hardware");
        }
        // If the op budget outlived the update, the update committed
        // normally — consistency must hold either way.
        assert_consistent(&mut dbms)?;
    }

    #[test]
    fn recovery_is_idempotent(crash_offset in 1u64..80) {
        let mut dbms = setup();
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: 9,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let _ = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(30i64)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(7i64)))],
        );
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            dbms.recover().expect("first recovery");
        }
        // A second recovery finds no pending intent and changes nothing.
        let again = dbms.recover().expect("second recovery");
        prop_assert!(again.views_recovered.is_empty(), "no intent left: {again:?}");
        assert_consistent(&mut dbms)?;
    }

    /// A crash at *any* I/O operation inside `repair_view` — during
    /// detection, archive regeneration, history replay, the summary
    /// reset, or the verification pass — must recover to a consistent
    /// DBMS: the interrupted repair's durable intent keeps the view
    /// suspect, and a re-run repair restores it to `Healthy` with
    /// summaries matching a from-scratch recompute.
    #[test]
    fn crash_anywhere_during_repair_recovers_consistent(
        crash_offset in 1u64..400,
        threshold in 18i64..60,
        bump in 1i64..400,
        page_pick in any::<prop::sample::Index>(),
        bit in 0usize..(8 * 512),
    ) {
        let mut dbms = setup();
        // An analyst edit, so the repair has history to replay.
        dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(bump)))],
        )
        .expect("edit");
        // Damage one data page on disk.
        dbms.env().pool.flush_all().expect("flush");
        let pages = dbms.view("v").expect("view").store.data_page_ids();
        prop_assert!(!pages.is_empty());
        let pid = pages[page_pick.index(pages.len())];
        dbms.env().disk.corrupt_page(pid, bit).expect("corrupt");

        // Crash at an arbitrary operation inside the repair.
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: crash_offset,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let outcome = dbms.repair_view("v");
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            prop_assert!(outcome.is_err(), "a crash must abort the repair");
            dbms.recover().expect("recover on healthy hardware");
            dbms.repair_view("v").expect("re-run the interrupted repair");
        } else {
            // The op budget outlived the repair: it must have succeeded.
            outcome.expect("repair without a crash");
        }
        prop_assert_eq!(dbms.health("v").expect("health"), ViewHealth::Healthy);
        assert_consistent(&mut dbms)?;
    }

    /// The batch-commit acceptance property: a crash at *any* I/O
    /// operation inside `commit_batch` recovers **all-or-nothing** —
    /// the post-recovery column equals either the exact pre-batch
    /// state or the exact post-batch state (computed by a fault-free
    /// twin running the identical batch), never a mix of the two —
    /// and recovery is idempotent.
    #[test]
    fn crash_anywhere_in_a_batch_commit_recovers_all_or_nothing(
        crash_offset in 1u64..220,
        threshold in 18i64..60,
        bump in 1i64..400,
        row in 0usize..60,
        preludes in prop::collection::vec((20i64..55, 1i64..200), 0..2)
    ) {
        use sdbms::data::Value;
        let mut primary = setup();
        let mut twin = setup();
        for (t, b) in &preludes {
            for dbms in [&mut primary, &mut twin] {
                dbms.update_where(
                    "v",
                    &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(*t)),
                    &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(*b)))],
                )
                .expect("prelude update");
            }
        }
        let pre = primary.column("v", "INCOME").expect("pre-batch column");
        prop_assert_eq!(&pre, &twin.column("v", "INCOME").expect("twin pre"));
        let template = primary.snapshot("v").expect("snapshot").row(0).expect("row");
        let poke = match &pre[row] {
            Value::Int(i) => Value::Int(i + 11),
            Value::Float(f) => Value::Float(f + 11.0),
            other => other.clone(),
        };
        let pred = Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold));
        let assign = Expr::col("INCOME").binary(BinOp::Add, Expr::lit(bump));

        // The fault-free twin computes the exact post-batch state.
        let tb = twin.begin_batch("v").expect("twin batch");
        twin.batch_update_where(tb, &pred, &[("INCOME", assign.clone())]).expect("stage");
        twin.batch_set_cell(tb, row, "INCOME", poke.clone()).expect("stage");
        twin.batch_append_row(tb, template.clone()).expect("stage");
        twin.commit_batch(tb).expect("fault-free commit");
        let post = twin.column("v", "INCOME").expect("post-batch column");

        // Crash the primary at an arbitrary I/O op inside its commit
        // (shadow clone, cell writes, the durability flush, the intent
        // retire — wherever `crash_offset` lands).
        let ops = primary.env().injector.ops();
        primary.env().injector.set_plan(FaultPlan {
            seed: crash_offset,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let b = primary.begin_batch("v").expect("begin does no I/O");
        primary.batch_update_where(b, &pred, &[("INCOME", assign)]).expect("staging does no I/O");
        primary.batch_set_cell(b, row, "INCOME", poke).expect("staging does no I/O");
        primary.batch_append_row(b, template).expect("staging does no I/O");
        let outcome = primary.commit_batch(b);

        primary.env().injector.set_plan(FaultPlan::none());
        if primary.is_crashed() {
            prop_assert!(outcome.is_err(), "a crash must abort the commit");
            primary.recover().expect("recover on healthy hardware");
        } else {
            outcome.expect("the op budget outlived the commit");
        }
        let after = primary.column("v", "INCOME").expect("post-recovery column");
        prop_assert!(
            after == pre || after == post,
            "crash at +{} left a torn batch: {} rows (pre {}, post {})",
            crash_offset, after.len(), pre.len(), post.len()
        );
        // Idempotent: a second recovery finds nothing and moves nothing.
        let again = primary.recover().expect("second recovery");
        prop_assert!(again.views_recovered.is_empty(), "{:?}", again);
        prop_assert_eq!(&primary.column("v", "INCOME").expect("column"), &after);
        assert_consistent(&mut primary)?;
    }

    /// The cancellation twin of the batch-commit crash property: a
    /// commit running under *any* op budget either completes exactly
    /// (the fault-free twin's post state) or fails with the **typed**
    /// cooperative-stop error and leaves the exact pre-batch state —
    /// no torn columns, no stranded locks, and a subsequent recovery
    /// still lands on one of the two committed states.
    #[test]
    fn budget_tripped_batch_commits_abort_cleanly_and_recover_all_or_nothing(
        budget in 0u64..220,
        threshold in 18i64..60,
        bump in 1i64..400,
        row in 0usize..60,
    ) {
        use sdbms::core::CoreError;
        use sdbms::data::Value;
        use sdbms::storage::{BudgetScope, CancelToken};

        let mut primary = setup();
        let mut twin = setup();
        let pre = primary.column("v", "INCOME").expect("pre-batch column");
        prop_assert_eq!(&pre, &twin.column("v", "INCOME").expect("twin pre"));
        let template = primary.snapshot("v").expect("snapshot").row(0).expect("row");
        let poke = match &pre[row] {
            Value::Int(i) => Value::Int(i + 13),
            Value::Float(f) => Value::Float(f + 13.0),
            other => other.clone(),
        };
        let pred = Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold));
        let assign = Expr::col("INCOME").binary(BinOp::Add, Expr::lit(bump));

        // The fault-free twin computes the exact post-batch state.
        let tb = twin.begin_batch("v").expect("twin batch");
        twin.batch_update_where(tb, &pred, &[("INCOME", assign.clone())]).expect("stage");
        twin.batch_set_cell(tb, row, "INCOME", poke.clone()).expect("stage");
        twin.batch_append_row(tb, template.clone()).expect("stage");
        twin.commit_batch(tb).expect("fault-free commit");
        let post = twin.column("v", "INCOME").expect("post-batch column");

        // The primary stages the identical batch (staging does no I/O)
        // and commits under an ambient op budget that may trip at any
        // durable step — intent write, cell writes, flush, or retire.
        let b = primary.begin_batch("v").expect("begin does no I/O");
        primary.batch_update_where(b, &pred, &[("INCOME", assign)]).expect("stage");
        primary.batch_set_cell(b, row, "INCOME", poke).expect("stage");
        primary.batch_append_row(b, template).expect("stage");
        let outcome = {
            let _scope = BudgetScope::enter(CancelToken::with_op_budget(budget));
            primary.commit_batch(b)
        };
        match outcome {
            Ok(_) => {
                prop_assert_eq!(
                    &primary.column("v", "INCOME").expect("column"), &post,
                    "a commit the budget admitted must equal the twin's post state"
                );
            }
            Err(e) => {
                prop_assert!(
                    matches!(e, CoreError::DeadlineExceeded | CoreError::Cancelled),
                    "budget {} tripped with a non-cooperative error: {:?}", budget, e
                );
                prop_assert_eq!(
                    &primary.column("v", "INCOME").expect("column"), &pre,
                    "a tripped commit must leave the exact pre-batch state"
                );
                // No stranded lock: the view accepts a new batch at once.
                let nb = primary.begin_batch("v").expect("view stays lockable");
                primary.abort_batch(nb).expect("abort");
            }
        }

        // Recovery replays or retires whatever intent survived the
        // trip; either way it lands on a committed state, never a mix.
        primary.recover().expect("recovery on healthy hardware");
        let after = primary.column("v", "INCOME").expect("post-recovery column");
        prop_assert!(
            after == pre || after == post,
            "budget {} left a torn batch after recovery: {} rows (pre {}, post {})",
            budget, after.len(), pre.len(), post.len()
        );
        assert_consistent(&mut primary)?;
    }

    /// Repairing a healthy view is an observable no-op: no findings, no
    /// actions, no store or summary churn, cache counters untouched —
    /// and running it twice returns the identical (empty) report.
    #[test]
    fn repair_on_a_healthy_view_is_an_observable_noop(
        preludes in prop::collection::vec((20i64..55, 1i64..200), 0..3)
    ) {
        let mut dbms = setup();
        for (t, b) in preludes {
            dbms.update_where(
                "v",
                &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(t)),
                &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(b)))],
            )
            .expect("prelude update");
        }
        let stats_before = dbms.cache_stats("v").expect("stats");
        let report = dbms.repair_view("v").expect("repair healthy view");
        prop_assert!(report.findings.is_empty(), "{:?}", report);
        prop_assert!(report.actions.is_empty(), "{:?}", report);
        prop_assert!(!report.store_regenerated && !report.summary_reset);
        prop_assert_eq!(dbms.cache_stats("v").expect("stats"), stats_before);
        prop_assert_eq!(dbms.health("v").expect("health"), ViewHealth::Healthy);
        let again = dbms.repair_view("v").expect("repair twice");
        prop_assert_eq!(report, again);
        assert_consistent(&mut dbms)?;
    }
}

/// Recovery compacts the intent-log chain back to one page, and a
/// recovery run *after* compaction is a no-op: repeated crash/recover
/// cycles never let the chain grow without bound and never re-apply a
/// retired intent.
#[test]
fn wal_chain_compacts_after_recovery_and_recovery_stays_idempotent() {
    let mut dbms = setup();
    for round in 0..3u64 {
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: round,
            crash_at_op: Some(ops + 35 + round * 23),
            ..FaultPlan::none()
        });
        let _ = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(25i64 + round as i64)),
            &[(
                "INCOME",
                Expr::col("INCOME").binary(BinOp::Add, Expr::lit(3i64)),
            )],
        );
        dbms.env().injector.set_plan(FaultPlan::none());
        assert!(dbms.is_crashed(), "round {round}: the crash budget fired");
        dbms.recover().expect("recovery");
        let chain = dbms
            .view("v")
            .expect("view")
            .wal
            .as_ref()
            .expect("wal")
            .chain_len();
        assert_eq!(
            chain, 1,
            "round {round}: recovery compacted the chain to one page"
        );
        // Recovery after compaction: nothing pending, nothing moves.
        let col_before = dbms.column("v", "INCOME").expect("column");
        let again = dbms.recover().expect("post-compaction recovery");
        assert!(again.views_recovered.is_empty(), "{again:?}");
        assert_eq!(
            dbms.column("v", "INCOME").expect("column"),
            col_before,
            "round {round}: idempotent recovery moved data"
        );
    }
    let col = dbms.column("v", "INCOME").expect("column");
    for f in functions() {
        let (served, _) = dbms
            .compute("v", "INCOME", &f, AccuracyPolicy::Exact)
            .expect("compute");
        let fresh = f.compute(&col).expect("recompute");
        assert!(
            served.approx_eq(&fresh, 1e-9),
            "{f:?} served {served} != recompute {fresh}"
        );
    }
}
