//! Property-based crash-recovery tests: wherever a crash lands inside
//! an update's durable section, recovery must leave the Summary
//! Database consistent with whatever cell state actually survived on
//! disk — served summaries always equal a from-scratch recompute of
//! the post-recovery column.

use proptest::prelude::*;

use sdbms::core::{
    AccuracyPolicy, BinOp, CmpOp, DurabilityPolicy, Expr, Predicate, StatDbms, StatFunction,
    ViewDefinition,
};
use sdbms::data::census::{microdata_census, CensusConfig};
use sdbms::storage::{FaultPlan, StorageEnv};

const ATTRS: [&str; 2] = ["AGE", "INCOME"];

fn functions() -> Vec<StatFunction> {
    vec![
        StatFunction::Count,
        StatFunction::Mean,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Median,
    ]
}

/// A crash-consistent DBMS over a small census view with warm caches.
fn setup() -> StatDbms {
    let mut dbms = StatDbms::with_env(StorageEnv::new(192));
    let raw = microdata_census(&CensusConfig {
        rows: 60,
        invalid_fraction: 0.0,
        outlier_fraction: 0.0,
        ..Default::default()
    })
    .expect("generate");
    dbms.load_raw(&raw).expect("load");
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "props")
        .expect("materialize");
    dbms.set_durability(DurabilityPolicy::CrashConsistent)
        .expect("durability");
    for a in ATTRS {
        for f in functions() {
            dbms.compute("v", a, &f, AccuracyPolicy::Exact)
                .expect("warm");
        }
    }
    dbms
}

/// Every summary the recovered DBMS serves must match a recompute of
/// the column it now actually holds.
fn assert_consistent(dbms: &mut StatDbms) -> Result<(), TestCaseError> {
    for a in ATTRS {
        let col = dbms.column("v", a).expect("post-recovery column");
        for f in functions() {
            let (served, _) = dbms
                .compute("v", a, &f, AccuracyPolicy::Exact)
                .expect("post-recovery compute");
            let fresh = f.compute(&col).expect("recompute");
            prop_assert!(
                served.approx_eq(&fresh, 1e-9),
                "{f:?}({a}) served {served} != recompute {fresh}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_anywhere_in_an_update_recovers_to_a_consistent_cache(
        crash_offset in 1u64..140,
        threshold in 18i64..60,
        bump in 1i64..400,
        preludes in prop::collection::vec((20i64..55, 1i64..200), 0..3)
    ) {
        let mut dbms = setup();

        // Some committed updates first, so the crash can land on a view
        // whose durable state already diverged from materialization.
        for (t, b) in preludes {
            dbms.update_where(
                "v",
                &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(t)),
                &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(b)))],
            )
            .expect("prelude update");
        }

        // Crash at an arbitrary I/O operation inside the next update's
        // durable section (intent write, cell writes, maintenance,
        // commit flush — wherever `crash_offset` lands).
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: crash_offset,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let outcome = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Mul, Expr::lit(bump)))],
        );

        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            prop_assert!(outcome.is_err(), "a crash must abort the update");
            dbms.recover().expect("recover on healthy hardware");
        }
        // If the op budget outlived the update, the update committed
        // normally — consistency must hold either way.
        assert_consistent(&mut dbms)?;
    }

    #[test]
    fn recovery_is_idempotent(crash_offset in 1u64..80) {
        let mut dbms = setup();
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: 9,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let _ = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(30i64)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(7i64)))],
        );
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            dbms.recover().expect("first recovery");
        }
        // A second recovery finds no pending intent and changes nothing.
        let again = dbms.recover().expect("second recovery");
        prop_assert!(again.views_recovered.is_empty(), "no intent left: {again:?}");
        assert_consistent(&mut dbms)?;
    }
}
