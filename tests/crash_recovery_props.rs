//! Property-based crash-recovery tests: wherever a crash lands inside
//! an update's durable section, recovery must leave the Summary
//! Database consistent with whatever cell state actually survived on
//! disk — served summaries always equal a from-scratch recompute of
//! the post-recovery column.

use proptest::prelude::*;

use sdbms::core::{
    AccuracyPolicy, BinOp, CmpOp, DurabilityPolicy, Expr, Predicate, StatDbms, StatFunction,
    ViewDefinition, ViewHealth,
};
use sdbms::data::census::{microdata_census, CensusConfig};
use sdbms::storage::{FaultPlan, StorageEnv};

const ATTRS: [&str; 2] = ["AGE", "INCOME"];

fn functions() -> Vec<StatFunction> {
    vec![
        StatFunction::Count,
        StatFunction::Mean,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Median,
    ]
}

/// A crash-consistent DBMS over a small census view with warm caches.
fn setup() -> StatDbms {
    let mut dbms = StatDbms::with_env(StorageEnv::new(192));
    let raw = microdata_census(&CensusConfig {
        rows: 60,
        invalid_fraction: 0.0,
        outlier_fraction: 0.0,
        ..Default::default()
    })
    .expect("generate");
    dbms.load_raw(&raw).expect("load");
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "props")
        .expect("materialize");
    dbms.set_durability(DurabilityPolicy::CrashConsistent)
        .expect("durability");
    for a in ATTRS {
        for f in functions() {
            dbms.compute("v", a, &f, AccuracyPolicy::Exact)
                .expect("warm");
        }
    }
    dbms
}

/// Every summary the recovered DBMS serves must match a recompute of
/// the column it now actually holds.
fn assert_consistent(dbms: &mut StatDbms) -> Result<(), TestCaseError> {
    for a in ATTRS {
        let col = dbms.column("v", a).expect("post-recovery column");
        for f in functions() {
            let (served, _) = dbms
                .compute("v", a, &f, AccuracyPolicy::Exact)
                .expect("post-recovery compute");
            let fresh = f.compute(&col).expect("recompute");
            prop_assert!(
                served.approx_eq(&fresh, 1e-9),
                "{f:?}({a}) served {served} != recompute {fresh}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_anywhere_in_an_update_recovers_to_a_consistent_cache(
        crash_offset in 1u64..140,
        threshold in 18i64..60,
        bump in 1i64..400,
        preludes in prop::collection::vec((20i64..55, 1i64..200), 0..3)
    ) {
        let mut dbms = setup();

        // Some committed updates first, so the crash can land on a view
        // whose durable state already diverged from materialization.
        for (t, b) in preludes {
            dbms.update_where(
                "v",
                &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(t)),
                &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(b)))],
            )
            .expect("prelude update");
        }

        // Crash at an arbitrary I/O operation inside the next update's
        // durable section (intent write, cell writes, maintenance,
        // commit flush — wherever `crash_offset` lands).
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: crash_offset,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let outcome = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Mul, Expr::lit(bump)))],
        );

        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            prop_assert!(outcome.is_err(), "a crash must abort the update");
            dbms.recover().expect("recover on healthy hardware");
        }
        // If the op budget outlived the update, the update committed
        // normally — consistency must hold either way.
        assert_consistent(&mut dbms)?;
    }

    #[test]
    fn recovery_is_idempotent(crash_offset in 1u64..80) {
        let mut dbms = setup();
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: 9,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let _ = dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(30i64)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(7i64)))],
        );
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            dbms.recover().expect("first recovery");
        }
        // A second recovery finds no pending intent and changes nothing.
        let again = dbms.recover().expect("second recovery");
        prop_assert!(again.views_recovered.is_empty(), "no intent left: {again:?}");
        assert_consistent(&mut dbms)?;
    }

    /// A crash at *any* I/O operation inside `repair_view` — during
    /// detection, archive regeneration, history replay, the summary
    /// reset, or the verification pass — must recover to a consistent
    /// DBMS: the interrupted repair's durable intent keeps the view
    /// suspect, and a re-run repair restores it to `Healthy` with
    /// summaries matching a from-scratch recompute.
    #[test]
    fn crash_anywhere_during_repair_recovers_consistent(
        crash_offset in 1u64..400,
        threshold in 18i64..60,
        bump in 1i64..400,
        page_pick in any::<prop::sample::Index>(),
        bit in 0usize..(8 * 512),
    ) {
        let mut dbms = setup();
        // An analyst edit, so the repair has history to replay.
        dbms.update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold)),
            &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(bump)))],
        )
        .expect("edit");
        // Damage one data page on disk.
        dbms.env().pool.flush_all().expect("flush");
        let pages = dbms.view("v").expect("view").store.data_page_ids();
        prop_assert!(!pages.is_empty());
        let pid = pages[page_pick.index(pages.len())];
        dbms.env().disk.corrupt_page(pid, bit).expect("corrupt");

        // Crash at an arbitrary operation inside the repair.
        let ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(FaultPlan {
            seed: crash_offset,
            crash_at_op: Some(ops + crash_offset),
            ..FaultPlan::none()
        });
        let outcome = dbms.repair_view("v");
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            prop_assert!(outcome.is_err(), "a crash must abort the repair");
            dbms.recover().expect("recover on healthy hardware");
            dbms.repair_view("v").expect("re-run the interrupted repair");
        } else {
            // The op budget outlived the repair: it must have succeeded.
            outcome.expect("repair without a crash");
        }
        prop_assert_eq!(dbms.health("v").expect("health"), ViewHealth::Healthy);
        assert_consistent(&mut dbms)?;
    }

    /// Repairing a healthy view is an observable no-op: no findings, no
    /// actions, no store or summary churn, cache counters untouched —
    /// and running it twice returns the identical (empty) report.
    #[test]
    fn repair_on_a_healthy_view_is_an_observable_noop(
        preludes in prop::collection::vec((20i64..55, 1i64..200), 0..3)
    ) {
        let mut dbms = setup();
        for (t, b) in preludes {
            dbms.update_where(
                "v",
                &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(t)),
                &[("INCOME", Expr::col("INCOME").binary(BinOp::Add, Expr::lit(b)))],
            )
            .expect("prelude update");
        }
        let stats_before = dbms.cache_stats("v").expect("stats");
        let report = dbms.repair_view("v").expect("repair healthy view");
        prop_assert!(report.findings.is_empty(), "{:?}", report);
        prop_assert!(report.actions.is_empty(), "{:?}", report);
        prop_assert!(!report.store_regenerated && !report.summary_reset);
        prop_assert_eq!(dbms.cache_stats("v").expect("stats"), stats_before);
        prop_assert_eq!(dbms.health("v").expect("health"), ViewHealth::Healthy);
        let again = dbms.repair_view("v").expect("repair twice");
        prop_assert_eq!(report, again);
        assert_consistent(&mut dbms)?;
    }
}
