//! Cross-crate integration: the complete paper-Figure-3 lifecycle from
//! raw tape to confirmatory analysis, exercising every layer together.

use sdbms::core::{
    AccuracyPolicy, CmpOp, Expr, MaintenancePolicy, Predicate, ScalarFunc, StatDbms, StatFunction,
    SummaryValue, ViewDefinition,
};
use sdbms::data::census::{microdata_census, region_codebook, CensusConfig};
use sdbms::data::{CodeBook, DataType};
use sdbms::stats::{crosstab::CrossTab, hypothesis};

fn setup(rows: usize) -> StatDbms {
    let mut dbms = StatDbms::new(1024);
    let raw = microdata_census(&CensusConfig {
        rows,
        invalid_fraction: 0.01,
        outlier_fraction: 0.01,
        ..Default::default()
    })
    .expect("generate");
    dbms.load_raw(&raw).expect("load");
    dbms.register_codebook(region_codebook(4));
    dbms.register_codebook(CodeBook::figure2_age_group());
    dbms.materialize(ViewDefinition::scan("survey", "census_microdata"), "alice")
        .expect("materialize");
    dbms
}

#[test]
fn exploratory_to_confirmatory_session() {
    let mut dbms = setup(4_000);

    // Exploration: sample, then check.
    let sample = dbms.sample("survey", 400, 3).expect("sample");
    assert_eq!(sample.len(), 400);
    let bad = dbms.suspicious_rows("survey", "AGE").expect("scan");
    assert!(!bad.is_empty(), "planted errors must surface");

    // Clean with a checkpoint.
    dbms.checkpoint("survey", "pre-clean").expect("checkpoint");
    let report = dbms
        .invalidate_where(
            "survey",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(110i64)),
            "AGE",
        )
        .expect("invalidate");
    assert_eq!(report.rows_matched, bad.len());

    // Derived columns with both rule kinds.
    dbms.add_derived_column(
        "survey",
        "LOG_INCOME",
        DataType::Float,
        Expr::col("INCOME").apply(ScalarFunc::Ln),
    )
    .expect("derived");
    dbms.add_residuals_column("survey", "RESID", "AGE", "INCOME")
        .expect("residuals");

    // Confirmatory: chi-squared on a crosstab of the live view.
    let view = dbms.dataset("survey").expect("dataset");
    let (ct, _) = CrossTab::from_dataset(&view, "SEX", "AGE_GROUP").expect("crosstab");
    let test = hypothesis::chi_squared_independence(&ct).expect("chi2");
    assert!(test.p_value >= 0.0 && test.p_value <= 1.0);

    // Cached summaries agree with direct computation on the final
    // state.
    let (mean_cached, _) = dbms
        .compute(
            "survey",
            "INCOME",
            &StatFunction::Mean,
            AccuracyPolicy::Exact,
        )
        .expect("compute");
    let (col, _) = view.column_f64("INCOME").expect("col");
    let mean_direct = sdbms::stats::descriptive::mean(&col).expect("mean");
    assert!(mean_cached.approx_eq(&SummaryValue::Scalar(mean_direct), 1e-9));

    // Publish; the colleague reads the cleaning log.
    dbms.publish("survey", "alice").expect("publish");
    let log = dbms.cleaning_log("survey", "bob").expect("log");
    assert!(!log.is_empty());
}

#[test]
fn cached_summaries_track_any_update_sequence() {
    // The central invariant: after an arbitrary sequence of predicate
    // updates under the incremental policy, every cached summary equals
    // a from-scratch recomputation.
    let mut dbms = setup(1_500);
    dbms.set_policy("survey", MaintenancePolicy::Incremental)
        .expect("policy");
    let functions = [
        StatFunction::Count,
        StatFunction::Sum,
        StatFunction::Mean,
        StatFunction::Variance,
        StatFunction::StdDev,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Median,
    ];
    for f in &functions {
        dbms.compute("survey", "INCOME", f, AccuracyPolicy::Exact)
            .expect("seed");
    }
    // A scripted but irregular update sequence: point updates, range
    // updates, invalidations, and restorations.
    let scripts: Vec<(Predicate, Expr)> = vec![
        (Predicate::col_eq("PERSON_ID", 3i64), Expr::lit(99_000.0)),
        (
            Predicate::cmp(Expr::col("PERSON_ID"), CmpOp::Lt, Expr::lit(10i64)),
            Expr::lit(12_000.0),
        ),
        (
            Predicate::col_eq("PERSON_ID", 700i64),
            Expr::Literal(sdbms::data::Value::Missing),
        ),
        (
            Predicate::cmp(Expr::col("AGE"), CmpOp::Ge, Expr::lit(95i64)),
            Expr::lit(4_321.5),
        ),
        (Predicate::col_eq("PERSON_ID", 700i64), Expr::lit(31_415.9)),
        (
            Predicate::cmp(Expr::col("INCOME"), CmpOp::Gt, Expr::lit(95_000.0)),
            Expr::col("INCOME").binary(sdbms::core::BinOp::Div, Expr::lit(2.0)),
        ),
    ];
    for (pred, expr) in scripts {
        dbms.update_where("survey", &pred, &[("INCOME", expr)])
            .expect("update");
        // Check every function after every batch.
        let ds = dbms.dataset("survey").expect("dataset");
        let vals: Vec<sdbms::data::Value> = ds.column("INCOME").expect("col").cloned().collect();
        for f in &functions {
            let (cached, _) = dbms
                .compute("survey", "INCOME", f, AccuracyPolicy::Exact)
                .expect("compute");
            let direct = f.compute(&vals).expect("direct");
            assert!(
                cached.approx_eq(&direct, 1e-6),
                "{f}: cached {cached:?} != direct {direct:?}"
            );
        }
    }
}

#[test]
fn rollback_restores_both_data_and_summaries() {
    let mut dbms = setup(800);
    let functions = [StatFunction::Mean, StatFunction::Median, StatFunction::Max];
    let mut before = Vec::new();
    for f in &functions {
        let (v, _) = dbms
            .compute("survey", "HOURS_WORKED", f, AccuracyPolicy::Exact)
            .expect("compute");
        before.push(v);
    }
    let cp = dbms.checkpoint("survey", "t0").expect("checkpoint");
    // Heavy edits.
    dbms.update_where(
        "survey",
        &Predicate::cmp(Expr::col("HOURS_WORKED"), CmpOp::Gt, Expr::lit(20i64)),
        &[("HOURS_WORKED", Expr::lit(0i64))],
    )
    .expect("update");
    dbms.rollback_to("survey", cp).expect("rollback");
    for (f, b) in functions.iter().zip(&before) {
        let (v, _) = dbms
            .compute("survey", "HOURS_WORKED", f, AccuracyPolicy::Exact)
            .expect("compute");
        assert!(v.approx_eq(b, 1e-9), "{f}: {v:?} != {b:?}");
    }
}

#[test]
fn two_layouts_agree_on_everything() {
    // The same view materialized in both layouts must answer every
    // query identically.
    let mut dbms = setup(600);
    dbms.materialize_with(
        ViewDefinition::scan("survey_row", "census_microdata"),
        "bob",
        sdbms::core::Layout::Row,
    )
    .expect("materialize row");
    let a = dbms.dataset("survey").expect("a");
    let b = dbms.dataset("survey_row").expect("b");
    assert_eq!(a.rows(), b.rows());
    for attr in ["AGE", "INCOME", "SEX", "REGION"] {
        let ca = dbms.column("survey", attr).expect("col");
        let cb = dbms.column("survey_row", attr).expect("col");
        assert_eq!(ca, cb, "column {attr}");
    }
    for f in [StatFunction::Mean, StatFunction::Median] {
        let (va, _) = dbms
            .compute("survey", "INCOME", &f, AccuracyPolicy::Exact)
            .expect("compute");
        let (vb, _) = dbms
            .compute("survey_row", "INCOME", &f, AccuracyPolicy::Exact)
            .expect("compute");
        assert!(va.approx_eq(&vb, 1e-12), "{f}");
    }
}

#[test]
fn view_pipeline_through_all_operators() {
    let mut dbms = setup(2_000);
    // select + join + extend + project + sort in one lineage.
    let def = ViewDefinition::scan("pipeline", "census_microdata")
        .select(Predicate::cmp(
            Expr::col("AGE"),
            CmpOp::Le,
            Expr::lit(110i64),
        ))
        .join("REGION_codes", "REGION", "CATEGORY")
        .extend(
            "INCOME_K",
            DataType::Float,
            Expr::col("INCOME").binary(sdbms::core::BinOp::Div, Expr::lit(1000.0)),
        )
        .project(&["VALUE", "AGE", "INCOME_K"])
        .with_step(sdbms::core::ViewStep::Sort(vec!["AGE".to_string()]));
    dbms.materialize(def, "alice").expect("materialize");
    let out = dbms.dataset("pipeline").expect("out");
    assert_eq!(out.schema().names(), vec!["VALUE", "AGE", "INCOME_K"]);
    assert!(!out.is_empty());
    // Sorted ascending by AGE.
    let (ages, _) = out.column_f64("AGE").expect("ages");
    assert!(ages.windows(2).all(|w| w[0] <= w[1]));
    // Region labels decoded.
    assert!(out
        .value(0, "VALUE")
        .expect("val")
        .as_str()
        .expect("str")
        .starts_with("Region "));
    // The catalog remembers the lineage verbatim.
    let lineage = dbms
        .catalog()
        .view("pipeline")
        .expect("record")
        .definition
        .to_string();
    assert!(lineage.contains("JOIN REGION_codes"));
    assert!(lineage.contains("SORT"));
}

#[test]
fn io_accounting_spans_the_whole_system() {
    let mut dbms = setup(2_000);
    let io0 = dbms.io();
    assert!(io0.archive_block_reads > 0, "materialization read the tape");
    dbms.compute(
        "survey",
        "INCOME",
        &StatFunction::Mean,
        AccuracyPolicy::Exact,
    )
    .expect("compute");
    let io1 = dbms.io();
    assert!(
        io1.page_reads + io1.pool_hits > io0.page_reads + io0.pool_hits,
        "the column scan touched view pages"
    );
    // Buffered reads are free in the cost model, so the cost is
    // monotone but may not strictly grow for a fully-buffered scan.
    let model = sdbms::storage::CostModel::default();
    assert!(model.cost(&io1) >= model.cost(&io0));
    assert!(model.cost(&io0) > 0.0, "tape materialization has a cost");
}
