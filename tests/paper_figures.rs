//! Verification that every figure of the paper is reproduced exactly
//! as a runnable artifact (experiments F1–F5 in DESIGN.md).

use sdbms::core::{paper_demo_dbms, AccuracyPolicy, StatFunction, ViewDefinition};
use sdbms::data::census::figure1;
use sdbms::data::{CodeBook, Value};
use sdbms::management::{differentiate, AggExpr};
use sdbms::relational::ops;

#[test]
fn figure1_every_cell() {
    // The paper's Figure 1, row for row and cell for cell.
    let expect: Vec<(&str, &str, u32, i64, i64)> = vec![
        ("M", "W", 1, 12_300_347, 33_122),
        ("M", "W", 2, 21_342_193, 25_883),
        ("M", "W", 3, 18_989_987, 42_919),
        ("M", "W", 4, 9_342_193, 15_110),
        ("F", "W", 1, 15_821_497, 31_762),
        ("F", "W", 2, 33_422_988, 29_933),
        ("F", "W", 3, 29_734_121, 28_218),
        ("F", "W", 4, 20_812_211, 17_498),
        ("M", "B", 1, 2_143_924, 29_402),
    ];
    let ds = figure1();
    assert_eq!(ds.len(), expect.len());
    for (i, (sex, race, age, pop, sal)) in expect.into_iter().enumerate() {
        assert_eq!(ds.rows()[i][0], Value::Str(sex.into()), "row {i} SEX");
        assert_eq!(ds.rows()[i][1], Value::Str(race.into()), "row {i} RACE");
        assert_eq!(ds.rows()[i][2], Value::Code(age), "row {i} AGE_GROUP");
        assert_eq!(ds.rows()[i][3], Value::Int(pop), "row {i} POPULATION");
        assert_eq!(ds.rows()[i][4], Value::Int(sal), "row {i} AVE_SALARY");
    }
}

#[test]
fn figure2_every_entry_and_join_decode() {
    let cb = CodeBook::figure2_age_group();
    assert_eq!(
        cb.entries().collect::<Vec<_>>(),
        vec![
            (1, "0 to 20"),
            (2, "21 to 40"),
            (3, "41 to 60"),
            (4, "over 60")
        ]
    );
    // "Simply being able to join the table in Figure 2 with the table
    // in Figure 1 to decode AGE_GROUP values" (§2.4).
    let joined =
        ops::hash_join(&figure1(), &cb.to_dataset(), "AGE_GROUP", "CATEGORY").expect("join");
    assert_eq!(joined.len(), 9);
    let labels: Vec<String> = joined
        .column("VALUE")
        .expect("col")
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        labels,
        vec![
            "0 to 20", "21 to 40", "41 to 60", "over 60", "0 to 20", "21 to 40", "41 to 60",
            "over 60", "0 to 20"
        ]
    );
}

#[test]
fn figure3_architecture_components_exist_and_connect() {
    // Raw DB on tape; concrete view on disk; Summary DB per view;
    // Management DB shared — all reachable through one façade.
    let mut dbms = paper_demo_dbms(128).expect("demo");
    assert_eq!(dbms.raw().dataset_names(), vec!["figure1"]);
    dbms.materialize(ViewDefinition::scan("v", "figure1"), "analyst")
        .expect("materialize");
    assert_eq!(dbms.view("v").expect("view").summary.len(), 0);
    assert_eq!(dbms.catalog().names(), vec!["v"]);
    assert!(dbms.metadata().node("figure1").is_ok());
    assert!(dbms.metadata().node("figure1.AVE_SALARY").is_ok());
}

#[test]
fn figure4_contents_after_the_papers_queries() {
    let mut dbms = paper_demo_dbms(128).expect("demo");
    dbms.materialize(ViewDefinition::scan("v", "figure1"), "analyst")
        .expect("materialize");
    let queries = [
        ("POPULATION", StatFunction::Min, 2_143_924.0),
        ("POPULATION", StatFunction::Max, 33_422_988.0),
    ];
    for (attr, f, expect) in queries {
        let (v, _) = dbms
            .compute("v", attr, &f, AccuracyPolicy::Exact)
            .expect("compute");
        assert_eq!(v.as_scalar(), Some(expect), "{}({attr})", f.name());
    }
    // Median: the paper prints 29,933 in Figure 4 but the median of
    // Figure 1's AVE_SALARY column is 29,402 — we assert the *correct*
    // value and document the discrepancy in EXPERIMENTS.md.
    let (median, _) = dbms
        .compute(
            "v",
            "AVE_SALARY",
            &StatFunction::Median,
            AccuracyPolicy::Exact,
        )
        .expect("compute");
    assert_eq!(median.as_scalar(), Some(29_402.0));
    // Three entries, rendered like the paper's table.
    let rendered = dbms
        .view("v")
        .expect("view")
        .summary
        .render_figure4()
        .expect("render");
    assert_eq!(rendered.lines().count(), 4, "header + 3 entries");
}

#[test]
fn figure5_differenced_program_equals_loop() {
    // The Figure 5 pseudocode: result[i] := f(x1, x2 := g(i), ..., xn).
    let n = 2_000usize;
    let mut data: Vec<f64> = (0..n).map(|i| (i % 97) as f64).collect();
    let g = |i: usize| (i * 3 % 113) as f64;

    // Naive loop.
    let mut naive = Vec::new();
    for i in 0..50 {
        data[1] = g(i);
        naive.push(sdbms::stats::descriptive::mean(&data).expect("mean"));
    }

    // Differenced loop.
    let mut program = differentiate(&AggExpr::mean()).expect("differentiable");
    data[1] = 0.0;
    program.initialize(&data);
    let mut prev = 0.0;
    let mut diffed = Vec::new();
    for i in 0..50 {
        let next = g(i);
        program.replace(prev, next);
        prev = next;
        diffed.push(program.evaluate().expect("eval"));
    }
    for (a, b) in naive.iter().zip(&diffed) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }
}
