//! Chaos harness: many seeded fault schedules against the full DBMS.
//!
//! Each schedule drives the same analysis workload (warm summaries,
//! predicate updates, cached reads) under a deterministic fault plan —
//! transient I/O failures, silent bit corruption, permanent block
//! loss, and a mid-workload crash on half the schedules. The invariant
//! checked at the end of every schedule is the one that matters for a
//! statistical database: **the Summary Database never serves a value
//! that differs from a from-scratch recompute of the view** — damaged
//! entries may cost an error or a recompute, but never a silently
//! wrong answer.

use sdbms::core::{
    AccuracyPolicy, BinOp, CmpOp, ComputeSource, Expr, Predicate, Snapshot, StatDbms, StatFunction,
    ViewHealth,
};
use sdbms::exec::ExecConfig;
use sdbms::storage::{DeviceFaults, FaultPlan, StorageEnv};
use sdbms_testkit::{
    checked_functions, seeded_income_update, splitmix, unit, CensusFixture, CENSUS_ATTRS,
};

/// Fault schedules to run (the acceptance bar is 100). PR runs use the
/// default; the nightly CI chaos job raises it through the
/// `SDBMS_CHAOS_SCHEDULES` environment knob.
fn schedules() -> u64 {
    std::env::var("SDBMS_CHAOS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

/// Updates driven through each schedule.
const STEPS: u64 = 6;

/// The deterministic fault plan for one schedule. `base_ops` is the
/// injector's current operation count, so crashes land inside the
/// chaos phase rather than before it.
fn plan_for(seed: u64, base_ops: u64) -> FaultPlan {
    let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
    let crash = splitmix(&mut s).is_multiple_of(2);
    FaultPlan {
        seed,
        disk: DeviceFaults {
            transient_read: 0.02 + unit(&mut s) * 0.05,
            transient_write: 0.02 + unit(&mut s) * 0.05,
            corrupt_write: unit(&mut s) * 0.01,
            permanent_read: unit(&mut s) * 0.002,
            ..DeviceFaults::default()
        },
        archive: DeviceFaults {
            transient_read: 0.02 + unit(&mut s) * 0.03,
            ..DeviceFaults::default()
        },
        crash_at_op: crash.then(|| base_ops + 20 + splitmix(&mut s) % 400),
    }
}

const ATTRS: [&str; 2] = CENSUS_ATTRS;

/// A DBMS with a clean 160-row census view, crash-consistent
/// durability, and warmed summaries. Built fault-free — the testkit's
/// default fixture, which was extracted from this harness.
fn setup() -> StatDbms {
    CensusFixture::new()
        .owner("chaos")
        .build()
        .expect("fixture")
}

/// Bring a crashed DBMS back up; if recovery itself keeps faulting,
/// repair the machine (clear the plan) and recover on healthy
/// hardware, which must succeed.
fn recover_until_up(dbms: &mut StatDbms) -> u64 {
    let mut rebuilt = 0;
    for _ in 0..4 {
        match dbms.recover() {
            Ok(r) => return rebuilt + r.caches_rebuilt as u64,
            Err(_) => rebuilt = 0,
        }
    }
    dbms.env().injector.set_plan(FaultPlan::none());
    let r = dbms.recover().expect("recovery on healthy hardware");
    r.caches_rebuilt as u64
}

#[test]
fn hundred_plus_seeded_fault_schedules_never_serve_wrong_summaries() {
    let schedules = schedules();
    let mut total_transient = 0u64;
    let mut total_retries = 0u64;
    let mut total_corrupt = 0u64;
    let mut crashes_recovered = 0u64;
    let mut total_quarantined = 0u64;
    let mut comparisons = 0u64;

    for seed in 0..schedules {
        let mut dbms = setup();
        let base_ops = dbms.env().injector.ops();
        dbms.env().injector.set_plan(plan_for(seed, base_ops));

        // Chaos phase: updates and cached reads under fire. Errors are
        // tolerated (a fault may legitimately abort an operation); a
        // crash is recovered and the workload continues.
        let mut s = seed ^ 0xC0FF_EE00;
        for _ in 0..STEPS {
            let edit = seeded_income_update(&mut s);
            let outcome = edit.apply(&mut dbms, "v");
            if outcome.is_err() && dbms.is_crashed() {
                crashes_recovered += 1;
                recover_until_up(&mut dbms);
            }
            let attr = ATTRS[(splitmix(&mut s) % 2) as usize];
            let funcs = checked_functions();
            let f = &funcs[(splitmix(&mut s) as usize) % funcs.len()];
            if dbms.compute("v", attr, f, AccuracyPolicy::Exact).is_err() && dbms.is_crashed() {
                crashes_recovered += 1;
                recover_until_up(&mut dbms);
            }
        }

        let stats = dbms.env().injector.stats();
        total_transient += stats.transient;
        total_corrupt += stats.corrupt;
        total_retries += dbms.io().retries;

        // Verification phase on healthy hardware (damage already done
        // — dead blocks and corrupted pages persist): every summary the
        // cache serves must match a from-scratch recompute of the view.
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            recover_until_up(&mut dbms);
        }
        for a in ATTRS {
            // If the view column itself was destroyed there is no
            // ground truth to compare against (compute() then answers
            // from the raw archive or errors — either is acceptable).
            let Ok(col) = dbms.column("v", a) else {
                continue;
            };
            for f in checked_functions() {
                let Ok((served, _)) = dbms.compute("v", a, &f, AccuracyPolicy::Exact) else {
                    continue;
                };
                let fresh = f.compute(&col).expect("recompute");
                comparisons += 1;
                assert!(
                    served.approx_eq(&fresh, 1e-9),
                    "schedule {seed}: {f:?}({a}) served {served} but a \
                     from-scratch recompute gives {fresh}"
                );
            }
        }
        total_quarantined += dbms.cache_stats("v").expect("stats").quarantined;
    }

    // The harness must have actually exercised the machinery: faults
    // fired, retries absorbed transients, crashes were recovered, and
    // the vast majority of summaries stayed comparable.
    assert!(
        total_transient > 100,
        "transient faults fired: {total_transient}"
    );
    assert!(
        total_retries > 100,
        "retries absorbed transients: {total_retries}"
    );
    assert!(total_corrupt > 0, "corrupt writes fired: {total_corrupt}");
    assert!(
        crashes_recovered >= schedules / 4,
        "crashes recovered: {crashes_recovered}"
    );
    assert!(
        comparisons > schedules * 8,
        "most schedules stayed verifiable: {comparisons} comparisons"
    );
    // Quarantines are opportunistic (they need a corrupt page to be
    // re-read through the cache path), so only report-level coverage is
    // asserted across the whole run.
    let _ = total_quarantined;
}

/// The same chaos invariant, driven through the morsel-parallel scan
/// path: 4 scan workers over a 5-morsel partition, under seeded
/// transient / corrupt / permanent-fault schedules (half of them with a
/// mid-workload crash). Checked here:
///
/// - faults never *poison* a merged result — anything the cache serves
///   after the storm matches a from-scratch recompute;
/// - permanent faults and crashes surface as clean errors, and
/// - worker pools under fire never deadlock — the whole run is under a
///   hard test-level timeout.
#[test]
fn parallel_scans_under_faults_never_poison_and_never_hang() {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        parallel_chaos_run();
        tx.send(()).ok();
    });
    match rx.recv_timeout(std::time::Duration::from_secs(240)) {
        Ok(()) => worker.join().expect("chaos run panicked"),
        Err(_) => panic!(
            "parallel chaos run still not finished after 240s — \
             a worker pool is deadlocked or livelocked"
        ),
    }
}

fn parallel_chaos_run() {
    let par_schedules = (schedules() / 3).max(8);
    let mut comparisons = 0u64;
    let mut clean_errors = 0u64;
    let mut crashes_recovered = 0u64;

    for seed in 0..par_schedules {
        let mut dbms = setup();
        // 160 rows at 32-row morsels: five morsels contended by four
        // workers, so merges genuinely cross threads.
        dbms.set_exec_config(ExecConfig {
            workers: 4,
            morsel_rows: 32,
        });
        let base_ops = dbms.env().injector.ops();
        dbms.env()
            .injector
            .set_plan(plan_for(seed.wrapping_add(7_000), base_ops));

        let mut s = seed ^ 0xFEED_FACE;
        for _ in 0..STEPS {
            let edit = seeded_income_update(&mut s);
            let outcome = edit.apply(&mut dbms, "v");
            if outcome.is_err() {
                clean_errors += 1;
                if dbms.is_crashed() {
                    crashes_recovered += 1;
                    recover_until_up(&mut dbms);
                }
            }
            let attr = ATTRS[(splitmix(&mut s) % 2) as usize];
            let funcs = checked_functions();
            let f = &funcs[(splitmix(&mut s) as usize) % funcs.len()];
            if dbms.compute("v", attr, f, AccuracyPolicy::Exact).is_err() {
                clean_errors += 1;
                if dbms.is_crashed() {
                    crashes_recovered += 1;
                    recover_until_up(&mut dbms);
                }
            }
        }

        // Verification on healthy hardware: whatever the parallel scans
        // cached under fire must match a from-scratch recompute.
        dbms.env().injector.set_plan(FaultPlan::none());
        if dbms.is_crashed() {
            recover_until_up(&mut dbms);
        }
        for a in ATTRS {
            let Ok(col) = dbms.column("v", a) else {
                continue;
            };
            for f in checked_functions() {
                let Ok((served, _)) = dbms.compute("v", a, &f, AccuracyPolicy::Exact) else {
                    continue;
                };
                let fresh = f.compute(&col).expect("recompute");
                comparisons += 1;
                assert!(
                    served.approx_eq(&fresh, 1e-9),
                    "parallel schedule {seed}: {f:?}({a}) served {served} but a \
                     from-scratch recompute gives {fresh}"
                );
            }
        }
    }

    // The storm must have actually hit the parallel path: operations
    // failed cleanly, crashes were recovered, and most schedules stayed
    // verifiable end-to-end.
    assert!(
        clean_errors > 0,
        "faults surfaced as clean errors: {clean_errors}"
    );
    assert!(
        crashes_recovered > 0,
        "some schedules crashed mid-scan and recovered: {crashes_recovered}"
    );
    assert!(
        comparisons > par_schedules * 6,
        "most schedules stayed verifiable: {comparisons} comparisons"
    );
}

/// Seeded bit-flip schedules against **data pages**: the scrubber must
/// detect the damage and mark the view `Degraded`; degraded reads must
/// come from the raw archive as uncached `Fallback` results that still
/// reflect the analyst's recorded edits; and `repair_view` must restore
/// the view **byte-for-byte** — encoded segments, zone maps, and
/// recomputed summary entries all identical to a reference DBMS that
/// ran the same workload and was never damaged (the "fresh archive
/// rebuild + history replay" oracle).
#[test]
fn seeded_data_page_bit_flips_are_scrubbed_and_self_healed() {
    let n = (schedules() / 8).max(6);
    for seed in 0..n {
        // Primary and reference run an identical deterministic edit
        // workload; only the primary gets damaged.
        let mut primary = setup();
        let mut reference = setup();
        let mut s = seed ^ 0xAB5E_11ED;
        for _ in 0..3 {
            let edit = seeded_income_update(&mut s);
            for dbms in [&mut primary, &mut reference] {
                edit.apply(dbms, "v").expect("edit workload");
            }
        }

        // Flip bits in one to three data pages on disk.
        primary.env().pool.flush_all().expect("flush");
        let pages = primary.view("v").expect("view").store.data_page_ids();
        assert!(!pages.is_empty(), "view data occupies pages");
        let mut st = seed ^ 0x0DD_B17;
        for _ in 0..=(splitmix(&mut st) % 3) {
            let pid = pages[(splitmix(&mut st) as usize) % pages.len()];
            let bit = (splitmix(&mut st) % (8 * 512)) as usize;
            primary
                .env()
                .disk
                .corrupt_page(pid, bit)
                .expect("corrupt data page");
        }

        // Detect: a budgeted scrub finds the damage and degrades the view.
        let scrubbed = primary.scrub(100_000).expect("scrub");
        assert!(
            scrubbed.findings.iter().any(|f| f.view == "v"),
            "schedule {seed}: scrub missed the bit flips: {scrubbed:?}"
        );
        assert_eq!(primary.health("v").expect("health"), ViewHealth::Degraded);

        // Degraded reads: served from the raw archive with the recorded
        // cell edits replayed, marked Fallback, and never cached.
        let stats_before = primary.cache_stats("v").expect("stats");
        let (served, source) = primary
            .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
            .expect("degraded read");
        assert_eq!(source, ComputeSource::Fallback);
        assert_eq!(
            primary.cache_stats("v").expect("stats"),
            stats_before,
            "schedule {seed}: a Fallback result touched the summary cache"
        );
        let ref_col = reference.column("v", "INCOME").expect("reference column");
        let want = StatFunction::Mean.compute(&ref_col).expect("mean");
        assert!(
            served.approx_eq(&want, 1e-9),
            "schedule {seed}: degraded read {served} != reference {want}"
        );

        // Repair: regenerate from the archive, replay the update
        // history, verify, readmit.
        let repaired = primary.repair_view("v").expect("repair");
        assert!(repaired.store_regenerated, "{repaired:?}");
        assert!(
            repaired.history_replayed > 0,
            "schedule {seed}: the edit workload must replay: {repaired:?}"
        );
        assert_eq!(primary.health("v").expect("health"), ViewHealth::Healthy);

        // Differential check: the repaired store is byte-identical to
        // the never-damaged reference — encoded segments and zone maps.
        let pv = primary.view("v").expect("view");
        let rv = reference.view("v").expect("view");
        let rows = rv.store.len();
        assert_eq!(pv.store.len(), rows);
        let attrs: Vec<String> = rv
            .store
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        for a in &attrs {
            assert_eq!(pv.store.segment_count(a), rv.store.segment_count(a));
            for si in 0..rv.store.segment_count(a) {
                assert_eq!(
                    pv.store.encoded_segment(a, si).expect("repaired segment"),
                    rv.store.encoded_segment(a, si).expect("reference segment"),
                    "schedule {seed}: segment {si} of {a} differs after repair"
                );
            }
            assert_eq!(
                pv.store.range_stats(a, 0, rows),
                rv.store.range_stats(a, 0, rows),
                "schedule {seed}: zone maps of {a} differ after repair"
            );
        }

        // And the summary layer re-converges: every cached function the
        // reference serves, the repaired primary serves with an equal
        // value — cacheable again now that the view is healthy.
        for a in ATTRS {
            for f in checked_functions() {
                let (pval, psrc) = primary
                    .compute("v", a, &f, AccuracyPolicy::Exact)
                    .expect("repaired compute");
                let (rval, _) = reference
                    .compute("v", a, &f, AccuracyPolicy::Exact)
                    .expect("reference compute");
                assert_ne!(psrc, ComputeSource::Fallback, "view is healthy again");
                assert!(
                    pval.approx_eq(&rval, 1e-9),
                    "schedule {seed}: {f:?}({a}) repaired {pval} != reference {rval}"
                );
            }
        }
        let (_, src) = primary
            .compute("v", "AGE", &StatFunction::Mean, AccuracyPolicy::Exact)
            .expect("cached compute");
        assert_eq!(
            src,
            ComputeSource::Cache,
            "results cache again after repair"
        );

        // Idempotence: repairing the now-healthy view is a no-op.
        let again = primary.repair_view("v").expect("idempotent repair");
        assert!(again.findings.is_empty() && !again.store_regenerated);
    }
}

/// The scrubber is cooperative: a tiny budget pauses the walk with a
/// persisted cursor, and repeated passes — including one interrupted by
/// a restart — finish the cycle without skipping or re-reporting work.
#[test]
fn scrub_budget_pauses_and_cursor_survives_restart() {
    let mut dbms = setup();
    let mut passes = 0u32;
    loop {
        let report = dbms.scrub(3).expect("scrub pass");
        passes += 1;
        assert!(report.findings.is_empty(), "healthy view: {report:?}");
        if report.completed_cycle {
            break;
        }
        assert!(report.exhausted_budget, "paused passes report exhaustion");
        if passes == 2 {
            // Restart mid-cycle: the persisted cursor must survive (the
            // buffer pool's cached frames do not).
            dbms.recover().expect("restart");
        }
        assert!(passes < 10_000, "scrub cycle never completed");
    }
    assert!(passes > 1, "a 3-item budget must pause at least once");
    assert_eq!(dbms.health("v").expect("health"), ViewHealth::Healthy);
}

/// Seeded bit-flip schedules against zone-map pages only: a torn or
/// corrupted zone map must degrade the scan to an unpruned one — same
/// rows, more decoding — never to a wrong answer. Page checksums turn
/// any damage into a clean read failure, and the pruning layer treats a
/// failed zone-map load as "no statistics, scan everything".
#[test]
fn corrupted_zone_map_pages_degrade_to_unpruned_scans_never_wrong() {
    use sdbms::columnar::{Compression, TransposedFile};
    use sdbms::data::dataset::DataSet;
    use sdbms::data::schema::{Attribute, Schema};
    use sdbms::data::{DataType, Value};
    use sdbms::relational::filter_table_rows;

    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("X", DataType::Int),
    ])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..2000i64)
        .map(|i| {
            let x = if i % 13 == 5 {
                Value::Missing
            } else {
                Value::Int((i * 17) % 301 - 150)
            };
            vec![Value::Int(i / 50), x]
        })
        .collect();
    let ds = DataSet::from_rows("zones", schema.clone(), rows).expect("dataset");
    let env = StorageEnv::new(512);
    let mut store = TransposedFile::create_with(
        env.pool.clone(),
        schema,
        &[Compression::Rle, Compression::None],
    )
    .expect("create");
    store.bulk_append(&ds).expect("load");

    let preds = [
        Predicate::col_eq("BLOCK", 7i64),
        Predicate::col_eq("BLOCK", -1i64),
        Predicate::cmp(Expr::col("X"), CmpOp::Gt, Expr::lit(120i64)),
        Predicate::IsMissing("X".into()),
    ];
    // Ground truth from the in-memory rows — independent of the storage
    // and pruning layers — confirmed once against the healthy store.
    let truth: Vec<Vec<usize>> = preds
        .iter()
        .map(|p| {
            let bound = p.bind(ds.schema()).expect("bind");
            ds.rows()
                .iter()
                .enumerate()
                .filter_map(|(i, r)| bound.eval(r).then_some(i))
                .collect()
        })
        .collect();
    let cfg = ExecConfig {
        workers: 4,
        morsel_rows: 128,
    };
    for (p, want) in preds.iter().zip(&truth) {
        assert_eq!(
            &filter_table_rows(&store, p, &cfg).expect("clean scan"),
            want
        );
    }

    let zone_pages = store.zone_page_ids();
    assert!(!zone_pages.is_empty(), "zone maps occupy pages");
    // Flush so the disk holds every zone image, then damage it there;
    // discarding pool frames forces the next reads onto the damaged
    // bytes instead of clean cached frames.
    env.pool.flush_all().expect("flush");

    // Progressive seeded schedule: each round flips another bit in a
    // zone-map page (eventually every map is dead and the scan is fully
    // unpruned). After every hit the scan must return exactly the truth
    // at 1 and 4 workers.
    let mut state = 0xD15E_A5ED_u64;
    for round in 0..zone_pages.len() {
        let pid = zone_pages[(splitmix(&mut state) as usize) % zone_pages.len()];
        let bit = (splitmix(&mut state) % (8 * 64)) as usize;
        env.disk.corrupt_page(pid, bit).expect("corrupt zone page");
        env.pool.discard_frames().expect("drop cached frames");
        for (p, want) in preds.iter().zip(&truth) {
            for workers in [1usize, 4] {
                let got = filter_table_rows(
                    &store,
                    p,
                    &ExecConfig {
                        workers,
                        morsel_rows: 128,
                    },
                )
                .expect("scan survives zone damage");
                assert_eq!(
                    &got, want,
                    "round {round}: damaged zone map changed the answer"
                );
            }
        }
    }
}

/// A small transposed store for the mmap chaos schedules, built on its
/// own fault-free environment so each schedule controls its own damage.
fn mmap_chaos_store() -> (StorageEnv, sdbms::columnar::TransposedFile) {
    use sdbms::columnar::{Compression, TransposedFile};
    use sdbms::data::dataset::DataSet;
    use sdbms::data::schema::{Attribute, Schema};
    use sdbms::data::{DataType, Value};

    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("X", DataType::Int),
    ])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..1200i64)
        .map(|i| {
            let x = if i % 13 == 5 {
                Value::Missing
            } else {
                Value::Int((i * 17) % 301 - 150)
            };
            vec![Value::Int(i / 50), x]
        })
        .collect();
    let ds = DataSet::from_rows("mmapchaos", schema.clone(), rows).expect("dataset");
    let env = StorageEnv::new(512);
    let mut store = TransposedFile::create_with(
        env.pool.clone(),
        schema,
        &[Compression::Rle, Compression::None],
    )
    .expect("create");
    store.bulk_append(&ds).expect("load");
    (env, store)
}

/// Seeded schedules against the zero-copy seal: flipping bits in a data
/// page makes `seal_for_scan` fail with a **clean CRC error at map
/// time** — the store stays unsealed and keeps serving through the
/// buffer-pool path, where the same checksum turns the damage into a
/// clean read error, never torn data.
#[test]
fn corrupt_pages_fail_the_mmap_seal_cleanly_and_pool_path_still_serves() {
    use sdbms::columnar::TableStore;

    let n = (schedules() / 10).max(8);
    for seed in 0..n {
        let (env, mut store) = mmap_chaos_store();
        let want_x = store
            .read_column_range("X", 0, store.len())
            .expect("baseline");
        let want_block = store
            .read_column_range("BLOCK", 0, store.len())
            .expect("baseline");

        // Put the images on disk, then flip a bit in one data page and
        // drop the clean pool frames so every path sees the damage.
        env.pool.flush_all().expect("flush");
        let pages = store.data_page_ids();
        assert!(!pages.is_empty());
        let mut s = seed ^ 0x3AD_5EA1;
        let pid = pages[(splitmix(&mut s) as usize) % pages.len()];
        let bit = (splitmix(&mut s) % (8 * 256)) as usize;
        env.disk.corrupt_page(pid, bit).expect("corrupt data page");
        env.pool.discard_frames().expect("drop frames");

        // The seal walks every page through the CRC check and must
        // refuse — no partially-mapped image may ever be installed.
        assert!(
            store.seal_for_scan().is_err(),
            "schedule {seed}: seal accepted a corrupt page"
        );
        assert!(
            !store.scan_sealed(),
            "schedule {seed}: failed seal left the store sealed"
        );

        // The pool path still answers: either a clean checksum error or
        // exactly the original bytes (when the read misses the damaged
        // page) — never silently different data.
        for (attr, want) in [("X", &want_x), ("BLOCK", &want_block)] {
            // A clean error is the other acceptable outcome.
            if let Ok(got) = store.read_column_range(attr, 0, store.len()) {
                assert_eq!(
                    &got, want,
                    "schedule {seed}: {attr} silently changed after corruption"
                );
            }
        }
    }
}

/// Once sealed on healthy hardware, zero-copy scans perform **no disk
/// operations at all** — so fault schedules are excluded from the mmap
/// read path by construction: under a brutal transient/corrupt/
/// permanent-fault plan, sealed batch reads return bit-identical data
/// and the injector's operation counter never moves.
#[test]
fn sealed_mmap_scans_are_excluded_from_fault_schedules_by_construction() {
    use sdbms::columnar::TableStore;

    let n = (schedules() / 10).max(8);
    for seed in 0..n {
        let (env, mut store) = mmap_chaos_store();
        let want_x = store
            .read_column_range("X", 0, store.len())
            .expect("baseline");
        let want_block = store
            .read_column_range("BLOCK", 0, store.len())
            .expect("baseline");
        assert!(store.seal_for_scan().expect("seal"), "clean store seals");

        // A plan that would wreck any I/O-bound scan.
        env.injector.set_plan(FaultPlan {
            seed,
            disk: DeviceFaults {
                transient_read: 0.9,
                transient_write: 0.9,
                corrupt_write: 0.5,
                permanent_read: 0.5,
                ..DeviceFaults::default()
            },
            ..FaultPlan::none()
        });
        let ops_before = env.injector.ops();
        for (attr, want) in [("X", &want_x), ("BLOCK", &want_block)] {
            let batch = store
                .read_column_batch(attr, 0, store.len())
                .expect("sealed scan never touches the disk");
            assert_eq!(
                &batch.to_values(),
                want,
                "schedule {seed}: sealed {attr} scan diverged under faults"
            );
        }
        assert_eq!(
            env.injector.ops(),
            ops_before,
            "schedule {seed}: a sealed scan performed disk operations"
        );
        env.injector.set_plan(FaultPlan::none());
    }
}

/// Seeded slow-device schedules against the engine-level budget seam:
/// every read succeeds but stalls, charging simulated time units
/// against the ambient [`sdbms::storage::BudgetScope`]. A budget
/// smaller than the scan's slow cost must trip the **typed**
/// [`sdbms::core::CoreError::DeadlineExceeded`] — never a partial
/// column and never damage: health stays `Healthy`, and an unbounded
/// read through the same slow disk returns bit-identical bytes.
#[test]
fn slow_fault_schedules_trip_deadlines_but_never_change_served_bytes() {
    use sdbms::core::CoreError;
    use sdbms::storage::{BudgetScope, CancelToken};

    let n = (schedules() / 10).max(8);
    for seed in 0..n {
        // 1200 rows = five 256-row segments per column, so a cold scan
        // needs five device reads and a mid-scan trip is reachable
        // (budgets are check-then-consume: a single admitted read may
        // overshoot, but the next read's charge finds the debt).
        let mut dbms = CensusFixture::new()
            .rows(1200)
            .owner("chaos")
            .build()
            .expect("fixture");
        let want = dbms.column("v", "INCOME").expect("baseline column");

        // Cold pool, then a plan where every read stalls for
        // `units` simulated time units but still returns good bytes.
        dbms.env().pool.flush_all().expect("flush");
        dbms.env().pool.discard_frames().expect("discard");
        let units = 25 + seed % 50;
        dbms.env().injector.set_plan(FaultPlan {
            seed,
            disk: DeviceFaults {
                slow_read: 1.0,
                slow_read_units: units,
                ..DeviceFaults::default()
            },
            ..FaultPlan::none()
        });

        // A budget of exactly `units`: the first slow read is admitted
        // and overdraws it, the second read's charge trips — typed.
        let err = {
            let _budget = BudgetScope::enter(CancelToken::with_op_budget(units));
            dbms.column("v", "INCOME")
                .expect_err("a slow five-read scan must out-run its budget")
        };
        assert!(
            matches!(err, CoreError::DeadlineExceeded),
            "schedule {seed}: want the typed deadline error, got {err:?}"
        );
        assert!(
            dbms.env().injector.stats().delayed >= 1,
            "schedule {seed}: the slow fault actually fired"
        );
        // Slowness is not damage: no degraded health, no quarantine.
        assert_eq!(dbms.health("v").expect("health"), ViewHealth::Healthy);

        // Unbounded through the *still-slow* disk: the same bytes,
        // just late — a slow fault may cost time, never correctness.
        let slow = dbms.column("v", "INCOME").expect("unbounded slow read");
        assert_eq!(
            slow, want,
            "schedule {seed}: a slow read changed the served bytes"
        );
        dbms.env().injector.set_plan(FaultPlan::none());
    }
}

#[test]
fn corrupted_summary_pages_are_quarantined_and_recomputed() {
    let mut dbms = setup();
    let expected_col = dbms.column("v", "INCOME").expect("column");
    let expected = StatFunction::Mean.compute(&expected_col).expect("mean");

    // Silently flip a bit in every disk page except the intent log —
    // summary store and view store alike — then restart so the next
    // reads hit the damaged disk instead of clean pool frames.
    let wal_pages = dbms
        .view("v")
        .expect("view")
        .wal
        .as_ref()
        .expect("wal")
        .log_pages();
    for pid in 0..dbms.env().disk.allocated_pages() as u32 {
        if !wal_pages.contains(&pid) {
            // Never-written pages have no image to damage; skip them.
            let _ = dbms.env().disk.corrupt_page(pid, 3);
        }
    }
    let report = dbms.recover().expect("restart");
    assert!(report.views_recovered.is_empty(), "no intent was pending");

    // The cache entry and the view column are both unreadable now, so
    // the lookup quarantines the damaged entry and the answer comes
    // from re-executing the view definition against the raw archive.
    let (served, source) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .expect("resilient compute");
    assert_eq!(source, ComputeSource::Fallback);
    assert!(
        served.approx_eq(&expected, 1e-9),
        "fallback answer {served} != {expected}"
    );
    assert!(
        dbms.cache_stats("v").expect("stats").quarantined > 0,
        "damaged entries were quarantined"
    );
}

/// Multi-analyst chaos: pinned snapshot readers on their own threads
/// race transactional update batches and the background scrubber on
/// the main thread, under seeded transient-fault and crash injection.
///
/// The serial-equivalence oracle: every store version a snapshot can
/// pin has exactly one committed column state, recorded at commit time
/// in a shared map. Every successful read from any snapshot must equal
/// its version's recorded state **exactly** — a torn batch
/// (half-applied ops), an in-place mutation of a pinned store, or a
/// premature epoch reclaim of its pages would all break the equality.
/// Faults may cost a read (an error) but may never change what a
/// successful read returns.
#[test]
fn concurrent_snapshot_readers_never_see_torn_or_uncommitted_state() {
    use sdbms::data::Value;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc, Mutex};

    const READERS: usize = 3;
    const COMMITS: u64 = 4;
    let n = (schedules() / 10).max(6);
    let mut total_commits = 0u64;
    let mut crashes_recovered = 0u64;
    let mut mid_scrub_skips = 0u64;
    let verified = Arc::new(AtomicU64::new(0));

    for seed in 0..n {
        let mut dbms = setup();
        // version → the exact committed INCOME column of that version.
        let oracle: Arc<Mutex<HashMap<u64, Vec<Value>>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut last = dbms.column("v", "INCOME").expect("baseline column");
        let template = dbms.snapshot("v").expect("snapshot").row(0).expect("row");
        oracle.lock().expect("oracle").insert(
            dbms.snapshot("v").expect("snapshot").version(),
            last.clone(),
        );

        std::thread::scope(|scope| {
            let mut senders = Vec::new();
            for reader in 0..READERS {
                let (tx, rx) = mpsc::channel::<Snapshot>();
                senders.push(tx);
                let oracle = Arc::clone(&oracle);
                let verified = Arc::clone(&verified);
                scope.spawn(move || {
                    while let Ok(snap) = rx.recv() {
                        let want = oracle
                            .lock()
                            .expect("oracle")
                            .get(&snap.version())
                            .cloned()
                            .expect("every pinnable version has a recorded committed state");
                        if let (Ok(a), Ok(b)) = (snap.column("INCOME"), snap.column("INCOME")) {
                            assert_eq!(
                                a, b,
                                "reader {reader}: repeated reads inside one snapshot differ"
                            );
                            assert_eq!(
                                a,
                                want,
                                "reader {reader}: snapshot v{} served a state that was \
                                 never committed",
                                snap.version()
                            );
                            verified.fetch_add(1, Ordering::Relaxed);
                        }
                        assert_eq!(
                            snap.len(),
                            want.len(),
                            "reader {reader}: row count moved under a pinned snapshot"
                        );
                        if let Ok((m, _)) = snap.compute("INCOME", &StatFunction::Mean) {
                            let fresh = StatFunction::Mean.compute(&want).expect("oracle mean");
                            assert!(
                                m.approx_eq(&fresh, 1e-9),
                                "reader {reader}: snapshot mean {m} != committed mean {fresh}"
                            );
                            let (memo, src) =
                                snap.compute("INCOME", &StatFunction::Mean).expect("memo");
                            assert_eq!(src, ComputeSource::Cache, "repeat serves the memo");
                            assert!(memo.approx_eq(&m, 0.0), "memoized value is byte-stable");
                        }
                    }
                });
            }

            let mut s = seed ^ 0x5EED_CAFE;
            for step in 0..COMMITS {
                // Each analyst pins the current committed version.
                for tx in &senders {
                    tx.send(dbms.snapshot("v").expect("snapshot"))
                        .expect("reader alive");
                }
                let base_ops = dbms.env().injector.ops();
                let crash = seed % 3 == 1 && step == 2;
                dbms.env().injector.set_plan(FaultPlan {
                    seed: seed ^ (step << 8),
                    disk: DeviceFaults {
                        transient_read: 0.03,
                        transient_write: 0.03,
                        ..DeviceFaults::default()
                    },
                    crash_at_op: crash.then(|| base_ops + 10 + splitmix(&mut s) % 120),
                    ..FaultPlan::none()
                });

                // A batch mixing all three op kinds, so a torn commit
                // would change values *and* the row count.
                let threshold = 20 + (splitmix(&mut s) % 45) as i64;
                let bump = 1 + (splitmix(&mut s) % 300) as i64;
                let row = (splitmix(&mut s) as usize) % last.len();
                let poke = match &last[row] {
                    Value::Int(i) => Value::Int(i + 7),
                    Value::Float(f) => Value::Float(f + 7.0),
                    other => other.clone(),
                };
                let outcome = dbms.begin_batch("v").and_then(|b| {
                    dbms.batch_update_where(
                        b,
                        &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold)),
                        &[(
                            "INCOME",
                            Expr::col("INCOME").binary(BinOp::Add, Expr::lit(bump)),
                        )],
                    )?;
                    dbms.batch_set_cell(b, row, "INCOME", poke)?;
                    dbms.batch_append_row(b, template.clone())?;
                    // The scrubber runs while the batch holds the view
                    // lock: it must skip the view, never block or peek.
                    if let Ok(mid) = dbms.scrub(2_000) {
                        mid_scrub_skips += mid.views_skipped;
                    }
                    dbms.commit_batch(b)
                });
                match outcome {
                    Ok(_) => total_commits += 1,
                    Err(_) => {
                        if dbms.is_crashed() {
                            crashes_recovered += 1;
                            dbms.env().injector.set_plan(FaultPlan::none());
                            recover_until_up(&mut dbms);
                        }
                        // A staging failure would leave the batch open
                        // and the lock held; drop it.
                        let open: Vec<u64> =
                            dbms.open_batches().iter().map(|(id, _, _)| *id).collect();
                        for id in open {
                            let _ = dbms.abort_batch(id);
                        }
                    }
                }

                // Record the committed state of the (possibly new) live
                // version, fault-free. A version seen before must hold
                // identical bytes — recovery may not invent state.
                dbms.env().injector.set_plan(FaultPlan::none());
                let col = dbms.column("v", "INCOME").expect("committed read");
                let ver = dbms.snapshot("v").expect("snapshot").version();
                {
                    let mut map = oracle.lock().expect("oracle");
                    if let Some(prev) = map.get(&ver) {
                        assert_eq!(
                            prev, &col,
                            "schedule {seed}: version {ver} changed content after the fact"
                        );
                    } else {
                        map.insert(ver, col.clone());
                    }
                }
                last = col;
                // Between commits nothing holds the lock: the scrub
                // pass actually runs.
                let _ = dbms.scrub(5_000);
            }
            drop(senders);
        });
        assert_eq!(dbms.pinned_snapshots(), 0, "all reader pins drained");
    }

    assert!(
        total_commits >= n * 2,
        "batches committed under fire: {total_commits}"
    );
    assert!(
        crashes_recovered > 0,
        "some schedules crashed mid-commit and recovered: {crashes_recovered}"
    );
    assert!(
        mid_scrub_skips > 0,
        "the scrubber skipped writer-locked views: {mid_scrub_skips}"
    );
    let verified = verified.load(Ordering::Relaxed);
    assert!(
        verified >= n * COMMITS,
        "readers verified against the oracle: {verified}"
    );
}

#[test]
fn crash_between_update_and_flush_leaves_no_stale_summary() {
    let mut dbms = setup();

    // Crash on a mid-update operation: the cell writes and summary
    // maintenance land in the pool, but the flush never happens.
    let ops = dbms.env().injector.ops();
    dbms.env().injector.set_plan(FaultPlan {
        seed: 1,
        crash_at_op: Some(ops + 30),
        ..FaultPlan::none()
    });
    let err = dbms.update_where(
        "v",
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(30i64)),
        &[(
            "INCOME",
            Expr::col("INCOME").binary(BinOp::Mul, Expr::lit(2i64)),
        )],
    );
    assert!(err.is_err(), "the crash must abort the update");
    assert!(dbms.is_crashed());

    dbms.env().injector.set_plan(FaultPlan::none());
    let report = dbms.recover().expect("recover");
    assert_eq!(
        report.views_recovered,
        vec!["v".to_string()],
        "the pending intent was honored"
    );

    // Whatever mix of old and new INCOME cells survived the crash, the
    // cache must agree with a recompute of exactly that state.
    let col = dbms.column("v", "INCOME").expect("column");
    for f in checked_functions() {
        let (served, _) = dbms
            .compute("v", "INCOME", &f, AccuracyPolicy::Exact)
            .expect("compute");
        let fresh = f.compute(&col).expect("recompute");
        assert!(
            served.approx_eq(&fresh, 1e-9),
            "{f:?} served {served} != recompute {fresh} after crash recovery"
        );
    }

    // And the history shows what recovery did.
    let records = dbms.catalog().view("v").expect("record").history.records();
    assert!(
        records
            .iter()
            .any(|(_, r)| r.to_string().starts_with("recovery:")),
        "recovery left an audit record"
    );
}
