//! Cache-coherence properties of the serving layer's front cache.
//!
//! Three guarantees under arbitrary interleavings of commits, repairs,
//! and queries:
//!
//! 1. **Never stale**: a read after a commit is byte-identical to a
//!    cold read of the same state on a twin DBMS that has no front
//!    cache at all — the `(view, version, generation, query)` key
//!    makes superseded entries unreachable by construction.
//! 2. **Repair purges**: a repair may reset the Summary-DB generation
//!    non-monotonically, so the server drops the view's entries
//!    outright; post-repair reads equal fresh recomputes.
//! 3. **Fallback never admitted**: degraded-view answers (computed
//!    from the raw archive) are served but never enter the front
//!    cache, mirroring the Summary DB's own rule.

use proptest::prelude::*;

use sdbms::core::{StatDbms, StatFunction, ViewHealth};
use sdbms::serve::{Payload, Query, QuotaConfig, ServeConfig, Served, Server};
use sdbms_testkit::{
    checked_functions, seeded_income_update, CensusFixture, CENSUS_ATTRS, CENSUS_VIEW,
};

fn serve_fixture() -> Server {
    Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            workers: 2,
            queue_capacity: 1024,
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default()
        },
    )
}

/// The query universe the coherence ops index into.
fn queries() -> Vec<Query> {
    let mut qs = Vec::new();
    for attr in CENSUS_ATTRS {
        for f in checked_functions() {
            qs.push(Query::summary(attr, f));
        }
    }
    qs
}

/// A cold, cache-free answer from the twin.
fn cold_answer(twin: &StatDbms, query: &Query) -> Vec<u8> {
    let snap = twin.snapshot(CENSUS_VIEW).expect("twin snapshot");
    let payload = match query {
        Query::Summary {
            attribute,
            function,
        } => {
            let col = snap.column(attribute).expect("twin column");
            Payload::Summary(function.compute(&col).expect("twin compute"))
        }
        Query::Column { attribute } => {
            Payload::Column(snap.column(attribute).expect("twin column"))
        }
        Query::Row { index } => Payload::Row(snap.row(*index).expect("twin row")),
    };
    format!("{payload:?}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ops are `(kind, selector, seed)` tuples: kind % 4 ∈
    /// {0,1: query, 2: commit, 3: repair}. After *every* op, each
    /// query in the universe served through the (caching) server must
    /// byte-equal the twin's cold read — i.e. interleaving commits and
    /// repairs with cached reads can never surface a stale entry.
    #[test]
    fn interleaved_commits_and_repairs_never_serve_stale(
        ops in prop::collection::vec((0u8..4, 0u16..1000, 0i64..i64::MAX), 1..24)
    ) {
        let server = serve_fixture();
        let mut twin = CensusFixture::new().build().expect("twin");
        let session = server.open_session("prop", CENSUS_VIEW).expect("session");
        let universe = queries();
        for (kind, selector, seed) in ops {
            match kind % 4 {
                0 | 1 => {
                    let q = &universe[selector as usize % universe.len()];
                    let resp = server.query(session, q.clone()).expect("query");
                    prop_assert_eq!(resp.canonical_bytes(), cold_answer(&twin, q));
                }
                2 => {
                    let mut state = seed as u64;
                    let update = seeded_income_update(&mut state);
                    let resp = server
                        .commit(session, vec![update.batch_op()])
                        .expect("commit");
                    prop_assert_eq!(resp.served, Served::Write);
                    let batch = twin.begin_batch(CENSUS_VIEW).expect("twin batch");
                    twin.batch_stage(batch, update.batch_op()).expect("twin stage");
                    twin.commit_batch(batch).expect("twin commit");
                }
                _ => {
                    // Repair of a healthy view is a no-op for the data
                    // but still purges the view's cache entries.
                    server.repair(session).expect("repair");
                }
            }
            // Post-op sweep: every universe query, served through the
            // cache, equals the twin's cold read right now.
            for q in &universe {
                let resp = server.query(session, q.clone()).expect("sweep query");
                prop_assert_eq!(
                    resp.canonical_bytes(),
                    cold_answer(&twin, q),
                    "stale answer for {:?} (served {:?}, version {})",
                    q, resp.served, resp.version
                );
            }
        }
        // One more sweep: the previous sweep populated the cache and
        // nothing invalidated since, so every answer now must be a
        // front-cache hit — the run exercised the cache, not bypassed
        // it.
        for q in &universe {
            let resp = server.query(session, q.clone()).expect("final sweep");
            prop_assert_eq!(resp.served, Served::FrontCache);
            prop_assert_eq!(resp.canonical_bytes(), cold_answer(&twin, q));
        }
        drop(server.shutdown());
    }
}

#[test]
fn post_commit_read_equals_cold_read() {
    let server = serve_fixture();
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    let q = Query::summary("INCOME", StatFunction::Mean);

    // Warm the front cache, then prove the second read hits it.
    let first = server.query(session, q.clone()).expect("warm");
    assert_eq!(first.served, Served::Computed);
    let hit = server.query(session, q.clone()).expect("hit");
    assert_eq!(hit.served, Served::FrontCache);
    assert_eq!(hit.canonical_bytes(), first.canonical_bytes());
    assert_eq!(hit.io, sdbms::storage::IoSnapshot::default());
    assert_eq!(hit.cost_milli, 0, "a front-cache hit is billed zero");

    // Commit, then read again: the post-commit answer must be a fresh
    // compute (new version ⇒ new key) and equal a cold twin that
    // performed the same edit.
    let mut state = 0xBEEF;
    let update = seeded_income_update(&mut state);
    let committed = server
        .commit(session, vec![update.batch_op()])
        .expect("commit");
    assert!(committed.version > first.version);
    let after = server.query(session, q.clone()).expect("post-commit");
    assert_eq!(
        after.served,
        Served::Computed,
        "old entry must be unreachable"
    );
    assert_ne!(
        after.canonical_bytes(),
        first.canonical_bytes(),
        "the edit changes mean income"
    );
    let mut twin = CensusFixture::new().build().expect("twin");
    update.apply(&mut twin, CENSUS_VIEW).expect("twin edit");
    assert_eq!(after.canonical_bytes(), cold_answer(&twin, &q));
}

#[test]
fn fallback_results_are_never_admitted_to_the_front_cache() {
    let server = serve_fixture();
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    let q = Query::summary("INCOME", StatFunction::Mean);
    let healthy_bytes = server
        .query(session, q.clone())
        .expect("healthy")
        .canonical_bytes();

    // Corrupt a data page on disk and scrub until the damage is found.
    server.with_dbms_mut(|dbms| {
        dbms.env().pool.flush_all().expect("flush");
        let pages = dbms.view(CENSUS_VIEW).expect("view").store.data_page_ids();
        dbms.env().disk.corrupt_page(pages[0], 3).expect("corrupt");
        for _ in 0..64 {
            dbms.scrub(10_000).expect("scrub");
            if dbms.health(CENSUS_VIEW).expect("health") != ViewHealth::Healthy {
                break;
            }
        }
        assert_ne!(
            dbms.health(CENSUS_VIEW).expect("health"),
            ViewHealth::Healthy,
            "scrub must detect the corrupted page"
        );
    });

    // Degraded reads answer from the raw archive and are never cached.
    let insertions_before = server.cache_stats().insertions;
    let degraded = server.query(session, q.clone()).expect("degraded read");
    assert_eq!(degraded.served, Served::Fallback);
    assert_eq!(
        degraded.canonical_bytes(),
        healthy_bytes,
        "the archive holds the pristine data, so the value is unchanged"
    );
    let again = server.query(session, q.clone()).expect("degraded again");
    assert_eq!(
        again.served,
        Served::Fallback,
        "a repeated degraded read must recompute, not hit the cache"
    );
    let stats = server.cache_stats();
    assert_eq!(stats.insertions, insertions_before, "nothing was admitted");
    assert!(stats.fallback_rejections >= 2);

    // Repair through the server: data restored, view cacheable again.
    let repaired = server.repair(session).expect("repair");
    let Payload::Repaired {
        store_regenerated, ..
    } = repaired.payload
    else {
        panic!("repair response with a non-repair payload");
    };
    assert!(store_regenerated, "page damage forces archive regeneration");
    let fresh = server.query(session, q.clone()).expect("post-repair");
    assert_eq!(fresh.served, Served::Computed);
    assert_eq!(fresh.canonical_bytes(), healthy_bytes);
    let hit = server.query(session, q).expect("post-repair hit");
    assert_eq!(
        hit.served,
        Served::FrontCache,
        "cacheable again after repair"
    );
    drop(server.shutdown());
}

#[test]
fn repair_purges_every_cached_entry_of_the_view() {
    let server = serve_fixture();
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    for q in queries() {
        server.query(session, q).expect("warm");
    }
    let warmed = server.cache_stats().insertions;
    assert!(warmed >= 10);
    server.repair(session).expect("repair healthy view");
    assert_eq!(
        server.cache_stats().purged,
        warmed,
        "repair purges the view's entries even when it repaired nothing"
    );
    // Every query now recomputes (and the answers are unchanged).
    for q in queries() {
        let resp = server.query(session, q).expect("post-repair");
        assert_eq!(resp.served, Served::Computed);
    }
}
