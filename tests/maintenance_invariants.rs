//! Property-based integration tests of the maintenance invariant: under
//! random update streams, every cached summary either equals a
//! from-scratch recomputation (fresh entries) or is correctly flagged
//! stale.

use proptest::prelude::*;

use sdbms::data::Value;
use sdbms::storage::StorageEnv;
use sdbms::summary::{
    apply_updates, get_or_compute, AccuracyPolicy, ComputeSource, MaintenancePolicy, StatFunction,
    SummaryDb, UpdateDelta,
};

fn all_functions() -> Vec<StatFunction> {
    vec![
        StatFunction::Count,
        StatFunction::Sum,
        StatFunction::Mean,
        StatFunction::Variance,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Median,
        StatFunction::Mode,
        StatFunction::UniqueCount,
        StatFunction::Histogram(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_policy_is_exact(
        base in prop::collection::vec(-500i64..500, 8..80),
        updates in prop::collection::vec(
            (any::<prop::sample::Index>(), -500i64..500, any::<bool>()), 1..30)
    ) {
        let env = StorageEnv::new(256);
        let db = SummaryDb::create(env.pool).unwrap();
        let mut data: Vec<Value> = base.iter().map(|&x| Value::Int(x)).collect();
        for f in all_functions() {
            get_or_compute(&db, "C", &f, AccuracyPolicy::Exact, &mut || Ok(data.clone()))
                .unwrap();
        }
        for (idx, new_raw, make_missing) in updates {
            let i = idx.index(data.len());
            let new = if make_missing { Value::Missing } else { Value::Int(new_raw) };
            let old = std::mem::replace(&mut data[i], new.clone());
            if old == new {
                continue;
            }
            let snapshot = data.clone();
            apply_updates(
                &db,
                "C",
                &[UpdateDelta { old, new }],
                MaintenancePolicy::Incremental,
                &mut || Ok(snapshot.clone()),
            )
            .unwrap();
            // Every FRESH entry must equal direct recomputation; stale
            // entries are permitted only where the engine declared them.
            for f in all_functions() {
                if let Some(entry) = db.lookup("C", &f).unwrap() {
                    if entry.freshness != sdbms::summary::Freshness::Fresh {
                        continue;
                    }
                    // An incrementally maintained histogram keeps its
                    // original bin edges (values outside land in the
                    // overflow counters — §3.2's fixed "two vectors"),
                    // so only the total is comparable to a recompute.
                    if let sdbms::summary::SummaryValue::Histogram(h) = &entry.result {
                        let live = data.iter().filter(|v| v.as_f64().is_some()).count();
                        prop_assert_eq!(h.total(), live as u64, "histogram total");
                        continue;
                    }
                    match f.compute(&data) {
                        Ok(direct) => prop_assert!(
                            entry.result.approx_eq(&direct, 1e-6),
                            "{f}: {:?} != {direct:?}",
                            entry.result
                        ),
                        Err(_) => { /* column degenerated (all missing) */ }
                    }
                }
            }
        }
    }

    #[test]
    fn tolerate_policy_never_serves_beyond_budget(
        base in prop::collection::vec(0i64..100, 5..40),
        batches in prop::collection::vec(1usize..5, 1..6),
        budget in 0u32..8
    ) {
        let env = StorageEnv::new(128);
        let db = SummaryDb::create(env.pool).unwrap();
        let data: Vec<Value> = base.iter().map(|&x| Value::Int(x)).collect();
        get_or_compute(&db, "C", &StatFunction::Mean, AccuracyPolicy::Exact,
            &mut || Ok(data.clone())).unwrap();
        let mut absorbed = 0u32;
        for batch in batches {
            let deltas: Vec<UpdateDelta> = (0..batch)
                .map(|k| UpdateDelta {
                    old: data[k % data.len()].clone(),
                    new: Value::Int(999),
                })
                .collect();
            // Note: deltas here are synthetic (we don't mutate `data`),
            // which is fine under InvalidateLazy — nothing reads them.
            apply_updates(&db, "C", &deltas, MaintenancePolicy::InvalidateLazy,
                &mut || Ok(data.clone())).unwrap();
            absorbed += batch as u32;
            let (_, src) = get_or_compute(
                &db,
                "C",
                &StatFunction::Mean,
                AccuracyPolicy::Tolerate(budget),
                &mut || Ok(data.clone()),
            )
            .unwrap();
            if absorbed <= budget {
                prop_assert_eq!(src, ComputeSource::CacheTolerated);
            } else {
                prop_assert_eq!(src, ComputeSource::Computed);
                absorbed = 0; // recompute reset the staleness counter
            }
        }
    }
}

#[test]
fn median_window_ablation_rebuild_counts_decrease_with_size() {
    // DESIGN.md ablation: larger windows absorb more updates before a
    // rebuild. Deterministic drift workload.
    let n = 5_000usize;
    let base: Vec<f64> = (0..n).map(|i| ((i * 7919) % n) as f64).collect();
    let mut rebuilds_by_window = Vec::new();
    for window in [5usize, 51, 501] {
        let mut data = base.clone();
        let mut w = sdbms::summary::MedianWindow::new(window);
        w.rebuild(&data);
        let mut rebuilds = 0;
        for k in 0..800 {
            // Drift: push small values up.
            let i = k % n;
            let old = data[i];
            data[i] = old + 2_000.0;
            if !w.replace(old, data[i]) || !w.is_usable() {
                w.rebuild(&data);
                rebuilds += 1;
            }
        }
        let expect = sdbms::stats::quantile::median(&data).unwrap();
        assert_eq!(w.median().unwrap(), expect, "window {window}");
        rebuilds_by_window.push(rebuilds);
    }
    assert!(
        rebuilds_by_window[0] >= rebuilds_by_window[1]
            && rebuilds_by_window[1] >= rebuilds_by_window[2],
        "rebuilds must not increase with window size: {rebuilds_by_window:?}"
    );
    assert!(
        rebuilds_by_window[0] > 0,
        "tiny window must rebuild under drift"
    );
}
