//! End-to-end request-lifecycle tests: deadlines, cooperative
//! cancellation, circuit breakers, and brownout load-shedding
//! (DESIGN.md §16).
//!
//! Everything here is deterministic: deadlines are *op budgets* over
//! the storage layer's device-operation clock, breaker windows are
//! logical request ticks, and brownout watermarks are exact in-flight
//! counts — no wall-clock sleeps, no flaky timing.

use sdbms::core::StatFunction;
use sdbms::serve::{
    BreakerConfig, BreakerState, BrownoutConfig, BrownoutTier, Query, QuotaConfig, ServeConfig,
    ServeError, Served, Server,
};
use sdbms::storage::{CancelToken, DeviceFaults, FaultPlan};
use sdbms_testkit::{CensusFixture, CENSUS_VIEW};

fn q_mean() -> Query {
    Query::summary("INCOME", StatFunction::Mean)
}

/// Rows for the deadline tests: five 256-row segments, so a cold
/// INCOME scan costs five device reads — enough for a small op budget
/// to trip mid-scan. (The default 160-row fixture fits one segment and
/// costs a single read, which no positive budget can interrupt.)
const WIDE_ROWS: usize = 1200;

/// The fault-free answer, computed on an identical twin fixture so the
/// served bytes can be checked without touching the server under test.
fn twin_answer_for(fixture: &CensusFixture, query: &Query) -> Vec<u8> {
    let server = Server::start(
        fixture.build().expect("twin fixture"),
        ServeConfig::default(),
    );
    let session = server.open_session("twin", CENSUS_VIEW).expect("session");
    let resp = server.query(session, query.clone()).expect("twin query");
    resp.canonical_bytes()
}

fn twin_answer(query: &Query) -> Vec<u8> {
    twin_answer_for(&CensusFixture::new(), query)
}

/// Force the next reads to hit the (fault-injectable) disk: flush
/// dirty pages, then drop every clean frame.
fn cold_pool(server: &Server) {
    server.with_dbms_mut(|dbms| {
        dbms.env().pool.flush_all().expect("flush");
        dbms.env().pool.discard_frames().expect("discard");
    });
}

#[test]
fn deadline_storm_returns_typed_errors_and_eventually_serves_exact_bytes() {
    let fixture = CensusFixture::new().rows(WIDE_ROWS);
    let want = twin_answer_for(&fixture, &q_mean());
    // Uncached so every attempt does real engine work under its budget.
    let server = Server::start(
        fixture.build().expect("fixture"),
        ServeConfig {
            deadline_ops: Some(3),
            ..ServeConfig::default().uncached()
        },
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    cold_pool(&server);

    // Storm: each attempt gets a 3-op budget against a 5-read cold
    // scan. Early attempts trip; each trip still leaves its admitted
    // pages resident, so the pool warms monotonically and a later
    // attempt finishes within budget. Every failure must be the typed
    // deadline error — never a partial payload.
    let mut trips = 0u64;
    let mut served = None;
    for _ in 0..64 {
        match server.query(session, q_mean()) {
            Ok(resp) => {
                served = Some(resp);
                break;
            }
            Err(ServeError::DeadlineExceeded) => trips += 1,
            Err(other) => panic!("storm may only trip deadlines, got {other}"),
        }
    }
    assert!(trips >= 1, "a 3-op budget must trip on a cold pool");
    let resp = served.expect("the pool warms within the attempt bound");
    assert_eq!(
        resp.canonical_bytes(),
        want,
        "a completed response is byte-identical to the fault-free answer"
    );
    assert_eq!(server.metrics().deadline_trips, trips);
}

#[test]
fn tripped_queries_never_poison_the_front_cache() {
    let fixture = CensusFixture::new().rows(WIDE_ROWS);
    let want = twin_answer_for(&fixture, &q_mean());
    let server = Server::start(fixture.build().expect("fixture"), ServeConfig::default());
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    cold_pool(&server);

    // A 1-op budget cannot finish a five-read cold scan: typed error,
    // and the front cache admits nothing.
    let err = server
        .query_with_token(session, q_mean(), CancelToken::with_op_budget(1))
        .expect_err("1 op cannot serve a cold query");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    assert_eq!(server.cache_stats().insertions, 0, "no partial was cached");

    // The same query unbounded computes, caches, and matches the twin.
    let ok = server.query(session, q_mean()).expect("unbounded query");
    assert_eq!(ok.served, Served::Computed);
    assert_eq!(ok.canonical_bytes(), want);
    assert_eq!(server.cache_stats().insertions, 1);
    let hit = server.query(session, q_mean()).expect("now cached");
    assert_eq!(hit.served, Served::FrontCache);
    assert_eq!(hit.canonical_bytes(), want);
}

#[test]
fn client_cancellation_is_typed_and_neutral_to_the_breaker() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            // A hair-trigger breaker: one failure would open it.
            breaker: BreakerConfig {
                failure_threshold: 1,
                open_ticks: 10,
                half_open_probes: 1,
            },
            ..ServeConfig::default()
        },
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");

    let token = CancelToken::unbounded();
    token.cancel();
    let err = server
        .query_with_token(session, q_mean(), token)
        .expect_err("a cancelled token never serves");
    assert!(matches!(err, ServeError::Cancelled), "{err}");
    assert_eq!(server.metrics().cancelled, 1);
    assert_eq!(
        server.breaker_state(CENSUS_VIEW),
        BreakerState::Closed,
        "client cancellations say nothing about view health"
    );

    // The view itself is untouched: the next query serves normally.
    server.query(session, q_mean()).expect("view unharmed");
}

#[test]
fn breaker_opens_on_consecutive_engine_failures_fast_fails_then_recovers() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_ticks: 3,
                half_open_probes: 1,
            },
            ..ServeConfig::default().uncached()
        },
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    server.query(session, q_mean()).expect("healthy baseline");
    assert_eq!(server.breaker_state(CENSUS_VIEW), BreakerState::Closed);

    // Break the disk: every read fails (bounded retries included).
    cold_pool(&server);
    server.with_dbms_mut(|dbms| {
        dbms.env().injector.set_plan(FaultPlan {
            seed: 11,
            disk: DeviceFaults {
                transient_read: 1.0,
                ..DeviceFaults::default()
            },
            ..FaultPlan::none()
        });
    });
    for i in 0..2 {
        let err = server.query(session, q_mean()).expect_err("dead disk");
        assert!(
            matches!(err, ServeError::Core(_)),
            "engine failure {i}: {err}"
        );
    }
    assert!(matches!(
        server.breaker_state(CENSUS_VIEW),
        BreakerState::Open
    ));

    // Open ⇒ fast-fail with a retry hint, without touching the engine.
    let err = server.query(session, q_mean()).expect_err("breaker open");
    match &err {
        ServeError::BreakerOpen {
            view,
            retry_after_ms,
        } => {
            assert_eq!(view, CENSUS_VIEW);
            assert!(*retry_after_ms >= 1);
        }
        other => panic!("expected BreakerOpen, got {other}"),
    }
    assert!(err.retry_after_ms().is_some());
    assert!(server.metrics().breaker_fast_fails >= 1);

    // Heal the disk; the open window (3 ticks) elapses as requests
    // arrive, then one successful half-open probe closes the breaker.
    server.with_dbms_mut(|dbms| dbms.env().injector.set_plan(FaultPlan::none()));
    let mut probed = None;
    for _ in 0..8 {
        match server.query(session, q_mean()) {
            Ok(resp) => {
                probed = Some(resp);
                break;
            }
            Err(ServeError::BreakerOpen { .. }) => {}
            Err(other) => panic!("healed disk may only fast-fail, got {other}"),
        }
    }
    let resp = probed.expect("the open window is 3 ticks; 8 requests must probe");
    assert_eq!(resp.canonical_bytes(), twin_answer(&q_mean()));
    assert_eq!(server.breaker_state(CENSUS_VIEW), BreakerState::Closed);
    let m = server.metrics();
    assert_eq!(m.breaker.opened, 1);
    assert_eq!(m.breaker.closed, 1);
    assert!(m.breaker.probes >= 1);
    server.query(session, q_mean()).expect("closed again");
}

#[test]
fn brownout_tier1_sheds_cold_reads_but_admits_priority_cached_and_writes() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            // Watermark 0: the controller is in tier 1 from the first
            // request — deterministic shedding without real load.
            brownout: BrownoutConfig {
                tier1_inflight: 0,
                tier2_inflight: usize::MAX,
                hysteresis: 0,
            },
            priority_tenants: vec!["vip".to_string()],
            ..ServeConfig::default()
        },
    );
    let vip = server.open_session("vip", CENSUS_VIEW).expect("vip");
    let norm = server.open_session("norm", CENSUS_VIEW).expect("norm");

    // Priority tenants are never shed; this also warms the cache.
    let warmed = server.query(vip, q_mean()).expect("priority admitted");
    assert_eq!(warmed.served, Served::Computed);
    assert_eq!(server.brownout_tier(), BrownoutTier::SheddingCold);

    // A cold read from a normal tenant is shed with a typed hint.
    let cold = Query::summary("AGE", StatFunction::Max);
    let err = server.query(norm, cold).expect_err("cold read shed");
    match &err {
        ServeError::Brownout {
            tier,
            retry_after_ms,
        } => {
            assert_eq!(*tier, 1);
            assert!(*retry_after_ms >= 1);
        }
        other => panic!("expected Brownout, got {other}"),
    }

    // The warmed query is a likely cache hit: admitted and served from
    // the front cache even for the normal tenant.
    let hit = server.query(norm, q_mean()).expect("cached read admitted");
    assert_eq!(hit.served, Served::FrontCache);

    // Tier 1 still lands writes (they carry analyst state).
    let mut state = 42u64;
    let update = sdbms_testkit::seeded_income_update(&mut state);
    server
        .commit(norm, vec![update.batch_op()])
        .expect("tier-1 commit admitted");

    let m = server.metrics();
    assert_eq!(m.brownout.shed_cold, 1);
    assert_eq!(m.brownout.shed_tenant, 0);
    assert!(m.brownout.entered >= 1);
}

#[test]
fn brownout_tier2_sheds_non_priority_tenants_except_cache_hits() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            brownout: BrownoutConfig {
                tier1_inflight: 0,
                tier2_inflight: 0,
                hysteresis: 0,
            },
            priority_tenants: vec!["vip".to_string()],
            ..ServeConfig::default()
        },
    );
    let vip = server.open_session("vip", CENSUS_VIEW).expect("vip");
    let norm = server.open_session("norm", CENSUS_VIEW).expect("norm");

    server
        .query(vip, q_mean())
        .expect("priority warms the cache");
    assert_eq!(server.brownout_tier(), BrownoutTier::SheddingTenants);

    // Tier 2 sheds the normal tenant's cold reads AND writes.
    let cold = Query::summary("AGE", StatFunction::Min);
    let err = server.query(norm, cold).expect_err("cold read shed");
    assert!(matches!(err, ServeError::Brownout { tier: 2, .. }), "{err}");
    let mut state = 7u64;
    let update = sdbms_testkit::seeded_income_update(&mut state);
    let err = server
        .commit(norm, vec![update.batch_op()])
        .expect_err("tier-2 commit shed");
    assert!(matches!(err, ServeError::Brownout { tier: 2, .. }), "{err}");

    // But a likely front-cache hit is always admitted: serving it
    // costs no engine work at all.
    let hit = server.query(norm, q_mean()).expect("cache hit admitted");
    assert_eq!(hit.served, Served::FrontCache);
    // And priority tenants still get engine work done.
    server
        .query(vip, Query::summary("AGE", StatFunction::Mean))
        .expect("priority cold read admitted");

    assert_eq!(server.metrics().brownout.shed_tenant, 2);
}

#[test]
fn quota_rejections_carry_a_refill_hint() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            quota: QuotaConfig {
                capacity_milli: 100,
                refill_per_tick_milli: 1,
                min_charge_milli: 100,
            },
            // Uncached: front-cache hits are served before admission
            // (they cost no engine work), which would otherwise let
            // this repeated query dodge the quota forever.
            ..ServeConfig::default().uncached()
        },
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    // The first query drains the whole bucket (min charge == capacity).
    server
        .query(session, q_mean())
        .expect("first query admitted");
    // Admission refills *before* it checks, so the per-tick trickle
    // resurrects the exactly-empty bucket once: the second query is
    // admitted at balance 1‰ and drives the balance deeply negative.
    server
        .query(session, q_mean())
        .expect("one refill tick re-admits an exactly-empty bucket");
    let err = server
        .query(session, q_mean())
        .expect_err("the bucket is now 99\u{2030} in debt");
    match &err {
        ServeError::QuotaExceeded {
            tenant,
            retry_after_ms,
            ..
        } => {
            assert_eq!(tenant, "t");
            assert!(*retry_after_ms >= 1, "a refill rate implies a finite wait");
        }
        other => panic!("expected QuotaExceeded, got {other}"),
    }
    assert!(err.retry_after_ms().is_some());
}

#[test]
fn cancelled_commit_aborts_cleanly_and_the_view_stays_writable() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig::default(),
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    let before = server.with_dbms(|dbms| {
        dbms.snapshot(CENSUS_VIEW)
            .expect("snapshot")
            .column("INCOME")
            .expect("column")
    });

    // A zero-op budget trips before the batch does any work.
    let mut state = 99u64;
    let update = sdbms_testkit::seeded_income_update(&mut state);
    let err = server
        .commit_with_token(
            session,
            vec![update.batch_op()],
            CancelToken::with_op_budget(0),
        )
        .expect_err("zero budget cannot commit");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    let after = server.with_dbms(|dbms| {
        dbms.snapshot(CENSUS_VIEW)
            .expect("snapshot")
            .column("INCOME")
            .expect("column")
    });
    assert_eq!(after, before, "a cancelled commit leaves pre-batch state");

    // No wedged lock, no stranded intent: the same ops commit fine.
    let resp = server
        .commit(session, vec![update.batch_op()])
        .expect("view stays writable after a cancelled commit");
    assert!(resp.version > 0);
    assert_eq!(server.metrics().commits, 1);
}

#[test]
fn slow_device_faults_eat_deadlines_without_marking_the_view_unhealthy() {
    let fixture = CensusFixture::new().rows(WIDE_ROWS);
    let want = twin_answer_for(&fixture, &q_mean());
    let server = Server::start(
        fixture.build().expect("fixture"),
        ServeConfig {
            deadline_ops: Some(30),
            ..ServeConfig::default().uncached()
        },
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");
    server.query(session, q_mean()).expect("healthy baseline");

    // Every disk read now succeeds *slowly*, charging 50 simulated
    // time units against the ambient budget. Budgets are
    // check-then-consume — the first slow read is admitted and
    // overshoots to −21 — so the five-read cold scan trips on its
    // second read: slow-but-correct I/O that eats the 30-op deadline
    // without ever producing a wrong byte.
    cold_pool(&server);
    server.with_dbms_mut(|dbms| {
        dbms.env().injector.set_plan(FaultPlan {
            seed: 5,
            disk: DeviceFaults {
                slow_read: 1.0,
                slow_read_units: 50,
                ..DeviceFaults::default()
            },
            ..FaultPlan::none()
        });
    });
    let err = server.query(session, q_mean()).expect_err("slow disk");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    assert!(server.metrics().deadline_trips >= 1);
    let delayed = server.with_dbms(|dbms| dbms.env().injector.stats().delayed);
    assert!(delayed >= 1, "the slow fault actually fired");

    // Slowness is not damage: health is untouched, and on a healed
    // disk the same query serves the exact fault-free bytes.
    server.with_dbms_mut(|dbms| {
        assert_eq!(
            dbms.health(CENSUS_VIEW).expect("health"),
            sdbms::core::ViewHealth::Healthy
        );
        dbms.env().injector.set_plan(FaultPlan::none());
    });
    let resp = server.query(session, q_mean()).expect("healed");
    assert_eq!(resp.canonical_bytes(), want);
}
