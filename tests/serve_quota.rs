//! Multi-tenant admission control: exact accounting, typed
//! back-pressure, and starvation resistance.
//!
//! - The ledger is exact: under an 8-thread hammer, the sum of every
//!   successful response's `io`/`cost_milli` equals the tenant's
//!   [`sdbms::serve::TenantUsage`] to the counter and the milli-unit,
//!   and each session's per-response sum equals the server's own
//!   session ledger.
//! - Back-pressure is typed and bounded: with the engine wedged, a
//!   bounded queue accepts at most `queue + workers` requests and
//!   rejects the rest with [`ServeError::Overloaded`] *without
//!   blocking the callers*.
//! - A hot tenant at ~10× load exhausts its own token bucket and is
//!   turned away at the door; a well-behaved tenant sharing the server
//!   sees zero rejections and a bounded p99.

use std::sync::mpsc;

use sdbms::core::StatFunction;
use sdbms::serve::{Query, QuotaConfig, ServeConfig, ServeError, Served, Server};
use sdbms::storage::IoSnapshot;
use sdbms_testkit::{checked_functions, percentile, CensusFixture, CENSUS_ATTRS, CENSUS_VIEW};

#[test]
fn ledger_matches_per_session_io_sums_under_an_eight_thread_hammer() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            workers: 4,
            queue_capacity: 4096,
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default()
        },
    );
    const THREADS: usize = 8;
    const REQUESTS: usize = 120;
    // Threads 0..4 bill tenant "alpha", 4..8 bill tenant "beta".
    let tenant_of = |t: usize| if t < THREADS / 2 { "alpha" } else { "beta" };
    type ThreadCharges = (usize, u64, Vec<(IoSnapshot, u64)>);
    let mut recorded: Vec<ThreadCharges> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let server = &server;
            handles.push(scope.spawn(move || {
                let session = server
                    .open_session(tenant_of(t), CENSUS_VIEW)
                    .expect("session");
                let mut charges = Vec::with_capacity(REQUESTS);
                for i in 0..REQUESTS {
                    // A deterministic mix: rotate summaries, sprinkle
                    // point rows so costs vary, and let thread 0
                    // commit occasionally so versions move mid-hammer.
                    let resp = if t == 0 && i % 17 == 16 {
                        let mut state = (t as u64) << 32 | i as u64;
                        let update = sdbms_testkit::seeded_income_update(&mut state);
                        server.commit(session, vec![update.batch_op()])
                    } else if i % 5 == 4 {
                        server.query(
                            session,
                            Query::Row {
                                index: (t * 7 + i) % 160,
                            },
                        )
                    } else {
                        let fs = checked_functions();
                        let attr = CENSUS_ATTRS[i % CENSUS_ATTRS.len()];
                        server.query(session, Query::summary(attr, fs[i % fs.len()].clone()))
                    };
                    let resp = resp.expect("unlimited quota: nothing may fail");
                    charges.push((resp.io, resp.cost_milli));
                }
                (t, session, charges)
            }));
        }
        for h in handles {
            let (t, session, charges) = h.join().expect("hammer thread");
            recorded.push((t, session, charges));
        }
    });

    // Per-session: the server's ledger equals the sum of what the
    // session's own responses reported.
    for (_, session, charges) in &recorded {
        let mut sum = IoSnapshot::default();
        for (io, _) in charges {
            sum.merge(io);
        }
        assert_eq!(server.session_io(*session).expect("session io"), sum);
    }

    // Per-tenant: counters and milli-units match exactly.
    for tenant in ["alpha", "beta"] {
        let mut io = IoSnapshot::default();
        let mut charged = 0u64;
        let mut admitted = 0u64;
        for (t, _, charges) in &recorded {
            if tenant_of(*t) != tenant {
                continue;
            }
            for (s, c) in charges {
                io.merge(s);
                charged += c;
                admitted += 1;
            }
        }
        let usage = server.tenant_usage(tenant);
        assert_eq!(
            usage.io, io,
            "tenant {tenant}: I/O counters must sum exactly"
        );
        assert_eq!(usage.charged_milli, charged, "tenant {tenant}: milli-units");
        assert_eq!(usage.admitted, admitted, "tenant {tenant}: admissions");
        assert_eq!(usage.rejected, 0, "tenant {tenant}: unlimited quota");
    }
    let metrics = server.metrics();
    assert_eq!(metrics.served, (THREADS * REQUESTS) as u64);
    assert_eq!(metrics.quota_rejections, 0);
    assert_eq!(metrics.overload_rejections, 0);
}

#[test]
fn overload_backpressure_is_typed_and_bounded() {
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default()
        },
    );
    let session = server.open_session("t", CENSUS_VIEW).expect("session");

    // Wedge the engine: hold its lock so the single worker blocks
    // inside the first job it dequeues and the queue can only fill.
    let (locked_tx, locked_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        let server = &server;
        let wedge = scope.spawn(move || {
            server.with_dbms_mut(move |_| {
                locked_tx.send(()).expect("signal");
                release_rx.recv().expect("release");
            });
        });
        locked_rx.recv().expect("wedged");

        // 8 one-shot submitters. In-flight capacity is queue (2) plus
        // the worker's held job (1), so at most 3 can be accepted; the
        // rest must return Overloaded *immediately* (no blocking).
        const SUBMITTERS: usize = 8;
        let mut handles = Vec::new();
        for _ in 0..SUBMITTERS {
            handles.push(
                scope.spawn(|| server.query(session, Query::summary("INCOME", StatFunction::Mean))),
            );
        }
        // Rejected submitters return while the engine is still held;
        // accepted ones stay blocked until release. Wait until the
        // rejection count accounts for everyone who can't be in flight.
        let mut spins = 0;
        while server.metrics().overload_rejections < (SUBMITTERS - 3) as u64 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            spins += 1;
            assert!(spins < 2_000, "rejections never materialized");
        }
        release_tx.send(()).expect("release");
        wedge.join().expect("wedge thread");

        let mut ok = 0usize;
        let mut overloaded = 0usize;
        for h in handles {
            match h.join().expect("submitter") {
                Ok(resp) => {
                    // The first accepted job computes and caches; any
                    // later accepted identical query may hit the front
                    // cache. Both are successful service.
                    assert!(
                        resp.served == Served::Computed || resp.served == Served::FrontCache,
                        "unexpected provenance {:?}",
                        resp.served
                    );
                    ok += 1;
                }
                Err(ServeError::Overloaded { capacity, .. }) => {
                    assert_eq!(capacity, 2);
                    overloaded += 1;
                }
                Err(other) => panic!("expected Overloaded, got {other}"),
            }
        }
        assert_eq!(ok + overloaded, SUBMITTERS);
        assert!(
            (1..=3).contains(&ok),
            "at most queue+worker accepted, got {ok}"
        );
        assert_eq!(server.metrics().overload_rejections, overloaded as u64);
    });
}

#[test]
fn hot_tenant_cannot_starve_a_well_behaved_tenant() {
    // The good tenant's workload: modest, cheap point reads.
    let good_requests: Vec<Query> = (0..40).map(|i| Query::Row { index: i * 3 % 160 }).collect();

    // Calibrate: what does the good workload cost solo, uncached?
    let calibration = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default()
        }
        .uncached(),
    );
    let session = calibration
        .open_session("good", CENSUS_VIEW)
        .expect("session");
    for q in &good_requests {
        calibration.query(session, q.clone()).expect("calibration");
    }
    let good_total = calibration.tenant_usage("good").charged_milli;
    assert!(
        good_total > 0,
        "executed requests must cost at least the per-request floor"
    );
    drop(calibration.shutdown());

    // Contended run: the same quota applies to everyone — deep enough
    // for 3× the good tenant's whole workload, far too shallow for ten
    // sessions of full-column summaries.
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            workers: 4,
            queue_capacity: 4096,
            quota: QuotaConfig {
                capacity_milli: good_total * 3,
                refill_per_tick_milli: good_total / 200 + 1,
                min_charge_milli: 100,
            },
            ..ServeConfig::default()
        }
        .uncached(),
    );
    const HOT_SESSIONS: usize = 10;
    const HOT_REQUESTS: usize = 400;
    let mut good_latencies = Vec::new();
    let mut good_rejections = 0u64;
    let mut hot_rejections = 0u64;
    std::thread::scope(|scope| {
        let mut hot_handles = Vec::new();
        for h in 0..HOT_SESSIONS {
            let server = &server;
            hot_handles.push(scope.spawn(move || {
                let session = server
                    .open_session("hot", CENSUS_VIEW)
                    .expect("hot session");
                let mut rejected = 0u64;
                for i in 0..HOT_REQUESTS {
                    // Full-column summaries: the most expensive reads.
                    let fs = checked_functions();
                    let q = Query::summary(
                        CENSUS_ATTRS[(h + i) % CENSUS_ATTRS.len()],
                        fs[i % fs.len()].clone(),
                    );
                    match server.query(session, q) {
                        Ok(_) => {}
                        Err(ServeError::QuotaExceeded { tenant, .. }) => {
                            assert_eq!(tenant, "hot", "only the hot bucket may empty");
                            rejected += 1;
                        }
                        Err(other) => panic!("unexpected rejection: {other}"),
                    }
                }
                rejected
            }));
        }
        // The good tenant runs its workload concurrently with the storm.
        let good = scope.spawn(|| {
            let session = server
                .open_session("good", CENSUS_VIEW)
                .expect("good session");
            let mut latencies = Vec::new();
            let mut rejections = 0u64;
            for q in &good_requests {
                let t = std::time::Instant::now();
                match server.query(session, q.clone()) {
                    Ok(_) => latencies.push(t.elapsed().as_micros() as u64),
                    Err(_) => rejections += 1,
                }
            }
            (latencies, rejections)
        });
        for h in hot_handles {
            hot_rejections += h.join().expect("hot session");
        }
        let (latencies, rejections) = good.join().expect("good session");
        good_latencies = latencies;
        good_rejections = rejections;
    });

    assert_eq!(
        good_rejections, 0,
        "per-tenant buckets: the storm may never push the good tenant out"
    );
    assert_eq!(good_latencies.len(), good_requests.len());
    assert!(
        hot_rejections > 0,
        "ten sessions of column scans must exhaust the shared-size bucket"
    );
    let usage = server.tenant_usage("hot");
    assert_eq!(
        usage.rejected, hot_rejections,
        "typed rejections are ledgered"
    );
    assert_eq!(server.tenant_usage("good").rejected, 0);

    // The p99 bound: generous in absolute terms (these are 160-row
    // point reads), but it fails if the storm queues ahead of the good
    // tenant without limit.
    good_latencies.sort_unstable();
    let p99 = percentile(&good_latencies, 99.0);
    assert!(
        p99 < 1_000_000,
        "good tenant p99 {p99}us exceeded 1s under a 10x storm"
    );
}
