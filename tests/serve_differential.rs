//! Serial-equivalence differential harness for the serving layer.
//!
//! The property: every response produced by the *concurrent* server —
//! front-cached or freshly computed, whatever the thread interleaving
//! — is **byte-identical** to what a serial, uncached replay produces
//! at the matching store version. The server's commit log (appended in
//! version order, under the engine lock) is the replay script; each
//! query response carries the version it reflects, and the traffic
//! generator's deterministic schedule tells the oracle which logical
//! query produced it.

use std::collections::BTreeMap;

use sdbms::core::StatDbms;
use sdbms::serve::{
    census_query_universe, request_schedule, run_traffic, Outcome, Payload, Query, QuotaConfig,
    Request, ServeConfig, Served, Server, TrafficConfig,
};
use sdbms_testkit::{CensusFixture, CENSUS_VIEW};

fn workers_from_env(default: usize) -> usize {
    std::env::var("SDBMS_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or(default)
}

/// Compute `query` serially and uncached against the current state of
/// `dbms`, rendering the payload exactly as the server does.
fn serial_answer(dbms: &StatDbms, query: &Query) -> Vec<u8> {
    let snap = dbms.snapshot(CENSUS_VIEW).expect("oracle snapshot");
    let payload = match query {
        Query::Summary {
            attribute,
            function,
        } => {
            let col = snap.column(attribute).expect("oracle column");
            Payload::Summary(function.compute(&col).expect("oracle compute"))
        }
        Query::Column { attribute } => {
            Payload::Column(snap.column(attribute).expect("oracle column"))
        }
        Query::Row { index } => Payload::Row(snap.row(*index).expect("oracle row")),
    };
    format!("{payload:?}").into_bytes()
}

#[test]
fn concurrent_responses_are_byte_identical_to_serial_uncached_replay() {
    let cfg = TrafficConfig::new(CENSUS_VIEW)
        .analysts(6)
        .requests_per_analyst(60)
        .update_every(7)
        .seed(0xD1FF);
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            workers: workers_from_env(4),
            queue_capacity: 4096, // generous: this harness checks values, not back-pressure
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default()
        },
    );
    let base_version = server.with_dbms(|d| d.view_version(CENSUS_VIEW).expect("version"));
    let report = run_traffic(&server, &cfg);
    assert_eq!(
        report.completed as usize,
        cfg.analysts * cfg.requests_per_analyst,
        "unlimited quota and a deep queue: nothing may be rejected"
    );
    let commit_log = server.commit_log();
    drop(server.shutdown());

    // The log must be in strict version order, one version per commit,
    // starting just above the fixture's base version.
    for (i, rec) in commit_log.iter().enumerate() {
        assert_eq!(
            rec.version_after,
            base_version + 1 + i as u64,
            "commit log out of version order at entry {i}"
        );
    }

    // Pair every successful query response with the logical query that
    // produced it (the schedule is deterministic), bucketed by the
    // store version the response reflects.
    let universe = census_query_universe();
    let mut by_version: BTreeMap<u64, Vec<(Query, Vec<u8>, Served)>> = BTreeMap::new();
    let mut writer_reports = Vec::new();
    for analyst in 0..cfg.analysts {
        let schedule = request_schedule(&cfg, &universe, analyst);
        let outcomes = &report.outcomes[analyst];
        assert_eq!(schedule.len(), outcomes.len());
        for (request, outcome) in schedule.iter().zip(outcomes) {
            let Outcome::Ok(resp, _) = outcome else {
                panic!("unexpected rejection: {outcome:?}");
            };
            match request {
                Request::Query(q) => {
                    assert!(
                        resp.version >= base_version,
                        "a response can never reflect a pre-fixture version"
                    );
                    by_version.entry(resp.version).or_default().push((
                        q.clone(),
                        resp.canonical_bytes(),
                        resp.served,
                    ));
                }
                Request::Commit(_) => writer_reports.push(resp.clone()),
            }
        }
    }

    // Each commit response must agree with the log record at its
    // version (same rows matched, same cells changed).
    assert_eq!(writer_reports.len(), commit_log.len());
    for resp in &writer_reports {
        let rec = commit_log
            .iter()
            .find(|r| r.version_after == resp.version)
            .expect("commit response without a log record");
        let Payload::Committed {
            rows_matched,
            cells_changed,
        } = resp.payload
        else {
            panic!("commit response with a non-commit payload");
        };
        assert_eq!(rows_matched, rec.rows_matched);
        assert_eq!(cells_changed, rec.cells_changed);
    }

    // Serial uncached replay: rebuild the identical fixture, apply the
    // commit log version by version, and at every version a response
    // reflected, recompute each recorded query from scratch.
    let mut oracle = CensusFixture::new().build().expect("twin fixture");
    let mut version = base_version;
    let mut checked = 0usize;
    let mut front_cache_checked = 0usize;
    let mut log_iter = commit_log.iter();
    loop {
        if let Some(responses) = by_version.get(&version) {
            for (query, bytes, served) in responses {
                let expect = serial_answer(&oracle, query);
                assert_eq!(
                    bytes, &expect,
                    "response for {query:?} at version {version} (served {served:?}) \
                     diverged from the serial uncached replay"
                );
                checked += 1;
                if *served == Served::FrontCache {
                    front_cache_checked += 1;
                }
            }
        }
        let Some(rec) = log_iter.next() else { break };
        let batch = oracle.begin_batch(CENSUS_VIEW).expect("oracle batch");
        for op in &rec.ops {
            oracle.batch_stage(batch, op.clone()).expect("oracle stage");
        }
        let report = oracle.commit_batch(batch).expect("oracle commit");
        assert_eq!(report.rows_matched, rec.rows_matched);
        assert_eq!(report.cells_changed, rec.cells_changed);
        version = oracle.view_version(CENSUS_VIEW).expect("oracle version");
        assert_eq!(version, rec.version_after, "replay version drifted");
    }
    // Every response version must have been replayed (none beyond the
    // last commit).
    let max_version = by_version.keys().next_back().copied().unwrap_or(0);
    assert!(
        max_version <= version,
        "a response reflected version {max_version} the replay never reached"
    );
    assert!(checked > 200, "the harness must actually compare responses");
    assert!(
        front_cache_checked > 0,
        "a Zipfian mix must produce front-cache hits to make the check meaningful"
    );
}

/// The same property with the front cache disabled: the equivalence
/// must come from snapshot isolation alone, not from caching accidents.
#[test]
fn uncached_server_is_also_serially_equivalent() {
    let cfg = TrafficConfig::new(CENSUS_VIEW)
        .analysts(3)
        .requests_per_analyst(30)
        .update_every(5)
        .seed(7);
    let server = Server::start(
        CensusFixture::new().build().expect("fixture"),
        ServeConfig {
            workers: workers_from_env(2),
            queue_capacity: 4096,
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default()
        }
        .uncached(),
    );
    let base_version = server.with_dbms(|d| d.view_version(CENSUS_VIEW).expect("version"));
    let report = run_traffic(&server, &cfg);
    assert_eq!(report.front_cache_hits, 0, "cache disabled");
    let commit_log = server.commit_log();
    drop(server.shutdown());

    let universe = census_query_universe();
    let mut oracle = CensusFixture::new().build().expect("twin");
    // Replay everything first, keeping each version's state answerable
    // by re-deriving on demand: simplest is to replay incrementally and
    // check versions in ascending order, as above.
    let mut by_version: BTreeMap<u64, Vec<(Query, Vec<u8>)>> = BTreeMap::new();
    for analyst in 0..cfg.analysts {
        let schedule = request_schedule(&cfg, &universe, analyst);
        for (request, outcome) in schedule.iter().zip(&report.outcomes[analyst]) {
            if let (Request::Query(q), Outcome::Ok(resp, _)) = (request, outcome) {
                by_version
                    .entry(resp.version)
                    .or_default()
                    .push((q.clone(), resp.canonical_bytes()));
            }
        }
    }
    let mut version = base_version;
    let mut log_iter = commit_log.iter();
    loop {
        if let Some(responses) = by_version.get(&version) {
            for (query, bytes) in responses {
                assert_eq!(bytes, &serial_answer(&oracle, query));
            }
        }
        let Some(rec) = log_iter.next() else { break };
        let batch = oracle.begin_batch(CENSUS_VIEW).expect("batch");
        for op in &rec.ops {
            oracle.batch_stage(batch, op.clone()).expect("stage");
        }
        oracle.commit_batch(batch).expect("commit");
        version = oracle.view_version(CENSUS_VIEW).expect("version");
    }
}
