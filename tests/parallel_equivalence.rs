//! Differential harness: the morsel-driven parallel executor is proven
//! equivalent to the serial path.
//!
//! Two properties are checked, matching the executor's contract:
//!
//! 1. **Bit-identity across worker counts.** For a fixed morsel size,
//!    every profile — and therefore every summary function computed
//!    from it — is *exactly* equal (`==`, not approximately) at 1, 2,
//!    4, and 8 workers. The morsel partition and the merge order depend
//!    only on the row count and morsel size, never on scheduling.
//! 2. **Agreement with the serial path.** Results computed from a
//!    profile match a direct serial computation: exactly for functions
//!    answered from row-order data (count, extremes, order statistics,
//!    histograms, mode, unique count), and to ~1e-12 relative error
//!    for the moments family (sum/mean/variance/std-dev), where the
//!    merge tree associates float additions differently than the
//!    serial compensated sums.
//!
//! Datasets deliberately include missing values and coded attributes —
//! the paper's statistical data is full of both.

use proptest::prelude::*;

use sdbms::core::{AccuracyPolicy, CmpOp, Expr, Predicate, StatDbms, StatFunction, ViewDefinition};
use sdbms::data::census::{microdata_census, CensusConfig};
use sdbms::data::{dataset::DataSet, schema::Attribute, schema::Schema, DataType, Value};
use sdbms::exec::{profile_values, ExecConfig};
use sdbms::relational::ops;
use sdbms::storage::StorageEnv;
use sdbms::summary::compute_from_profile;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Every summary function in the catalogue.
fn all_functions() -> Vec<StatFunction> {
    vec![
        StatFunction::Count,
        StatFunction::Sum,
        StatFunction::Mean,
        StatFunction::Variance,
        StatFunction::StdDev,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Median,
        StatFunction::Quartiles,
        StatFunction::Quantile(250),
        StatFunction::Mode,
        StatFunction::UniqueCount,
        StatFunction::Histogram(8),
        StatFunction::TrimmedMean(100, 900),
    ]
}

/// Functions whose profile-based result must equal the serial result
/// bit-for-bit (they are computed from the row-order value sequence or
/// from exactly-mergeable accumulators, not from merged moments).
fn is_exact_family(f: &StatFunction) -> bool {
    !matches!(
        f,
        StatFunction::Sum | StatFunction::Mean | StatFunction::Variance | StatFunction::StdDev
    )
}

/// A mixed column: integers, floats, missing values, and codes.
fn value_from_parts(kind: u8, x: i64) -> Value {
    match kind {
        0 => Value::Missing,
        1 => Value::Code(x.unsigned_abs() as u32 % 16),
        2 => Value::Float(x as f64 / 8.0),
        _ => Value::Int(x % 257),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Profiles (and thus every function computed from one) are
    /// bit-identical across worker counts, and agree with the serial
    /// per-function computation.
    #[test]
    fn profiles_bit_identical_across_workers_and_match_serial(
        parts in prop::collection::vec((0u8..4, -4_000i64..4_000), 0..600),
        morsel_rows in 5usize..160,
    ) {
        let col: Vec<Value> =
            parts.iter().map(|&(k, x)| value_from_parts(k, x)).collect();
        let reference = profile_values(
            &col,
            &ExecConfig { workers: 1, morsel_rows },
        );
        for workers in WORKER_COUNTS {
            let p = profile_values(&col, &ExecConfig { workers, morsel_rows });
            prop_assert_eq!(&p, &reference, "profile at {} workers", workers);
        }
        for f in all_functions() {
            let from_profile = compute_from_profile(&f, &reference);
            let direct = f.compute(&col);
            match (from_profile, direct) {
                (Ok(a), Ok(b)) => {
                    if is_exact_family(&f) {
                        prop_assert_eq!(&a, &b, "{} must be bit-identical", f);
                    } else {
                        prop_assert!(
                            a.approx_eq(&b, 1e-12),
                            "{}: profile {:?} vs serial {:?}", f, a, b
                        );
                    }
                }
                (Err(_), Err(_)) => {} // degenerate column: both refuse
                (a, b) => {
                    prop_assert!(false, "{}: answerability diverged: {:?} vs {:?}", f, a, b);
                }
            }
        }
    }

    /// Parallel selection and projection return exactly the rows the
    /// serial operators return, in the same order, at every worker
    /// count.
    #[test]
    fn parallel_relational_ops_match_serial(
        rows in 1usize..900,
        threshold in 0i64..100,
        morsel_rows in 8usize..200,
    ) {
        let ds = microdata_census(&CensusConfig {
            rows,
            seed: 7,
            ..Default::default()
        }).unwrap();
        let pred = Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(threshold));
        let serial_sel = ops::select(&ds, &pred).unwrap();
        let serial_proj = ops::project(&ds, &["AGE", "INCOME"]).unwrap();
        for workers in WORKER_COUNTS {
            let cfg = ExecConfig { workers, morsel_rows };
            let par_sel = ops::par_select(&ds, &pred, &cfg).unwrap();
            prop_assert_eq!(par_sel.rows(), serial_sel.rows());
            let par_proj = ops::par_project(&ds, &["AGE", "INCOME"], &cfg).unwrap();
            prop_assert_eq!(par_proj.rows(), serial_proj.rows());
        }
    }
}

/// A DBMS with one materialized census view and an explicit executor
/// configuration. The census generator is deterministic, so every
/// instance holds identical bytes — the shared testkit fixture at this
/// harness's historical knobs (dirty data, cold caches, no WAL).
fn census_dbms(rows: usize, cfg: ExecConfig) -> StatDbms {
    let mut dbms = sdbms_testkit::CensusFixture::new()
        .rows(rows)
        .pool_pages(512)
        .seed(42)
        .invalid_fraction(0.01)
        .outlier_fraction(0.01)
        .owner("differential")
        .crash_consistent(false)
        .warm(false)
        .build()
        .expect("fixture");
    dbms.set_exec_config(cfg);
    dbms
}

/// Full-stack determinism: every summary function, computed through the
/// whole DBMS (view store → parallel scan → Summary Database), returns
/// bit-identical results at 1, 2, 4, and 8 workers, and the column read
/// itself is byte-equal to the serial path.
#[test]
fn full_stack_summaries_bit_identical_across_worker_counts() {
    let attrs = ["AGE", "INCOME", "HOURS_WORKED"];
    // 3000 rows at 256-row morsels: 12 morsels, real contention at 8
    // workers.
    let runs: Vec<Vec<(String, String)>> = WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let mut dbms = census_dbms(
                3000,
                ExecConfig {
                    workers,
                    morsel_rows: 256,
                },
            );
            let mut out = Vec::new();
            for a in attrs {
                for f in all_functions() {
                    let served = dbms
                        .compute("v", a, &f, AccuracyPolicy::Exact)
                        .map(|(value, _)| format!("{value:?}"))
                        .unwrap_or_else(|e| format!("error: {e}"));
                    out.push((format!("{f}({a})"), served));
                }
            }
            out
        })
        .collect();
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            run, &runs[0],
            "{} workers diverged from 1 worker",
            WORKER_COUNTS[i]
        );
    }
    // And the workers=1 morsel path agrees with a straight serial
    // recompute of the stored column.
    let mut dbms = census_dbms(3000, ExecConfig::serial());
    for a in attrs {
        let col = dbms.column("v", a).expect("column");
        for f in all_functions() {
            let direct = f.compute(&col);
            let served = dbms.compute("v", a, &f, AccuracyPolicy::Exact);
            match (served, direct) {
                (Ok((got, _)), Ok(want)) => {
                    if is_exact_family(&f) {
                        assert_eq!(got, want, "{f}({a})");
                    } else {
                        assert!(got.approx_eq(&want, 1e-12), "{f}({a}): {got} vs {want}");
                    }
                }
                (Err(_), Err(_)) => {}
                (s, d) => panic!("{f}({a}): answerability diverged: {s:?} vs {d:?}"),
            }
        }
    }
}

/// Missing values and coded attributes flow through the parallel path
/// unchanged: a view whose column mixes Int / Missing / Code values
/// gets bit-identical summaries at every worker count.
#[test]
fn missing_and_coded_values_identical_across_workers() {
    let schema = Schema::new(vec![
        Attribute::category("TAG", DataType::Code),
        Attribute::measured("X", DataType::Int),
    ])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..2600i64)
        .map(|i| {
            let x = match i % 9 {
                0 | 4 => Value::Missing,
                _ => Value::Int((i * 31) % 451 - 200),
            };
            vec![Value::Code(u32::try_from(i % 6).unwrap()), x]
        })
        .collect();
    let ds = DataSet::from_rows("mixed", schema, rows).expect("dataset");

    let mut reference: Option<Vec<String>> = None;
    for workers in WORKER_COUNTS {
        let mut dbms = StatDbms::with_env(StorageEnv::new(512));
        dbms.load_raw(&ds).expect("load");
        dbms.materialize(ViewDefinition::scan("v", "mixed"), "differential")
            .expect("materialize");
        dbms.set_exec_config(ExecConfig {
            workers,
            morsel_rows: 256,
        });
        let mut results = Vec::new();
        // The coded column only admits the categorical functions.
        for f in [StatFunction::Mode, StatFunction::UniqueCount] {
            let (value, _) = dbms
                .compute("v", "TAG", &f, AccuracyPolicy::Exact)
                .expect("categorical summaries work on codes");
            results.push(format!("{f}(TAG) = {value:?}"));
        }
        for f in all_functions() {
            let served = dbms
                .compute("v", "X", &f, AccuracyPolicy::Exact)
                .map(|(value, _)| format!("{value:?}"))
                .unwrap_or_else(|e| format!("error: {e}"));
            results.push(format!("{f}(X) = {served}"));
        }
        match &reference {
            None => reference = Some(results),
            Some(want) => assert_eq!(&results, want, "{workers} workers diverged"),
        }
    }
}

// ---- zone-map pruning & compressed-domain execution ------------------------
//
// The pruned scan path (`filter_table_rows`) and the run-aware profile
// path (`profile_table_column_runs`) carry the same contract as the
// parallel executor itself: *bit-identical* to the naive
// decode-everything scan, at every worker count, for every predicate —
// pruning may only skip work, never change an answer.

use sdbms::columnar::{Compression, TransposedFile};
use sdbms::exec::{profile_table_column, profile_table_column_runs};
use sdbms::relational::filter_table_rows;

/// An RLE-friendly mixed table: a plateau'd integer column (so zone
/// maps have narrow, refutable bounds), a noisy integer column with
/// missing values, a float column, and a low-cardinality coded tag.
fn pruning_dataset(rows: usize, block_width: i64) -> DataSet {
    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("X", DataType::Int),
        Attribute::measured("F", DataType::Float),
        Attribute::category("TAG", DataType::Code),
    ])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            let x = if i % 11 == 3 {
                Value::Missing
            } else {
                Value::Int((i * 37) % 401 - 200)
            };
            vec![
                Value::Int(i / block_width),
                x,
                Value::Float((i % 97) as f64 / 8.0),
                Value::Code(u32::try_from(i % 5).unwrap()),
            ]
        })
        .collect();
    DataSet::from_rows("prune", schema, rows).expect("dataset")
}

/// Load the pruning dataset into a transposed store with per-column
/// compression exercising all three segment encodings.
fn pruning_store(ds: &DataSet) -> TransposedFile {
    let env = StorageEnv::new(512);
    let compressions = [
        Compression::Rle,
        Compression::None,
        Compression::None,
        Compression::Dictionary,
    ];
    let mut store =
        TransposedFile::create_with(env.pool.clone(), ds.schema().clone(), &compressions)
            .expect("create");
    store.bulk_append(ds).expect("load");
    store
}

/// The oracle: evaluate the predicate against the in-memory rows,
/// independent of the storage and pruning layers entirely.
fn naive_matches(ds: &DataSet, pred: &Predicate) -> Vec<usize> {
    let bound = pred.bind(ds.schema()).expect("bind");
    ds.rows()
        .iter()
        .enumerate()
        .filter_map(|(i, r)| bound.eval(r).then_some(i))
        .collect()
}

/// Pruned predicate scans return exactly the naive matches at 0%, low,
/// ~50%, and 100% selectivity, over missing and coded data, through
/// conjunction / disjunction / negation and flipped literals, at every
/// worker count.
#[test]
fn pruned_scan_bit_identical_to_naive_at_every_selectivity() {
    let ds = pruning_dataset(2148, 64); // ragged 100-row tail segment
    let store = pruning_store(&ds);
    let preds: Vec<(&str, Predicate)> =
        vec![
            ("0%: refuted everywhere", Predicate::col_eq("BLOCK", -1i64)),
            ("single block (~3%)", Predicate::col_eq("BLOCK", 7i64)),
            (
                "~50%",
                Predicate::cmp(Expr::col("BLOCK"), CmpOp::Lt, Expr::lit(17i64)),
            ),
            ("100%: whole table", Predicate::True),
            ("missing probe", Predicate::IsMissing("X".into())),
            ("coded equality", Predicate::col_eq("TAG", Value::Code(3))),
            (
                "conjunction",
                Predicate::cmp(Expr::col("BLOCK"), CmpOp::Ge, Expr::lit(20i64))
                    .and(Predicate::cmp(Expr::col("X"), CmpOp::Gt, Expr::lit(0i64))),
            ),
            (
                "negated disjunction",
                Predicate::col_eq("BLOCK", 2i64)
                    .or(Predicate::cmp(
                        Expr::col("F"),
                        CmpOp::Le,
                        Expr::lit(Value::Float(1.5)),
                    ))
                    .negate(),
            ),
            (
                "flipped literal",
                Predicate::cmp(Expr::lit(5i64), CmpOp::Gt, Expr::col("BLOCK")),
            ),
        ];
    for (label, pred) in preds {
        let want = naive_matches(&ds, &pred);
        for workers in WORKER_COUNTS {
            let cfg = ExecConfig {
                workers,
                morsel_rows: 256,
            };
            let got = filter_table_rows(&store, &pred, &cfg).expect("pruned scan");
            assert_eq!(got, want, "{label} at {workers} workers");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized differential: arbitrary comparison predicates
    /// (optionally negated or widened with a missing-probe) over random
    /// table sizes, block widths, morsel sizes, and worker counts give
    /// exactly the naive row set.
    #[test]
    fn prop_pruned_scan_matches_naive(
        rows in 1usize..1200,
        block_width in 1i64..128,
        thr in -220i64..260,
        op_i in 0usize..6,
        col_i in 0usize..2,
        negate in any::<bool>(),
        with_missing_arm in any::<bool>(),
        morsel_rows in 16usize..512,
        workers in 1usize..9,
    ) {
        let ds = pruning_dataset(rows, block_width);
        let store = pruning_store(&ds);
        let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_i];
        let col = ["BLOCK", "X"][col_i];
        let mut pred = Predicate::cmp(Expr::col(col), op, Expr::lit(thr));
        if negate {
            pred = pred.negate();
        }
        if with_missing_arm {
            pred = pred.or(Predicate::IsMissing("X".into()));
        }
        let want = naive_matches(&ds, &pred);
        let got = filter_table_rows(
            &store,
            &pred,
            &ExecConfig { workers, morsel_rows },
        ).expect("pruned scan");
        prop_assert_eq!(got, want);
    }
}

/// Run-aware profiles (consuming `(value, run_len)` pairs straight from
/// the compressed segments) are bit-identical to decode-everything
/// profiles at every worker count, for every encoding.
#[test]
fn run_aware_profiles_bit_identical_to_decode_profiles() {
    let ds = pruning_dataset(3000, 64);
    let store = pruning_store(&ds);
    for attr in ["BLOCK", "X", "F", "TAG"] {
        let reference = profile_table_column(
            &store,
            attr,
            &ExecConfig {
                workers: 1,
                morsel_rows: 256,
            },
        )
        .expect("decode profile");
        for workers in WORKER_COUNTS {
            let cfg = ExecConfig {
                workers,
                morsel_rows: 256,
            };
            let decoded = profile_table_column(&store, attr, &cfg).expect("decode profile");
            let by_runs = profile_table_column_runs(&store, attr, &cfg).expect("run profile");
            assert_eq!(
                decoded, reference,
                "{attr}: decode path at {workers} workers"
            );
            assert_eq!(by_runs, reference, "{attr}: run path at {workers} workers");
        }
    }
}

/// Zone maps never serve stale bounds: after `update_where` writes a
/// value no segment previously contained, a second pruned scan for that
/// value must find every updated row (a stale map would refute it and
/// silently skip them).
#[test]
fn zone_maps_stay_fresh_across_update_where() {
    const SENTINEL: i64 = 1_000_003;
    for workers in WORKER_COUNTS {
        let mut dbms = census_dbms(
            3000,
            ExecConfig {
                workers,
                morsel_rows: 256,
            },
        );
        // The sentinel occurs nowhere, so this scan is pruned to zero
        // morsels — verified against the decoded column.
        let age = dbms.column("v", "AGE").expect("column");
        let natural = age.iter().filter(|v| **v == Value::Int(SENTINEL)).count();
        assert_eq!(natural, 0, "sentinel must start absent");
        let pre = dbms
            .update_where(
                "v",
                &Predicate::col_eq("AGE", SENTINEL),
                &[("INCOME", Expr::lit(0.0f64))],
            )
            .expect("no-op update");
        assert_eq!(pre.rows_matched, 0, "{workers} workers");
        // Now write the sentinel into live segments, dirtying their
        // zone maps…
        let hit = dbms
            .update_where(
                "v",
                &Predicate::cmp(Expr::col("AGE"), CmpOp::Ge, Expr::lit(80i64)),
                &[("AGE", Expr::lit(SENTINEL))],
            )
            .expect("update");
        assert!(hit.rows_matched > 0, "test needs rows with AGE >= 80");
        // …and a pruned scan for it must see every touched row.
        let post = dbms
            .update_where(
                "v",
                &Predicate::col_eq("AGE", SENTINEL),
                &[("INCOME", Expr::lit(1.0f64))],
            )
            .expect("re-scan");
        assert_eq!(
            post.rows_matched, hit.rows_matched,
            "{workers} workers: stale zone map hid updated rows"
        );
    }
}

// ---- vectorized batch kernels & zero-copy mmap reads -----------------------
//
// The typed-batch kernel path (`read_column_batch` + fused
// filter/aggregate loops) carries the same contract as everything
// above: bit-identical to the per-cell Value path at every worker
// count, including the adversarial float inputs (NaN, signed zero)
// that a fast path is most likely to get wrong. And a scan-sealed
// mmap read must serve exactly the bytes the buffer pool serves.

use sdbms::columnar::TableStore;
use sdbms::exec::ColumnProfile;

/// `==` on profiles is too strict once NaN is in play: derived float
/// equality makes a NaN-bearing profile unequal even to itself. Compare
/// the accumulator *bits* instead, grouping NaN with NaN.
fn profile_bits_eq(a: &ColumnProfile, b: &ColumnProfile) -> bool {
    let bits4 = |p: Option<(f64, u64, f64, u64)>| {
        p.map(|(lo, ln, hi, hn)| (lo.to_bits(), ln, hi.to_bits(), hn))
    };
    let (an, am, aq) = a.moments.parts();
    let (bn, bm, bq) = b.moments.parts();
    a.rows == b.rows
        && a.non_numeric == b.non_numeric
        && an == bn
        && am.to_bits() == bm.to_bits()
        && aq.to_bits() == bq.to_bits()
        && bits4(a.minmax.parts()) == bits4(b.minmax.parts())
        && a.freq.entries().count() == b.freq.entries().count()
        && a.freq
            .entries()
            .zip(b.freq.entries())
            .all(|((va, ca), (vb, cb))| va.group_eq(vb) && ca == cb)
        && a.numbers.len() == b.numbers.len()
        && a.numbers
            .iter()
            .zip(&b.numbers)
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A float column seeded with NaN, signed zero, and missing values,
/// next to an RLE plateau column — the inputs that distinguish a
/// careless f64 fast path from a `total_cmp`-faithful one.
fn nan_dataset(rows: usize) -> DataSet {
    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("F", DataType::Float),
    ])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            let f = match i % 9 {
                0 => Value::Missing,
                3 => Value::Float(f64::NAN),
                6 => Value::Float(-0.0),
                _ => Value::Float((i * 13 % 103) as f64 / 8.0 - 6.0),
            };
            vec![Value::Int(i / 64), f]
        })
        .collect();
    DataSet::from_rows("nanvals", schema, rows).expect("dataset")
}

fn nan_store(ds: &DataSet) -> TransposedFile {
    let env = StorageEnv::new(512);
    let mut store = TransposedFile::create_with(
        env.pool.clone(),
        ds.schema().clone(),
        &[Compression::Rle, Compression::None],
    )
    .expect("create");
    store.bulk_append(ds).expect("load");
    store
}

/// Batch-kernel profiles over NaN / signed-zero / missing floats are
/// bit-identical to the scalar per-cell path at every worker count —
/// and so is the run-aware path over the RLE column.
#[test]
fn batch_profiles_with_nan_floats_bit_identical_to_scalar() {
    let ds = nan_dataset(2148); // ragged tail segment
    let store = nan_store(&ds);
    for attr in ["BLOCK", "F"] {
        let col: Vec<Value> = ds.column(attr).expect("column").cloned().collect();
        let reference = profile_values(
            &col,
            &ExecConfig {
                workers: 1,
                morsel_rows: 256,
            },
        );
        for workers in WORKER_COUNTS {
            let cfg = ExecConfig {
                workers,
                morsel_rows: 256,
            };
            let batched = profile_table_column(&store, attr, &cfg).expect("batch profile");
            assert!(
                profile_bits_eq(&batched, &reference),
                "{attr}: batch path diverged at {workers} workers"
            );
            let by_runs = profile_table_column_runs(&store, attr, &cfg).expect("run profile");
            assert!(
                profile_bits_eq(&by_runs, &reference),
                "{attr}: run path diverged at {workers} workers"
            );
        }
    }
}

/// Compiled-predicate bitmap filters agree with the scalar oracle on
/// NaN floats: `total_cmp` ordering (NaN above +inf, -0.0 below +0.0)
/// survives the typed fast path, at every comparison op and worker
/// count.
#[test]
fn batch_filters_with_nan_floats_match_scalar_oracle() {
    let ds = nan_dataset(2148);
    let store = nan_store(&ds);
    let preds: Vec<(&str, Predicate)> = vec![
        (
            "F > 0.0 (NaN sorts above)",
            Predicate::cmp(Expr::col("F"), CmpOp::Gt, Expr::lit(Value::Float(0.0))),
        ),
        (
            "F <= 1.5",
            Predicate::cmp(Expr::col("F"), CmpOp::Le, Expr::lit(Value::Float(1.5))),
        ),
        (
            "F == -0.0 (total order separates zeros)",
            Predicate::cmp(Expr::col("F"), CmpOp::Eq, Expr::lit(Value::Float(-0.0))),
        ),
        (
            "F != 0.0 (missing still excluded)",
            Predicate::cmp(Expr::col("F"), CmpOp::Ne, Expr::lit(Value::Float(0.0))),
        ),
        (
            "negated Ge picks up NaN and missing arm",
            Predicate::cmp(Expr::col("F"), CmpOp::Ge, Expr::lit(Value::Float(-6.0)))
                .negate()
                .or(Predicate::IsMissing("F".into())),
        ),
    ];
    for (label, pred) in preds {
        let want = naive_matches(&ds, &pred);
        for workers in WORKER_COUNTS {
            let got = filter_table_rows(
                &store,
                &pred,
                &ExecConfig {
                    workers,
                    morsel_rows: 256,
                },
            )
            .expect("kernel filter");
            assert_eq!(got, want, "{label} at {workers} workers");
        }
    }
}

/// A scan-sealed mmap image serves byte-identical data to the buffer
/// pool: every column, every encoding, both the Value read path and the
/// typed batch path. Mutation drops the seal and the next read sees the
/// new bytes through the pool again.
#[test]
fn mmap_reads_byte_identical_to_buffer_pool_reads() {
    let ds = pruning_dataset(2148, 64);
    let mut store = pruning_store(&ds);
    let attrs = ["BLOCK", "X", "F", "TAG"];
    let pool_cols: Vec<Vec<Value>> = attrs
        .iter()
        .map(|a| {
            store
                .read_column_range(a, 0, store.len())
                .expect("pool read")
        })
        .collect();
    assert!(
        store.seal_for_scan().expect("seal"),
        "transposed file seals"
    );
    assert!(store.scan_sealed());
    for (i, attr) in attrs.iter().enumerate() {
        let sealed_vals = store
            .read_column_range(attr, 0, store.len())
            .expect("sealed read");
        assert_eq!(sealed_vals, pool_cols[i], "{attr}: sealed read diverged");
        let batch = store
            .read_column_batch(attr, 0, store.len())
            .expect("sealed batch");
        assert_eq!(
            batch.to_values(),
            pool_cols[i],
            "{attr}: sealed batch diverged"
        );
    }
    // Sealing is idempotent and survives repeated reads.
    assert!(store.seal_for_scan().expect("re-seal"));
    // Mutation unseals; the write is immediately visible via the pool.
    let old = store.set_cell(0, "X", Value::Int(777)).expect("set_cell");
    assert_ne!(old, Value::Int(777));
    assert!(!store.scan_sealed(), "mutation must drop the seal");
    assert_eq!(
        store.read_column_range("X", 0, 1).expect("post-write read")[0],
        Value::Int(777)
    );
}

/// Full stack: with mmap scans enabled and the view sealed, every
/// summary function returns exactly what the buffer-pool path returns,
/// at every worker count.
#[test]
fn mmap_scans_serve_identical_summaries_at_every_worker_count() {
    let attrs = ["AGE", "INCOME", "HOURS_WORKED"];
    let mut reference: Option<Vec<String>> = None;
    for mmap in [false, true] {
        for workers in WORKER_COUNTS {
            let mut dbms = census_dbms(
                3000,
                ExecConfig {
                    workers,
                    morsel_rows: 256,
                },
            );
            dbms.set_mmap_scans(mmap);
            if mmap {
                assert!(dbms.seal_view_for_scan("v").expect("seal"));
                assert!(dbms.view_scan_sealed("v").expect("sealed?"));
            }
            let mut out = Vec::new();
            for a in attrs {
                for f in all_functions() {
                    let served = dbms
                        .compute("v", a, &f, AccuracyPolicy::Exact)
                        .map(|(value, _)| format!("{value:?}"))
                        .unwrap_or_else(|e| format!("error: {e}"));
                    out.push(format!("{f}({a}) = {served}"));
                }
            }
            match &reference {
                None => reference = Some(out),
                Some(want) => {
                    assert_eq!(&out, want, "mmap={mmap} workers={workers} diverged")
                }
            }
        }
    }
}

/// Epoch safety: while a snapshot pins the view's store, sealing is
/// refused (the mmap image can never be installed under a reader);
/// once the snapshot drops, the seal succeeds, and a subsequent write
/// unseals again.
#[test]
fn mmap_seal_refused_while_snapshot_pinned() {
    let mut dbms = census_dbms(
        1500,
        ExecConfig {
            workers: 4,
            morsel_rows: 256,
        },
    );
    let snap = dbms.snapshot("v").expect("snapshot");
    assert!(
        !dbms.seal_view_for_scan("v").expect("seal attempt"),
        "seal must be refused while a snapshot pins the store"
    );
    assert!(!dbms.view_scan_sealed("v").expect("sealed?"));
    // The pinned snapshot still reads its version undisturbed.
    assert_eq!(snap.column("AGE").expect("snapshot read").len(), 1500);
    drop(snap);
    assert!(
        dbms.seal_view_for_scan("v").expect("seal"),
        "seal must succeed once the pin drains"
    );
    assert!(dbms.view_scan_sealed("v").expect("sealed?"));
    // A write through the DBMS drops the seal before touching bytes.
    let report = dbms
        .update_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Ge, Expr::lit(80i64)),
            &[("INCOME", Expr::lit(0.0f64))],
        )
        .expect("update");
    assert!(report.rows_matched > 0, "test needs rows with AGE >= 80");
    assert!(
        !dbms.view_scan_sealed("v").expect("sealed?"),
        "writes must unseal the view"
    );
}

/// A view materialized through a relational pipeline (select + project)
/// behaves identically under the parallel executor — the scan side of
/// selection is morsel-parallel inside the DBMS too.
#[test]
fn derived_view_summaries_identical_across_workers() {
    let mut reference: Option<String> = None;
    for workers in WORKER_COUNTS {
        let mut dbms = census_dbms(
            1500,
            ExecConfig {
                workers,
                morsel_rows: 128,
            },
        );
        let def = ViewDefinition::scan("adults", "census_microdata")
            .select(Predicate::cmp(
                Expr::col("AGE"),
                CmpOp::Ge,
                Expr::lit(18i64),
            ))
            .project(&["AGE", "INCOME"]);
        dbms.materialize(def, "differential").expect("materialize");
        let (median, _) = dbms
            .compute(
                "adults",
                "INCOME",
                &StatFunction::Median,
                AccuracyPolicy::Exact,
            )
            .expect("median");
        let (mean, _) = dbms
            .compute("adults", "AGE", &StatFunction::Mean, AccuracyPolicy::Exact)
            .expect("mean");
        let got = format!("{median:?} / {mean:?}");
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{workers} workers diverged"),
        }
    }
}
