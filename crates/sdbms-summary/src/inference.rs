//! Inference over cached results — the "Database Abstract" idea.
//!
//! §5.1 discusses Rowe's Database Abstract, where "a set of inference
//! rules will be used to calculate the results of other functions,
//! based on the values stored in the Database Abstract", sometimes as
//! *estimates*. This module brings that into the Summary Database:
//! before computing a missing function from data, [`infer`] tries to
//! derive it from entries that are already cached.
//!
//! Two strengths of derivation:
//! - **Exact**: algebra between aggregates — mean = sum / count,
//!   std-dev = √variance, count = histogram total, …
//! - **Estimate**: distributional reads off a cached histogram —
//!   median by within-bin interpolation, min/max from the outermost
//!   occupied bins. These carry the basis they were derived from so
//!   the analyst can judge them (Rowe's system did the same).

use crate::db::SummaryDb;
use crate::error::Result;
use crate::function::StatFunction;
use crate::value::SummaryValue;

/// A result obtained without any data access.
#[derive(Debug, Clone, PartialEq)]
pub enum Inferred {
    /// Exactly equal to what a recompute would produce.
    Exact(SummaryValue),
    /// An approximation, with a human-readable derivation basis.
    Estimate {
        /// The estimated value.
        value: f64,
        /// What it was derived from (e.g. `"histogram_20"`).
        basis: String,
    },
}

/// Fetch a *fresh* cached scalar for `f(attribute)`, if present.
fn fresh_scalar(db: &SummaryDb, attribute: &str, f: &StatFunction) -> Result<Option<f64>> {
    Ok(db
        .lookup_fresh(attribute, f)?
        .and_then(|e| e.result.as_scalar()))
}

/// Try to infer `function(attribute)` from other fresh cache entries.
/// Returns `None` when no rule applies — the caller then computes from
/// data as usual.
pub fn infer(db: &SummaryDb, attribute: &str, function: &StatFunction) -> Result<Option<Inferred>> {
    // ---- exact algebraic rules -------------------------------------
    match function {
        StatFunction::Mean => {
            if let (Some(sum), Some(count)) = (
                fresh_scalar(db, attribute, &StatFunction::Sum)?,
                fresh_scalar(db, attribute, &StatFunction::Count)?,
            ) {
                if count > 0.0 {
                    return Ok(Some(Inferred::Exact(SummaryValue::Scalar(sum / count))));
                }
            }
        }
        StatFunction::Sum => {
            if let (Some(mean), Some(count)) = (
                fresh_scalar(db, attribute, &StatFunction::Mean)?,
                fresh_scalar(db, attribute, &StatFunction::Count)?,
            ) {
                return Ok(Some(Inferred::Exact(SummaryValue::Scalar(mean * count))));
            }
        }
        StatFunction::StdDev => {
            if let Some(var) = fresh_scalar(db, attribute, &StatFunction::Variance)? {
                if var >= 0.0 {
                    return Ok(Some(Inferred::Exact(SummaryValue::Scalar(var.sqrt()))));
                }
            }
        }
        StatFunction::Variance => {
            if let Some(sd) = fresh_scalar(db, attribute, &StatFunction::StdDev)? {
                return Ok(Some(Inferred::Exact(SummaryValue::Scalar(sd * sd))));
            }
        }
        _ => {}
    }

    // ---- derivations from a cached histogram -----------------------
    let histogram = db
        .entries_for_attribute(attribute)?
        .into_iter()
        .filter(|e| {
            e.freshness == crate::db::Freshness::Fresh
                && matches!(e.function, StatFunction::Histogram(_))
        })
        .find_map(|e| match e.result {
            SummaryValue::Histogram(h) => Some((e.function.name(), h)),
            _ => None,
        });
    let Some((basis, h)) = histogram else {
        return Ok(None);
    };

    match function {
        StatFunction::Count => {
            // Exact: the histogram counted every non-missing value
            // (overflow bins included).
            Ok(Some(Inferred::Exact(SummaryValue::Count(h.total()))))
        }
        StatFunction::Min if h.below() == 0 && h.total() > 0 => {
            // Estimate: the left edge of the first occupied bin.
            let i = h.counts().iter().position(|&c| c > 0);
            Ok(i.map(|i| Inferred::Estimate {
                value: h.edges()[i],
                basis: basis.clone(),
            }))
        }
        StatFunction::Max if h.above() == 0 && h.total() > 0 => {
            let i = h.counts().iter().rposition(|&c| c > 0);
            Ok(i.map(|i| Inferred::Estimate {
                value: h.edges()[i + 1],
                basis: basis.clone(),
            }))
        }
        StatFunction::Median | StatFunction::Quantile(_) => {
            let q = match function {
                StatFunction::Median => 0.5,
                StatFunction::Quantile(pm) => f64::from(*pm) / 1000.0,
                // lint: allow(no-panic): the enclosing match arm admits only Median and Quantile
                _ => unreachable!(),
            };
            // Overflow mass has unknown position: refuse rather than
            // guess badly.
            if h.below() > 0 || h.above() > 0 || h.total() == 0 {
                return Ok(None);
            }
            let target = q * h.total() as f64;
            let mut acc = 0.0;
            for (i, &c) in h.counts().iter().enumerate() {
                let next = acc + c as f64;
                if next >= target && c > 0 {
                    // Linear interpolation within the bin.
                    let frac = ((target - acc) / c as f64).clamp(0.0, 1.0);
                    let lo = h.edges()[i];
                    let hi = h.edges()[i + 1];
                    return Ok(Some(Inferred::Estimate {
                        value: lo + frac * (hi - lo),
                        basis,
                    }));
                }
                acc = next;
            }
            Ok(None)
        }
        StatFunction::Mode => Ok(h
            .mode_estimate()
            .ok()
            .map(|value| Inferred::Estimate { value, basis })),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintain::{get_or_compute, AccuracyPolicy};
    use sdbms_data::Value;
    use sdbms_storage::StorageEnv;

    fn db() -> SummaryDb {
        SummaryDb::create(StorageEnv::new(64).pool).unwrap()
    }

    fn column(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| Value::Int(((i * 37) % 1000) as i64))
            .collect()
    }

    fn seed(db: &SummaryDb, col: &[Value], fns: &[StatFunction]) {
        for f in fns {
            get_or_compute(db, "X", f, AccuracyPolicy::Exact, &mut || Ok(col.to_vec())).unwrap();
        }
    }

    #[test]
    fn mean_from_sum_and_count_is_exact() {
        let db = db();
        let col = column(500);
        seed(&db, &col, &[StatFunction::Sum, StatFunction::Count]);
        let inferred = infer(&db, "X", &StatFunction::Mean).unwrap().unwrap();
        let direct = StatFunction::Mean.compute(&col).unwrap();
        match inferred {
            Inferred::Exact(v) => assert!(v.approx_eq(&direct, 1e-12)),
            other => panic!("expected exact, got {other:?}"),
        }
        // The reverse rule too.
        let db2 = db;
        db2.remove("X", &StatFunction::Sum).unwrap();
        seed(&db2, &col, &[StatFunction::Mean]);
        let back = infer(&db2, "X", &StatFunction::Sum).unwrap().unwrap();
        let direct = StatFunction::Sum.compute(&col).unwrap();
        match back {
            Inferred::Exact(v) => assert!(v.approx_eq(&direct, 1e-9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stddev_variance_bidirectional() {
        let db = db();
        let col = column(100);
        seed(&db, &col, &[StatFunction::Variance]);
        let sd = infer(&db, "X", &StatFunction::StdDev).unwrap().unwrap();
        let direct = StatFunction::StdDev.compute(&col).unwrap();
        match sd {
            Inferred::Exact(v) => assert!(v.approx_eq(&direct, 1e-12)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_rule_no_answer() {
        let db = db();
        // Nothing cached at all.
        assert_eq!(infer(&db, "X", &StatFunction::Mean).unwrap(), None);
        // Count alone is not enough for the mean.
        seed(&db, &column(10), &[StatFunction::Count]);
        assert_eq!(infer(&db, "X", &StatFunction::Mean).unwrap(), None);
    }

    #[test]
    fn stale_entries_never_feed_inference() {
        let db = db();
        let col = column(100);
        seed(&db, &col, &[StatFunction::Sum, StatFunction::Count]);
        db.invalidate_attribute("X").unwrap();
        assert_eq!(infer(&db, "X", &StatFunction::Mean).unwrap(), None);
    }

    #[test]
    fn count_from_histogram_exact() {
        let db = db();
        let mut col = column(300);
        col.push(Value::Missing);
        seed(&db, &col, &[StatFunction::Histogram(16)]);
        let c = infer(&db, "X", &StatFunction::Count).unwrap().unwrap();
        assert_eq!(
            c,
            Inferred::Exact(SummaryValue::Count(300)),
            "missing excluded"
        );
    }

    #[test]
    fn median_estimate_from_histogram_is_close() {
        let db = db();
        let col = column(5_000);
        seed(&db, &col, &[StatFunction::Histogram(50)]);
        let est = infer(&db, "X", &StatFunction::Median).unwrap().unwrap();
        let direct = StatFunction::Median
            .compute(&col)
            .unwrap()
            .as_scalar()
            .unwrap();
        match est {
            Inferred::Estimate { value, basis } => {
                assert_eq!(basis, "histogram_50");
                let rel = (value - direct).abs() / direct.abs().max(1.0);
                assert!(rel < 0.05, "estimate {value} vs true {direct}");
            }
            other => panic!("{other:?}"),
        }
        // Quantiles too.
        let q9 = infer(&db, "X", &StatFunction::Quantile(900))
            .unwrap()
            .unwrap();
        let direct_q9 = StatFunction::Quantile(900)
            .compute(&col)
            .unwrap()
            .as_scalar()
            .unwrap();
        match q9 {
            Inferred::Estimate { value, .. } => {
                assert!((value - direct_q9).abs() / direct_q9 < 0.05);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extremes_estimated_from_histogram_bins() {
        let db = db();
        let col = column(1_000);
        seed(&db, &col, &[StatFunction::Histogram(20)]);
        let min_est = infer(&db, "X", &StatFunction::Min).unwrap().unwrap();
        let max_est = infer(&db, "X", &StatFunction::Max).unwrap().unwrap();
        let (true_min, true_max) = (0.0, 999.0);
        match (min_est, max_est) {
            (Inferred::Estimate { value: lo, .. }, Inferred::Estimate { value: hi, .. }) => {
                // The estimates bound the truth within one bin width.
                let bin = 999.0 / 20.0;
                assert!((lo - true_min).abs() <= bin + 1.0);
                assert!((hi - true_max).abs() <= bin + 1.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mode_estimate_from_histogram() {
        let db = db();
        let mut col = column(200);
        // Pile mass at 500.
        col.extend(std::iter::repeat_n(Value::Int(500), 150));
        seed(&db, &col, &[StatFunction::Histogram(10)]);
        let est = infer(&db, "X", &StatFunction::Mode).unwrap().unwrap();
        match est {
            Inferred::Estimate { value, .. } => {
                assert!((400.0..620.0).contains(&value), "mode est {value}");
            }
            other => panic!("{other:?}"),
        }
    }
}
