//! The catalogue of cacheable statistical functions.
//!
//! §3.2: "Searching a Summary Database will require using a function
//! name-attribute name(s) pair as the search argument." A
//! [`StatFunction`] is the function-name half of that pair, with a
//! canonical string form (the index key), a batch implementation over
//! column values, and a *maintenance class* that tells the engine how
//! the cached result reacts to updates (§4.2's differentiable vs
//! "difficult" functions).

use std::fmt;

use sdbms_data::Value;
use sdbms_stats::{descriptive, quantile, FrequencyTable, Histogram, Moments};

use crate::error::Result;
use crate::value::SummaryValue;

/// Largest distinct-value count for which Mode / UniqueCount keep a
/// full frequency table as incremental state. Beyond this, entries are
/// maintained by invalidation: storage can hold arbitrarily large
/// entries (long records), but auxiliary state that rivals the column
/// in size defeats the purpose of a summary cache.
pub const MAX_FREQ_AUX_DISTINCT: usize = 128;

/// A cacheable function over one attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StatFunction {
    /// Count of non-missing values.
    Count,
    /// Sum.
    Sum,
    /// Mean.
    Mean,
    /// Sample variance.
    Variance,
    /// Sample standard deviation.
    StdDev,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median.
    Median,
    /// Q1, median, Q3 (one vector entry, as Figure 4 allows).
    Quartiles,
    /// Arbitrary quantile, in per-mille (so the key stays hashable);
    /// `Quantile(50)` is the 5th percentile.
    Quantile(u16),
    /// Most frequent value.
    Mode,
    /// Number of distinct values.
    UniqueCount,
    /// Equi-width histogram with this many bins over the column range.
    Histogram(u16),
    /// Trimmed mean between two per-mille quantile bounds.
    TrimmedMean(u16, u16),
}

/// How a cached result can be maintained under updates (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceClass {
    /// Fully differentiable: O(1) exact update from constant-size
    /// auxiliary state (count/sum/M2 — the Koenig & Paige aggregates).
    Differentiable,
    /// Insert is O(1) but deleting the extreme forces a rescan
    /// (min/max).
    SemiDifferentiable,
    /// Order statistics: maintained through the §4.2 median window,
    /// with occasional single-pass regeneration.
    OrderStatistic,
    /// Incrementally maintainable through a frequency table or
    /// histogram (bounded-size state, O(log u) updates).
    Distributional,
    /// No incremental form; invalidate on update (§4.3 fallback).
    NonIncremental,
}

impl StatFunction {
    /// Canonical name — the function half of the Summary Database key.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            StatFunction::Count => "count".into(),
            StatFunction::Sum => "sum".into(),
            StatFunction::Mean => "mean".into(),
            StatFunction::Variance => "variance".into(),
            StatFunction::StdDev => "std_dev".into(),
            StatFunction::Min => "min".into(),
            StatFunction::Max => "max".into(),
            StatFunction::Median => "median".into(),
            StatFunction::Quartiles => "quartiles".into(),
            StatFunction::Quantile(pm) => format!("quantile_{pm}"),
            StatFunction::Mode => "mode".into(),
            StatFunction::UniqueCount => "unique_count".into(),
            StatFunction::Histogram(bins) => format!("histogram_{bins}"),
            StatFunction::TrimmedMean(lo, hi) => format!("trimmed_mean_{lo}_{hi}"),
        }
    }

    /// How this function's cache entry is maintained.
    #[must_use]
    pub fn maintenance_class(&self) -> MaintenanceClass {
        match self {
            StatFunction::Count
            | StatFunction::Sum
            | StatFunction::Mean
            | StatFunction::Variance
            | StatFunction::StdDev => MaintenanceClass::Differentiable,
            StatFunction::Min | StatFunction::Max => MaintenanceClass::SemiDifferentiable,
            StatFunction::Median | StatFunction::Quantile(_) | StatFunction::Quartiles => {
                MaintenanceClass::OrderStatistic
            }
            StatFunction::Mode | StatFunction::UniqueCount | StatFunction::Histogram(_) => {
                MaintenanceClass::Distributional
            }
            StatFunction::TrimmedMean(_, _) => MaintenanceClass::NonIncremental,
        }
    }

    /// Whether the function needs numeric input (everything except the
    /// value-based Mode / UniqueCount).
    #[must_use]
    pub fn needs_numeric(&self) -> bool {
        !matches!(self, StatFunction::Mode | StatFunction::UniqueCount)
    }

    /// Compute the function over a column of values (missing values
    /// skipped for numeric functions, counted as a value by Mode /
    /// UniqueCount only if present).
    pub fn compute(&self, values: &[Value]) -> Result<SummaryValue> {
        let nums = || -> Vec<f64> { values.iter().filter_map(Value::as_f64).collect() };
        Ok(match self {
            StatFunction::Count => SummaryValue::Count(nums().len() as u64),
            StatFunction::Sum => SummaryValue::Scalar(descriptive::sum(&nums())),
            StatFunction::Mean => SummaryValue::Scalar(descriptive::mean(&nums())?),
            StatFunction::Variance => SummaryValue::Scalar(descriptive::variance(&nums())?),
            StatFunction::StdDev => SummaryValue::Scalar(descriptive::std_dev(&nums())?),
            StatFunction::Min => SummaryValue::Scalar(descriptive::min(&nums())?),
            StatFunction::Max => SummaryValue::Scalar(descriptive::max(&nums())?),
            StatFunction::Median => SummaryValue::Scalar(quantile::median(&nums())?),
            StatFunction::Quartiles => {
                let (q1, q2, q3) = quantile::quartiles(&nums())?;
                SummaryValue::Vector(vec![q1, q2, q3])
            }
            StatFunction::Quantile(pm) => {
                SummaryValue::Scalar(quantile::quantile(&nums(), f64::from(*pm) / 1000.0)?)
            }
            StatFunction::Mode => {
                let t = FrequencyTable::from_values(values.iter());
                let (v, c) = t.mode()?;
                SummaryValue::ModalValue(v, c)
            }
            StatFunction::UniqueCount => {
                let t = FrequencyTable::from_values(values.iter());
                SummaryValue::Count(t.unique_count() as u64)
            }
            StatFunction::Histogram(bins) => {
                let h = Histogram::from_data(&nums(), usize::from(*bins))?;
                SummaryValue::Histogram(h)
            }
            StatFunction::TrimmedMean(lo, hi) => SummaryValue::Scalar(quantile::trimmed_mean(
                &nums(),
                f64::from(*lo) / 1000.0,
                f64::from(*hi) / 1000.0,
            )?),
        })
    }

    /// Build the auxiliary maintenance state for this function over the
    /// same column (None for [`MaintenanceClass::NonIncremental`]).
    #[must_use]
    pub fn build_aux(&self, values: &[Value]) -> Option<AuxState> {
        let nums = || -> Vec<f64> { values.iter().filter_map(Value::as_f64).collect() };
        match self.maintenance_class() {
            MaintenanceClass::Differentiable => {
                Some(AuxState::Moments(Moments::from_slice(&nums())))
            }
            MaintenanceClass::SemiDifferentiable => Some(AuxState::MinMax(
                sdbms_stats::MinMaxAcc::from_slice(&nums()),
            )),
            MaintenanceClass::OrderStatistic => {
                // The §4.2 window tracks the *median* region only. For
                // other quantiles (and the Q1/Q3 of Quartiles) it can
                // never answer, so those entries carry no aux and fall
                // back to invalidate-and-regenerate — exactly the §4.3
                // fallback for "difficult" functions.
                if !matches!(self, StatFunction::Median | StatFunction::Quantile(500)) {
                    return None;
                }
                let mut w =
                    crate::median_window::MedianWindow::new(crate::median_window::DEFAULT_WINDOW);
                w.rebuild(&nums());
                Some(AuxState::Window(w))
            }
            MaintenanceClass::Distributional => match self {
                StatFunction::Histogram(bins) => Histogram::from_data(&nums(), usize::from(*bins))
                    .ok()
                    .map(AuxState::Histo),
                _ => {
                    let t = FrequencyTable::from_values(values.iter());
                    // A frequency table over a near-key column is as
                    // large as the column itself; persisting it as
                    // auxiliary state would defeat the cache (even
                    // though long records could hold it). Beyond this
                    // bound the entry falls back to the §4.3
                    // invalidate-and-regenerate policy (aux = None).
                    (t.unique_count() <= MAX_FREQ_AUX_DISTINCT).then_some(AuxState::Freq(t))
                }
            },
            MaintenanceClass::NonIncremental => None,
        }
    }

    /// Re-derive the cached result from auxiliary state alone (no data
    /// access) — the payoff of finite differencing. Returns `None` when
    /// the state cannot answer (e.g. window ran off), in which case the
    /// engine falls back to recompute-from-data.
    #[must_use]
    pub fn result_from_aux(&self, aux: &AuxState) -> Option<SummaryValue> {
        match (self, aux) {
            (StatFunction::Count, AuxState::Moments(m)) => Some(SummaryValue::Count(m.count())),
            (StatFunction::Sum, AuxState::Moments(m)) => Some(SummaryValue::Scalar(m.sum())),
            (StatFunction::Mean, AuxState::Moments(m)) => m.mean().ok().map(SummaryValue::Scalar),
            (StatFunction::Variance, AuxState::Moments(m)) => {
                m.variance().ok().map(SummaryValue::Scalar)
            }
            (StatFunction::StdDev, AuxState::Moments(m)) => {
                m.std_dev().ok().map(SummaryValue::Scalar)
            }
            (StatFunction::Min, AuxState::MinMax(mm)) => mm.min().ok().map(SummaryValue::Scalar),
            (StatFunction::Max, AuxState::MinMax(mm)) => mm.max().ok().map(SummaryValue::Scalar),
            (StatFunction::Median, AuxState::Window(w)) => w.median().map(SummaryValue::Scalar),
            (StatFunction::Quantile(pm), AuxState::Window(w)) => {
                // The window tracks the median region only; other
                // quantiles can be answered only at the median.
                if *pm == 500 {
                    w.median().map(SummaryValue::Scalar)
                } else {
                    None
                }
            }
            (StatFunction::Quartiles, _) => None, // needs Q1 and Q3: recompute
            (StatFunction::Mode, AuxState::Freq(t)) => {
                t.mode().ok().map(|(v, c)| SummaryValue::ModalValue(v, c))
            }
            (StatFunction::UniqueCount, AuxState::Freq(t)) => {
                Some(SummaryValue::Count(t.unique_count() as u64))
            }
            (StatFunction::Histogram(_), AuxState::Histo(h)) => {
                Some(SummaryValue::Histogram(h.clone()))
            }
            _ => None,
        }
    }
}

impl fmt::Display for StatFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Auxiliary per-entry maintenance state (the "perhaps some auxiliary
/// information" of §3.2's incremental recomputation).
#[derive(Debug, Clone, PartialEq)]
pub enum AuxState {
    /// Count/mean/M2 for the differentiable aggregates.
    Moments(Moments),
    /// Extremes with occurrence counts.
    MinMax(sdbms_stats::MinMaxAcc),
    /// The §4.2 median window.
    Window(crate::median_window::MedianWindow),
    /// Full frequency table (mode, unique count).
    Freq(FrequencyTable),
    /// Incrementally maintained histogram.
    Histo(Histogram),
}

impl AuxState {
    /// Fold another partition's auxiliary state into this one, so that
    /// the merged state equals the state that a single pass over the
    /// concatenated data would have built (the *merge law* — what the
    /// parallel executor and the soundness checker both rely on).
    ///
    /// Errors when the two states are different variants, when the
    /// variant has no merge law (the §4.2 median window is inherently
    /// sequential), or when histogram edges disagree.
    pub fn merge(&mut self, other: &AuxState) -> Result<()> {
        match (self, other) {
            (AuxState::Moments(a), AuxState::Moments(b)) => {
                a.merge(b);
                Ok(())
            }
            (AuxState::MinMax(a), AuxState::MinMax(b)) => {
                a.merge(b);
                Ok(())
            }
            (AuxState::Freq(a), AuxState::Freq(b)) => {
                a.merge(b);
                Ok(())
            }
            (AuxState::Histo(a), AuxState::Histo(b)) => Ok(a.merge(b)?),
            (AuxState::Window(_), AuxState::Window(_)) => Err(
                crate::error::SummaryError::Unmergeable("median window is order-dependent"),
            ),
            _ => Err(crate::error::SummaryError::Unmergeable(
                "auxiliary states of different kinds",
            )),
        }
    }
}

/// The standing summary set §3.2 lists for every summarizable column:
/// "mode, mean, median, quartiles, the ranges of values in each column
/// (min & max), the number of unique values, and some measure of
/// frequency of values" (the histogram).
#[must_use]
pub fn standing_summary_functions() -> Vec<StatFunction> {
    vec![
        StatFunction::Count,
        StatFunction::Mean,
        StatFunction::Median,
        StatFunction::Quartiles,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Mode,
        StatFunction::UniqueCount,
        StatFunction::Histogram(20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> Vec<Value> {
        vec![
            Value::Int(2),
            Value::Int(4),
            Value::Int(4),
            Value::Int(4),
            Value::Int(5),
            Value::Int(5),
            Value::Int(7),
            Value::Int(9),
            Value::Missing,
        ]
    }

    #[test]
    fn compute_matches_stats_crate() {
        let c = col();
        assert_eq!(
            StatFunction::Count.compute(&c).unwrap(),
            SummaryValue::Count(8)
        );
        assert_eq!(
            StatFunction::Mean.compute(&c).unwrap(),
            SummaryValue::Scalar(5.0)
        );
        assert_eq!(
            StatFunction::Min.compute(&c).unwrap(),
            SummaryValue::Scalar(2.0)
        );
        assert_eq!(
            StatFunction::Median.compute(&c).unwrap(),
            SummaryValue::Scalar(4.5)
        );
        let SummaryValue::Vector(q) = StatFunction::Quartiles.compute(&c).unwrap() else {
            panic!("quartiles should be a vector")
        };
        assert_eq!(q.len(), 3);
        assert_eq!(
            StatFunction::Mode.compute(&c).unwrap(),
            SummaryValue::ModalValue(Value::Int(4), 3)
        );
        assert_eq!(
            StatFunction::UniqueCount.compute(&c).unwrap(),
            SummaryValue::Count(6),
            "5 distinct ints + missing"
        );
    }

    #[test]
    fn quantile_per_mille() {
        let c: Vec<Value> = (1..=100).map(Value::Int).collect();
        let SummaryValue::Scalar(p5) = StatFunction::Quantile(50).compute(&c).unwrap() else {
            panic!()
        };
        assert!((p5 - 5.95).abs() < 1e-9, "type-7 5th percentile of 1..=100");
    }

    #[test]
    fn maintenance_classes() {
        assert_eq!(
            StatFunction::Mean.maintenance_class(),
            MaintenanceClass::Differentiable
        );
        assert_eq!(
            StatFunction::Min.maintenance_class(),
            MaintenanceClass::SemiDifferentiable
        );
        assert_eq!(
            StatFunction::Median.maintenance_class(),
            MaintenanceClass::OrderStatistic
        );
        assert_eq!(
            StatFunction::Mode.maintenance_class(),
            MaintenanceClass::Distributional
        );
        assert_eq!(
            StatFunction::TrimmedMean(50, 950).maintenance_class(),
            MaintenanceClass::NonIncremental
        );
    }

    #[test]
    fn aux_roundtrip_to_result() {
        let c = col();
        for f in [
            StatFunction::Count,
            StatFunction::Sum,
            StatFunction::Mean,
            StatFunction::Variance,
            StatFunction::StdDev,
            StatFunction::Min,
            StatFunction::Max,
            StatFunction::Median,
            StatFunction::Mode,
            StatFunction::UniqueCount,
            StatFunction::Histogram(5),
        ] {
            let aux = f.build_aux(&c).unwrap_or_else(|| panic!("{f} has aux"));
            let from_aux = f.result_from_aux(&aux).unwrap_or_else(|| panic!("{f}"));
            let direct = f.compute(&c).unwrap();
            assert!(
                from_aux.approx_eq(&direct, 1e-9),
                "{f}: {from_aux:?} != {direct:?}"
            );
        }
        assert!(StatFunction::TrimmedMean(50, 950).build_aux(&c).is_none());
    }

    #[test]
    fn names_unique_and_stable() {
        let fns = [
            StatFunction::Count,
            StatFunction::Sum,
            StatFunction::Quantile(50),
            StatFunction::Quantile(950),
            StatFunction::Histogram(10),
            StatFunction::Histogram(20),
            StatFunction::TrimmedMean(50, 950),
        ];
        let names: std::collections::HashSet<String> = fns.iter().map(StatFunction::name).collect();
        assert_eq!(names.len(), fns.len());
        assert_eq!(StatFunction::Quantile(50).name(), "quantile_50");
    }

    #[test]
    fn standing_set_matches_paper_list() {
        let fns = standing_summary_functions();
        assert!(fns.contains(&StatFunction::Mode));
        assert!(fns.contains(&StatFunction::Mean));
        assert!(fns.contains(&StatFunction::Median));
        assert!(fns.contains(&StatFunction::Quartiles));
        assert!(fns.contains(&StatFunction::Min));
        assert!(fns.contains(&StatFunction::Max));
        assert!(fns.contains(&StatFunction::UniqueCount));
    }

    #[test]
    fn empty_column_errors() {
        assert!(StatFunction::Mean.compute(&[]).is_err());
        assert!(StatFunction::Mean.compute(&[Value::Missing]).is_err());
        assert_eq!(
            StatFunction::Count.compute(&[Value::Missing]).unwrap(),
            SummaryValue::Count(0)
        );
    }
}
