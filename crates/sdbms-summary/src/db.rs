//! The Summary Database.
//!
//! §3.2: "Each Summary Database serves as a cache for the user view.
//! Rather than storing frequently used data … we choose to store
//! results of query (or function) executions… To enhance access to the
//! Summary Database (which may itself become relatively large), we
//! envision the use of a secondary index on function name-attribute
//! name. Data will most likely be clustered on attribute name to
//! facilitate efficient access to all results on a given column."
//!
//! [`SummaryDb`] is disk-resident (entries in a heap file through the
//! shared buffer pool) with a B+tree secondary index keyed on the
//! order-preserving composite `(attribute, function)` — so a prefix
//! scan on the attribute *is* the clustered access path the paper
//! wants. Each entry carries the cached [`SummaryValue`], a freshness
//! flag, and optional auxiliary maintenance state.

use std::sync::Arc;

use sdbms_storage::keyenc::composite_str_key;
use sdbms_storage::{BTree, BufferPool, LongRecordFile, Rid};

use crate::error::{Result, SummaryError};
use crate::function::{AuxState, StatFunction};
use crate::median_window::MedianWindow;
use crate::value::{take_u32, take_u64, SummaryValue};

/// Freshness of a cached entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// The result reflects the current view contents.
    Fresh,
    /// The view changed since the result was computed (§4.3's
    /// invalidate-and-regenerate fallback keeps entries in this state
    /// until the next lookup).
    Stale,
}

/// One row of the Summary Database (paper Figure 4 plus maintenance
/// state).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Attribute the function was applied to.
    pub attribute: String,
    /// The cached function.
    pub function: StatFunction,
    /// The cached result.
    pub result: SummaryValue,
    /// Freshness flag.
    pub freshness: Freshness,
    /// Auxiliary incremental-maintenance state.
    pub aux: Option<AuxState>,
    /// Updates absorbed since the result was last recomputed from data
    /// (drives the accuracy policies of §3.2).
    pub updates_since_refresh: u32,
}

/// Cache-effectiveness counters (reported by experiments E1/E6/E12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found only a stale entry.
    pub stale_hits: u64,
    /// Entries updated incrementally (no data access).
    pub incremental_updates: u64,
    /// Entries invalidated.
    pub invalidations: u64,
    /// Entries recomputed from column data.
    pub recomputes: u64,
    /// Damaged entries quarantined (removed after a storage fault or
    /// decode failure) and treated as misses.
    pub quarantined: u64,
}

/// The per-view cache of function results.
///
/// Entries live in a [`LongRecordFile`] (results are varying-length
/// and may exceed a page — §3.2's histograms and notes), indexed by a
/// B+tree on the `(attribute, function)` composite key.
pub struct SummaryDb {
    heap: LongRecordFile,
    index: BTree,
    stats: std::cell::Cell<CacheStats>,
    /// The view-version generation this cache currently serves. Every
    /// stored entry is stamped with the generation it was written
    /// under; entries from older generations are invisible (treated as
    /// misses and filtered from enumeration) — a batch commit bumps
    /// the generation to atomically retire the whole cache without
    /// touching a single entry page.
    generation: std::cell::Cell<u64>,
}

impl std::fmt::Debug for SummaryDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SummaryDb")
            .field("entries", &self.index.len())
            .finish()
    }
}

fn entry_key(attribute: &str, function: &StatFunction) -> Vec<u8> {
    // Attribute first: clustering on attribute name (§3.2) falls out of
    // the index order, and `entries_for_attribute` is one prefix scan.
    composite_str_key(&[attribute, &function.name()])
}

fn rid_to_u64(rid: Rid) -> u64 {
    (u64::from(rid.page) << 16) | u64::from(rid.slot)
}

fn rid_from_u64(v: u64) -> Rid {
    Rid::new((v >> 16) as u32, (v & 0xFFFF) as u16)
}

impl SummaryDb {
    /// Create an empty Summary Database in the given buffer pool.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Ok(SummaryDb {
            heap: LongRecordFile::create(pool.clone())?,
            index: BTree::create(pool)?,
            stats: std::cell::Cell::new(CacheStats::default()),
            generation: std::cell::Cell::new(0),
        })
    }

    /// Number of physically stored entries (including entries from
    /// older generations that are pending lazy purge).
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len() as usize
    }

    /// The generation new entries are stamped with and lookups accept.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Retire every cached entry at once by moving to the next
    /// generation: existing entries become invisible (their pages are
    /// reclaimed lazily as `put` overwrites them), and nothing is
    /// written — the bump is a pure in-memory step, which is what lets
    /// a batch commit switch summary state without any I/O that could
    /// tear.
    pub fn bump_generation(&self) {
        self.generation.set(self.generation.get() + 1);
    }

    /// Adopt a specific generation (recovery re-aligning a rebuilt
    /// cache with the view version it serves).
    pub fn set_generation(&self, generation: u64) {
        self.generation.set(generation);
    }

    /// True if nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cache-effectiveness counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats.get()
    }

    /// Reset the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.stats.set(CacheStats::default());
    }

    fn bump(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Look up `function(attribute)`. Counts a hit, stale-hit, or miss.
    pub fn lookup(&self, attribute: &str, function: &StatFunction) -> Result<Option<Entry>> {
        let key = entry_key(attribute, function);
        match self.index.get_first(&key)? {
            None => {
                self.bump(|s| s.misses += 1);
                Ok(None)
            }
            Some(packed) => {
                let bytes = self.heap.get(rid_from_u64(packed))?;
                let (entry, generation) = decode_entry(&bytes)?;
                if generation != self.generation.get() {
                    // Written under a retired view version: a miss, not
                    // a stale hit — the result may describe data that
                    // no longer exists at all.
                    self.bump(|s| s.misses += 1);
                    return Ok(None);
                }
                match entry.freshness {
                    Freshness::Fresh => self.bump(|s| s.hits += 1),
                    Freshness::Stale => self.bump(|s| s.stale_hits += 1),
                }
                Ok(Some(entry))
            }
        }
    }

    /// Look up only if fresh — the common fast path.
    pub fn lookup_fresh(&self, attribute: &str, function: &StatFunction) -> Result<Option<Entry>> {
        Ok(self
            .lookup(attribute, function)?
            .filter(|e| e.freshness == Freshness::Fresh))
    }

    /// Insert or replace an entry.
    pub fn put(&self, entry: &Entry) -> Result<()> {
        let key = entry_key(&entry.attribute, &entry.function);
        let bytes = encode_entry(entry, self.generation.get());
        if let Some(packed) = self.index.get_first(&key)? {
            let old_rid = rid_from_u64(packed);
            let new_rid = self.heap.update(old_rid, &bytes)?;
            if new_rid != old_rid {
                self.index.delete(&key, packed)?;
                self.index.insert(&key, rid_to_u64(new_rid))?;
            }
        } else {
            let rid = self.heap.insert(&bytes)?;
            self.index.insert(&key, rid_to_u64(rid))?;
        }
        Ok(())
    }

    /// Remove an entry. Returns whether one existed.
    pub fn remove(&self, attribute: &str, function: &StatFunction) -> Result<bool> {
        let key = entry_key(attribute, function);
        match self.index.get_first(&key)? {
            None => Ok(false),
            Some(packed) => {
                self.heap.delete(rid_from_u64(packed))?;
                self.index.delete(&key, packed)?;
                Ok(true)
            }
        }
    }

    /// All entries for one attribute — the clustered access path
    /// ("efficient access to all results on a given column").
    pub fn entries_for_attribute(&self, attribute: &str) -> Result<Vec<Entry>> {
        let prefix = composite_str_key(&[attribute]);
        let hits = self.index.prefix(&prefix)?;
        let mut out = Vec::with_capacity(hits.len());
        for (_, packed) in hits {
            let bytes = self.heap.get(rid_from_u64(packed))?;
            let (entry, generation) = decode_entry(&bytes)?;
            if generation == self.generation.get() {
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// Every current-generation entry, in (attribute, function) order.
    pub fn all_entries(&self) -> Result<Vec<Entry>> {
        let hits = self.index.range(None, None)?;
        let mut out = Vec::with_capacity(hits.len());
        for (_, packed) in hits {
            let bytes = self.heap.get(rid_from_u64(packed))?;
            let (entry, generation) = decode_entry(&bytes)?;
            if generation == self.generation.get() {
                out.push(entry);
            }
        }
        Ok(out)
    }

    /// Mark every entry of `attribute` stale (§4.3: "after each update
    /// operation all the values associated with the updated attribute
    /// will be marked as invalid").
    pub fn invalidate_attribute(&self, attribute: &str) -> Result<usize> {
        let mut n = 0;
        for mut entry in self.entries_for_attribute(attribute)? {
            if entry.freshness == Freshness::Fresh {
                entry.freshness = Freshness::Stale;
                entry.aux = None;
                self.put(&entry)?;
                n += 1;
            }
        }
        self.bump(|s| s.invalidations += n as u64);
        Ok(n)
    }

    /// Record that an entry was refreshed by recomputation from data.
    pub fn note_recompute(&self) {
        self.bump(|s| s.recomputes += 1);
    }

    /// Record that an entry absorbed an update incrementally.
    pub fn note_incremental(&self) {
        self.bump(|s| s.incremental_updates += 1);
    }

    /// Record that a damaged entry was quarantined.
    pub fn note_quarantine(&self) {
        self.bump(|s| s.quarantined += 1);
    }

    /// Render the Figure 4 three-column table for documentation and the
    /// F4 experiment.
    pub fn render_figure4(&self) -> Result<String> {
        let mut out = String::from("FUNCTION_NAME  ATTRIBUTE_NAME  RESULT\n");
        for e in self.all_entries()? {
            out.push_str(&format!(
                "{:<13}  {:<14}  {}\n",
                e.function.name(),
                e.attribute,
                e.result
            ));
        }
        Ok(out)
    }
}

// ---- entry (de)serialization ---------------------------------------------

fn encode_function(f: &StatFunction, buf: &mut Vec<u8>) {
    match f {
        StatFunction::Count => buf.push(0),
        StatFunction::Sum => buf.push(1),
        StatFunction::Mean => buf.push(2),
        StatFunction::Variance => buf.push(3),
        StatFunction::StdDev => buf.push(4),
        StatFunction::Min => buf.push(5),
        StatFunction::Max => buf.push(6),
        StatFunction::Median => buf.push(7),
        StatFunction::Quartiles => buf.push(8),
        StatFunction::Quantile(pm) => {
            buf.push(9);
            buf.extend_from_slice(&pm.to_le_bytes());
        }
        StatFunction::Mode => buf.push(10),
        StatFunction::UniqueCount => buf.push(11),
        StatFunction::Histogram(bins) => {
            buf.push(12);
            buf.extend_from_slice(&bins.to_le_bytes());
        }
        StatFunction::TrimmedMean(lo, hi) => {
            buf.push(13);
            buf.extend_from_slice(&lo.to_le_bytes());
            buf.extend_from_slice(&hi.to_le_bytes());
        }
    }
}

fn decode_function(buf: &[u8], pos: &mut usize) -> Result<StatFunction> {
    let tag = *buf
        .get(*pos)
        .ok_or(SummaryError::Decode("function tag missing"))?;
    *pos += 1;
    let take_u16 = |pos: &mut usize| -> Result<u16> {
        let b = buf
            .get(*pos..*pos + 2)
            .ok_or(SummaryError::Decode("function arg truncated"))?;
        *pos += 2;
        let b = b
            .try_into()
            .map_err(|_| SummaryError::Decode("function arg truncated"))?;
        Ok(u16::from_le_bytes(b))
    };
    Ok(match tag {
        0 => StatFunction::Count,
        1 => StatFunction::Sum,
        2 => StatFunction::Mean,
        3 => StatFunction::Variance,
        4 => StatFunction::StdDev,
        5 => StatFunction::Min,
        6 => StatFunction::Max,
        7 => StatFunction::Median,
        8 => StatFunction::Quartiles,
        9 => StatFunction::Quantile(take_u16(pos)?),
        10 => StatFunction::Mode,
        11 => StatFunction::UniqueCount,
        12 => StatFunction::Histogram(take_u16(pos)?),
        13 => StatFunction::TrimmedMean(take_u16(pos)?, take_u16(pos)?),
        _ => return Err(SummaryError::Decode("unknown function tag")),
    })
}

fn encode_aux(aux: &AuxState, buf: &mut Vec<u8>) {
    match aux {
        AuxState::Moments(m) => {
            buf.push(0);
            let (n, mean, m2) = m.parts();
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&mean.to_bits().to_le_bytes());
            buf.extend_from_slice(&m2.to_bits().to_le_bytes());
        }
        AuxState::MinMax(mm) => {
            buf.push(1);
            match mm.parts() {
                None => buf.push(0),
                Some((min, min_c, max, max_c)) => {
                    buf.push(1);
                    buf.extend_from_slice(&min.to_bits().to_le_bytes());
                    buf.extend_from_slice(&min_c.to_le_bytes());
                    buf.extend_from_slice(&max.to_bits().to_le_bytes());
                    buf.extend_from_slice(&max_c.to_le_bytes());
                }
            }
        }
        AuxState::Window(w) => {
            buf.push(2);
            buf.extend_from_slice(&w.encode());
        }
        AuxState::Freq(t) => {
            buf.push(3);
            buf.extend_from_slice(&(t.unique_count() as u32).to_le_bytes());
            for (v, c) in t.entries() {
                v.encode(buf);
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        AuxState::Histo(h) => {
            buf.push(4);
            crate::value::encode_histogram(h, buf);
        }
    }
}

fn decode_aux(buf: &[u8], pos: &mut usize) -> Result<AuxState> {
    let tag = *buf
        .get(*pos)
        .ok_or(SummaryError::Decode("aux tag missing"))?;
    *pos += 1;
    Ok(match tag {
        0 => {
            let n = take_u64(buf, pos)?;
            let mean = f64::from_bits(take_u64(buf, pos)?);
            let m2 = f64::from_bits(take_u64(buf, pos)?);
            AuxState::Moments(sdbms_stats::Moments::from_parts(n, mean, m2))
        }
        1 => {
            let has = *buf
                .get(*pos)
                .ok_or(SummaryError::Decode("minmax flag missing"))?;
            *pos += 1;
            let parts = if has != 0 {
                let min = f64::from_bits(take_u64(buf, pos)?);
                let min_c = take_u64(buf, pos)?;
                let max = f64::from_bits(take_u64(buf, pos)?);
                let max_c = take_u64(buf, pos)?;
                Some((min, min_c, max, max_c))
            } else {
                None
            };
            AuxState::MinMax(sdbms_stats::MinMaxAcc::from_parts(parts))
        }
        2 => AuxState::Window(MedianWindow::decode(buf, pos)?),
        3 => {
            let n = take_u32(buf, pos)? as usize;
            let mut t = sdbms_stats::FrequencyTable::new();
            for _ in 0..n {
                let v = sdbms_data::Value::decode(buf, pos)
                    .map_err(|_| SummaryError::Decode("freq value"))?;
                let c = take_u64(buf, pos)?;
                t.add_count(&v, c);
            }
            AuxState::Freq(t)
        }
        4 => AuxState::Histo(crate::value::decode_histogram(buf, pos)?),
        _ => return Err(SummaryError::Decode("unknown aux tag")),
    })
}

/// Encode an entry, prefixed with the generation it was written under.
fn encode_entry(e: &Entry, generation: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&generation.to_le_bytes());
    let attr = e.attribute.as_bytes();
    buf.extend_from_slice(&(attr.len() as u16).to_le_bytes());
    buf.extend_from_slice(attr);
    encode_function(&e.function, &mut buf);
    buf.push(match e.freshness {
        Freshness::Fresh => 0,
        Freshness::Stale => 1,
    });
    buf.extend_from_slice(&e.updates_since_refresh.to_le_bytes());
    buf.extend_from_slice(&e.result.encode());
    match &e.aux {
        None => buf.push(0),
        Some(aux) => {
            buf.push(1);
            encode_aux(aux, &mut buf);
        }
    }
    buf
}

/// Decode an entry and the generation stamp it carries.
fn decode_entry(buf: &[u8]) -> Result<(Entry, u64)> {
    let mut pos = 0usize;
    let generation = take_u64(buf, &mut pos)?;
    let alen = {
        let b = buf
            .get(pos..pos + 2)
            .ok_or(SummaryError::Decode("entry header truncated"))?
            .try_into()
            .map_err(|_| SummaryError::Decode("entry header truncated"))?;
        pos += 2;
        u16::from_le_bytes(b) as usize
    };
    let attr = std::str::from_utf8(
        buf.get(pos..pos + alen)
            .ok_or(SummaryError::Decode("attribute truncated"))?,
    )
    .map_err(|_| SummaryError::Decode("attribute not UTF-8"))?
    .to_string();
    pos += alen;
    let function = decode_function(buf, &mut pos)?;
    let freshness = match buf.get(pos) {
        Some(0) => Freshness::Fresh,
        Some(1) => Freshness::Stale,
        _ => return Err(SummaryError::Decode("bad freshness byte")),
    };
    pos += 1;
    let updates_since_refresh = take_u32(buf, &mut pos)?;
    let result = SummaryValue::decode(buf, &mut pos)?;
    let aux = match buf.get(pos) {
        Some(0) => {
            pos += 1;
            None
        }
        Some(1) => {
            pos += 1;
            Some(decode_aux(buf, &mut pos)?)
        }
        _ => return Err(SummaryError::Decode("bad aux flag")),
    };
    if pos != buf.len() {
        return Err(SummaryError::Decode("trailing bytes after entry"));
    }
    Ok((
        Entry {
            attribute: attr,
            function,
            result,
            freshness,
            aux,
            updates_since_refresh,
        },
        generation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_data::Value;
    use sdbms_storage::StorageEnv;

    fn db() -> SummaryDb {
        SummaryDb::create(StorageEnv::new(64).pool).unwrap()
    }

    fn entry(attr: &str, f: StatFunction, result: SummaryValue) -> Entry {
        Entry {
            attribute: attr.to_string(),
            function: f,
            result,
            freshness: Freshness::Fresh,
            aux: None,
            updates_since_refresh: 0,
        }
    }

    #[test]
    fn put_lookup_roundtrip() {
        let db = db();
        let e = entry(
            "POPULATION",
            StatFunction::Min,
            SummaryValue::Scalar(2_143_924.0),
        );
        db.put(&e).unwrap();
        let got = db
            .lookup("POPULATION", &StatFunction::Min)
            .unwrap()
            .unwrap();
        assert_eq!(got, e);
        assert_eq!(db.stats().hits, 1);
        assert!(db
            .lookup("POPULATION", &StatFunction::Max)
            .unwrap()
            .is_none());
        assert_eq!(db.stats().misses, 1);
    }

    #[test]
    fn figure4_contents() {
        // Build exactly the paper's Figure 4 and render it.
        let db = db();
        db.put(&entry(
            "POPULATION",
            StatFunction::Min,
            SummaryValue::Scalar(2_143_924.0),
        ))
        .unwrap();
        db.put(&entry(
            "POPULATION",
            StatFunction::Max,
            SummaryValue::Scalar(33_422_988.0),
        ))
        .unwrap();
        db.put(&entry(
            "AVE_SALARY",
            StatFunction::Median,
            SummaryValue::Scalar(29_933.0),
        ))
        .unwrap();
        let rendered = db.render_figure4().unwrap();
        assert!(rendered.contains("min"));
        assert!(rendered.contains("POPULATION"));
        assert!(rendered.contains("29933"));
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn put_replaces_existing() {
        let db = db();
        db.put(&entry("X", StatFunction::Mean, SummaryValue::Scalar(1.0)))
            .unwrap();
        db.put(&entry("X", StatFunction::Mean, SummaryValue::Scalar(2.0)))
            .unwrap();
        assert_eq!(db.len(), 1);
        let got = db.lookup("X", &StatFunction::Mean).unwrap().unwrap();
        assert_eq!(got.result, SummaryValue::Scalar(2.0));
    }

    #[test]
    fn clustered_prefix_access() {
        let db = db();
        for attr in ["AGE", "INCOME", "AGE_GROUP"] {
            for f in [StatFunction::Min, StatFunction::Max, StatFunction::Mean] {
                db.put(&entry(attr, f, SummaryValue::Scalar(1.0))).unwrap();
            }
        }
        let age = db.entries_for_attribute("AGE").unwrap();
        assert_eq!(age.len(), 3, "exactly AGE's entries, not AGE_GROUP's");
        assert!(age.iter().all(|e| e.attribute == "AGE"));
        let all = db.all_entries().unwrap();
        assert_eq!(all.len(), 9);
        // Clustered: all AGE entries contiguous in index order.
        let attrs: Vec<&str> = all.iter().map(|e| e.attribute.as_str()).collect();
        assert_eq!(
            attrs,
            vec![
                "AGE",
                "AGE",
                "AGE",
                "AGE_GROUP",
                "AGE_GROUP",
                "AGE_GROUP",
                "INCOME",
                "INCOME",
                "INCOME"
            ]
        );
    }

    #[test]
    fn invalidate_attribute_marks_stale_and_drops_aux() {
        let db = db();
        let col: Vec<Value> = (1..=10).map(Value::Int).collect();
        let mut e = entry("X", StatFunction::Mean, SummaryValue::Scalar(5.5));
        e.aux = StatFunction::Mean.build_aux(&col);
        db.put(&e).unwrap();
        db.put(&entry("Y", StatFunction::Mean, SummaryValue::Scalar(1.0)))
            .unwrap();
        let n = db.invalidate_attribute("X").unwrap();
        assert_eq!(n, 1);
        let got = db.lookup("X", &StatFunction::Mean).unwrap().unwrap();
        assert_eq!(got.freshness, Freshness::Stale);
        assert!(got.aux.is_none());
        assert_eq!(db.stats().stale_hits, 1);
        assert!(db.lookup_fresh("X", &StatFunction::Mean).unwrap().is_none());
        // Y untouched.
        let y = db.lookup_fresh("Y", &StatFunction::Mean).unwrap();
        assert!(y.is_some());
        // Re-invalidating already-stale entries is a no-op.
        assert_eq!(db.invalidate_attribute("X").unwrap(), 0);
    }

    #[test]
    fn remove_entries() {
        let db = db();
        db.put(&entry("X", StatFunction::Sum, SummaryValue::Scalar(10.0)))
            .unwrap();
        assert!(db.remove("X", &StatFunction::Sum).unwrap());
        assert!(!db.remove("X", &StatFunction::Sum).unwrap());
        assert_eq!(db.len(), 0);
    }

    #[test]
    fn entries_with_all_aux_kinds_roundtrip() {
        let db = db();
        let col: Vec<Value> = (1..=100).map(Value::Int).collect();
        for f in [
            StatFunction::Mean,
            StatFunction::Min,
            StatFunction::Median,
            StatFunction::Mode,
            StatFunction::Histogram(8),
        ] {
            let mut e = entry("C", f.clone(), f.compute(&col).unwrap());
            e.aux = f.build_aux(&col);
            assert!(e.aux.is_some(), "{f}");
            db.put(&e).unwrap();
            let got = db.lookup("C", &f).unwrap().unwrap();
            assert_eq!(got, e, "{f}");
        }
    }

    #[test]
    fn varying_length_results_coexist() {
        // The paper's point about the third column being varying-length.
        let db = db();
        db.put(&entry("A", StatFunction::Mean, SummaryValue::Scalar(1.0)))
            .unwrap();
        db.put(&entry(
            "A",
            StatFunction::Quartiles,
            SummaryValue::Vector(vec![1.0, 2.0, 3.0]),
        ))
        .unwrap();
        let h = sdbms_stats::Histogram::with_range(0.0, 1.0, 100).unwrap();
        db.put(&entry(
            "A",
            StatFunction::Histogram(100),
            SummaryValue::Histogram(h),
        ))
        .unwrap();
        db.put(&entry(
            "A",
            StatFunction::Mode,
            SummaryValue::ModalValue(Value::Str("a long modal string value".into()), 3),
        ))
        .unwrap();
        assert_eq!(db.entries_for_attribute("A").unwrap().len(), 4);
    }

    #[test]
    fn multi_page_entries_roundtrip() {
        // A 2000-bin histogram entry is ~48 KiB — far beyond one page.
        // The long-record store must carry it transparently.
        let db = db();
        let vals: Vec<Value> = (0..5_000).map(|i| Value::Int(i % 1000)).collect();
        let f = StatFunction::Histogram(2000);
        let mut e = entry("BIG", f.clone(), f.compute(&vals).unwrap());
        e.aux = f.build_aux(&vals);
        db.put(&e).unwrap();
        let got = db.lookup("BIG", &f).unwrap().unwrap();
        assert_eq!(got, e);
        // Replace with a small entry, then a big one again.
        db.put(&entry("BIG", f.clone(), SummaryValue::Scalar(1.0)))
            .unwrap();
        db.put(&e).unwrap();
        assert_eq!(db.lookup("BIG", &f).unwrap().unwrap(), e);
        assert!(db.remove("BIG", &f).unwrap());
    }

    #[test]
    fn long_note_entries() {
        let db = db();
        let note = "analysis journal: ".repeat(2_000); // ~36 KiB
        db.put(&entry(
            "X",
            StatFunction::Mode,
            SummaryValue::Note(note.clone()),
        ))
        .unwrap();
        let got = db.lookup("X", &StatFunction::Mode).unwrap().unwrap();
        assert_eq!(got.result, SummaryValue::Note(note));
    }

    #[test]
    fn generation_bump_retires_every_entry_without_io() {
        let db = db();
        db.put(&entry("X", StatFunction::Mean, SummaryValue::Scalar(1.0)))
            .unwrap();
        db.put(&entry("Y", StatFunction::Max, SummaryValue::Scalar(9.0)))
            .unwrap();
        assert_eq!(db.generation(), 0);
        db.bump_generation();
        assert_eq!(db.generation(), 1);
        // Old-generation entries are invisible: misses, not stale hits.
        assert!(db.lookup("X", &StatFunction::Mean).unwrap().is_none());
        assert_eq!(db.stats().misses, 1);
        assert_eq!(db.stats().stale_hits, 0);
        assert!(db.entries_for_attribute("X").unwrap().is_empty());
        assert!(db.all_entries().unwrap().is_empty());
        // Physical storage is untouched until overwritten.
        assert_eq!(db.len(), 2);
        // A put under the new generation resurrects the slot.
        db.put(&entry("X", StatFunction::Mean, SummaryValue::Scalar(2.0)))
            .unwrap();
        let got = db.lookup("X", &StatFunction::Mean).unwrap().unwrap();
        assert_eq!(got.result, SummaryValue::Scalar(2.0));
        assert_eq!(db.len(), 2, "overwrote the old slot, no new entry");
    }

    #[test]
    fn set_generation_realigns_a_rebuilt_cache() {
        let db = db();
        db.put(&entry("X", StatFunction::Sum, SummaryValue::Scalar(3.0)))
            .unwrap();
        db.bump_generation();
        db.bump_generation();
        assert!(db.lookup("X", &StatFunction::Sum).unwrap().is_none());
        db.set_generation(0);
        // Back on the generation the entry was written under.
        assert!(db.lookup("X", &StatFunction::Sum).unwrap().is_some());
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        let db = SummaryDb::create(StorageEnv::new(4).pool).unwrap();
        for i in 0..200u16 {
            db.put(&entry(
                &format!("ATTR_{i:03}"),
                StatFunction::Quantile(i),
                SummaryValue::Scalar(f64::from(i)),
            ))
            .unwrap();
        }
        assert_eq!(db.len(), 200);
        let got = db
            .lookup("ATTR_123", &StatFunction::Quantile(123))
            .unwrap()
            .unwrap();
        assert_eq!(got.result, SummaryValue::Scalar(123.0));
    }
}
