//! # sdbms-summary — the Summary Database
//!
//! The paper's central mechanism (§3.2): each concrete view carries a
//! cache of `(function, attribute) → result` entries so repetitive
//! computations during a months-long analysis "lead to a savings in
//! execution time each time a function whose result is already in the
//! cache is invoked". The cache must survive updates to the view,
//! either by incremental recomputation (finite differencing, §4.2) or
//! by invalidation and lazy regeneration (§4.3).
//!
//! - [`function`] — the function catalogue with per-function
//!   maintenance classes and auxiliary state builders.
//! - [`contract`] — per-function maintenance contracts (strategy per
//!   update kind) and the executable merge-law oracle the static
//!   soundness checker audits against.
//! - [`value`] — the varying-typed result column of paper Figure 4.
//! - [`db`] — the disk-resident store: heap records clustered by
//!   attribute with a B+tree secondary index on
//!   `(attribute, function)`, freshness flags, and hit/miss counters.
//! - [`median_window`] — the §4.2 "histogram with a pointer" for order
//!   statistics.
//! - [`maintain`] — the update engine: incremental / invalidate-lazy /
//!   eager policies, user accuracy tolerances, and the
//!   compute-on-miss lookup path.
//! - [`inference`] — §5.1's "Database Abstract" rules: derive a missing
//!   function exactly from other cached entries (mean = sum/count) or
//!   as a histogram-based estimate.
//! - [`wal`] — the write-ahead intent log that keeps the cache
//!   crash-consistent: cleanly invalidated, never silently stale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contract;
pub mod db;
pub mod error;
pub mod function;
pub mod inference;
pub mod maintain;
pub mod median_window;
pub mod parallel;
pub mod value;
pub mod wal;

pub use contract::{
    verify_merge_law, verify_zone_map_merge_law, zone_map_contract, FunctionContract,
    MaintenanceStrategy, MergeLawStatus, StatisticContract, SummaryRegistry, UpdateKind,
    ALL_UPDATE_KINDS,
};
pub use db::{CacheStats, Entry, Freshness, SummaryDb};
pub use error::{Result, SummaryError};
pub use function::{standing_summary_functions, AuxState, MaintenanceClass, StatFunction};
pub use inference::{infer, Inferred};
pub use maintain::{
    apply_updates, get_or_compute, get_or_compute_resilient, quarantinable, refresh_entry,
    AccuracyPolicy, ComputeSource, MaintenancePolicy, MaintenanceReport, UpdateDelta,
};
pub use median_window::{MedianWindow, DEFAULT_WINDOW};
pub use parallel::{
    aux_from_profile, compute_from_profile, refresh_entry_from_profile, regenerate_attribute,
    warm_attribute,
};
pub use value::SummaryValue;
pub use wal::{Intent, IntentLog};
