//! Write-ahead intent log for crash-consistent summary maintenance.
//!
//! The Summary Database lives in pool-buffered pages, so a simulated
//! crash (which discards every unflushed frame) can leave cached
//! entries that no longer agree with the view data — the worst failure
//! mode of a cache: *stale served as fresh*. The [`IntentLog`] closes
//! that window with a classic intent-logging protocol:
//!
//! 1. **Begin**: before any view cell or summary entry changes, the
//!    intent (affected attribute names, or a repair/transaction marker)
//!    is written to dedicated disk pages *directly* through the
//!    [`DiskManager`] — bypassing the volatile buffer pool, so the
//!    intent is durable immediately.
//! 2. **Apply**: view cells are updated and summary maintenance runs
//!    (all through the pool; a crash here may tear anything).
//! 3. **Commit**: the pool is flushed (view + summary pages reach the
//!    disk) and only then is the intent cleared.
//!
//! Recovery after a restart reads the log: a pending intent means step
//! 3 never completed, so every summary entry of the named attributes is
//! invalidated (or the whole cache rebuilt if it is too damaged to
//! enumerate) — the Summary Database is then *cleanly invalidated*,
//! never stale.
//!
//! ## Chained, append-only layout
//!
//! The log is an append-only chain of pages: every `begin*`/`clear`
//! appends a *record*, and the pending intent is simply the **last**
//! record in the chain. Appends touch only the tail page (whose content
//! the log mirrors in memory, so the durable write path never reads),
//! and a full tail grows the chain by one page. Long-running systems
//! would otherwise accumulate unbounded intent history, so
//! [`IntentLog::compact`] rewrites the current state into a single
//! fresh head page and returns every older page to the disk's free
//! list; [`IntentLog::clear`] compacts automatically once the chain
//! passes a small threshold. The chain's page list itself is in-memory
//! state — like the rest of the catalog it survives the simulated
//! crash (which loses only unflushed buffer frames), while the records
//! are durable the moment `begin` returns.
//!
//! Each log page carries its own magic number; the disk adds CRC32
//! verification underneath, so a corrupted log surfaces as a checksum
//! error and recovery falls back to conservative whole-cache
//! invalidation.

use std::cell::RefCell;
use std::sync::Arc;

use sdbms_storage::{DiskManager, Page, PageId, StorageError, PAGE_SIZE};

use crate::error::{Result, SummaryError};

/// Magic marking a valid intent-log page ("SWL2").
const MAGIC: u32 = 0x5357_4C32;

/// First record byte offset: magic `u32` then used-bytes `u16`.
const HEADER: usize = 6;

/// Record tag meaning "intent cleared" (also what an attribute record
/// with zero names would encode — the two are semantically identical).
const CLEAR: u16 = 0;

/// Sentinel count meaning "every attribute" (the intent set did not fit
/// on one page, so recovery must be maximally conservative).
const ALL: u16 = u16::MAX;

/// Sentinel count meaning "a view repair was in flight". Recovery must
/// treat the whole view as suspect (like [`Intent::All`]) *and* knows
/// the damage came from an interrupted repair, so the view stays
/// degraded until the repair is re-run.
const REPAIR: u16 = u16::MAX - 1;

/// Sentinel count meaning "an update batch was committing". Recovery
/// treats the summary cache as suspect (like [`Intent::All`]); the view
/// data itself is safe because batch commit builds a shadow store and
/// installs it only after the flush.
const TXN: u16 = u16::MAX - 2;

/// Compact automatically once the chain grows past this many pages.
const COMPACT_CHAIN: usize = 4;

/// A pending maintenance intent read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// Every attribute of the view must be treated as suspect.
    All,
    /// Only these attributes were mid-update.
    Attributes(Vec<String>),
    /// A repair of the whole view was interrupted mid-flight: its
    /// store/caches may be half-swapped, so everything is suspect and
    /// the repair must be resumed (or the rebuild redone) before the
    /// view is healthy again.
    Repair,
    /// A transactional update batch was interrupted mid-commit. The
    /// view store is all-or-nothing by construction (shadow versions),
    /// but the summary cache may be torn and must be conservatively
    /// invalidated.
    Txn,
}

/// The per-view write-ahead intent log.
///
/// An append-only chain of durable disk pages holding intent records;
/// the last record is the pending intent. See the module docs for the
/// protocol and layout.
pub struct IntentLog {
    disk: Arc<DiskManager>,
    /// The page chain, head first; the last entry is the append tail.
    pages: RefCell<Vec<PageId>>,
    /// In-memory mirror of the tail page, so appends never read disk.
    tail: RefCell<Page>,
}

impl std::fmt::Debug for IntentLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntentLog")
            .field("pages", &self.pages.borrow())
            .finish()
    }
}

fn empty_log_page() -> Page {
    let mut page = Page::new();
    page.put_u32(0, MAGIC);
    page.put_u16(4, HEADER as u16);
    page
}

impl IntentLog {
    /// Allocate the log's first disk page and write an empty (no
    /// records, hence no-intent) head to it.
    pub fn create(disk: Arc<DiskManager>) -> Result<Self> {
        let tail = empty_log_page();
        let preferred = disk.allocate();
        let log = IntentLog {
            disk,
            pages: RefCell::new(vec![preferred]),
            tail: RefCell::new(tail),
        };
        let page = log.tail.borrow().clone();
        log.rewrite_tail(&page)?;
        Ok(log)
    }

    /// Re-attach to an existing chain (a second handle onto the same
    /// disk pages — e.g. for read-only inspection). The tail mirror is
    /// rebuilt from disk, so the last page must be readable.
    pub fn attach(disk: Arc<DiskManager>, pages: Vec<PageId>) -> Result<Self> {
        let Some(&last) = pages.last() else {
            return Err(SummaryError::Decode("intent log chain is empty"));
        };
        let mut tail = Page::new();
        disk.read_page(last, &mut tail)?;
        if tail.get_u32(0) != MAGIC {
            return Err(SummaryError::Decode("intent log magic mismatch"));
        }
        Ok(IntentLog {
            disk,
            pages: RefCell::new(pages),
            tail: RefCell::new(tail),
        })
    }

    /// The disk pages the log currently occupies, head first.
    #[must_use]
    pub fn log_pages(&self) -> Vec<PageId> {
        self.pages.borrow().clone()
    }

    /// How many pages the chain spans (1 after creation or compaction).
    #[must_use]
    pub fn chain_len(&self) -> usize {
        self.pages.borrow().len()
    }

    /// Durably record that the summary entries of `attributes` are
    /// about to be brought up to date. Appends a record; the newest
    /// record always wins (the protocol never nests). If the names do
    /// not fit on one page the log records the conservative "all
    /// attributes" sentinel.
    pub fn begin(&self, attributes: &[String]) -> Result<()> {
        self.append_record(&encode_attributes_record(attributes))
    }

    /// Durably record that a whole-view repair is starting. Cleared the
    /// same way as any other intent once the repaired state is flushed;
    /// left pending across a crash so recovery resumes (or redoes) the
    /// repair instead of trusting half-repaired state.
    pub fn begin_repair(&self) -> Result<()> {
        self.append_record(&REPAIR.to_le_bytes())
    }

    /// Durably record that a transactional update batch is committing.
    /// Pending across a crash, it tells recovery the summary cache may
    /// be torn (the shadow-versioned store itself cannot be).
    pub fn begin_txn(&self) -> Result<()> {
        self.append_record(&TXN.to_le_bytes())
    }

    /// Durably clear the intent: maintenance completed and was flushed.
    /// Compacts the chain opportunistically once it grows long.
    pub fn clear(&self) -> Result<()> {
        self.append_record(&CLEAR.to_le_bytes())?;
        if self.chain_len() > COMPACT_CHAIN {
            self.compact()?;
        }
        Ok(())
    }

    /// The pending intent, if any: the last record across the chain. An
    /// unreadable or unrecognizable log page surfaces as an error;
    /// recovery should treat that exactly like [`Intent::All`].
    pub fn pending(&self) -> Result<Option<Intent>> {
        let pages = self.pages.borrow().clone();
        let mut last = None;
        for pid in pages {
            let mut page = Page::new();
            self.disk.read_page(pid, &mut page)?;
            last = last_record_on_page(&page)?.or(last);
        }
        Ok(last.flatten())
    }

    /// Rewrite the current state onto a single fresh head page and
    /// return every older chain page to the disk's free list. Returns
    /// how many pages were freed. Idempotent: compacting a compact log
    /// swaps one page for another. The new head is written before the
    /// old chain is released, so a crash mid-compaction leaves either
    /// the old chain or the new head fully in place.
    pub fn compact(&self) -> Result<usize> {
        let current = self.pending()?;
        let mut page = empty_log_page();
        if let Some(intent) = &current {
            let rec = encode_intent_record(intent);
            page.write_slice(HEADER, &rec);
            page.put_u16(4, (HEADER + rec.len()) as u16);
        }
        let pid = self.write_fresh(&page)?;
        let old = std::mem::replace(&mut *self.pages.borrow_mut(), vec![pid]);
        *self.tail.borrow_mut() = page;
        let mut freed = 0;
        for p in old {
            // Best effort: a page lost to media damage cannot be freed,
            // but the chain no longer references it either way.
            if self.disk.deallocate(p).is_ok() {
                freed += 1;
            }
        }
        Ok(freed)
    }

    /// Append one record, growing the chain if the tail page is full.
    fn append_record(&self, rec: &[u8]) -> Result<()> {
        let grown = {
            let mut tail = self.tail.borrow_mut();
            let used = tail.get_u16(4) as usize;
            if used + rec.len() <= PAGE_SIZE {
                tail.write_slice(used, rec);
                tail.put_u16(4, (used + rec.len()) as u16);
                None
            } else {
                let mut fresh = empty_log_page();
                fresh.write_slice(HEADER, rec);
                fresh.put_u16(4, (HEADER + rec.len()) as u16);
                Some(fresh)
            }
        };
        match grown {
            None => {
                let page = self.tail.borrow().clone();
                self.rewrite_tail(&page)
            }
            Some(fresh) => {
                let pid = self.write_fresh(&fresh)?;
                self.pages.borrow_mut().push(pid);
                *self.tail.borrow_mut() = fresh;
                Ok(())
            }
        }
    }

    /// Write the tail page in place, relocating to a freshly allocated
    /// page if the current one has suffered simulated media damage.
    fn rewrite_tail(&self, page: &Page) -> Result<()> {
        let mut pages = self.pages.borrow_mut();
        let Some(last) = pages.last_mut() else {
            return Err(SummaryError::Decode("intent log chain is empty"));
        };
        match self.disk.write_page(*last, page) {
            Err(StorageError::PermanentFault { .. } | StorageError::InvalidPageId(_)) => {
                let fresh = self.disk.allocate();
                self.disk.write_page(fresh, page)?;
                *last = fresh;
                Ok(())
            }
            other => Ok(other?),
        }
    }

    /// Write `page` onto a newly allocated disk page, retrying once on
    /// simulated media damage. Returns the page id actually used.
    fn write_fresh(&self, page: &Page) -> Result<PageId> {
        let pid = self.disk.allocate();
        match self.disk.write_page(pid, page) {
            Err(StorageError::PermanentFault { .. } | StorageError::InvalidPageId(_)) => {
                let retry = self.disk.allocate();
                self.disk.write_page(retry, page)?;
                Ok(retry)
            }
            Err(e) => Err(e.into()),
            Ok(()) => Ok(pid),
        }
    }
}

/// Encode an attribute-set record, degrading to the [`ALL`] sentinel
/// when the set cannot be represented on a single page.
fn encode_attributes_record(attributes: &[String]) -> Vec<u8> {
    // Counts at or above the lowest sentinel would collide with the
    // reserved encodings; such sets degrade to ALL.
    if attributes.len() >= TXN as usize {
        return ALL.to_le_bytes().to_vec();
    }
    let mut buf = Vec::with_capacity(HEADER);
    buf.extend_from_slice(&(attributes.len() as u16).to_le_bytes());
    for a in attributes {
        let bytes = a.as_bytes();
        if bytes.len() > u16::MAX as usize || buf.len() + 2 + bytes.len() > PAGE_SIZE - HEADER {
            return ALL.to_le_bytes().to_vec();
        }
        buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        buf.extend_from_slice(bytes);
    }
    buf
}

/// Encode any intent back into its record form (used by compaction).
fn encode_intent_record(intent: &Intent) -> Vec<u8> {
    match intent {
        Intent::All => ALL.to_le_bytes().to_vec(),
        Intent::Repair => REPAIR.to_le_bytes().to_vec(),
        Intent::Txn => TXN.to_le_bytes().to_vec(),
        Intent::Attributes(attrs) => encode_attributes_record(attrs),
    }
}

/// Parse every record on one page, returning the last one:
/// `None` = no records here, `Some(None)` = last record was a clear,
/// `Some(Some(i))` = last record was intent `i`.
#[allow(clippy::option_option)]
fn last_record_on_page(page: &Page) -> Result<Option<Option<Intent>>> {
    if page.get_u32(0) != MAGIC {
        return Err(SummaryError::Decode("intent log magic mismatch"));
    }
    let used = page.get_u16(4) as usize;
    if !(HEADER..=PAGE_SIZE).contains(&used) {
        return Err(SummaryError::Decode("intent log used-bytes out of range"));
    }
    let mut last = None;
    let mut off = HEADER;
    while off < used {
        if off + 2 > used {
            return Err(SummaryError::Decode("intent log truncated"));
        }
        let count = page.get_u16(off);
        off += 2;
        last = Some(match count {
            CLEAR => None,
            ALL => Some(Intent::All),
            REPAIR => Some(Intent::Repair),
            TXN => Some(Intent::Txn),
            n => {
                let mut attrs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    if off + 2 > used {
                        return Err(SummaryError::Decode("intent log truncated"));
                    }
                    let len = page.get_u16(off) as usize;
                    off += 2;
                    if off + len > used {
                        return Err(SummaryError::Decode("intent log truncated"));
                    }
                    let name = std::str::from_utf8(page.slice(off, len))
                        .map_err(|_| SummaryError::Decode("intent log attribute not UTF-8"))?;
                    attrs.push(name.to_string());
                    off += len;
                }
                Some(Intent::Attributes(attrs))
            }
        });
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_storage::{Device, FaultInjector, FaultKind, RetryPolicy, ScriptedFault, Tracker};

    fn disk() -> Arc<DiskManager> {
        Arc::new(DiskManager::new(Tracker::new()))
    }

    #[test]
    fn empty_log_has_no_pending_intent() {
        let log = IntentLog::create(disk()).unwrap();
        assert_eq!(log.pending().unwrap(), None);
        assert_eq!(log.chain_len(), 1);
    }

    #[test]
    fn begin_then_pending_then_clear() {
        let log = IntentLog::create(disk()).unwrap();
        log.begin(&["AGE".to_string(), "INCOME".to_string()])
            .unwrap();
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["AGE".into(), "INCOME".into()]))
        );
        // A newer record replaces the pending intent, never nests.
        log.begin(&["SALARY".to_string()]).unwrap();
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["SALARY".into()]))
        );
        log.clear().unwrap();
        assert_eq!(log.pending().unwrap(), None);
    }

    #[test]
    fn intent_survives_what_a_buffer_pool_would_lose() {
        // The log writes through the DiskManager directly, so its state
        // is durable the moment begin() returns — there is nothing
        // buffered to lose. Reading through a *second* handle to the
        // same disk pages proves it.
        let d = disk();
        let log = IntentLog::create(d.clone()).unwrap();
        log.begin(&["X".to_string()]).unwrap();
        let reader = IntentLog::attach(d, log.log_pages()).unwrap();
        assert_eq!(
            reader.pending().unwrap(),
            Some(Intent::Attributes(vec!["X".into()]))
        );
    }

    #[test]
    fn repair_and_txn_intents_round_trip_and_clear() {
        let log = IntentLog::create(disk()).unwrap();
        log.begin_repair().unwrap();
        assert_eq!(log.pending().unwrap(), Some(Intent::Repair));
        log.begin_txn().unwrap();
        assert_eq!(log.pending().unwrap(), Some(Intent::Txn));
        // A later maintenance intent replaces it (the protocol never
        // nests), and clear retires it like any other intent.
        log.begin(&["AGE".to_string()]).unwrap();
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["AGE".into()]))
        );
        log.begin_repair().unwrap();
        log.clear().unwrap();
        assert_eq!(log.pending().unwrap(), None);
    }

    #[test]
    fn oversized_intent_degrades_to_all() {
        let log = IntentLog::create(disk()).unwrap();
        let attrs: Vec<String> = (0..200)
            .map(|i| format!("ATTRIBUTE_{i:04}_{}", "x".repeat(40)))
            .collect();
        log.begin(&attrs).unwrap();
        assert_eq!(log.pending().unwrap(), Some(Intent::All));
    }

    #[test]
    fn corrupted_log_page_surfaces_as_error() {
        let d = disk();
        let log = IntentLog::create(d.clone()).unwrap();
        log.begin(&["X".to_string()]).unwrap();
        d.corrupt_page(log.log_pages()[0], 123).unwrap();
        assert!(matches!(
            log.pending(),
            Err(SummaryError::Storage(StorageError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn log_relocates_off_a_dead_page() {
        let tracker = Tracker::new();
        let inj = Arc::new(FaultInjector::disabled());
        let d = Arc::new(DiskManager::with_faults(
            tracker,
            inj.clone(),
            RetryPolicy::default(),
        ));
        let log = IntentLog::create(d).unwrap();
        let first = log.log_pages()[0];
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Permanent).at(u64::from(first)));
        // The scripted permanent fault fires on the next write to the
        // old page; the log moves to a fresh page and stays usable.
        log.begin(&["X".to_string()]).unwrap();
        assert_ne!(log.log_pages()[0], first);
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["X".into()]))
        );
    }

    #[test]
    fn chain_grows_and_compacts_back_to_one_page() {
        let d = disk();
        let log = IntentLog::create(d.clone()).unwrap();
        // Fat records overflow the tail page quickly.
        let fat: Vec<String> = (0..20)
            .map(|i| format!("COL_{i:02}_{}", "y".repeat(80)))
            .collect();
        for _ in 0..20 {
            log.begin(&fat).unwrap();
        }
        assert!(log.chain_len() > 1, "chain grew: {}", log.chain_len());
        let before = d.allocated_pages();
        let freed = log.compact().unwrap();
        assert!(freed > 0);
        assert_eq!(log.chain_len(), 1);
        assert!(
            d.allocated_pages() < before,
            "pages went back to the free list"
        );
        // The pending intent survives compaction byte-for-byte.
        assert_eq!(log.pending().unwrap(), Some(Intent::Attributes(fat)));
        // Compacting a compact log is a harmless no-op swap.
        log.compact().unwrap();
        assert_eq!(log.chain_len(), 1);
    }

    #[test]
    fn clear_auto_compacts_a_long_chain() {
        let log = IntentLog::create(disk()).unwrap();
        let fat: Vec<String> = (0..20)
            .map(|i| format!("COL_{i:02}_{}", "z".repeat(80)))
            .collect();
        for _ in 0..40 {
            log.begin(&fat).unwrap();
        }
        assert!(log.chain_len() > COMPACT_CHAIN);
        log.clear().unwrap();
        assert_eq!(log.chain_len(), 1, "clear() compacted the chain");
        assert_eq!(log.pending().unwrap(), None);
    }

    #[test]
    fn compaction_preserves_each_intent_kind() {
        for make in [
            |l: &IntentLog| l.begin_repair(),
            |l: &IntentLog| l.begin_txn(),
            |l: &IntentLog| l.begin(&["A".to_string()]),
        ] {
            let log = IntentLog::create(disk()).unwrap();
            make(&log).unwrap();
            let before = log.pending().unwrap();
            log.compact().unwrap();
            assert_eq!(log.pending().unwrap(), before);
        }
    }
}
