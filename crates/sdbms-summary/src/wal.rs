//! Write-ahead intent log for crash-consistent summary maintenance.
//!
//! The Summary Database lives in pool-buffered pages, so a simulated
//! crash (which discards every unflushed frame) can leave cached
//! entries that no longer agree with the view data — the worst failure
//! mode of a cache: *stale served as fresh*. The [`IntentLog`] closes
//! that window with a classic intent-logging protocol:
//!
//! 1. **Begin**: before any view cell or summary entry changes, the
//!    affected attribute names are written to a dedicated disk page
//!    *directly* through the [`DiskManager`] — bypassing the volatile
//!    buffer pool, so the intent is durable immediately.
//! 2. **Apply**: view cells are updated and summary maintenance runs
//!    (all through the pool; a crash here may tear anything).
//! 3. **Commit**: the pool is flushed (view + summary pages reach the
//!    disk) and only then is the intent cleared.
//!
//! Recovery after a restart reads the log: a pending intent means step
//! 3 never completed, so every summary entry of the named attributes is
//! invalidated (or the whole cache rebuilt if it is too damaged to
//! enumerate) — the Summary Database is then *cleanly invalidated*,
//! never stale.
//!
//! The log page carries its own magic number; the disk adds CRC32
//! verification underneath, so a corrupted log surfaces as a checksum
//! error and recovery falls back to conservative whole-cache
//! invalidation.

use std::cell::Cell;
use std::sync::Arc;

use sdbms_storage::{DiskManager, Page, PageId, StorageError, PAGE_SIZE};

use crate::error::{Result, SummaryError};

/// Magic marking a valid intent-log page ("SWL1").
const MAGIC: u32 = 0x5357_4C31;

/// Sentinel count meaning "every attribute" (the intent set did not fit
/// on the page, so recovery must be maximally conservative).
const ALL: u16 = u16::MAX;

/// Sentinel count meaning "a view repair was in flight". Recovery must
/// treat the whole view as suspect (like [`Intent::All`]) *and* knows
/// the damage came from an interrupted repair, so the view stays
/// degraded until the repair is re-run.
const REPAIR: u16 = u16::MAX - 1;

/// A pending maintenance intent read back from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// Every attribute of the view must be treated as suspect.
    All,
    /// Only these attributes were mid-update.
    Attributes(Vec<String>),
    /// A repair of the whole view was interrupted mid-flight: its
    /// store/caches may be half-swapped, so everything is suspect and
    /// the repair must be resumed (or the rebuild redone) before the
    /// view is healthy again.
    Repair,
}

/// The per-view write-ahead intent log.
///
/// One durable disk page holding the set of attributes whose summary
/// entries are currently being brought up to date. See the module docs
/// for the protocol.
pub struct IntentLog {
    disk: Arc<DiskManager>,
    page: Cell<PageId>,
}

impl std::fmt::Debug for IntentLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntentLog")
            .field("page", &self.page.get())
            .finish()
    }
}

impl IntentLog {
    /// Allocate the log's disk page and write an empty (no-intent)
    /// record to it.
    pub fn create(disk: Arc<DiskManager>) -> Result<Self> {
        let page = disk.allocate();
        let log = IntentLog {
            disk,
            page: Cell::new(page),
        };
        log.clear()?;
        Ok(log)
    }

    /// The disk page the log lives on.
    #[must_use]
    pub fn page_id(&self) -> PageId {
        self.page.get()
    }

    /// Durably record that the summary entries of `attributes` are
    /// about to be brought up to date. Overwrites any previous intent
    /// (the protocol never nests). If the names do not fit on one page
    /// the log records the conservative "all attributes" sentinel.
    pub fn begin(&self, attributes: &[String]) -> Result<()> {
        let mut page = Page::new();
        page.put_u32(0, MAGIC);
        let mut off = 6usize;
        let mut fits = true;
        for a in attributes {
            let bytes = a.as_bytes();
            if bytes.len() > u16::MAX as usize || off + 2 + bytes.len() > PAGE_SIZE {
                fits = false;
                break;
            }
            page.put_u16(off, bytes.len() as u16);
            page.write_slice(off + 2, bytes);
            off += 2 + bytes.len();
        }
        // Counts at or above the REPAIR sentinel would collide with the
        // reserved encodings; such sets degrade to ALL.
        if fits && attributes.len() < REPAIR as usize {
            page.put_u16(4, attributes.len() as u16);
        } else {
            page.put_u16(4, ALL);
        }
        self.write_log_page(&page)
    }

    /// Durably record that a whole-view repair is starting. Cleared the
    /// same way as any other intent once the repaired state is flushed;
    /// left pending across a crash so recovery resumes (or redoes) the
    /// repair instead of trusting half-repaired state.
    pub fn begin_repair(&self) -> Result<()> {
        let mut page = Page::new();
        page.put_u32(0, MAGIC);
        page.put_u16(4, REPAIR);
        self.write_log_page(&page)
    }

    /// Durably clear the intent: maintenance completed and was flushed.
    pub fn clear(&self) -> Result<()> {
        let mut page = Page::new();
        page.put_u32(0, MAGIC);
        page.put_u16(4, 0);
        self.write_log_page(&page)
    }

    /// The pending intent, if any. An unreadable or unrecognizable log
    /// page surfaces as an error; recovery should treat that exactly
    /// like [`Intent::All`].
    pub fn pending(&self) -> Result<Option<Intent>> {
        let mut page = Page::new();
        self.disk.read_page(self.page.get(), &mut page)?;
        if page.get_u32(0) != MAGIC {
            return Err(SummaryError::Decode("intent log magic mismatch"));
        }
        let count = page.get_u16(4);
        if count == 0 {
            return Ok(None);
        }
        if count == ALL {
            return Ok(Some(Intent::All));
        }
        if count == REPAIR {
            return Ok(Some(Intent::Repair));
        }
        let mut attrs = Vec::with_capacity(count as usize);
        let mut off = 6usize;
        for _ in 0..count {
            if off + 2 > PAGE_SIZE {
                return Err(SummaryError::Decode("intent log truncated"));
            }
            let len = page.get_u16(off) as usize;
            off += 2;
            if off + len > PAGE_SIZE {
                return Err(SummaryError::Decode("intent log truncated"));
            }
            let name = std::str::from_utf8(page.slice(off, len))
                .map_err(|_| SummaryError::Decode("intent log attribute not UTF-8"))?;
            attrs.push(name.to_string());
            off += len;
        }
        Ok(Some(Intent::Attributes(attrs)))
    }

    /// Write the log page, relocating to a freshly allocated page if
    /// the current one has suffered simulated media damage.
    fn write_log_page(&self, page: &Page) -> Result<()> {
        match self.disk.write_page(self.page.get(), page) {
            Err(StorageError::PermanentFault { .. } | StorageError::InvalidPageId(_)) => {
                let fresh = self.disk.allocate();
                self.page.set(fresh);
                Ok(self.disk.write_page(fresh, page)?)
            }
            other => Ok(other?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_storage::{Device, FaultInjector, FaultKind, RetryPolicy, ScriptedFault, Tracker};

    fn disk() -> Arc<DiskManager> {
        Arc::new(DiskManager::new(Tracker::new()))
    }

    #[test]
    fn empty_log_has_no_pending_intent() {
        let log = IntentLog::create(disk()).unwrap();
        assert_eq!(log.pending().unwrap(), None);
    }

    #[test]
    fn begin_then_pending_then_clear() {
        let log = IntentLog::create(disk()).unwrap();
        log.begin(&["AGE".to_string(), "INCOME".to_string()])
            .unwrap();
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["AGE".into(), "INCOME".into()]))
        );
        // Begin replaces, never nests.
        log.begin(&["SALARY".to_string()]).unwrap();
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["SALARY".into()]))
        );
        log.clear().unwrap();
        assert_eq!(log.pending().unwrap(), None);
    }

    #[test]
    fn intent_survives_what_a_buffer_pool_would_lose() {
        // The log writes through the DiskManager directly, so its state
        // is durable the moment begin() returns — there is nothing
        // buffered to lose. Reading through a *second* handle to the
        // same disk proves it.
        let d = disk();
        let log = IntentLog::create(d.clone()).unwrap();
        log.begin(&["X".to_string()]).unwrap();
        let reader = IntentLog {
            disk: d,
            page: Cell::new(log.page_id()),
        };
        assert_eq!(
            reader.pending().unwrap(),
            Some(Intent::Attributes(vec!["X".into()]))
        );
    }

    #[test]
    fn repair_intent_round_trips_and_clears() {
        let log = IntentLog::create(disk()).unwrap();
        log.begin_repair().unwrap();
        assert_eq!(log.pending().unwrap(), Some(Intent::Repair));
        // A later maintenance intent replaces it (the protocol never
        // nests), and clear retires it like any other intent.
        log.begin(&["AGE".to_string()]).unwrap();
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["AGE".into()]))
        );
        log.begin_repair().unwrap();
        log.clear().unwrap();
        assert_eq!(log.pending().unwrap(), None);
    }

    #[test]
    fn oversized_intent_degrades_to_all() {
        let log = IntentLog::create(disk()).unwrap();
        let attrs: Vec<String> = (0..200)
            .map(|i| format!("ATTRIBUTE_{i:04}_{}", "x".repeat(40)))
            .collect();
        log.begin(&attrs).unwrap();
        assert_eq!(log.pending().unwrap(), Some(Intent::All));
    }

    #[test]
    fn corrupted_log_page_surfaces_as_error() {
        let d = disk();
        let log = IntentLog::create(d.clone()).unwrap();
        log.begin(&["X".to_string()]).unwrap();
        d.corrupt_page(log.page_id(), 123).unwrap();
        assert!(matches!(
            log.pending(),
            Err(SummaryError::Storage(StorageError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn log_relocates_off_a_dead_page() {
        let tracker = Tracker::new();
        let inj = Arc::new(FaultInjector::disabled());
        let d = Arc::new(DiskManager::with_faults(
            tracker,
            inj.clone(),
            RetryPolicy::default(),
        ));
        let log = IntentLog::create(d).unwrap();
        let first = log.page_id();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Permanent).at(u64::from(first)));
        // The scripted permanent fault fires on the next write to the
        // old page; the log moves to a fresh page and stays usable.
        log.begin(&["X".to_string()]).unwrap();
        assert_ne!(log.page_id(), first);
        assert_eq!(
            log.pending().unwrap(),
            Some(Intent::Attributes(vec!["X".into()]))
        );
    }
}
