//! The varying-typed result column of the Summary Database.
//!
//! §3.2: "A Summary Database will contain results of significantly
//! different types. For example, the mean of a column will be stored as
//! an integer (or a floating point), whereas a histogram will be stored
//! as two vectors… implicit here is the fact that the values in the
//! third column will be of varying length." [`SummaryValue`] is that
//! third column, with a binary encoding for the disk-resident store.

use std::fmt;

use sdbms_data::Value;
use sdbms_stats::Histogram;

use crate::error::{Result, SummaryError};

/// A cached function result.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryValue {
    /// A single number (mean, median, min…).
    Scalar(f64),
    /// A count (row counts, unique counts).
    Count(u64),
    /// A fixed small vector (quartiles).
    Vector(Vec<f64>),
    /// A histogram — "two vectors" in the paper's words.
    Histogram(Histogram),
    /// The modal value and its frequency.
    ModalValue(Value, u64),
    /// A free-text note (§3.2: "verbal descriptions of the data set",
    /// e.g. how far the analysis has proceeded).
    Note(String),
}

impl SummaryValue {
    /// Numeric view of scalar-like results.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            SummaryValue::Scalar(x) => Some(*x),
            SummaryValue::Count(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Approximate equality (tolerance on floats), for comparing an
    /// incrementally maintained result against a recompute.
    #[must_use]
    pub fn approx_eq(&self, other: &SummaryValue, tol: f64) -> bool {
        match (self, other) {
            (SummaryValue::Scalar(a), SummaryValue::Scalar(b)) => {
                (a - b).abs() <= tol * b.abs().max(1.0)
            }
            (SummaryValue::Count(a), SummaryValue::Count(b)) => a == b,
            (SummaryValue::Vector(a), SummaryValue::Vector(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| (x - y).abs() <= tol * y.abs().max(1.0))
            }
            (SummaryValue::Histogram(a), SummaryValue::Histogram(b)) => a == b,
            (SummaryValue::ModalValue(v, c), SummaryValue::ModalValue(w, d)) => v == w && c == d,
            (SummaryValue::Note(a), SummaryValue::Note(b)) => a == b,
            _ => false,
        }
    }

    /// Binary encoding (varying length, as the paper notes).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            SummaryValue::Scalar(x) => {
                buf.push(0);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            SummaryValue::Count(n) => {
                buf.push(1);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            SummaryValue::Vector(v) => {
                buf.push(2);
                buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    buf.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            SummaryValue::Histogram(h) => {
                buf.push(3);
                encode_histogram(h, &mut buf);
            }
            SummaryValue::ModalValue(v, c) => {
                buf.push(4);
                v.encode(&mut buf);
                buf.extend_from_slice(&c.to_le_bytes());
            }
            SummaryValue::Note(s) => {
                buf.push(5);
                let b = s.as_bytes();
                buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
                buf.extend_from_slice(b);
            }
        }
        buf
    }

    /// Decode one value from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<SummaryValue> {
        let tag = *buf
            .get(*pos)
            .ok_or(SummaryError::Decode("summary value tag missing"))?;
        *pos += 1;
        match tag {
            0 => Ok(SummaryValue::Scalar(f64::from_bits(take_u64(buf, pos)?))),
            1 => Ok(SummaryValue::Count(take_u64(buf, pos)?)),
            2 => {
                let n = take_u32(buf, pos)? as usize;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(f64::from_bits(take_u64(buf, pos)?));
                }
                Ok(SummaryValue::Vector(v))
            }
            3 => Ok(SummaryValue::Histogram(decode_histogram(buf, pos)?)),
            4 => {
                let v = Value::decode(buf, pos).map_err(|_| SummaryError::Decode("modal value"))?;
                Ok(SummaryValue::ModalValue(v, take_u64(buf, pos)?))
            }
            5 => {
                let n = take_u32(buf, pos)? as usize;
                let bytes = buf
                    .get(*pos..*pos + n)
                    .ok_or(SummaryError::Decode("note truncated"))?;
                *pos += n;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| SummaryError::Decode("note not UTF-8"))?;
                Ok(SummaryValue::Note(s.to_string()))
            }
            _ => Err(SummaryError::Decode("unknown summary value tag")),
        }
    }
}

impl fmt::Display for SummaryValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryValue::Scalar(x) => write!(f, "{x}"),
            SummaryValue::Count(n) => write!(f, "{n}"),
            SummaryValue::Vector(v) => write!(f, "{v:?}"),
            SummaryValue::Histogram(h) => {
                write!(f, "histogram[{} bins, {} obs]", h.bins(), h.total())
            }
            SummaryValue::ModalValue(v, c) => write!(f, "{v} (×{c})"),
            SummaryValue::Note(s) => write!(f, "{s:?}"),
        }
    }
}

pub(crate) fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let b = buf
        .get(*pos..*pos + 8)
        .ok_or(SummaryError::Decode("u64 truncated"))?;
    *pos += 8;
    let b = b
        .try_into()
        .map_err(|_| SummaryError::Decode("u64 truncated"))?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let b = buf
        .get(*pos..*pos + 4)
        .ok_or(SummaryError::Decode("u32 truncated"))?;
    *pos += 4;
    let b = b
        .try_into()
        .map_err(|_| SummaryError::Decode("u32 truncated"))?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn encode_histogram(h: &Histogram, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(h.edges().len() as u32).to_le_bytes());
    for e in h.edges() {
        buf.extend_from_slice(&e.to_bits().to_le_bytes());
    }
    for c in h.counts() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf.extend_from_slice(&h.below().to_le_bytes());
    buf.extend_from_slice(&h.above().to_le_bytes());
}

pub(crate) fn decode_histogram(buf: &[u8], pos: &mut usize) -> Result<Histogram> {
    let n_edges = take_u32(buf, pos)? as usize;
    if n_edges < 2 {
        return Err(SummaryError::Decode("histogram needs >= 2 edges"));
    }
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edges.push(f64::from_bits(take_u64(buf, pos)?));
    }
    let mut h = Histogram::with_range(edges[0], edges[n_edges - 1], n_edges - 1)
        .map_err(|_| SummaryError::Decode("bad histogram range"))?;
    // Edges are equi-width by construction; replay counts through the
    // public surface by re-adding bin midpoints.
    let mut counts = Vec::with_capacity(n_edges - 1);
    for _ in 0..n_edges - 1 {
        counts.push(take_u64(buf, pos)?);
    }
    let below = take_u64(buf, pos)?;
    let above = take_u64(buf, pos)?;
    for (i, &c) in counts.iter().enumerate() {
        let mid = (edges[i] + edges[i + 1]) / 2.0;
        for _ in 0..c {
            h.add(mid);
        }
    }
    for _ in 0..below {
        h.add(edges[0] - 1.0);
    }
    for _ in 0..above {
        h.add(edges[n_edges - 1] + 1.0);
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &SummaryValue) -> SummaryValue {
        let bytes = v.encode();
        let mut pos = 0usize;
        let out = SummaryValue::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len(), "all bytes consumed");
        out
    }

    #[test]
    fn scalar_count_vector_roundtrip() {
        for v in [
            SummaryValue::Scalar(-12.5e300),
            SummaryValue::Scalar(f64::INFINITY),
            SummaryValue::Count(u64::MAX),
            SummaryValue::Vector(vec![1.0, 2.5, -3.0]),
            SummaryValue::Vector(vec![]),
            SummaryValue::Note("analysis at step 3; outliers pending".into()),
            SummaryValue::ModalValue(Value::Str("M".into()), 42),
            SummaryValue::ModalValue(Value::Missing, 7),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn histogram_roundtrip() {
        let mut h = Histogram::with_range(0.0, 100.0, 10).unwrap();
        for x in [5.0, 15.0, 15.0, 95.0, -3.0, 200.0] {
            h.add(x);
        }
        let v = SummaryValue::Histogram(h.clone());
        let SummaryValue::Histogram(out) = roundtrip(&v) else {
            panic!()
        };
        assert_eq!(out.counts(), h.counts());
        assert_eq!(out.edges(), h.edges());
        assert_eq!(out.below(), h.below());
        assert_eq!(out.above(), h.above());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = SummaryValue::Scalar(100.0);
        let b = SummaryValue::Scalar(100.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&SummaryValue::Scalar(101.0), 1e-9));
        assert!(!a.approx_eq(&SummaryValue::Count(100), 1e-9), "type-strict");
        assert!(SummaryValue::Count(5).approx_eq(&SummaryValue::Count(5), 0.0));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut pos = 0;
        assert!(SummaryValue::decode(&[], &mut pos).is_err());
        let mut pos = 0;
        assert!(SummaryValue::decode(&[99], &mut pos).is_err());
        let good = SummaryValue::Scalar(1.0).encode();
        let mut pos = 0;
        assert!(SummaryValue::decode(&good[..5], &mut pos).is_err());
    }

    #[test]
    fn as_scalar_views() {
        assert_eq!(SummaryValue::Scalar(2.5).as_scalar(), Some(2.5));
        assert_eq!(SummaryValue::Count(3).as_scalar(), Some(3.0));
        assert_eq!(SummaryValue::Vector(vec![]).as_scalar(), None);
    }
}
