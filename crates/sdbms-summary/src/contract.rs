//! Maintenance contracts for summary functions.
//!
//! §4.2 classifies functions by how their cached results react to
//! updates; this module turns that classification into an explicit,
//! *checkable* contract: for every [`UpdateKind`] a function must
//! declare a [`MaintenanceStrategy`], and a function that declares
//! itself incremental must have auxiliary state with a **verified
//! merge law** — merging per-partition states must equal a single
//! pass over the concatenated data. [`verify_merge_law`] is the
//! executable oracle for that law; the `sdbms-lint` soundness checker
//! audits a whole [`SummaryRegistry`] against it.

use std::fmt;

use sdbms_columnar::zonemap::ZoneMap;
use sdbms_data::Value;

use crate::function::{MaintenanceClass, StatFunction};

/// The kinds of update a concrete view can see (§4's update model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// A new row appears.
    Insert,
    /// A row disappears.
    Delete,
    /// An existing value is replaced in place.
    Overwrite,
}

/// All update kinds, in declaration order.
pub const ALL_UPDATE_KINDS: [UpdateKind; 3] = [
    UpdateKind::Insert,
    UpdateKind::Delete,
    UpdateKind::Overwrite,
];

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpdateKind::Insert => "insert",
            UpdateKind::Delete => "delete",
            UpdateKind::Overwrite => "overwrite",
        })
    }
}

/// What the engine does to a cached entry when an update of some kind
/// arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Exact O(1) delta on constant-size auxiliary state (§4.2 finite
    /// differencing).
    IncrementalDelta,
    /// Usually a delta; degenerate cases (deleting the extreme,
    /// window exhaustion) force a partial rescan.
    IncrementalOrRescan,
    /// Regenerate the entry eagerly from data.
    Regenerate,
    /// Mark stale, recompute lazily on next lookup (§4.3 fallback).
    Invalidate,
}

impl fmt::Display for MaintenanceStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MaintenanceStrategy::IncrementalDelta => "incremental-delta",
            MaintenanceStrategy::IncrementalOrRescan => "incremental-or-rescan",
            MaintenanceStrategy::Regenerate => "regenerate",
            MaintenanceStrategy::Invalidate => "invalidate",
        })
    }
}

impl MaintenanceStrategy {
    /// Does this strategy rely on incremental auxiliary state?
    #[must_use]
    pub fn is_incremental(&self) -> bool {
        matches!(
            self,
            MaintenanceStrategy::IncrementalDelta | MaintenanceStrategy::IncrementalOrRescan
        )
    }
}

/// One function's declared maintenance behaviour: a strategy per
/// update kind, plus whether the function claims incremental
/// maintainability (and therefore owes a merge law).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionContract {
    /// The function this contract covers.
    pub function: StatFunction,
    /// Whether the function claims to be incrementally maintainable.
    pub declared_incremental: bool,
    strategies: Vec<(UpdateKind, MaintenanceStrategy)>,
}

impl FunctionContract {
    /// An empty contract (no strategies declared) — the raw material
    /// for hand-built registrations and for the soundness checker's
    /// negative fixtures.
    #[must_use]
    pub fn new(function: StatFunction, declared_incremental: bool) -> Self {
        FunctionContract {
            function,
            declared_incremental,
            strategies: Vec::new(),
        }
    }

    /// Declare (or replace) the strategy for one update kind.
    #[must_use]
    pub fn with(mut self, kind: UpdateKind, strategy: MaintenanceStrategy) -> Self {
        self.strategies.retain(|(k, _)| *k != kind);
        self.strategies.push((kind, strategy));
        self
    }

    /// The strategy declared for one update kind, if any.
    #[must_use]
    pub fn strategy_for(&self, kind: UpdateKind) -> Option<MaintenanceStrategy> {
        self.strategies
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
    }

    /// The canonical contract implied by the function's
    /// [`MaintenanceClass`]. Every standing function gets its contract
    /// from here; the checker then confirms the implication was sound.
    #[must_use]
    pub fn derived(function: &StatFunction) -> Self {
        use MaintenanceStrategy::{IncrementalDelta, IncrementalOrRescan, Invalidate};
        let class = function.maintenance_class();
        let (ins, del, ovw, incremental) = match class {
            MaintenanceClass::Differentiable => {
                (IncrementalDelta, IncrementalDelta, IncrementalDelta, true)
            }
            // Inserting never disturbs an extreme; removing (or
            // overwriting) the extreme forces a rescan.
            MaintenanceClass::SemiDifferentiable => (
                IncrementalDelta,
                IncrementalOrRescan,
                IncrementalOrRescan,
                true,
            ),
            MaintenanceClass::OrderStatistic => {
                if matches!(function, StatFunction::Median | StatFunction::Quantile(500)) {
                    // The §4.2 median window absorbs updates until it
                    // runs off an edge, then rescans. Order-dependent
                    // state: *not* mergeable, hence not "incremental"
                    // in the contract sense.
                    (
                        IncrementalOrRescan,
                        IncrementalOrRescan,
                        IncrementalOrRescan,
                        false,
                    )
                } else {
                    (Invalidate, Invalidate, Invalidate, false)
                }
            }
            MaintenanceClass::Distributional => {
                (IncrementalDelta, IncrementalDelta, IncrementalDelta, true)
            }
            MaintenanceClass::NonIncremental => (Invalidate, Invalidate, Invalidate, false),
        };
        FunctionContract::new(function.clone(), incremental)
            .with(UpdateKind::Insert, ins)
            .with(UpdateKind::Delete, del)
            .with(UpdateKind::Overwrite, ovw)
    }
}

/// A maintained *physical* statistic — auxiliary structures the
/// engine keeps consistent under updates that are not summary
/// functions (per-segment zone maps, for one). The contract shape
/// mirrors [`FunctionContract`] so the soundness checker audits both
/// with the same rules: a strategy per [`UpdateKind`], and a verified
/// merge law when the statistic claims one.
#[derive(Debug, Clone)]
pub struct StatisticContract {
    /// Stable name of the statistic (diagnostic subject).
    pub name: &'static str,
    /// Whether per-partition states claim an exact merge law (zone
    /// maps do: per-segment maps merge into range statistics at read
    /// time, and the merge must equal a build over the concatenation).
    pub declared_incremental: bool,
    strategies: Vec<(UpdateKind, MaintenanceStrategy)>,
    /// Executable oracle for the claimed merge law.
    verify: fn() -> MergeLawStatus,
}

impl StatisticContract {
    /// A contract with no strategies declared yet.
    #[must_use]
    pub fn new(
        name: &'static str,
        declared_incremental: bool,
        verify: fn() -> MergeLawStatus,
    ) -> Self {
        StatisticContract {
            name,
            declared_incremental,
            strategies: Vec::new(),
            verify,
        }
    }

    /// Declare (or replace) the strategy for one update kind.
    #[must_use]
    pub fn with(mut self, kind: UpdateKind, strategy: MaintenanceStrategy) -> Self {
        self.strategies.retain(|(k, _)| *k != kind);
        self.strategies.push((kind, strategy));
        self
    }

    /// The strategy declared for one update kind, if any.
    #[must_use]
    pub fn strategy_for(&self, kind: UpdateKind) -> Option<MaintenanceStrategy> {
        self.strategies
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
    }

    /// Run the statistic's merge-law oracle.
    #[must_use]
    pub fn verify_merge_law(&self) -> MergeLawStatus {
        (self.verify)()
    }
}

/// Executable merge law for [`ZoneMap`]: merging per-partition maps
/// must reproduce the map built over the concatenated values — for
/// every field, including run counts across the seam and the
/// distinct-set cap. This is what licenses `range_stats` to combine
/// per-segment maps into morsel-level pruning decisions.
#[must_use]
pub fn verify_zone_map_merge_law() -> MergeLawStatus {
    // Mixed deterministic column: runs, missing values, codes, floats.
    let mut state = 0x5A4D_0001u64;
    let mut whole = Vec::with_capacity(160);
    for i in 0..160usize {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let draw = (state >> 33) % 100;
        whole.push(match draw {
            0..=14 => Value::Missing,
            15..=44 => Value::Code((draw % 5) as u32),
            45..=59 => Value::Float(draw as f64 / 3.0),
            // Plateaus of i/20 give genuine runs spanning cut points.
            _ => Value::Int((i / 20) as i64),
        });
    }
    let direct = ZoneMap::build(&whole);
    for cut in [0usize, 1, 37, 80, 159, 160] {
        let (a, b) = whole.split_at(cut);
        let mut merged = ZoneMap::build(a);
        merged.merge(&ZoneMap::build(b));
        if merged != direct {
            return MergeLawStatus::Mismatch(format!(
                "cut {cut}: merged map disagrees with single-pass build"
            ));
        }
    }
    MergeLawStatus::Verified
}

/// The contract the engine actually implements for per-segment zone
/// maps: every write regenerates the touched segment's map (writers
/// invalidate before touching data and re-persist after), and the
/// read path merges per-segment maps under the verified merge law.
#[must_use]
pub fn zone_map_contract() -> StatisticContract {
    StatisticContract::new("segment-zone-map", true, verify_zone_map_merge_law)
        .with(UpdateKind::Insert, MaintenanceStrategy::Regenerate)
        .with(UpdateKind::Delete, MaintenanceStrategy::Regenerate)
        .with(UpdateKind::Overwrite, MaintenanceStrategy::Regenerate)
}

/// The registry the soundness checker audits: every function the
/// Summary Database will maintain, each with its contract, plus the
/// maintained physical statistics.
#[derive(Debug, Clone, Default)]
pub struct SummaryRegistry {
    contracts: Vec<FunctionContract>,
    statistics: Vec<StatisticContract>,
}

impl SummaryRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of the §3.2 standing summary set, each function
    /// under its derived contract, plus the engine's maintained
    /// physical statistics (the per-segment zone maps).
    #[must_use]
    pub fn standing() -> Self {
        let mut r = Self::new();
        for f in crate::function::standing_summary_functions() {
            r.register(FunctionContract::derived(&f));
        }
        r.register_statistic(zone_map_contract());
        r
    }

    /// Add (or replace) a contract.
    pub fn register(&mut self, contract: FunctionContract) {
        self.contracts.retain(|c| c.function != contract.function);
        self.contracts.push(contract);
    }

    /// All registered contracts, in registration order.
    #[must_use]
    pub fn contracts(&self) -> &[FunctionContract] {
        &self.contracts
    }

    /// Add (or replace) a physical-statistic contract.
    pub fn register_statistic(&mut self, contract: StatisticContract) {
        self.statistics.retain(|c| c.name != contract.name);
        self.statistics.push(contract);
    }

    /// All registered physical-statistic contracts.
    #[must_use]
    pub fn statistics(&self) -> &[StatisticContract] {
        &self.statistics
    }
}

/// The outcome of checking one function's merge law.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeLawStatus {
    /// Merged per-partition state reproduced the single-pass result.
    Verified,
    /// The function builds no auxiliary state at all.
    NoAuxiliaryState,
    /// The states exist but refuse to merge (no merge law).
    Unmergeable(String),
    /// The merge succeeded but the answer disagreed with a single pass
    /// over the concatenated data — the law is *wrong*, not missing.
    Mismatch(String),
}

impl MergeLawStatus {
    /// Did the law hold?
    #[must_use]
    pub fn verified(&self) -> bool {
        *self == MergeLawStatus::Verified
    }
}

/// Deterministic pseudo-random column (an LCG — no external RNG, no
/// wall clock) with a bounded value domain so the frequency-table aux
/// stays under [`crate::function::MAX_FREQ_AUX_DISTINCT`].
fn lcg_column(seed: u64, n: usize) -> Vec<Value> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // 0..=40, offset so halves have overlapping but distinct mixes.
        out.push(Value::Int(((state >> 33) % 41) as i64));
    }
    out
}

/// Execute the merge law for one function: build auxiliary state over
/// two halves of a deterministic column, merge, and compare the merged
/// answer against a single computation over the concatenation.
///
/// Histograms get the same treatment the engine gives them
/// ([`crate::parallel::aux_from_profile`] derives bin edges from the
/// whole column's profile before partitioning), so both halves are
/// filled against shared edges.
#[must_use]
pub fn verify_merge_law(function: &StatFunction) -> MergeLawStatus {
    let whole = lcg_column(0xA5EE_D001, 96);
    let (left, right) = whole.split_at(48);

    let (mut aux, other) = if let StatFunction::Histogram(bins) = function {
        // Shared edges from the whole column's range, per-half fills.
        let nums = |vs: &[Value]| -> Vec<f64> { vs.iter().filter_map(Value::as_f64).collect() };
        let all = nums(&whole);
        let (lo, hi) = all
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        // The same epsilon padding Histogram::from_data applies, so the
        // whole column's maximum lands in the last bin, not in `above`,
        // and the comparison against the direct computation is edge-exact.
        let hi = if lo == hi { lo + 1.0 } else { hi };
        let hi = hi + (hi - lo) * 1e-9;
        let mk = |vs: &[f64]| -> Option<crate::function::AuxState> {
            let mut h = sdbms_stats::Histogram::with_range(lo, hi, usize::from(*bins)).ok()?;
            for &x in vs {
                h.add(x);
            }
            Some(crate::function::AuxState::Histo(h))
        };
        match (mk(&nums(left)), mk(&nums(right))) {
            (Some(a), Some(b)) => (a, b),
            _ => return MergeLawStatus::NoAuxiliaryState,
        }
    } else {
        match (function.build_aux(left), function.build_aux(right)) {
            (Some(a), Some(b)) => (a, b),
            _ => return MergeLawStatus::NoAuxiliaryState,
        }
    };

    if let Err(e) = aux.merge(&other) {
        return MergeLawStatus::Unmergeable(e.to_string());
    }
    let Some(merged) = function.result_from_aux(&aux) else {
        return MergeLawStatus::Mismatch("merged state cannot answer".to_string());
    };
    let direct = match function.compute(&whole) {
        Ok(v) => v,
        Err(e) => return MergeLawStatus::Mismatch(format!("direct computation failed: {e}")),
    };
    // Histogram bin edges differ between from_data (per-column range)
    // and the shared-range fill only by floating-point noise; compare
    // through the same tolerance the maintenance engine uses.
    if merged.approx_eq(&direct, 1e-9) {
        MergeLawStatus::Verified
    } else {
        MergeLawStatus::Mismatch(format!("merged {merged:?} != direct {direct:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_contract_covers_all_kinds() {
        for f in crate::function::standing_summary_functions() {
            let c = FunctionContract::derived(&f);
            for k in ALL_UPDATE_KINDS {
                assert!(c.strategy_for(k).is_some(), "{f} lacks {k}");
            }
        }
    }

    #[test]
    fn differentiable_is_incremental_everywhere() {
        let c = FunctionContract::derived(&StatFunction::Mean);
        assert!(c.declared_incremental);
        for k in ALL_UPDATE_KINDS {
            assert_eq!(
                c.strategy_for(k),
                Some(MaintenanceStrategy::IncrementalDelta)
            );
        }
    }

    #[test]
    fn min_rescans_on_delete_only() {
        let c = FunctionContract::derived(&StatFunction::Min);
        assert_eq!(
            c.strategy_for(UpdateKind::Insert),
            Some(MaintenanceStrategy::IncrementalDelta)
        );
        assert_eq!(
            c.strategy_for(UpdateKind::Delete),
            Some(MaintenanceStrategy::IncrementalOrRescan)
        );
    }

    #[test]
    fn trimmed_mean_invalidates() {
        let c = FunctionContract::derived(&StatFunction::TrimmedMean(50, 950));
        assert!(!c.declared_incremental);
        assert_eq!(
            c.strategy_for(UpdateKind::Overwrite),
            Some(MaintenanceStrategy::Invalidate)
        );
    }

    #[test]
    fn merge_law_holds_for_incremental_functions() {
        for f in [
            StatFunction::Count,
            StatFunction::Sum,
            StatFunction::Mean,
            StatFunction::Variance,
            StatFunction::StdDev,
            StatFunction::Min,
            StatFunction::Max,
            StatFunction::Mode,
            StatFunction::UniqueCount,
            StatFunction::Histogram(8),
        ] {
            let status = verify_merge_law(&f);
            assert!(status.verified(), "{f}: {status:?}");
        }
    }

    #[test]
    fn median_window_has_no_merge_law() {
        assert_eq!(
            verify_merge_law(&StatFunction::Median),
            MergeLawStatus::Unmergeable(
                "auxiliary states cannot be merged: median window is order-dependent".into()
            )
        );
    }

    #[test]
    fn non_incremental_has_no_aux() {
        assert_eq!(
            verify_merge_law(&StatFunction::TrimmedMean(50, 950)),
            MergeLawStatus::NoAuxiliaryState
        );
    }

    #[test]
    fn standing_registry_is_sound() {
        for c in SummaryRegistry::standing().contracts() {
            if c.declared_incremental {
                assert!(
                    verify_merge_law(&c.function).verified(),
                    "{} declared incremental without a merge law",
                    c.function
                );
            }
        }
    }

    #[test]
    fn zone_map_contract_covers_all_kinds_and_verifies() {
        let c = zone_map_contract();
        for k in ALL_UPDATE_KINDS {
            assert_eq!(c.strategy_for(k), Some(MaintenanceStrategy::Regenerate));
        }
        assert!(c.declared_incremental);
        assert!(c.verify_merge_law().verified());
    }

    #[test]
    fn standing_registry_includes_zone_maps() {
        let r = SummaryRegistry::standing();
        assert!(r.statistics().iter().any(|s| s.name == "segment-zone-map"));
    }

    #[test]
    fn statistic_registry_replaces_on_reregister() {
        let mut r = SummaryRegistry::new();
        r.register_statistic(zone_map_contract());
        r.register_statistic(StatisticContract::new(
            "segment-zone-map",
            false,
            verify_zone_map_merge_law,
        ));
        assert_eq!(r.statistics().len(), 1);
        assert!(!r.statistics()[0].declared_incremental);
    }

    #[test]
    fn registry_replaces_on_reregister() {
        let mut r = SummaryRegistry::new();
        r.register(FunctionContract::derived(&StatFunction::Mean));
        r.register(FunctionContract::new(StatFunction::Mean, false));
        assert_eq!(r.contracts().len(), 1);
        assert!(!r.contracts()[0].declared_incremental);
    }
}
