//! Summary computation from parallel scan profiles.
//!
//! A [`ColumnProfile`] is what the morsel-driven executor
//! ([`sdbms_exec`]) produces from one pass over a column: merged
//! mergeable accumulators (moments, extremes, frequency table) plus the
//! numeric values gathered in row order. Every cacheable
//! [`StatFunction`] can be answered from that single profile, so one
//! parallel scan populates or regenerates *all* of an attribute's
//! Summary Database entries — the batch counterpart of the per-function
//! compute path in [`crate::maintain`].
//!
//! Determinism contract: the profile's accumulators are merged in
//! morsel-index order, so every result here is **bit-identical across
//! worker counts**. Relative to the serial per-function path, results
//! from `numbers` (order statistics, histograms, trimmed means), from
//! the frequency table (mode, unique count), and from the extremes
//! (min/max, count) are *exactly* equal; moments-derived scalars
//! (sum/mean/variance) agree to ~1e-12 relative error because merged
//! moments associate floating-point additions differently than the
//! serial compensated sums.

use sdbms_exec::ColumnProfile;
use sdbms_stats::{quantile, Histogram};

use crate::db::{Entry, Freshness, SummaryDb};
use crate::error::Result;
use crate::function::{AuxState, StatFunction, MAX_FREQ_AUX_DISTINCT};
use crate::maintain::MaintenanceReport;
use crate::value::SummaryValue;

/// Compute one function's result from a column profile — no further
/// data access.
pub fn compute_from_profile(f: &StatFunction, p: &ColumnProfile) -> Result<SummaryValue> {
    Ok(match f {
        StatFunction::Count => SummaryValue::Count(p.numbers.len() as u64),
        StatFunction::Sum => SummaryValue::Scalar(p.moments.sum()),
        StatFunction::Mean => SummaryValue::Scalar(p.moments.mean()?),
        StatFunction::Variance => SummaryValue::Scalar(p.moments.variance()?),
        StatFunction::StdDev => SummaryValue::Scalar(p.moments.std_dev()?),
        StatFunction::Min => SummaryValue::Scalar(p.minmax.min()?),
        StatFunction::Max => SummaryValue::Scalar(p.minmax.max()?),
        StatFunction::Median => SummaryValue::Scalar(quantile::median(&p.numbers)?),
        StatFunction::Quartiles => {
            let (q1, q2, q3) = quantile::quartiles(&p.numbers)?;
            SummaryValue::Vector(vec![q1, q2, q3])
        }
        StatFunction::Quantile(pm) => {
            SummaryValue::Scalar(quantile::quantile(&p.numbers, f64::from(*pm) / 1000.0)?)
        }
        StatFunction::Mode => {
            let (v, c) = p.freq.mode()?;
            SummaryValue::ModalValue(v, c)
        }
        StatFunction::UniqueCount => SummaryValue::Count(p.freq.unique_count() as u64),
        StatFunction::Histogram(bins) => {
            SummaryValue::Histogram(Histogram::from_data(&p.numbers, usize::from(*bins))?)
        }
        StatFunction::TrimmedMean(lo, hi) => SummaryValue::Scalar(quantile::trimmed_mean(
            &p.numbers,
            f64::from(*lo) / 1000.0,
            f64::from(*hi) / 1000.0,
        )?),
    })
}

/// Build a function's auxiliary maintenance state from a profile —
/// mirrors [`StatFunction::build_aux`] without re-reading the column.
#[must_use]
pub fn aux_from_profile(f: &StatFunction, p: &ColumnProfile) -> Option<AuxState> {
    use crate::function::MaintenanceClass;
    match f.maintenance_class() {
        MaintenanceClass::Differentiable => Some(AuxState::Moments(p.moments)),
        MaintenanceClass::SemiDifferentiable => Some(AuxState::MinMax(p.minmax)),
        MaintenanceClass::OrderStatistic => {
            if !matches!(f, StatFunction::Median | StatFunction::Quantile(500)) {
                return None;
            }
            let mut w =
                crate::median_window::MedianWindow::new(crate::median_window::DEFAULT_WINDOW);
            w.rebuild(&p.numbers);
            Some(AuxState::Window(w))
        }
        MaintenanceClass::Distributional => match f {
            StatFunction::Histogram(bins) => Histogram::from_data(&p.numbers, usize::from(*bins))
                .ok()
                .map(AuxState::Histo),
            _ => (p.freq.unique_count() <= MAX_FREQ_AUX_DISTINCT)
                .then(|| AuxState::Freq(p.freq.clone())),
        },
        MaintenanceClass::NonIncremental => None,
    }
}

/// Refresh one entry's result and auxiliary state from a profile — the
/// profile-driven counterpart of [`crate::maintain::refresh_entry`].
pub fn refresh_entry_from_profile(
    db: &SummaryDb,
    entry: &mut Entry,
    profile: &ColumnProfile,
) -> Result<()> {
    entry.result = compute_from_profile(&entry.function, profile)?;
    entry.aux = aux_from_profile(&entry.function, profile);
    entry.freshness = Freshness::Fresh;
    entry.updates_since_refresh = 0;
    db.note_recompute();
    Ok(())
}

/// Regenerate every cached entry of `attribute` from one profile — the
/// batch path an `EagerRecompute` maintenance pass or a post-crash
/// rebuild takes: one parallel scan, then all entries refreshed with no
/// further data access.
pub fn regenerate_attribute(
    db: &SummaryDb,
    attribute: &str,
    profile: &ColumnProfile,
) -> Result<MaintenanceReport> {
    let mut report = MaintenanceReport::default();
    for mut entry in db.entries_for_attribute(attribute)? {
        refresh_entry_from_profile(db, &mut entry, profile)?;
        db.put(&entry)?;
        report.recomputed += 1;
    }
    Ok(report)
}

/// Warm a set of standing functions for `attribute` from one profile.
/// Already-fresh entries are kept; functions the column cannot support
/// (e.g. mean of a non-numeric column) are skipped. Returns how many
/// entries are fresh afterwards.
pub fn warm_attribute(
    db: &SummaryDb,
    attribute: &str,
    profile: &ColumnProfile,
    functions: &[StatFunction],
) -> Result<usize> {
    let mut warmed = 0usize;
    for f in functions {
        if let Some(existing) = db.lookup(attribute, f)? {
            if existing.freshness == Freshness::Fresh {
                warmed += 1;
                continue;
            }
        }
        let Ok(result) = compute_from_profile(f, profile) else {
            continue;
        };
        let entry = Entry {
            attribute: attribute.to_string(),
            function: f.clone(),
            result,
            freshness: Freshness::Fresh,
            aux: aux_from_profile(f, profile),
            updates_since_refresh: 0,
        };
        db.put(&entry)?;
        db.note_recompute();
        warmed += 1;
    }
    Ok(warmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::standing_summary_functions;
    use crate::maintain::UpdateDelta;
    use crate::maintain::{apply_updates, get_or_compute, AccuracyPolicy, MaintenancePolicy};
    use sdbms_data::Value;
    use sdbms_exec::{profile_values, ExecConfig};
    use sdbms_storage::StorageEnv;

    fn db() -> SummaryDb {
        SummaryDb::create(StorageEnv::new(64).pool).unwrap()
    }

    fn mixed_col() -> Vec<Value> {
        let mut vals = Vec::new();
        for i in 0..500i64 {
            vals.push(match i % 7 {
                0 => Value::Missing,
                1 | 2 => Value::Int(i % 23),
                _ => Value::Int((i * 37) % 101),
            });
        }
        vals
    }

    fn all_functions() -> Vec<StatFunction> {
        let mut fns = standing_summary_functions();
        fns.extend([
            StatFunction::Sum,
            StatFunction::Variance,
            StatFunction::StdDev,
            StatFunction::Quantile(250),
            StatFunction::TrimmedMean(100, 900),
        ]);
        fns
    }

    #[test]
    fn profile_results_match_serial_compute() {
        let col = mixed_col();
        for workers in [1, 2, 4, 8] {
            let p = profile_values(&col, &ExecConfig::with_workers(workers));
            for f in all_functions() {
                let from_profile = compute_from_profile(&f, &p).unwrap();
                let direct = f.compute(&col).unwrap();
                assert!(
                    from_profile.approx_eq(&direct, 1e-12),
                    "{f} @ {workers} workers: {from_profile:?} != {direct:?}"
                );
            }
        }
    }

    #[test]
    fn profile_aux_answers_like_serial_aux() {
        let col = mixed_col();
        let p = profile_values(&col, &ExecConfig::with_workers(4));
        for f in all_functions() {
            let from_profile = aux_from_profile(&f, &p);
            let serial = f.build_aux(&col);
            match (from_profile, serial) {
                (Some(a), Some(b)) => {
                    let ra = f.result_from_aux(&a);
                    let rb = f.result_from_aux(&b);
                    match (ra, rb) {
                        (Some(x), Some(y)) => {
                            assert!(x.approx_eq(&y, 1e-9), "{f}: {x:?} != {y:?}");
                        }
                        (None, None) => {}
                        (x, y) => panic!("{f}: aux answerability diverged: {x:?} vs {y:?}"),
                    }
                }
                (None, None) => {}
                (a, b) => panic!("{f}: aux presence diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn regenerate_refreshes_every_entry() {
        let db = db();
        let col = mixed_col();
        let fns = all_functions();
        for f in &fns {
            get_or_compute(&db, "X", f, AccuracyPolicy::Exact, &mut || Ok(col.clone())).unwrap();
        }
        // Stale everything via the lazy policy.
        apply_updates(
            &db,
            "X",
            &[UpdateDelta {
                old: Value::Int(1),
                new: Value::Int(2),
            }],
            MaintenancePolicy::InvalidateLazy,
            &mut || unreachable!("lazy policy reads no data"),
        )
        .unwrap();
        // One profile regenerates all of them.
        let mut new_col = col.clone();
        new_col[1] = Value::Int(2);
        let p = profile_values(&new_col, &ExecConfig::with_workers(4));
        let report = regenerate_attribute(&db, "X", &p).unwrap();
        assert_eq!(report.recomputed, fns.len());
        for f in &fns {
            let entry = db
                .lookup_fresh("X", f)
                .unwrap()
                .unwrap_or_else(|| panic!("{f} should be fresh after regeneration"));
            assert_eq!(entry.updates_since_refresh, 0);
            let direct = f.compute(&new_col).unwrap();
            assert!(entry.result.approx_eq(&direct, 1e-12), "{f}");
        }
    }

    #[test]
    fn warm_populates_and_respects_fresh_entries() {
        let db = db();
        let col = mixed_col();
        let fns = standing_summary_functions();
        let p = profile_values(&col, &ExecConfig::with_workers(2));
        let warmed = warm_attribute(&db, "X", &p, &fns).unwrap();
        assert_eq!(warmed, fns.len());
        let recomputes = db.stats().recomputes;
        // Second warm: everything fresh already — no new computation.
        let again = warm_attribute(&db, "X", &p, &fns).unwrap();
        assert_eq!(again, fns.len());
        assert_eq!(db.stats().recomputes, recomputes);
    }

    #[test]
    fn warm_skips_unsupported_functions() {
        let db = db();
        // All-missing column: numeric functions cannot be computed.
        let col = vec![Value::Missing; 10];
        let p = profile_values(&col, &ExecConfig::serial());
        let warmed = warm_attribute(
            &db,
            "X",
            &p,
            &[StatFunction::Mean, StatFunction::Mode, StatFunction::Count],
        )
        .unwrap();
        // Mode (missing counts as a value) and Count (0) succeed.
        assert_eq!(warmed, 2);
        assert!(db.lookup_fresh("X", &StatFunction::Mean).unwrap().is_none());
    }
}
