//! Maintenance of cached results under view updates.
//!
//! §3.2: "Whether or not a value in the Summary Database must be
//! precise at all times, the DBMS must be able to periodically bring it
//! up to date… One possibility is to recompute the function using the
//! updated data as input. A more attractive alternative is to
//! incrementally recompute the result using the old function value,
//! changes made to the data, and perhaps some auxiliary information."
//! §4.3 adds the fallback: "after each update operation all the values
//! associated with the updated attribute will be marked as invalid" and
//! regenerated lazily.
//!
//! [`MaintenancePolicy`] spans that whole spectrum, and experiment E6
//! sweeps it. [`AccuracyPolicy`] is the user-communicated tolerance of
//! §3.2 ("the user should have the capability of communicating his
//! wishes regarding the desired accuracy").

use sdbms_data::Value;
use sdbms_stats::ExtremeAfterRemove;

use crate::db::{Entry, Freshness, SummaryDb};
use crate::error::{Result, SummaryError};
use crate::function::{AuxState, StatFunction};
use crate::value::SummaryValue;

/// How the Summary Database reacts to updates of the underlying view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Incrementally recompute through auxiliary state; recompute from
    /// data only when the state signals it (extreme deleted, median
    /// window ran off). The paper's preferred design.
    Incremental,
    /// Mark entries stale; recompute lazily at next lookup. The §4.3
    /// fallback.
    InvalidateLazy,
    /// Recompute every affected entry from data immediately.
    EagerRecompute,
}

/// How fresh a served answer must be (per-query, user-specified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyPolicy {
    /// Serve only exact answers; recompute stale entries first.
    Exact,
    /// Serve a stale answer if it has absorbed at most this many
    /// updates since it was last exact — "a change of one or two values
    /// has very little effect on the value of the median" (§3.2).
    Tolerate(u32),
}

/// One cell change in the view, as seen by the cache.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateDelta {
    /// Value before the update (`Missing` = the cell held no number).
    pub old: Value,
    /// Value after the update.
    pub new: Value,
}

/// What the maintenance pass did (experiment E2/E6 reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Entries updated purely from auxiliary state.
    pub incremental: usize,
    /// Entries recomputed from column data.
    pub recomputed: usize,
    /// Entries marked stale.
    pub invalidated: usize,
}

/// Where a served answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeSource {
    /// Fresh cache hit.
    Cache,
    /// Stale cache entry served under a tolerance policy.
    CacheTolerated,
    /// Computed (and cached) now.
    Computed,
    /// Computed from the fallback source (e.g. the raw archive)
    /// because the primary column source is damaged. Deliberately
    /// *not* cached: once the primary source is repaired, a cached
    /// fallback result could disagree with it.
    Fallback,
}

/// True for errors that mean *this cache copy is damaged* — a storage
/// fault (checksum mismatch, lost block, exhausted retries) or stored
/// bytes that no longer decode — rather than a logic error. The
/// degradation strategy for these is: quarantine the entry and
/// recompute from data. A [`StorageError::Crashed`] is excluded (the
/// whole hierarchy is down; nothing can be recomputed until restart),
/// as is pool exhaustion (a resource problem, not data damage).
#[must_use]
pub fn quarantinable(e: &SummaryError) -> bool {
    fn damaged(se: &sdbms_storage::StorageError) -> bool {
        !se.is_crash() && !matches!(se, sdbms_storage::StorageError::PoolExhausted)
    }
    match e {
        SummaryError::Decode(_) => true,
        SummaryError::Storage(se) => damaged(se),
        // Column sources surface their I/O problems wrapped in data
        // errors; the damage classification is the same.
        SummaryError::Data(sdbms_data::DataError::Storage(se)) => damaged(se),
        _ => false,
    }
}

/// Apply one batch of updates on `attribute` to every cached entry of
/// that attribute. `column` supplies the post-update column values and
/// is called at most once (only when some entry must be recomputed).
pub fn apply_updates(
    db: &SummaryDb,
    attribute: &str,
    deltas: &[UpdateDelta],
    policy: MaintenancePolicy,
    column: &mut dyn FnMut() -> Result<Vec<Value>>,
) -> Result<MaintenanceReport> {
    let mut report = MaintenanceReport::default();
    if deltas.is_empty() {
        return Ok(report);
    }
    let entries = db.entries_for_attribute(attribute)?;
    if entries.is_empty() {
        return Ok(report);
    }
    let mut column_cache: Option<Vec<Value>> = None;
    let mut fetch_column = |cache: &mut Option<Vec<Value>>| -> Result<Vec<Value>> {
        match cache {
            Some(col) => Ok(col.clone()),
            None => {
                let col = column()?;
                *cache = Some(col.clone());
                Ok(col)
            }
        }
    };

    for mut entry in entries {
        entry.updates_since_refresh = entry
            .updates_since_refresh
            .saturating_add(deltas.len() as u32);
        match policy {
            MaintenancePolicy::InvalidateLazy => {
                entry.freshness = Freshness::Stale;
                entry.aux = None;
                report.invalidated += 1;
                db.put(&entry)?;
            }
            MaintenancePolicy::EagerRecompute => {
                let col = fetch_column(&mut column_cache)?;
                refresh_entry(db, &mut entry, &col)?;
                report.recomputed += 1;
                db.put(&entry)?;
            }
            MaintenancePolicy::Incremental => {
                // A stale entry stays stale (no aux to maintain).
                if entry.freshness == Freshness::Stale || entry.aux.is_none() {
                    entry.freshness = Freshness::Stale;
                    entry.aux = None;
                    report.invalidated += 1;
                    db.put(&entry)?;
                    continue;
                }
                let ok = match entry.aux.as_mut() {
                    Some(aux) => apply_deltas_to_aux(aux, deltas),
                    None => false,
                };
                let new_result = if ok {
                    entry
                        .aux
                        .as_ref()
                        .and_then(|aux| entry.function.result_from_aux(aux))
                } else {
                    None
                };
                match new_result {
                    Some(result) => {
                        entry.result = result;
                        db.note_incremental();
                        report.incremental += 1;
                        db.put(&entry)?;
                    }
                    None => {
                        // Aux signalled a rescan (deleted extreme, window
                        // ran off, or non-derivable result): recompute.
                        let col = fetch_column(&mut column_cache)?;
                        refresh_entry(db, &mut entry, &col)?;
                        report.recomputed += 1;
                        db.put(&entry)?;
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Apply deltas to one auxiliary state. Returns `false` when the state
/// can no longer answer and a recompute is required.
fn apply_deltas_to_aux(aux: &mut AuxState, deltas: &[UpdateDelta]) -> bool {
    for d in deltas {
        let ok = match aux {
            AuxState::Moments(m) => match (d.old.as_f64(), d.new.as_f64()) {
                (Some(o), Some(n)) => m.replace(o, n).is_ok(),
                (Some(o), None) => m.remove(o).is_ok(),
                (None, Some(n)) => {
                    m.add(n);
                    true
                }
                (None, None) => true,
            },
            AuxState::MinMax(mm) => {
                let removed_ok = match d.old.as_f64() {
                    Some(o) => mm.remove(o) == ExtremeAfterRemove::Unchanged,
                    None => true,
                };
                if removed_ok {
                    if let Some(n) = d.new.as_f64() {
                        mm.add(n);
                    }
                    true
                } else {
                    false
                }
            }
            AuxState::Window(w) => match (d.old.as_f64(), d.new.as_f64()) {
                (Some(o), Some(n)) => w.replace(o, n),
                (Some(o), None) => w.remove(o),
                (None, Some(n)) => {
                    w.add(n);
                    true
                }
                (None, None) => true,
            },
            AuxState::Freq(t) => {
                if d.old.is_missing() && d.new.is_missing() {
                    true
                } else {
                    t.remove(&d.old).is_ok() && {
                        t.add(&d.new);
                        true
                    }
                }
            }
            AuxState::Histo(h) => {
                if let Some(o) = d.old.as_f64() {
                    h.remove(o);
                }
                if let Some(n) = d.new.as_f64() {
                    h.add(n);
                }
                true
            }
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Recompute an entry's result and auxiliary state from column data.
pub fn refresh_entry(db: &SummaryDb, entry: &mut Entry, column: &[Value]) -> Result<()> {
    entry.result = entry.function.compute(column)?;
    entry.aux = entry.function.build_aux(column);
    entry.freshness = Freshness::Fresh;
    entry.updates_since_refresh = 0;
    db.note_recompute();
    Ok(())
}

/// The lookup path: serve from cache when the accuracy policy allows,
/// otherwise compute (and cache) from column data. This is the §3.2
/// search algorithm: "If the desired pair is found, the corresponding
/// result will be returned. Otherwise, after the function has been
/// applied… the new information will be inserted into the Summary
/// Database."
pub fn get_or_compute(
    db: &SummaryDb,
    attribute: &str,
    function: &StatFunction,
    accuracy: AccuracyPolicy,
    column: &mut dyn FnMut() -> Result<Vec<Value>>,
) -> Result<(SummaryValue, ComputeSource)> {
    if let Some(entry) = db.lookup(attribute, function)? {
        match (entry.freshness, accuracy) {
            (Freshness::Fresh, _) => return Ok((entry.result, ComputeSource::Cache)),
            (Freshness::Stale, AccuracyPolicy::Tolerate(k)) if entry.updates_since_refresh <= k => {
                return Ok((entry.result, ComputeSource::CacheTolerated));
            }
            (Freshness::Stale, _) => {
                let col = column()?;
                let mut entry = entry;
                refresh_entry(db, &mut entry, &col)?;
                db.put(&entry)?;
                return Ok((entry.result, ComputeSource::Computed));
            }
        }
    }
    // Miss: compute, insert, return.
    let col = column()?;
    let mut entry = Entry {
        attribute: attribute.to_string(),
        function: function.clone(),
        result: SummaryValue::Scalar(0.0), // placeholder, refreshed below
        freshness: Freshness::Fresh,
        aux: None,
        updates_since_refresh: 0,
    };
    refresh_entry(db, &mut entry, &col)?;
    db.put(&entry)?;
    Ok((entry.result, ComputeSource::Computed))
}

/// [`get_or_compute`] with graceful degradation (§fault tolerance):
///
/// - A damaged cache entry (storage fault or undecodable bytes during
///   lookup) is **quarantined** — removed and counted — and the lookup
///   proceeds as a miss, recomputing from the view column.
/// - A failure while *writing back* a recomputed entry is tolerated:
///   the freshly computed value is still served; only the caching is
///   lost.
/// - If the view column itself cannot be read (damaged concrete view)
///   and a `fallback` source is given (the raw archive), the answer is
///   computed from the fallback and served as
///   [`ComputeSource::Fallback`], without being cached.
///
/// Crashes ([`sdbms_storage::StorageError::Crashed`]) are never
/// degraded around — they propagate so the caller can restart and
/// recover.
pub fn get_or_compute_resilient(
    db: &SummaryDb,
    attribute: &str,
    function: &StatFunction,
    accuracy: AccuracyPolicy,
    column: &mut dyn FnMut() -> Result<Vec<Value>>,
    fallback: Option<&mut dyn FnMut() -> Result<Vec<Value>>>,
) -> Result<(SummaryValue, ComputeSource)> {
    // Lookup with quarantine: a damaged entry becomes a miss.
    let looked = match db.lookup(attribute, function) {
        Ok(e) => e,
        Err(e) if quarantinable(&e) => {
            // Best-effort removal; the entry may be unreachable anyway.
            let _ = db.remove(attribute, function);
            db.note_quarantine();
            None
        }
        Err(e) => return Err(e),
    };
    if let Some(entry) = looked {
        match (entry.freshness, accuracy) {
            (Freshness::Fresh, _) => return Ok((entry.result, ComputeSource::Cache)),
            (Freshness::Stale, AccuracyPolicy::Tolerate(k)) if entry.updates_since_refresh <= k => {
                return Ok((entry.result, ComputeSource::CacheTolerated));
            }
            (Freshness::Stale, _) => {}
        }
    }
    // Miss (or stale-needs-refresh): compute from the view column,
    // degrading to the fallback source if the view is damaged.
    let col = match column() {
        Ok(col) => col,
        Err(e) if quarantinable(&e) => match fallback {
            Some(fb) => {
                let col = fb()?;
                let result = function.compute(&col)?;
                return Ok((result, ComputeSource::Fallback));
            }
            None => return Err(e),
        },
        Err(e) => return Err(e),
    };
    let mut entry = Entry {
        attribute: attribute.to_string(),
        function: function.clone(),
        result: SummaryValue::Scalar(0.0), // placeholder, refreshed below
        freshness: Freshness::Fresh,
        aux: None,
        updates_since_refresh: 0,
    };
    refresh_entry(db, &mut entry, &col)?;
    // Cache write-back is best-effort: a fault here loses the caching,
    // not the answer.
    match db.put(&entry) {
        Ok(()) => {}
        Err(e) if quarantinable(&e) => {
            // Make sure no half-written copy can be served later.
            let _ = db.remove(attribute, function);
            db.note_quarantine();
        }
        Err(e) => return Err(e),
    }
    Ok((entry.result, ComputeSource::Computed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_storage::StorageEnv;

    fn db() -> SummaryDb {
        SummaryDb::create(StorageEnv::new(64).pool).unwrap()
    }

    fn int_col(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    fn delta(old: i64, new: i64) -> UpdateDelta {
        UpdateDelta {
            old: Value::Int(old),
            new: Value::Int(new),
        }
    }

    /// Seed the cache with a set of functions over `col`.
    fn seed(db: &SummaryDb, attr: &str, col: &[Value], fns: &[StatFunction]) {
        for f in fns {
            let (_, src) =
                get_or_compute(db, attr, f, AccuracyPolicy::Exact, &mut || Ok(col.to_vec()))
                    .unwrap();
            assert_eq!(src, ComputeSource::Computed);
        }
    }

    #[test]
    fn cache_hit_after_compute() {
        let db = db();
        let col = int_col(&[1, 2, 3, 4, 5]);
        let f = StatFunction::Mean;
        seed(&db, "X", &col, std::slice::from_ref(&f));
        let mut calls = 0;
        let (v, src) = get_or_compute(&db, "X", &f, AccuracyPolicy::Exact, &mut || {
            calls += 1;
            Ok(col.clone())
        })
        .unwrap();
        assert_eq!(src, ComputeSource::Cache);
        assert_eq!(v, SummaryValue::Scalar(3.0));
        assert_eq!(calls, 0, "no data access on a fresh hit");
    }

    #[test]
    fn incremental_maintenance_no_data_access() {
        let db = db();
        let mut data = vec![1i64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let col = int_col(&data);
        let fns = [
            StatFunction::Count,
            StatFunction::Sum,
            StatFunction::Mean,
            StatFunction::Variance,
            StatFunction::Median,
            StatFunction::Histogram(5),
            StatFunction::Mode,
            StatFunction::UniqueCount,
        ];
        seed(&db, "X", &col, &fns);
        // Interior update: 5 -> 7 (doesn't touch min/max extremes).
        data[4] = 7;
        let new_col = int_col(&data);
        let report = apply_updates(
            &db,
            "X",
            &[delta(5, 7)],
            MaintenancePolicy::Incremental,
            &mut || panic!("incremental maintenance must not read the column"),
        )
        .unwrap();
        assert_eq!(report.incremental, fns.len());
        assert_eq!(report.recomputed, 0);
        // Every maintained result matches a recompute from scratch.
        for f in &fns {
            let cached = db.lookup_fresh("X", f).unwrap().unwrap().result;
            let direct = f.compute(&new_col).unwrap();
            assert!(
                cached.approx_eq(&direct, 1e-9),
                "{f}: {cached:?} != {direct:?}"
            );
        }
    }

    #[test]
    fn deleting_the_extreme_forces_recompute_of_min_only() {
        let db = db();
        let col = int_col(&[1, 5, 9]);
        seed(&db, "X", &col, &[StatFunction::Min, StatFunction::Mean]);
        let mut fetches = 0;
        let report = apply_updates(
            &db,
            "X",
            &[delta(1, 4)], // removes the minimum
            MaintenancePolicy::Incremental,
            &mut || {
                fetches += 1;
                Ok(int_col(&[4, 5, 9]))
            },
        )
        .unwrap();
        assert_eq!(report.recomputed, 1, "min rescan");
        assert_eq!(report.incremental, 1, "mean stays incremental");
        assert_eq!(fetches, 1);
        let min = db.lookup_fresh("X", &StatFunction::Min).unwrap().unwrap();
        assert_eq!(min.result, SummaryValue::Scalar(4.0));
    }

    #[test]
    fn invalidate_lazy_then_tolerated_then_exact() {
        let db = db();
        let col = int_col(&[1, 2, 3, 4, 100]);
        seed(&db, "X", &col, &[StatFunction::Median]);
        apply_updates(
            &db,
            "X",
            &[delta(100, 5)],
            MaintenancePolicy::InvalidateLazy,
            &mut || panic!("lazy policy must not read data"),
        )
        .unwrap();
        // Tolerant read serves the stale value without data access.
        let (v, src) = get_or_compute(
            &db,
            "X",
            &StatFunction::Median,
            AccuracyPolicy::Tolerate(5),
            &mut || panic!("tolerated read must not read data"),
        )
        .unwrap();
        assert_eq!(src, ComputeSource::CacheTolerated);
        assert_eq!(v, SummaryValue::Scalar(3.0), "old median");
        // Exact read recomputes.
        let (v, src) = get_or_compute(
            &db,
            "X",
            &StatFunction::Median,
            AccuracyPolicy::Exact,
            &mut || Ok(int_col(&[1, 2, 3, 4, 5])),
        )
        .unwrap();
        assert_eq!(src, ComputeSource::Computed);
        assert_eq!(v, SummaryValue::Scalar(3.0));
        // Now fresh again.
        let (_, src) = get_or_compute(
            &db,
            "X",
            &StatFunction::Median,
            AccuracyPolicy::Exact,
            &mut || panic!("fresh"),
        )
        .unwrap();
        assert_eq!(src, ComputeSource::Cache);
    }

    #[test]
    fn tolerance_exceeded_forces_recompute() {
        let db = db();
        let col = int_col(&[1, 2, 3]);
        seed(&db, "X", &col, &[StatFunction::Mean]);
        // 3 updates under lazy policy.
        let deltas: Vec<UpdateDelta> = (0..3).map(|i| delta(i, i + 10)).collect();
        apply_updates(
            &db,
            "X",
            &deltas,
            MaintenancePolicy::InvalidateLazy,
            &mut || unreachable!(),
        )
        .unwrap();
        let (_, src) = get_or_compute(
            &db,
            "X",
            &StatFunction::Mean,
            AccuracyPolicy::Tolerate(2),
            &mut || Ok(int_col(&[10, 11, 12])),
        )
        .unwrap();
        assert_eq!(src, ComputeSource::Computed, "3 updates > tolerance 2");
    }

    #[test]
    fn eager_policy_recomputes_everything_once() {
        let db = db();
        let col = int_col(&[1, 2, 3, 4]);
        seed(&db, "X", &col, &[StatFunction::Mean, StatFunction::Max]);
        let mut fetches = 0;
        let report = apply_updates(
            &db,
            "X",
            &[delta(1, 9)],
            MaintenancePolicy::EagerRecompute,
            &mut || {
                fetches += 1;
                Ok(int_col(&[9, 2, 3, 4]))
            },
        )
        .unwrap();
        assert_eq!(report.recomputed, 2);
        assert_eq!(fetches, 1, "column fetched once for the whole batch");
        let max = db.lookup_fresh("X", &StatFunction::Max).unwrap().unwrap();
        assert_eq!(max.result, SummaryValue::Scalar(9.0));
    }

    #[test]
    fn non_incremental_function_invalidates_under_incremental_policy() {
        let db = db();
        let col = int_col(&(1..=100).collect::<Vec<_>>());
        seed(&db, "X", &col, &[StatFunction::TrimmedMean(50, 950)]);
        let report = apply_updates(
            &db,
            "X",
            &[delta(50, 51)],
            MaintenancePolicy::Incremental,
            &mut || panic!("should invalidate, not recompute"),
        )
        .unwrap();
        assert_eq!(report.invalidated, 1);
        assert!(db
            .lookup_fresh("X", &StatFunction::TrimmedMean(50, 950))
            .unwrap()
            .is_none());
    }

    #[test]
    fn missing_value_transitions() {
        let db = db();
        let col = vec![
            Value::Int(10),
            Value::Int(20),
            Value::Int(30),
            Value::Int(40),
        ];
        seed(
            &db,
            "X",
            &col,
            &[StatFunction::Count, StatFunction::Mean, StatFunction::Sum],
        );
        // Invalidate a measurement: 30 -> Missing.
        apply_updates(
            &db,
            "X",
            &[UpdateDelta {
                old: Value::Int(30),
                new: Value::Missing,
            }],
            MaintenancePolicy::Incremental,
            &mut || unreachable!(),
        )
        .unwrap();
        let count = db.lookup_fresh("X", &StatFunction::Count).unwrap().unwrap();
        assert_eq!(count.result, SummaryValue::Count(3));
        let mean = db.lookup_fresh("X", &StatFunction::Mean).unwrap().unwrap();
        assert!(mean
            .result
            .approx_eq(&SummaryValue::Scalar(70.0 / 3.0), 1e-9));
        // And back: Missing -> 35.
        apply_updates(
            &db,
            "X",
            &[UpdateDelta {
                old: Value::Missing,
                new: Value::Int(35),
            }],
            MaintenancePolicy::Incremental,
            &mut || unreachable!(),
        )
        .unwrap();
        let sum = db.lookup_fresh("X", &StatFunction::Sum).unwrap().unwrap();
        assert!(sum.result.approx_eq(&SummaryValue::Scalar(105.0), 1e-9));
    }

    #[test]
    fn updates_to_uncached_attributes_are_free() {
        let db = db();
        let report = apply_updates(
            &db,
            "NEVER_CACHED",
            &[delta(1, 2)],
            MaintenancePolicy::Incremental,
            &mut || unreachable!(),
        )
        .unwrap();
        assert_eq!(report, MaintenanceReport::default());
    }
}
