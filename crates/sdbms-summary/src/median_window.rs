//! The §4.2 median window ("histogram with a pointer").
//!
//! The paper's scheme for order statistics, quoted: "Rather than saving
//! a single value as the result of this computation, we will store, in
//! the Summary Database, a histogram of some number, say 100, of values
//! around the median. Associated with the histogram will be a pointer
//! which will initially be set to the median. As updates are made to
//! the original data set the pointer can be moved up and down the list
//! reflecting the changes. When the pointer runs off the list a new
//! histogram will have to be generated… generation of the new histogram
//! will require only a single pass over the data."
//!
//! [`MedianWindow`] keeps a sorted window of up to `capacity` values
//! around the median plus exact counts of values below and above it.
//! The "pointer" is implicit: the median's global rank, computed from
//! the counts. Updates adjust counts or edit the window in O(log W);
//! [`MedianWindow::median`] returns `None` exactly when the pointer has
//! run off, and [`MedianWindow::rebuild`] regenerates from one pass
//! over the column.

/// Default window size — the paper's "say, 100" (one extra keeps the
/// window symmetric around a central element).
pub const DEFAULT_WINDOW: usize = 101;

/// A maintained window of values around the median.
#[derive(Debug, Clone, PartialEq)]
pub struct MedianWindow {
    capacity: usize,
    /// Sorted values around the median.
    window: Vec<f64>,
    /// Count of tracked values below `window[0]`.
    below: u64,
    /// Count of tracked values above `window.last()`.
    above: u64,
    /// Set false when counts go inconsistent (caller must rebuild).
    consistent: bool,
}

impl MedianWindow {
    /// An empty window with the given capacity (≥ 3).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MedianWindow {
            capacity: capacity.max(3),
            window: Vec::new(),
            below: 0,
            above: 0,
            consistent: true,
        }
    }

    /// Window capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total tracked observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.below + self.window.len() as u64 + self.above
    }

    /// Number of values currently held in the window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Regenerate from the full column — the paper's "single pass over
    /// the data" (one column scan; the in-memory sort is CPU, not I/O).
    pub fn rebuild(&mut self, data: &[f64]) {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        if n == 0 {
            self.window.clear();
            self.below = 0;
            self.above = 0;
            self.consistent = true;
            return;
        }
        let center = (n - 1) / 2;
        let half = self.capacity / 2;
        let start = center.saturating_sub(half);
        let end = (start + self.capacity).min(n);
        let start = end.saturating_sub(self.capacity).min(start);
        self.window = sorted[start..end].to_vec();
        self.below = start as u64;
        self.above = (n - end) as u64;
        self.consistent = true;
    }

    /// The median, if the pointer is still on the list. `None` means
    /// the window must be rebuilt (or the set is empty).
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        if !self.consistent {
            return None;
        }
        let n = self.total();
        if n == 0 || self.window.is_empty() {
            return None;
        }
        let lo_rank = (n - 1) / 2;
        let hi_rank = n / 2;
        let v_lo = self.value_at_rank(lo_rank)?;
        let v_hi = self.value_at_rank(hi_rank)?;
        Some((v_lo + v_hi) / 2.0)
    }

    fn value_at_rank(&self, rank: u64) -> Option<f64> {
        if rank < self.below {
            return None; // ran off the bottom
        }
        let idx = (rank - self.below) as usize;
        self.window.get(idx).copied() // None = ran off the top
    }

    /// Record an inserted value — O(log W).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() || !self.consistent {
            return;
        }
        if self.window.is_empty() {
            if self.below == 0 && self.above == 0 {
                self.window.push(x);
            } else {
                // Window emptied out while outside counts remain: the
                // new value cannot be placed relative to them.
                self.consistent = false;
            }
            return;
        }
        let first = self.window[0];
        let last = *self.window.last().unwrap_or(&first);
        if x < first {
            self.below += 1;
        } else if x > last {
            self.above += 1;
        } else {
            let pos = self.window.partition_point(|&w| w < x);
            self.window.insert(pos, x);
            if self.window.len() > self.capacity {
                self.shed_excess();
            }
        }
    }

    /// Shed one value from whichever end is farther from the median
    /// rank, converting it into a below/above count.
    fn shed_excess(&mut self) {
        let n = self.total();
        let med_rank = (n - 1) / 2;
        // Index the median would have inside the window.
        let med_idx = med_rank.saturating_sub(self.below) as usize;
        if med_idx < self.window.len() / 2 {
            self.window.pop();
            self.above += 1;
        } else {
            self.window.remove(0);
            self.below += 1;
        }
    }

    /// Record a removed value. Returns `false` (and flags
    /// inconsistency) if the value cannot be accounted for.
    pub fn remove(&mut self, x: f64) -> bool {
        if x.is_nan() {
            return true;
        }
        if !self.consistent {
            return false;
        }
        if self.window.is_empty() {
            self.consistent = false;
            return false;
        }
        let first = self.window[0];
        let last = *self.window.last().unwrap_or(&first);
        // Prefer removing an exact copy from the window (handles
        // boundary-equal duplicates deterministically).
        if x >= first && x <= last {
            let pos = self.window.partition_point(|&w| w < x);
            if self.window.get(pos) == Some(&x) {
                self.window.remove(pos);
                return true;
            }
        }
        if x < first {
            if self.below == 0 {
                self.consistent = false;
                return false;
            }
            self.below -= 1;
            true
        } else if x > last {
            if self.above == 0 {
                self.consistent = false;
                return false;
            }
            self.above -= 1;
            true
        } else {
            // In-range but not present: untracked value.
            self.consistent = false;
            false
        }
    }

    /// Replace `old` with `new` — the §4.2 pointer movement. Returns
    /// `false` if the state went inconsistent (rebuild required).
    pub fn replace(&mut self, old: f64, new: f64) -> bool {
        if !self.remove(old) {
            return false;
        }
        self.add(new);
        self.consistent
    }

    /// Whether the median can currently be answered without a rebuild.
    #[must_use]
    pub fn is_usable(&self) -> bool {
        self.median().is_some()
    }

    // ---- binary encoding (for the disk-resident Summary Database) ----

    /// Serialize.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(21 + self.window.len() * 8);
        buf.extend_from_slice(&(self.capacity as u32).to_le_bytes());
        buf.extend_from_slice(&self.below.to_le_bytes());
        buf.extend_from_slice(&self.above.to_le_bytes());
        buf.push(u8::from(self.consistent));
        buf.extend_from_slice(&(self.window.len() as u32).to_le_bytes());
        for x in &self.window {
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        buf
    }

    /// Deserialize (inverse of [`MedianWindow::encode`]).
    pub fn decode(buf: &[u8], pos: &mut usize) -> crate::error::Result<Self> {
        use crate::value::{take_u32, take_u64};
        let capacity = take_u32(buf, pos)? as usize;
        let below = take_u64(buf, pos)?;
        let above = take_u64(buf, pos)?;
        let consistent = *buf
            .get(*pos)
            .ok_or(crate::error::SummaryError::Decode("window flag missing"))?
            != 0;
        *pos += 1;
        let n = take_u32(buf, pos)? as usize;
        let mut window = Vec::with_capacity(n);
        for _ in 0..n {
            window.push(f64::from_bits(take_u64(buf, pos)?));
        }
        Ok(MedianWindow {
            capacity: capacity.max(3),
            window,
            below,
            above,
            consistent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_stats::quantile;

    fn data(n: usize) -> Vec<f64> {
        // Deterministic scrambled values.
        (0..n).map(|i| ((i * 7919) % n) as f64).collect()
    }

    #[test]
    fn rebuild_matches_batch_median() {
        for n in [1, 2, 3, 10, 100, 101, 1000] {
            let d = data(n);
            let mut w = MedianWindow::new(101);
            w.rebuild(&d);
            let expect = quantile::median(&d).unwrap();
            assert_eq!(w.median().unwrap(), expect, "n = {n}");
            assert_eq!(w.total(), n as u64);
        }
    }

    #[test]
    fn empty_has_no_median() {
        let mut w = MedianWindow::new(101);
        assert_eq!(w.median(), None);
        w.rebuild(&[]);
        assert_eq!(w.median(), None);
        assert!(!w.is_usable());
    }

    #[test]
    fn small_updates_tracked_exactly() {
        let mut d = data(1001);
        let mut w = MedianWindow::new(101);
        w.rebuild(&d);
        // Replace a few interior values and compare against recompute.
        for (i, new) in [(3usize, 250.0), (500, 750.0), (900, 10.0), (17, 499.5)] {
            let old = d[i];
            d[i] = new;
            assert!(w.replace(old, new), "replace {old} -> {new}");
            assert_eq!(
                w.median().unwrap(),
                quantile::median(&d).unwrap(),
                "after replacing index {i}"
            );
        }
    }

    #[test]
    fn deletions_and_insertions() {
        let mut d = data(500);
        let mut w = MedianWindow::new(101);
        w.rebuild(&d);
        // Delete 20 interior values.
        for _ in 0..20 {
            let x = d.swap_remove(123 % d.len());
            assert!(w.remove(x));
        }
        assert_eq!(w.median().unwrap(), quantile::median(&d).unwrap());
        for x in [250.3, 249.9, 251.1] {
            d.push(x);
            w.add(x);
        }
        assert_eq!(w.median().unwrap(), quantile::median(&d).unwrap());
        assert_eq!(w.total(), d.len() as u64);
    }

    #[test]
    fn pointer_runs_off_after_many_one_sided_updates() {
        // Shift mass upward until the median leaves the window.
        let mut d = data(10_001);
        let mut w = MedianWindow::new(101);
        w.rebuild(&d);
        let mut ran_off = false;
        for (i, x) in d.iter_mut().enumerate() {
            if *x < 3000.0 {
                let old = *x;
                *x = 9000.0 + i as f64 * 1e-3;
                w.replace(old, *x);
                if w.median().is_none() {
                    ran_off = true;
                    break;
                }
            }
        }
        assert!(ran_off, "median must eventually leave a 101-value window");
        // Rebuild restores exactness.
        w.rebuild(&d);
        assert_eq!(w.median().unwrap(), quantile::median(&d).unwrap());
    }

    #[test]
    fn window_absorbs_balanced_updates_without_rebuild() {
        // The paper's claim: small balanced updates only move the
        // pointer, no regeneration needed.
        let mut d = data(10_001);
        let mut w = MedianWindow::new(101);
        w.rebuild(&d);
        for i in 0..40 {
            // Alternate: push one low value high, one high value low.
            let (from, to) = if i % 2 == 0 {
                (d[i], 9_999.0)
            } else {
                (d[d.len() - 1 - i], 1.0)
            };
            let idx = d.iter().position(|&x| x == from).unwrap();
            d[idx] = to;
            assert!(w.replace(from, to), "step {i}");
            assert!(w.is_usable(), "step {i}: window should absorb balance");
        }
        assert_eq!(w.median().unwrap(), quantile::median(&d).unwrap());
    }

    #[test]
    fn inconsistent_removal_flags_rebuild() {
        let mut w = MedianWindow::new(11);
        w.rebuild(&data(100));
        // Remove a value that was never tracked and sits inside the
        // window range but not in the window (capacity 11 over 0..100:
        // the window spans roughly ranks 44..55, so 47.5 is in range).
        assert!(!w.remove(47.5));
        assert_eq!(w.median(), None);
        assert!(!w.replace(1.0, 2.0), "inconsistent state rejects updates");
    }

    #[test]
    fn tiny_capacity_still_correct() {
        let d = data(9);
        let mut w = MedianWindow::new(3);
        w.rebuild(&d);
        assert_eq!(w.median().unwrap(), quantile::median(&d).unwrap());
    }

    #[test]
    fn even_count_interpolates() {
        let mut w = MedianWindow::new(5);
        w.rebuild(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(w.median().unwrap(), 2.5);
        w.add(5.0);
        assert_eq!(w.median().unwrap(), 3.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut w = MedianWindow::new(101);
        w.rebuild(&data(500));
        w.replace(100.0, 200.5);
        let bytes = w.encode();
        let mut pos = 0usize;
        let out = MedianWindow::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(out, w);
        assert_eq!(out.median(), w.median());
    }

    #[test]
    fn nan_updates_ignored() {
        let mut w = MedianWindow::new(11);
        w.rebuild(&[1.0, 2.0, 3.0]);
        w.add(f64::NAN);
        assert!(w.remove(f64::NAN));
        assert_eq!(w.median().unwrap(), 2.0);
        assert_eq!(w.total(), 3);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_tracks_median_or_signals_rebuild(
            base in proptest::collection::vec(-1000.0f64..1000.0, 5..300),
            updates in proptest::collection::vec(
                (proptest::prelude::any::<proptest::sample::Index>(), -1000.0f64..1000.0), 0..60)
        ) {
            let mut d = base.clone();
            let mut w = MedianWindow::new(21);
            w.rebuild(&d);
            for (idx, new) in updates {
                let i = idx.index(d.len());
                let old = d[i];
                d[i] = new;
                if !w.replace(old, new) || !w.is_usable() {
                    w.rebuild(&d);
                }
                let expect = quantile::median(&d).unwrap();
                let got = w.median().unwrap();
                proptest::prop_assert!(
                    (got - expect).abs() < 1e-9,
                    "median {got} != {expect}"
                );
            }
        }
    }
}
