//! Error type for the Summary Database.

use std::fmt;

use sdbms_data::DataError;
use sdbms_stats::StatsError;
use sdbms_storage::StorageError;

/// Errors raised by the Summary Database.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryError {
    /// No cached entry under this key.
    NotCached {
        /// Function name.
        function: String,
        /// Attribute name.
        attribute: String,
    },
    /// The cached entry exists but is stale and the caller required
    /// freshness.
    Stale {
        /// Function name.
        function: String,
        /// Attribute name.
        attribute: String,
    },
    /// Stored bytes could not be decoded.
    Decode(&'static str),
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying data-model failure.
    Data(DataError),
    /// Underlying statistics failure.
    Stats(StatsError),
    /// Two pieces of auxiliary state that cannot be combined (no merge
    /// law, or incompatible shapes).
    Unmergeable(&'static str),
}

impl fmt::Display for SummaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryError::NotCached {
                function,
                attribute,
            } => write!(f, "no cached result for {function}({attribute})"),
            SummaryError::Stale {
                function,
                attribute,
            } => write!(f, "cached result for {function}({attribute}) is stale"),
            SummaryError::Decode(what) => write!(f, "summary decode error: {what}"),
            SummaryError::Storage(e) => write!(f, "storage error: {e}"),
            SummaryError::Data(e) => write!(f, "data error: {e}"),
            SummaryError::Stats(e) => write!(f, "stats error: {e}"),
            SummaryError::Unmergeable(why) => {
                write!(f, "auxiliary states cannot be merged: {why}")
            }
        }
    }
}

impl std::error::Error for SummaryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SummaryError::Storage(e) => Some(e),
            SummaryError::Data(e) => Some(e),
            SummaryError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SummaryError {
    fn from(e: StorageError) -> Self {
        SummaryError::Storage(e)
    }
}
impl From<DataError> for SummaryError {
    fn from(e: DataError) -> Self {
        SummaryError::Data(e)
    }
}
impl From<StatsError> for SummaryError {
    fn from(e: StatsError) -> Self {
        SummaryError::Stats(e)
    }
}

/// Convenient result alias for Summary Database operations.
pub type Result<T> = std::result::Result<T, SummaryError>;
