//! In-memory flat-file data sets.
//!
//! §2.1: "almost all packages provide the user with a 'flat-file' view
//! of each data set that, much like a relation, consists of attributes
//! (columns) and records (rows)". [`DataSet`] is that exchange format:
//! the statistical functions consume it, relational operators produce
//! it, and the storage layers (`sdbms-columnar`, heap files) persist
//! it.

use std::fmt;

use crate::error::{DataError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A named flat file: a schema plus rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSet {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl DataSet {
    /// An empty data set over `schema`.
    #[must_use]
    pub fn new(name: &str, schema: Schema) -> Self {
        DataSet {
            name: name.to_string(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from rows, validating each against the schema.
    pub fn from_rows(name: &str, schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self> {
        for row in &rows {
            schema.check_row(row)?;
        }
        Ok(DataSet {
            name: name.to_string(),
            schema,
            rows,
        })
    }

    /// Data set name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename (e.g. when a view derives a new data set).
    pub fn set_name(&mut self, name: &str) {
        self.name = name.to_string();
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (observations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Row `i`.
    pub fn row(&self, i: usize) -> Result<&[Value]> {
        self.rows
            .get(i)
            .map(Vec::as_slice)
            .ok_or(DataError::NoSuchRow(i))
    }

    /// Append a row after validating it.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Cell at `(row, attribute)`.
    pub fn value(&self, row: usize, attribute: &str) -> Result<&Value> {
        let col = self.schema.require(attribute)?;
        Ok(&self.rows.get(row).ok_or(DataError::NoSuchRow(row))?[col])
    }

    /// Overwrite cell `(row, attribute)` after type-checking.
    pub fn set_value(&mut self, row: usize, attribute: &str, v: Value) -> Result<()> {
        let col = self.schema.require(attribute)?;
        let attr = self.schema.attribute_at(col);
        if !v.conforms_to(attr.dtype) {
            return Err(DataError::TypeMismatch {
                attribute: attr.name.clone(),
                expected: match attr.dtype {
                    crate::value::DataType::Int => "int",
                    crate::value::DataType::Float => "float",
                    crate::value::DataType::Str => "str",
                    crate::value::DataType::Code => "code",
                },
                got: v.type_name(),
            });
        }
        let r = self.rows.get_mut(row).ok_or(DataError::NoSuchRow(row))?;
        r[col] = v;
        Ok(())
    }

    /// Iterator over one column's values.
    pub fn column<'a>(&'a self, attribute: &str) -> Result<impl Iterator<Item = &'a Value> + 'a> {
        let col = self.schema.require(attribute)?;
        Ok(self.rows.iter().map(move |r| &r[col]))
    }

    /// One column's numeric values, skipping missing (and non-numeric)
    /// cells. Returns `(values, skipped_count)` — statistical functions
    /// report how many observations were unusable.
    pub fn column_f64(&self, attribute: &str) -> Result<(Vec<f64>, usize)> {
        let col = self.schema.require(attribute)?;
        let mut vals = Vec::with_capacity(self.rows.len());
        let mut skipped = 0usize;
        for r in &self.rows {
            match r[col].as_f64() {
                Some(x) => vals.push(x),
                None => skipped += 1,
            }
        }
        Ok((vals, skipped))
    }

    /// Append a derived column computed per row. `f` sees the whole
    /// row; returning `Value::Missing` is allowed.
    pub fn append_column(
        &mut self,
        attr: crate::schema::Attribute,
        mut f: impl FnMut(&[Value]) -> Value,
    ) -> Result<()> {
        let new_schema = self.schema.with_appended(attr)?;
        let dtype = new_schema.attribute_at(new_schema.len() - 1).dtype;
        for row in &mut self.rows {
            let v = f(row);
            if !v.conforms_to(dtype) {
                return Err(DataError::TypeMismatch {
                    attribute: new_schema.attribute_at(new_schema.len() - 1).name.clone(),
                    expected: "derived column type",
                    got: v.type_name(),
                });
            }
            row.push(v);
        }
        self.schema = new_schema;
        Ok(())
    }

    /// Rows where `pred` holds (used by data-checking passes).
    pub fn filter_rows(&self, mut pred: impl FnMut(&[Value]) -> bool) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .map(|(i, _)| i)
            .collect()
    }

    /// Suspicious rows for `attribute`: numeric values outside the
    /// attribute's declared `valid_range` (§2.2 data checking). Missing
    /// values are not suspicious (already marked).
    pub fn suspicious_rows(&self, attribute: &str) -> Result<Vec<usize>> {
        let col = self.schema.require(attribute)?;
        let attr = self.schema.attribute_at(col);
        let Some((lo, hi)) = attr.valid_range else {
            return Ok(Vec::new());
        };
        Ok(self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| match r[col].as_f64() {
                Some(x) => !(lo..=hi).contains(&x),
                None => false,
            })
            .map(|(i, _)| i)
            .collect())
    }

    /// Mark a cell missing ("invalidate" a suspicious measurement,
    /// §3.1). Returns the previous value.
    pub fn invalidate(&mut self, row: usize, attribute: &str) -> Result<Value> {
        let col = self.schema.require(attribute)?;
        let r = self.rows.get_mut(row).ok_or(DataError::NoSuchRow(row))?;
        Ok(std::mem::replace(&mut r[col], Value::Missing))
    }

    /// Count of missing cells in one column.
    pub fn missing_count(&self, attribute: &str) -> Result<usize> {
        let col = self.schema.require(attribute)?;
        Ok(self.rows.iter().filter(|r| r[col].is_missing()).count())
    }
}

impl fmt::Display for DataSet {
    /// Render as an aligned text table (first 20 rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let shown = self.rows.iter().take(20).collect::<Vec<_>>();
        let rendered: Vec<Vec<String>> = shown
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, n) in names.iter().enumerate() {
            write!(f, "{:>w$}  ", n, w = widths[i])?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:>w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "… {} more rows", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeRole};
    use crate::value::DataType;

    fn ds() -> DataSet {
        let schema = Schema::new(vec![
            Attribute::category("SEX", DataType::Str),
            Attribute::measured("SALARY", DataType::Float).with_valid_range(1_000.0, 200_000.0),
            Attribute::measured("N", DataType::Int),
        ])
        .unwrap();
        DataSet::from_rows(
            "people",
            schema,
            vec![
                vec!["M".into(), Value::Float(30_000.0), Value::Int(10)],
                vec!["F".into(), Value::Float(45_000.0), Value::Int(12)],
                vec!["M".into(), Value::Float(999_999.0), Value::Int(7)],
                vec!["F".into(), Value::Missing, Value::Int(3)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Schema::new(vec![Attribute::measured("X", DataType::Int)]).unwrap();
        assert!(DataSet::from_rows("bad", schema, vec![vec![Value::Float(1.0)]]).is_err());
    }

    #[test]
    fn column_access() {
        let d = ds();
        let sexes: Vec<String> = d.column("SEX").unwrap().map(|v| v.to_string()).collect();
        assert_eq!(sexes, vec!["M", "F", "M", "F"]);
        assert!(d.column("NOPE").is_err());
    }

    #[test]
    fn column_f64_skips_missing() {
        let d = ds();
        let (vals, skipped) = d.column_f64("SALARY").unwrap();
        assert_eq!(vals, vec![30_000.0, 45_000.0, 999_999.0]);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn suspicious_rows_use_valid_range() {
        let d = ds();
        assert_eq!(d.suspicious_rows("SALARY").unwrap(), vec![2]);
        assert_eq!(d.suspicious_rows("SEX").unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn invalidate_marks_missing() {
        let mut d = ds();
        let old = d.invalidate(2, "SALARY").unwrap();
        assert_eq!(old, Value::Float(999_999.0));
        assert_eq!(d.missing_count("SALARY").unwrap(), 2);
        let (vals, _) = d.column_f64("SALARY").unwrap();
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn set_value_type_checked() {
        let mut d = ds();
        d.set_value(0, "N", Value::Int(99)).unwrap();
        assert_eq!(d.value(0, "N").unwrap(), &Value::Int(99));
        assert!(d.set_value(0, "N", Value::Float(1.0)).is_err());
        assert!(d.set_value(99, "N", Value::Int(1)).is_err());
    }

    #[test]
    fn append_derived_column() {
        let mut d = ds();
        d.append_column(
            Attribute::derived("SALARY_K", DataType::Float),
            |row| match row[1].as_f64() {
                Some(x) => Value::Float(x / 1000.0),
                None => Value::Missing,
            },
        )
        .unwrap();
        assert_eq!(d.schema().len(), 4);
        assert_eq!(
            d.schema().attribute("SALARY_K").unwrap().role,
            AttributeRole::Derived
        );
        assert_eq!(d.value(0, "SALARY_K").unwrap(), &Value::Float(30.0));
        assert_eq!(d.value(3, "SALARY_K").unwrap(), &Value::Missing);
    }

    #[test]
    fn filter_rows_predicate() {
        let d = ds();
        let males = d.filter_rows(|r| r[0].as_str() == Some("M"));
        assert_eq!(males, vec![0, 2]);
    }

    #[test]
    fn display_renders_table() {
        let d = ds();
        let s = d.to_string();
        assert!(s.contains("SEX"));
        assert!(s.contains("SALARY"));
        assert!(s.contains('·'), "missing value marker shown");
    }
}
