//! Typed values with first-class missing-value support.
//!
//! §3.1 of the paper: suspicious measurements are investigated and, if
//! invalid, "marked as invalid — 'missing value' in the statistics
//! vernacular". Every statistical function must therefore cope with
//! [`Value::Missing`], and updates can set any cell to missing.
//!
//! [`Value::Code`] carries an encoded category value (like the
//! `AGE_GROUP` column of paper Figure 1) whose meaning lives in a
//! [`crate::codebook::CodeBook`].

use std::cmp::Ordering;
use std::fmt;

use crate::error::{DataError, Result};

/// The declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Encoded category value, interpreted through a code book.
    Code,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Code => "code",
        })
    }
}

/// A single cell of a data set.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer measurement or count.
    Int(i64),
    /// Floating-point measurement.
    Float(f64),
    /// String (names, free text, category labels).
    Str(String),
    /// Encoded category value (see [`crate::codebook::CodeBook`]).
    Code(u32),
    /// Invalid / unknown ("missing value").
    Missing,
}

impl Value {
    /// Short name of this value's runtime type.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Code(_) => "code",
            Value::Missing => "missing",
        }
    }

    /// True for [`Value::Missing`].
    #[must_use]
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Whether this value may be stored in an attribute of type `dt`.
    /// Missing is storable anywhere.
    #[must_use]
    pub fn conforms_to(&self, dt: DataType) -> bool {
        matches!(
            (self, dt),
            (Value::Int(_), DataType::Int)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Str)
                | (Value::Code(_), DataType::Code)
                | (Value::Missing, _)
        )
    }

    /// Numeric view of the value, if it has one. Codes are *not*
    /// numeric: computing the mean of `AGE_GROUP` "does not make
    /// sense" (§3.2), so codes must be decoded or grouped, never
    /// averaged.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view, if the value is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if the value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Code view, if the value is an encoded category.
    #[must_use]
    pub fn as_code(&self) -> Option<u32> {
        match self {
            Value::Code(c) => Some(*c),
            _ => None,
        }
    }

    /// Total order used for sorting and grouping: Missing first, then
    /// by type (int/float interleaved numerically), strings, codes.
    /// NaN floats sort after all other floats.
    #[must_use]
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Missing => 0,
                Int(_) | Float(_) => 1,
                Str(_) => 2,
                Code(_) => 3,
            }
        }
        match (self, other) {
            (Missing, Missing) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Code(a), Code(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Group-by equality: like `==` but `Missing` groups with
    /// `Missing` and floats compare bitwise (so NaN groups with NaN).
    #[must_use]
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    // ---- binary row encoding ------------------------------------------

    /// Append this value's binary encoding to `buf`.
    ///
    /// Layout: 1 tag byte, then a type-dependent payload. Strings are
    /// length-prefixed (u16).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Missing => buf.push(0),
            Value::Int(i) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(x) => {
                buf.push(2);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(3);
                let bytes = s.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
            Value::Code(c) => {
                buf.push(4);
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    /// Decode one value from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value> {
        let tag = *buf
            .get(*pos)
            .ok_or(DataError::Decode("value tag missing"))?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf
                .get(*pos..*pos + n)
                .ok_or(DataError::Decode("value payload truncated"))?;
            *pos += n;
            Ok(s)
        };
        match tag {
            0 => Ok(Value::Missing),
            1 => Ok(Value::Int(i64::from_le_bytes(take_arr(
                buf,
                pos,
                "value payload truncated",
            )?))),
            2 => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(take_arr(
                buf,
                pos,
                "value payload truncated",
            )?)))),
            3 => {
                let len =
                    u16::from_le_bytes(take_arr(buf, pos, "value payload truncated")?) as usize;
                let sb = take(pos, len)?;
                let s =
                    std::str::from_utf8(sb).map_err(|_| DataError::Decode("string not UTF-8"))?;
                Ok(Value::Str(s.to_string()))
            }
            4 => Ok(Value::Code(u32::from_le_bytes(take_arr(
                buf,
                pos,
                "value payload truncated",
            )?))),
            _ => Err(DataError::Decode("unknown value tag")),
        }
    }
}

/// Read exactly `N` bytes at `*pos` as a fixed array, advancing `pos`,
/// or fail with a decode error. Bounds check and width conversion are
/// one fallible step: decoders never hold a slice whose length they
/// must re-prove to the type system.
pub(crate) fn take_arr<const N: usize>(
    buf: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<[u8; N]> {
    let s = buf.get(*pos..*pos + N).ok_or(DataError::Decode(what))?;
    *pos += N;
    s.try_into().map_err(|_| DataError::Decode(what))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Code(c) => write!(f, "#{c}"),
            Value::Missing => write!(f, "·"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Code(v)
    }
}

/// Encode a full row (values only; the schema provides meaning).
#[must_use]
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + row.len() * 9);
    buf.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        v.encode(&mut buf);
    }
    buf
}

/// Decode a row previously encoded with [`encode_row`].
pub fn decode_row(buf: &[u8]) -> Result<Vec<Value>> {
    let mut pos = 0usize;
    let n = u16::from_le_bytes(take_arr(buf, &mut pos, "row header truncated")?) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Value::decode(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(DataError::Decode("trailing bytes after row"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        assert!(Value::Int(3).conforms_to(DataType::Int));
        assert!(!Value::Int(3).conforms_to(DataType::Float));
        assert!(Value::Missing.conforms_to(DataType::Str));
        assert!(Value::Code(1).conforms_to(DataType::Code));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Code(3).as_f64(), None, "codes are not numbers");
        assert_eq!(Value::Missing.as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn ordering_missing_first_nan_last() {
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Int(1),
            Value::Missing,
            Value::Float(-2.0),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_missing());
        assert_eq!(vals[1], Value::Float(-2.0));
        assert_eq!(vals[2], Value::Int(1));
        assert!(matches!(vals[3], Value::Float(x) if x.is_nan()));
    }

    #[test]
    fn int_float_interleave() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn group_eq_nan_and_missing() {
        assert!(Value::Missing.group_eq(&Value::Missing));
        assert!(Value::Float(f64::NAN).group_eq(&Value::Float(f64::NAN)));
        assert!(!Value::Float(0.0).group_eq(&Value::Missing));
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![
            Value::Int(-42),
            Value::Float(3.75),
            Value::Str("white".into()),
            Value::Code(4),
            Value::Missing,
        ];
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[1, 0, 9]).is_err()); // 1 value, bad tag
        let mut good = encode_row(&[Value::Int(1)]);
        good.push(0xFF); // trailing byte
        assert!(decode_row(&good).is_err());
        let truncated = &encode_row(&[Value::Str("hello".into())]);
        assert!(decode_row(&truncated[..truncated.len() - 1]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Code(2).to_string(), "#2");
        assert_eq!(Value::Missing.to_string(), "·");
    }

    proptest::proptest! {
        #[test]
        fn prop_row_roundtrip(ints in proptest::collection::vec(
            proptest::prelude::any::<i64>(), 0..20),
            floats in proptest::collection::vec(
                proptest::prelude::any::<f64>(), 0..20),
            strs in proptest::collection::vec("[a-zA-Z0-9 ]{0,30}", 0..10)) {
            let mut row: Vec<Value> = Vec::new();
            row.extend(ints.into_iter().map(Value::Int));
            row.extend(floats.into_iter().map(Value::Float));
            row.extend(strs.into_iter().map(Value::Str));
            row.push(Value::Missing);
            let decoded = decode_row(&encode_row(&row)).unwrap();
            proptest::prop_assert_eq!(decoded.len(), row.len());
            for (a, b) in decoded.iter().zip(row.iter()) {
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => {
                        proptest::prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => proptest::prop_assert_eq!(a, b),
                }
            }
        }
    }
}
