//! The raw database: data sets on sequential archive storage.
//!
//! §2.3: "because of its enormous size, the raw database will almost
//! always reside on slow secondary storage devices such as tapes. A
//! typical analysis will require access to a small portion of the
//! database, which for reasons of efficiency, must be migrated to disk
//! storage while in use."
//!
//! A [`RawDatabase`] stores each data set as one archive reel: a schema
//! block followed by row blocks ([`ROWS_PER_BLOCK`] rows each). The
//! only way to get data out is a full sequential scan — exactly the
//! access pattern that makes concrete views worth materializing
//! (experiment E9).

use std::sync::Arc;

use sdbms_storage::ArchiveStore;

use crate::dataset::DataSet;
use crate::error::{DataError, Result};
use crate::schema::{Attribute, AttributeRole, Schema};
use crate::value::{decode_row, encode_row, take_arr, DataType, Value};

/// Rows packed into one archive block.
pub const ROWS_PER_BLOCK: usize = 64;

/// Serialize a schema into one archive block.
fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(schema.len() as u16).to_le_bytes());
    for a in schema.attributes() {
        let name = a.name.as_bytes();
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        buf.push(match a.dtype {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
            DataType::Code => 3,
        });
        buf.push(match a.role {
            AttributeRole::Category => 0,
            AttributeRole::Measured => 1,
            AttributeRole::Derived => 2,
        });
        match &a.codebook {
            Some(cb) => {
                let b = cb.as_bytes();
                buf.extend_from_slice(&(b.len() as u16).to_le_bytes());
                buf.extend_from_slice(b);
            }
            None => buf.extend_from_slice(&0u16.to_le_bytes()),
        }
        match a.valid_range {
            Some((lo, hi)) => {
                buf.push(1);
                buf.extend_from_slice(&lo.to_le_bytes());
                buf.extend_from_slice(&hi.to_le_bytes());
            }
            None => buf.push(0),
        }
    }
    buf
}

fn decode_schema(buf: &[u8]) -> Result<Schema> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let s = buf
            .get(*pos..*pos + n)
            .ok_or(DataError::Decode("schema block truncated"))?;
        *pos += n;
        Ok(s)
    };
    let n = u16::from_le_bytes(take_arr(buf, &mut pos, "schema block truncated")?) as usize;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let nlen = u16::from_le_bytes(take_arr(buf, &mut pos, "schema block truncated")?) as usize;
        let name = std::str::from_utf8(take(&mut pos, nlen)?)
            .map_err(|_| DataError::Decode("attribute name not UTF-8"))?
            .to_string();
        let dtype = match take(&mut pos, 1)?[0] {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Str,
            3 => DataType::Code,
            _ => return Err(DataError::Decode("bad dtype byte")),
        };
        let role = match take(&mut pos, 1)?[0] {
            0 => AttributeRole::Category,
            1 => AttributeRole::Measured,
            2 => AttributeRole::Derived,
            _ => return Err(DataError::Decode("bad role byte")),
        };
        let cblen = u16::from_le_bytes(take_arr(buf, &mut pos, "schema block truncated")?) as usize;
        let codebook = if cblen > 0 {
            Some(
                std::str::from_utf8(take(&mut pos, cblen)?)
                    .map_err(|_| DataError::Decode("codebook name not UTF-8"))?
                    .to_string(),
            )
        } else {
            None
        };
        let valid_range = match take(&mut pos, 1)?[0] {
            0 => None,
            1 => {
                let lo = f64::from_le_bytes(take_arr(buf, &mut pos, "schema block truncated")?);
                let hi = f64::from_le_bytes(take_arr(buf, &mut pos, "schema block truncated")?);
                Some((lo, hi))
            }
            _ => return Err(DataError::Decode("bad range flag")),
        };
        attrs.push(Attribute {
            name,
            dtype,
            role,
            codebook,
            valid_range,
        });
    }
    Schema::new(attrs)
}

/// Data sets stored on archive reels, readable only sequentially.
pub struct RawDatabase {
    archive: Arc<ArchiveStore>,
}

impl std::fmt::Debug for RawDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawDatabase")
            .field("datasets", &self.archive.reel_names())
            .finish()
    }
}

impl RawDatabase {
    /// Wrap an archive store.
    #[must_use]
    pub fn new(archive: Arc<ArchiveStore>) -> Self {
        RawDatabase { archive }
    }

    /// The underlying archive.
    #[must_use]
    pub fn archive(&self) -> &Arc<ArchiveStore> {
        &self.archive
    }

    /// Names of stored data sets, sorted.
    #[must_use]
    pub fn dataset_names(&self) -> Vec<String> {
        self.archive.reel_names()
    }

    /// Load a data set onto a new reel named after the data set.
    /// (Loading is an offline bulk operation; it charges no read cost.)
    pub fn store(&self, ds: &DataSet) -> Result<()> {
        self.archive.create_reel(ds.name())?;
        self.archive
            .append_block(ds.name(), &encode_schema(ds.schema()))?;
        for chunk in ds.rows().chunks(ROWS_PER_BLOCK) {
            let mut block = Vec::new();
            block.extend_from_slice(&(chunk.len() as u16).to_le_bytes());
            for row in chunk {
                let rb = encode_row(row);
                block.extend_from_slice(&(rb.len() as u32).to_le_bytes());
                block.extend_from_slice(&rb);
            }
            self.archive.append_block(ds.name(), &block)?;
        }
        Ok(())
    }

    /// Read just the schema (one block read after mount).
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        let mut reel = self.archive.open(name)?;
        let block = reel.read_next()?;
        decode_schema(&block)
    }

    /// Sequentially scan a stored data set, calling `visit` for each
    /// row. Returning `false` stops the scan (the tape still charged
    /// for every block read so far). Returns the number of rows
    /// visited.
    pub fn scan(&self, name: &str, mut visit: impl FnMut(&[Value]) -> bool) -> Result<usize> {
        let mut reel = self.archive.open(name)?;
        let schema_block = reel.read_next()?;
        let schema = decode_schema(&schema_block)?;
        let width = schema.len();
        let mut visited = 0usize;
        while reel.position() < reel.len() {
            let block = reel.read_next()?;
            let mut pos = 0usize;
            let nrows =
                u16::from_le_bytes(take_arr(&block, &mut pos, "row block truncated")?) as usize;
            for _ in 0..nrows {
                let len = u32::from_le_bytes(take_arr(&block, &mut pos, "row length truncated")?)
                    as usize;
                let row = decode_row(
                    block
                        .get(pos..pos + len)
                        .ok_or(DataError::Decode("row bytes truncated"))?,
                )?;
                pos += len;
                if row.len() != width {
                    return Err(DataError::ArityMismatch {
                        expected: width,
                        got: row.len(),
                    });
                }
                visited += 1;
                if !visit(&row) {
                    return Ok(visited);
                }
            }
        }
        Ok(visited)
    }

    /// Extract a (possibly filtered, possibly projected) data set by a
    /// full sequential pass — the expensive operation concrete views
    /// amortize away.
    ///
    /// `attributes = None` keeps every column; `pred = None` keeps
    /// every row.
    #[allow(clippy::type_complexity)] // optional row filter is clearest inline
    pub fn extract(
        &self,
        name: &str,
        attributes: Option<&[&str]>,
        mut pred: Option<&mut dyn FnMut(&Schema, &[Value]) -> bool>,
    ) -> Result<DataSet> {
        let schema = self.schema_of(name)?;
        let (out_schema, keep): (Schema, Vec<usize>) = match attributes {
            Some(names) => {
                let keep: Vec<usize> = names
                    .iter()
                    .map(|n| schema.require(n))
                    .collect::<Result<_>>()?;
                (schema.project(names)?, keep)
            }
            None => (schema.clone(), (0..schema.len()).collect()),
        };
        let mut out = DataSet::new(&format!("{name}_extract"), out_schema);
        self.scan(name, |row| {
            let pass = match pred.as_deref_mut() {
                Some(p) => p(&schema, row),
                None => true,
            };
            if pass {
                let projected: Vec<Value> = keep.iter().map(|&i| row[i].clone()).collect();
                // lint: allow(no-panic): projecting a scanned row by `keep` (indices derived from out_schema) preserves arity by construction
                out.push_row(projected).expect("projected row conforms");
            }
            true
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::{figure1, microdata_census, CensusConfig};
    use sdbms_storage::Tracker;

    fn rawdb() -> RawDatabase {
        RawDatabase::new(Arc::new(ArchiveStore::new(Tracker::new())))
    }

    #[test]
    fn store_and_scan_roundtrip() {
        let db = rawdb();
        let ds = figure1();
        db.store(&ds).unwrap();
        let mut rows = Vec::new();
        let n = db
            .scan("figure1", |r| {
                rows.push(r.to_vec());
                true
            })
            .unwrap();
        assert_eq!(n, 9);
        assert_eq!(rows.len(), 9);
        assert_eq!(rows, ds.rows());
    }

    #[test]
    fn schema_roundtrip_preserves_metadata() {
        let db = rawdb();
        let ds = microdata_census(&CensusConfig {
            rows: 10,
            ..Default::default()
        })
        .unwrap();
        db.store(&ds).unwrap();
        let schema = db.schema_of("census_microdata").unwrap();
        assert_eq!(schema, *ds.schema());
        assert_eq!(
            schema.attribute("AGE").unwrap().valid_range,
            Some((0.0, 110.0))
        );
        assert_eq!(
            schema.attribute("REGION").unwrap().codebook.as_deref(),
            Some("REGION")
        );
    }

    #[test]
    fn extract_with_projection_and_filter() {
        let db = rawdb();
        db.store(&figure1()).unwrap();
        let mut only_male =
            |s: &Schema, r: &[Value]| r[s.position("SEX").unwrap()].as_str() == Some("M");
        let out = db
            .extract(
                "figure1",
                Some(&["POPULATION", "AVE_SALARY"]),
                Some(&mut only_male),
            )
            .unwrap();
        assert_eq!(out.schema().names(), vec!["POPULATION", "AVE_SALARY"]);
        assert_eq!(out.len(), 5, "5 male rows in figure 1");
    }

    #[test]
    fn scan_charges_archive_reads() {
        let db = rawdb();
        let ds = microdata_census(&CensusConfig {
            rows: 1000,
            ..Default::default()
        })
        .unwrap();
        db.store(&ds).unwrap();
        let tracker = db.archive().tracker().clone();
        tracker.reset();
        db.scan("census_microdata", |_| true).unwrap();
        let s = tracker.snapshot();
        // 1 schema block + ceil(1000/64) row blocks.
        assert_eq!(s.archive_block_reads, 1 + 16);
    }

    #[test]
    fn early_stop_reads_fewer_blocks() {
        let db = rawdb();
        let ds = microdata_census(&CensusConfig {
            rows: 1000,
            ..Default::default()
        })
        .unwrap();
        db.store(&ds).unwrap();
        let tracker = db.archive().tracker().clone();
        tracker.reset();
        let mut seen = 0;
        db.scan("census_microdata", |_| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert!(tracker.snapshot().archive_block_reads <= 2);
    }

    #[test]
    fn duplicate_store_rejected() {
        let db = rawdb();
        db.store(&figure1()).unwrap();
        assert!(db.store(&figure1()).is_err());
    }

    #[test]
    fn missing_dataset_errors() {
        let db = rawdb();
        assert!(db.schema_of("nope").is_err());
        assert!(db.scan("nope", |_| true).is_err());
    }

    #[test]
    fn empty_dataset_roundtrip() {
        let db = rawdb();
        let ds = DataSet::new(
            "empty",
            Schema::new(vec![Attribute::measured("X", DataType::Int)]).unwrap(),
        );
        db.store(&ds).unwrap();
        let n = db.scan("empty", |_| true).unwrap();
        assert_eq!(n, 0);
        let out = db.extract("empty", None, None).unwrap();
        assert_eq!(out.len(), 0);
        assert_eq!(out.schema().len(), 1);
    }
}
