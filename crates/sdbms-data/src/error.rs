//! Error type for the data model layer.

use std::fmt;

use sdbms_storage::StorageError;

/// Errors raised by the data model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A row had the wrong number of values for its schema.
    ArityMismatch {
        /// Attribute count of the schema.
        expected: usize,
        /// Value count of the offending row.
        got: usize,
    },
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Attribute whose type was violated.
        attribute: String,
        /// Declared type name.
        expected: &'static str,
        /// Runtime type name of the offending value.
        got: &'static str,
    },
    /// No attribute with this name in the schema.
    NoSuchAttribute(String),
    /// An attribute name was declared twice in one schema.
    DuplicateAttribute(String),
    /// Row index out of bounds.
    NoSuchRow(usize),
    /// A code value had no entry in the code book.
    UnknownCode {
        /// Attribute the code book interprets.
        attribute: String,
        /// The undefined code.
        code: u32,
    },
    /// Bytes could not be decoded as a row/value.
    Decode(&'static str),
    /// A metadata graph node was not found.
    NoSuchNode(String),
    /// A metadata graph edge would be invalid (e.g. cycle).
    BadEdge(String),
    /// Underlying storage failure.
    Storage(StorageError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} attributes")
            }
            DataError::TypeMismatch {
                attribute,
                expected,
                got,
            } => write!(f, "attribute {attribute:?} expects {expected}, got {got}"),
            DataError::NoSuchAttribute(name) => write!(f, "no attribute named {name:?}"),
            DataError::DuplicateAttribute(name) => {
                write!(f, "attribute {name:?} declared twice")
            }
            DataError::NoSuchRow(i) => write!(f, "row index {i} out of bounds"),
            DataError::UnknownCode { attribute, code } => {
                write!(f, "code {code} of attribute {attribute:?} not in code book")
            }
            DataError::Decode(what) => write!(f, "decode error: {what}"),
            DataError::NoSuchNode(name) => write!(f, "no metadata node named {name:?}"),
            DataError::BadEdge(why) => write!(f, "invalid metadata edge: {why}"),
            DataError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DataError {
    fn from(e: StorageError) -> Self {
        DataError::Storage(e)
    }
}

impl From<sdbms_storage::budget::CancelError> for DataError {
    fn from(e: sdbms_storage::budget::CancelError) -> Self {
        DataError::Storage(e.into())
    }
}

/// Convenient result alias for data-layer operations.
pub type Result<T> = std::result::Result<T, DataError>;
