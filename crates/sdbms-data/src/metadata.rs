//! SUBJECT-style meta-data graph.
//!
//! §2.3: "one can view the meta-data as residing in a separate database
//! with its own 'data model'… The SUBJECT system has made some
//! important first steps… A user views the meta-data as a graph in
//! which nodes represent attributes. Additional, 'higher-level', nodes
//! represent generalizations of lower-level nodes. A user enters the
//! system at a fairly high level, navigating… down to the level of
//! desired detail. SUBJECT keeps track of the path followed by the user
//! and at the end of the session can generate requests to the DBMS for
//! the view described by his path."
//!
//! [`MetadataGraph`] is that graph; [`NavigationSession`] records a
//! walk and emits a [`ViewRequest`] — the list of data sets and
//! attributes the walk touched — which `sdbms-core` turns into a view
//! materialization.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{DataError, Result};

/// What a graph node stands for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A generalization / topic grouping lower-level nodes
    /// (e.g. "Demographics").
    Topic,
    /// A data set in the raw database.
    DataSet {
        /// Name of the data set in the raw database.
        dataset: String,
    },
    /// One attribute of a data set.
    Attribute {
        /// Name of the data set.
        dataset: String,
        /// Attribute within the data set.
        attribute: String,
    },
}

/// A node in the meta-data graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Unique node name.
    pub name: String,
    /// What the node stands for.
    pub kind: NodeKind,
    /// Human description shown during navigation.
    pub description: String,
}

/// The meta-data graph: nodes linked parent → child, acyclic.
#[derive(Debug, Clone, Default)]
pub struct MetadataGraph {
    nodes: BTreeMap<String, Node>,
    children: BTreeMap<String, BTreeSet<String>>,
    parents: BTreeMap<String, BTreeSet<String>>,
}

impl MetadataGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node. Re-adding an existing name replaces its kind and
    /// description but keeps its edges (graph update, §2.3 "primitive
    /// operations that enable management of the graph").
    pub fn add_node(&mut self, name: &str, kind: NodeKind, description: &str) {
        self.nodes.insert(
            name.to_string(),
            Node {
                name: name.to_string(),
                kind,
                description: description.to_string(),
            },
        );
    }

    /// Remove a node and all its edges.
    pub fn remove_node(&mut self, name: &str) -> Result<()> {
        if self.nodes.remove(name).is_none() {
            return Err(DataError::NoSuchNode(name.to_string()));
        }
        if let Some(kids) = self.children.remove(name) {
            for k in kids {
                if let Some(ps) = self.parents.get_mut(&k) {
                    ps.remove(name);
                }
            }
        }
        if let Some(ps) = self.parents.remove(name) {
            for p in ps {
                if let Some(ks) = self.children.get_mut(&p) {
                    ks.remove(name);
                }
            }
        }
        Ok(())
    }

    /// Link `parent` → `child`. Rejects unknown nodes and edges that
    /// would create a cycle.
    pub fn add_edge(&mut self, parent: &str, child: &str) -> Result<()> {
        if !self.nodes.contains_key(parent) {
            return Err(DataError::NoSuchNode(parent.to_string()));
        }
        if !self.nodes.contains_key(child) {
            return Err(DataError::NoSuchNode(child.to_string()));
        }
        if parent == child || self.reachable(child, parent) {
            return Err(DataError::BadEdge(format!(
                "edge {parent} -> {child} would create a cycle"
            )));
        }
        self.children
            .entry(parent.to_string())
            .or_default()
            .insert(child.to_string());
        self.parents
            .entry(child.to_string())
            .or_default()
            .insert(parent.to_string());
        Ok(())
    }

    fn reachable(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from.to_string()];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(kids) = self.children.get(&n) {
                stack.extend(kids.iter().cloned());
            }
        }
        false
    }

    /// The node named `name`.
    pub fn node(&self, name: &str) -> Result<&Node> {
        self.nodes
            .get(name)
            .ok_or_else(|| DataError::NoSuchNode(name.to_string()))
    }

    /// Children of `name`, sorted.
    pub fn children_of(&self, name: &str) -> Result<Vec<&Node>> {
        self.node(name)?;
        Ok(self
            .children
            .get(name)
            .into_iter()
            .flatten()
            .map(|n| &self.nodes[n])
            .collect())
    }

    /// Nodes with no parent — the "fairly high level" entry points.
    #[must_use]
    pub fn roots(&self) -> Vec<&Node> {
        self.nodes
            .values()
            .filter(|n| self.parents.get(&n.name).is_none_or(BTreeSet::is_empty))
            .collect()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Start a navigation session at a root or any named node.
    pub fn navigate_from(&self, start: &str) -> Result<NavigationSession<'_>> {
        self.node(start)?;
        Ok(NavigationSession {
            graph: self,
            path: vec![start.to_string()],
        })
    }
}

/// A recorded walk through the graph (SUBJECT's session log).
#[derive(Debug)]
pub struct NavigationSession<'g> {
    graph: &'g MetadataGraph,
    path: Vec<String>,
}

impl NavigationSession<'_> {
    /// The node currently under the cursor.
    #[must_use]
    pub fn current(&self) -> &Node {
        // lint: allow(no-panic): path starts with the root node and ascend() refuses to pop the last element
        &self.graph.nodes[self.path.last().expect("path never empty")]
    }

    /// The walked path so far.
    #[must_use]
    pub fn path(&self) -> &[String] {
        &self.path
    }

    /// Descend to a child of the current node.
    pub fn descend(&mut self, child: &str) -> Result<&Node> {
        let cur = self.current().name.clone();
        let kids = self.graph.children.get(&cur);
        if !kids.is_some_and(|k| k.contains(child)) {
            return Err(DataError::BadEdge(format!(
                "{child} is not a child of {cur}"
            )));
        }
        self.path.push(child.to_string());
        Ok(self.current())
    }

    /// Go back up one step (no-op at the start).
    pub fn ascend(&mut self) {
        if self.path.len() > 1 {
            self.path.pop();
        }
    }

    /// Generate the view request this walk describes: every data set
    /// and attribute node on (or below the deepest topic of) the path.
    #[must_use]
    pub fn view_request(&self) -> ViewRequest {
        let mut req = ViewRequest::default();
        for name in &self.path {
            match &self.graph.nodes[name].kind {
                NodeKind::Topic => {}
                NodeKind::DataSet { dataset } => {
                    req.datasets.insert(dataset.clone());
                }
                NodeKind::Attribute { dataset, attribute } => {
                    req.datasets.insert(dataset.clone());
                    req.attributes
                        .entry(dataset.clone())
                        .or_default()
                        .insert(attribute.clone());
                }
            }
        }
        req
    }
}

/// What a navigation session asks the DBMS to materialize.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewRequest {
    /// Data sets touched by the walk.
    pub datasets: BTreeSet<String>,
    /// Attributes selected per data set; an empty set means "all".
    pub attributes: BTreeMap<String, BTreeSet<String>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_graph() -> MetadataGraph {
        let mut g = MetadataGraph::new();
        g.add_node("Demographics", NodeKind::Topic, "population topics");
        g.add_node("Economics", NodeKind::Topic, "income topics");
        g.add_node(
            "census",
            NodeKind::DataSet {
                dataset: "census".into(),
            },
            "1980 census sample",
        );
        g.add_node(
            "census.AGE",
            NodeKind::Attribute {
                dataset: "census".into(),
                attribute: "AGE".into(),
            },
            "age in years",
        );
        g.add_node(
            "census.INCOME",
            NodeKind::Attribute {
                dataset: "census".into(),
                attribute: "INCOME".into(),
            },
            "annual income",
        );
        g.add_edge("Demographics", "census").unwrap();
        g.add_edge("census", "census.AGE").unwrap();
        g.add_edge("census", "census.INCOME").unwrap();
        g.add_edge("Economics", "census.INCOME").unwrap();
        g
    }

    #[test]
    fn roots_and_children() {
        let g = demo_graph();
        let mut roots: Vec<&str> = g.roots().iter().map(|n| n.name.as_str()).collect();
        roots.sort_unstable();
        assert_eq!(roots, vec!["Demographics", "Economics"]);
        let kids = g.children_of("census").unwrap();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn cycles_rejected() {
        let mut g = demo_graph();
        assert!(g.add_edge("census.AGE", "Demographics").is_err());
        assert!(g.add_edge("census", "census").is_err());
        assert!(g.add_edge("census", "nonexistent").is_err());
    }

    #[test]
    fn navigation_records_path_and_builds_request() {
        let g = demo_graph();
        let mut s = g.navigate_from("Demographics").unwrap();
        s.descend("census").unwrap();
        s.descend("census.AGE").unwrap();
        assert_eq!(s.path(), &["Demographics", "census", "census.AGE"]);
        s.ascend();
        s.descend("census.INCOME").unwrap();
        let req = s.view_request();
        assert!(req.datasets.contains("census"));
        let attrs = &req.attributes["census"];
        assert!(attrs.contains("INCOME"));
        assert!(
            !attrs.contains("AGE"),
            "AGE was backed out of and is not on the final path"
        );
    }

    #[test]
    fn descend_rejects_non_children() {
        let g = demo_graph();
        let mut s = g.navigate_from("Economics").unwrap();
        assert!(s.descend("census").is_err());
        s.descend("census.INCOME").unwrap();
        assert_eq!(s.current().name, "census.INCOME");
    }

    #[test]
    fn ascend_at_root_is_noop() {
        let g = demo_graph();
        let mut s = g.navigate_from("Demographics").unwrap();
        s.ascend();
        assert_eq!(s.current().name, "Demographics");
    }

    #[test]
    fn remove_node_cleans_edges() {
        let mut g = demo_graph();
        g.remove_node("census.INCOME").unwrap();
        assert!(g.node("census.INCOME").is_err());
        assert_eq!(g.children_of("census").unwrap().len(), 1);
        assert!(g.remove_node("census.INCOME").is_err());
    }

    #[test]
    fn multiple_parents_allowed() {
        let g = demo_graph();
        // census.INCOME is reachable from both Demographics and
        // Economics — a DAG, not a tree.
        let mut s1 = g.navigate_from("Economics").unwrap();
        s1.descend("census.INCOME").unwrap();
        let r = s1.view_request();
        assert!(r.datasets.contains("census"));
    }
}
