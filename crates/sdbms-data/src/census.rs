//! Census-style synthetic workload generator.
//!
//! The paper's running example (Figure 1) is a census cross-tabulation
//! by SEX × RACE × AGE_GROUP, and its motivating database is the 1970
//! census public-use sample. We cannot ship census data, so this module
//! generates the closest synthetic equivalent (per the substitution
//! table in DESIGN.md):
//!
//! - [`figure1`] reproduces paper Figure 1 *exactly* (the 9 rows the
//!   paper prints).
//! - [`aggregate_census`] scales the same shape up: the full cross
//!   product of category values with generated POPULATION/AVE_SALARY.
//! - [`microdata_census`] generates person-level records (AGE, INCOME,
//!   …) with seeded outliers and invalid measurements, exercising the
//!   data-checking workloads of §2.2 (a 5-digit salary is plausible; an
//!   age of 1,000 is not).
//!
//! All generation is deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codebook::CodeBook;
use crate::dataset::DataSet;
use crate::error::Result;
use crate::schema::{Attribute, Schema};
use crate::value::{DataType, Value};

/// The data set printed as Figure 1 of the paper, row for row.
#[must_use]
pub fn figure1() -> DataSet {
    let schema = Schema::new(vec![
        Attribute::category("SEX", DataType::Str),
        Attribute::category("RACE", DataType::Str),
        Attribute::category("AGE_GROUP", DataType::Code).with_codebook("AGE_GROUP"),
        Attribute::measured("POPULATION", DataType::Int),
        Attribute::derived("AVE_SALARY", DataType::Int),
    ])
    // lint: allow(no-panic): schema is a compile-time literal; Schema::new can only reject duplicates, and there are none
    .expect("static schema is valid");
    let rows: Vec<(&str, &str, u32, i64, i64)> = vec![
        ("M", "W", 1, 12_300_347, 33_122),
        ("M", "W", 2, 21_342_193, 25_883),
        ("M", "W", 3, 18_989_987, 42_919),
        ("M", "W", 4, 9_342_193, 15_110),
        ("F", "W", 1, 15_821_497, 31_762),
        ("F", "W", 2, 33_422_988, 29_933),
        ("F", "W", 3, 29_734_121, 28_218),
        ("F", "W", 4, 20_812_211, 17_498),
        ("M", "B", 1, 2_143_924, 29_402),
    ];
    let rows = rows
        .into_iter()
        .map(|(s, r, a, p, sal)| {
            vec![
                Value::Str(s.into()),
                Value::Str(r.into()),
                Value::Code(a),
                Value::Int(p),
                Value::Int(sal),
            ]
        })
        .collect();
    // lint: allow(no-panic): rows are a compile-time literal shaped to the literal schema above
    DataSet::from_rows("figure1", schema, rows).expect("figure 1 rows conform")
}

/// Configuration for the synthetic census generators.
#[derive(Debug, Clone, Copy)]
pub struct CensusConfig {
    /// RNG seed; same seed, same data.
    pub seed: u64,
    /// For [`microdata_census`]: number of person records.
    pub rows: usize,
    /// Fraction of records given an *invalid* measurement (e.g. an age
    /// of 1,000) for data-checking workloads.
    pub invalid_fraction: f64,
    /// Fraction of records given a legitimate but extreme value (the
    /// Beverly Hills salary) — suspicious, not wrong.
    pub outlier_fraction: f64,
    /// Number of regions in the REGION category (controls category
    /// cross-product size for [`aggregate_census`]).
    pub regions: u32,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            seed: 1982,
            rows: 10_000,
            invalid_fraction: 0.002,
            outlier_fraction: 0.01,
            regions: 4,
        }
    }
}

/// Standard-normal sample via Box–Muller (keeps us to the plain `rand`
/// dependency).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The sexes used by the generators.
pub const SEXES: [&str; 2] = ["M", "F"];
/// The race codes used by the generators.
pub const RACES: [&str; 4] = ["W", "B", "A", "H"];
/// Number of AGE_GROUP codes (1..=4, per Figure 2).
pub const AGE_GROUPS: u32 = 4;

/// Code book for the REGION attribute of the synthetic census.
#[must_use]
pub fn region_codebook(regions: u32) -> CodeBook {
    let mut cb = CodeBook::new("REGION");
    for r in 1..=regions {
        cb.define(r, &format!("Region {r}"));
    }
    cb
}

/// Aggregate (Figure 1-shaped) census: one row per cell of the
/// SEX × RACE × AGE_GROUP × REGION cross product.
///
/// §2.1: "the number of records in the statistical data set can equal
/// the cross product of the ranges of the category attribute values".
pub fn aggregate_census(config: &CensusConfig) -> Result<DataSet> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::new(vec![
        Attribute::category("SEX", DataType::Str),
        Attribute::category("RACE", DataType::Str),
        Attribute::category("AGE_GROUP", DataType::Code).with_codebook("AGE_GROUP"),
        Attribute::category("REGION", DataType::Code).with_codebook("REGION"),
        Attribute::measured("POPULATION", DataType::Int).with_valid_range(0.0, 5e7),
        Attribute::derived("AVE_SALARY", DataType::Float).with_valid_range(1_000.0, 250_000.0),
    ])?;
    let mut rows = Vec::new();
    for sex in SEXES {
        for race in RACES {
            for age in 1..=AGE_GROUPS {
                for region in 1..=config.regions {
                    // Population scales down for later age groups and
                    // minority races, with lognormal-ish noise.
                    let base =
                        8_000_000.0 / (age as f64).sqrt() * if race == "W" { 1.0 } else { 0.25 };
                    let pop = (base * (1.0 + 0.3 * normal(&mut rng)).max(0.05)) as i64;
                    // Salary peaks in age groups 2-3.
                    let peak = match age {
                        1 => 18_000.0,
                        2 => 32_000.0,
                        3 => 38_000.0,
                        _ => 21_000.0,
                    };
                    let salary = (peak * (1.0 + 0.15 * normal(&mut rng))).max(2_000.0);
                    rows.push(vec![
                        Value::Str(sex.into()),
                        Value::Str(race.into()),
                        Value::Code(age),
                        Value::Code(region),
                        Value::Int(pop),
                        Value::Float((salary * 100.0).round() / 100.0),
                    ]);
                }
            }
        }
    }
    DataSet::from_rows("census_aggregate", schema, rows)
}

/// Person-level census microdata with seeded outliers and invalid
/// values.
///
/// Columns: SEX, RACE, REGION (code), AGE (years), AGE_GROUP (code
/// derived from AGE per Figure 2), INCOME (dollars), HOURS_WORKED.
/// `invalid_fraction` of the rows get an impossible AGE (≥ 900);
/// `outlier_fraction` get an extreme-but-legitimate INCOME.
pub fn microdata_census(config: &CensusConfig) -> Result<DataSet> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5EED));
    let schema = Schema::new(vec![
        Attribute::category("PERSON_ID", DataType::Int),
        Attribute::measured("SEX", DataType::Str),
        Attribute::measured("RACE", DataType::Str),
        Attribute::measured("REGION", DataType::Code).with_codebook("REGION"),
        Attribute::measured("AGE", DataType::Int).with_valid_range(0.0, 110.0),
        Attribute::derived("AGE_GROUP", DataType::Code).with_codebook("AGE_GROUP"),
        Attribute::measured("INCOME", DataType::Float).with_valid_range(0.0, 250_000.0),
        Attribute::measured("HOURS_WORKED", DataType::Int).with_valid_range(0.0, 100.0),
    ])?;
    let mut rows = Vec::with_capacity(config.rows);
    for id in 0..config.rows {
        let sex = SEXES[rng.gen_range(0..SEXES.len())];
        let race = RACES[rng.gen_range(0..RACES.len())];
        let region = rng.gen_range(1..=config.regions);
        let mut age: i64 = (38.0 + 22.0 * normal(&mut rng)).clamp(0.0, 99.0) as i64;
        // Income depends on age (earnings curve) with heavy noise.
        let age_factor = 1.0 - ((age as f64 - 45.0) / 60.0).powi(2);
        let mut income =
            (28_000.0 * age_factor.max(0.1) * (1.0 + 0.5 * normal(&mut rng)).max(0.02)).max(0.0);
        let hours: i64 = (40.0 + 10.0 * normal(&mut rng)).clamp(0.0, 99.0) as i64;

        if rng.gen::<f64>() < config.invalid_fraction {
            // An incorrect measurement: the paper's "age recorded as
            // 1,000".
            age = 900 + rng.gen_range(0..200);
        } else if rng.gen::<f64>() < config.outlier_fraction {
            // Legitimate outlier: the Beverly Hills salary.
            income = 300_000.0 + 150_000.0 * rng.gen::<f64>();
        }
        let age_group = match age {
            0..=20 => 1,
            21..=40 => 2,
            41..=60 => 3,
            _ => 4,
        };
        rows.push(vec![
            Value::Int(id as i64),
            Value::Str(sex.into()),
            Value::Str(race.into()),
            Value::Code(region),
            Value::Int(age),
            Value::Code(age_group),
            Value::Float((income * 100.0).round() / 100.0),
            Value::Int(hours),
        ]);
    }
    DataSet::from_rows("census_microdata", schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_exactly() {
        let ds = figure1();
        assert_eq!(ds.len(), 9);
        assert_eq!(
            ds.schema().names(),
            vec!["SEX", "RACE", "AGE_GROUP", "POPULATION", "AVE_SALARY"]
        );
        // Spot-check the first and last printed rows.
        assert_eq!(ds.value(0, "POPULATION").unwrap(), &Value::Int(12_300_347));
        assert_eq!(ds.value(0, "AVE_SALARY").unwrap(), &Value::Int(33_122));
        assert_eq!(ds.value(8, "SEX").unwrap(), &Value::Str("M".into()));
        assert_eq!(ds.value(8, "RACE").unwrap(), &Value::Str("B".into()));
        assert_eq!(ds.value(8, "POPULATION").unwrap(), &Value::Int(2_143_924));
    }

    #[test]
    fn aggregate_is_full_cross_product() {
        let cfg = CensusConfig {
            regions: 3,
            ..Default::default()
        };
        let ds = aggregate_census(&cfg).unwrap();
        assert_eq!(ds.len(), 2 * 4 * 4 * 3);
        // All populations positive.
        let (pops, skipped) = ds.column_f64("POPULATION").unwrap();
        assert_eq!(skipped, 0);
        assert!(pops.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CensusConfig::default();
        let a = aggregate_census(&cfg).unwrap();
        let b = aggregate_census(&cfg).unwrap();
        assert_eq!(a, b);
        let m1 = microdata_census(&cfg).unwrap();
        let m2 = microdata_census(&cfg).unwrap();
        assert_eq!(m1, m2);
        let other = microdata_census(&CensusConfig { seed: 7, ..cfg }).unwrap();
        assert_ne!(m1, other);
    }

    #[test]
    fn microdata_has_seeded_errors() {
        let cfg = CensusConfig {
            rows: 20_000,
            invalid_fraction: 0.01,
            outlier_fraction: 0.02,
            ..Default::default()
        };
        let ds = microdata_census(&cfg).unwrap();
        assert_eq!(ds.len(), 20_000);
        let bad_ages = ds.suspicious_rows("AGE").unwrap();
        let frac = bad_ages.len() as f64 / ds.len() as f64;
        assert!(
            (0.003..0.03).contains(&frac),
            "invalid-age fraction {frac} out of expected band"
        );
        // Every suspicious age is the impossible kind we planted.
        for &r in &bad_ages {
            let age = ds.value(r, "AGE").unwrap().as_i64().unwrap();
            assert!(age >= 900);
        }
        let rich = ds.suspicious_rows("INCOME").unwrap();
        assert!(!rich.is_empty(), "outlier incomes planted");
    }

    #[test]
    fn age_group_derivation_consistent() {
        let ds = microdata_census(&CensusConfig {
            rows: 2_000,
            invalid_fraction: 0.0,
            ..Default::default()
        })
        .unwrap();
        for i in 0..ds.len() {
            let age = ds.value(i, "AGE").unwrap().as_i64().unwrap();
            let group = ds.value(i, "AGE_GROUP").unwrap().as_code().unwrap();
            let expect = match age {
                0..=20 => 1,
                21..=40 => 2,
                41..=60 => 3,
                _ => 4,
            };
            assert_eq!(group, expect, "row {i}: age {age}");
        }
    }

    #[test]
    fn region_codebook_covers_regions() {
        let cb = region_codebook(5);
        assert_eq!(cb.len(), 5);
        assert_eq!(cb.decode(3).unwrap(), "Region 3");
        assert!(cb.decode(6).is_err());
    }
}
