//! # sdbms-data — the statistical data model
//!
//! The data structures §2.1 of the paper characterizes statistical
//! databases by:
//!
//! - [`value`] — typed cell values with first-class missing values and
//!   a binary row encoding used by every storage layer.
//! - [`schema`] — attributes with *category* / *measured* / *derived*
//!   roles (category attributes form the composite key), code book
//!   references, and validation ranges for data checking.
//! - [`dataset`] — the in-memory flat file ("much like a relation")
//!   that statistical packages present, with column extraction,
//!   derived-column appending, invalidation, and suspicion scans.
//! - [`codebook`] — encoded-value interpretation tables (paper
//!   Figure 2), convertible to data sets so decoding is a join.
//! - [`census`] — deterministic census-style workload generators,
//!   including an exact reproduction of paper Figure 1.
//! - [`metadata`] — the SUBJECT-style meta-data navigation graph that
//!   turns a browsing session into a view request.
//! - [`rawdb`] — data sets on sequential archive ("tape") storage,
//!   readable only by full scans.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod census;
pub mod codebook;
pub mod dataset;
pub mod error;
pub mod metadata;
pub mod rawdb;
pub mod schema;
pub mod value;

pub use codebook::CodeBook;
pub use dataset::DataSet;
pub use error::{DataError, Result};
pub use metadata::{MetadataGraph, NavigationSession, NodeKind, ViewRequest};
pub use rawdb::RawDatabase;
pub use schema::{Attribute, AttributeRole, Schema};
pub use value::{decode_row, encode_row, DataType, Value};
