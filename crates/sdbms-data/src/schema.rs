//! Schemas: attribute names, types, and statistical roles.
//!
//! §2.1: a statistical data set is a flat file whose attributes divide
//! into *category* attributes (together a composite key, identifying
//! each observation) and *measured* attributes (quantifying them). The
//! paper also notes values derived "by aggregating over other data
//! values" — those carry the [`AttributeRole::Derived`] role and a
//! maintenance rule in the Management Database.

use std::collections::HashMap;
use std::fmt;

use crate::error::{DataError, Result};
use crate::value::{DataType, Value};

/// How an attribute participates in the data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// Part of the composite key identifying each observation
    /// (e.g. SEX, RACE, AGE_GROUP in paper Figure 1).
    Category,
    /// A measured quantity (e.g. POPULATION).
    Measured,
    /// Derived from other values; the Management Database holds the
    /// rule that maintains it (e.g. AVE_SALARY, regression residuals).
    Derived,
}

impl fmt::Display for AttributeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttributeRole::Category => "category",
            AttributeRole::Measured => "measured",
            AttributeRole::Derived => "derived",
        })
    }
}

/// One attribute (column) of a data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Column name, unique within the schema.
    pub name: String,
    /// Declared type of the column's values.
    pub dtype: DataType,
    /// Statistical role.
    pub role: AttributeRole,
    /// Name of the code book interpreting [`DataType::Code`] values.
    pub codebook: Option<String>,
    /// Validation range for numeric values, used by data checking
    /// (§2.2): values outside are *suspicious*.
    pub valid_range: Option<(f64, f64)>,
}

impl Attribute {
    /// A category attribute.
    #[must_use]
    pub fn category(name: &str, dtype: DataType) -> Self {
        Attribute {
            name: name.to_string(),
            dtype,
            role: AttributeRole::Category,
            codebook: None,
            valid_range: None,
        }
    }

    /// A measured attribute.
    #[must_use]
    pub fn measured(name: &str, dtype: DataType) -> Self {
        Attribute {
            name: name.to_string(),
            dtype,
            role: AttributeRole::Measured,
            codebook: None,
            valid_range: None,
        }
    }

    /// A derived attribute.
    #[must_use]
    pub fn derived(name: &str, dtype: DataType) -> Self {
        Attribute {
            name: name.to_string(),
            dtype,
            role: AttributeRole::Derived,
            codebook: None,
            valid_range: None,
        }
    }

    /// Attach a code book name (for [`DataType::Code`] attributes).
    #[must_use]
    pub fn with_codebook(mut self, codebook: &str) -> Self {
        self.codebook = Some(codebook.to_string());
        self
    }

    /// Attach a plausibility range for data checking.
    #[must_use]
    pub fn with_valid_range(mut self, lo: f64, hi: f64) -> Self {
        self.valid_range = Some((lo, hi));
        self
    }

    /// Whether summary statistics (mean, median, …) make sense for
    /// this attribute. §3.2: "computing the median … of the AGE_GROUP
    /// attribute … does not make sense", so the system consults this
    /// meta-data before computing or caching summaries.
    #[must_use]
    pub fn is_summarizable(&self) -> bool {
        matches!(self.dtype, DataType::Int | DataType::Float)
    }
}

/// An ordered set of attributes with unique names.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema; fails on duplicate attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            if by_name.insert(a.name.clone(), i).is_some() {
                return Err(DataError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema {
            attributes,
            by_name,
        })
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True if the schema has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attributes in declaration order.
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Position of `name`, if present.
    #[must_use]
    pub fn position(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Position of `name`, or an error naming the attribute.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.position(name)
            .ok_or_else(|| DataError::NoSuchAttribute(name.to_string()))
    }

    /// The attribute named `name`.
    pub fn attribute(&self, name: &str) -> Result<&Attribute> {
        Ok(&self.attributes[self.require(name)?])
    }

    /// Attribute at position `i`.
    #[must_use]
    pub fn attribute_at(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }

    /// Positions of all category attributes (the composite key).
    #[must_use]
    pub fn category_positions(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == AttributeRole::Category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Names of all attributes, in order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Check a row against this schema: arity and per-value type
    /// conformance (missing conforms to anything).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.attributes.len() {
            return Err(DataError::ArityMismatch {
                expected: self.attributes.len(),
                got: row.len(),
            });
        }
        for (v, a) in row.iter().zip(&self.attributes) {
            if !v.conforms_to(a.dtype) {
                return Err(DataError::TypeMismatch {
                    attribute: a.name.clone(),
                    expected: match a.dtype {
                        DataType::Int => "int",
                        DataType::Float => "float",
                        DataType::Str => "str",
                        DataType::Code => "code",
                    },
                    got: v.type_name(),
                });
            }
        }
        Ok(())
    }

    /// A new schema with `attr` appended (for derived columns).
    pub fn with_appended(&self, attr: Attribute) -> Result<Schema> {
        let mut attrs = self.attributes.clone();
        attrs.push(attr);
        Schema::new(attrs)
    }

    /// A new schema containing only `names`, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(names.len());
        for n in names {
            attrs.push(self.attribute(n)?.clone());
        }
        Schema::new(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::category("SEX", DataType::Str),
            Attribute::category("AGE_GROUP", DataType::Code).with_codebook("AGE_GROUP"),
            Attribute::measured("POPULATION", DataType::Int),
            Attribute::derived("AVE_SALARY", DataType::Float).with_valid_range(0.0, 1e6),
        ])
        .unwrap()
    }

    #[test]
    fn positions_and_lookup() {
        let s = schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.position("POPULATION"), Some(2));
        assert_eq!(s.position("NOPE"), None);
        assert!(s.require("NOPE").is_err());
        assert_eq!(
            s.attribute("AGE_GROUP").unwrap().codebook.as_deref(),
            Some("AGE_GROUP")
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Attribute::measured("X", DataType::Int),
            Attribute::measured("X", DataType::Float),
        ]);
        assert!(matches!(r, Err(DataError::DuplicateAttribute(_))));
    }

    #[test]
    fn category_positions_form_key() {
        let s = schema();
        assert_eq!(s.category_positions(), vec![0, 1]);
    }

    #[test]
    fn check_row_validates_types_and_arity() {
        let s = schema();
        let good = vec![
            Value::Str("M".into()),
            Value::Code(1),
            Value::Int(100),
            Value::Float(30000.0),
        ];
        s.check_row(&good).unwrap();
        let missing_ok = vec![
            Value::Str("M".into()),
            Value::Missing,
            Value::Int(100),
            Value::Missing,
        ];
        s.check_row(&missing_ok).unwrap();
        let wrong_type = vec![
            Value::Int(0),
            Value::Code(1),
            Value::Int(100),
            Value::Float(1.0),
        ];
        assert!(matches!(
            s.check_row(&wrong_type),
            Err(DataError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&good[..3]),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn summarizable_respects_metadata() {
        let s = schema();
        assert!(!s.attribute("AGE_GROUP").unwrap().is_summarizable());
        assert!(!s.attribute("SEX").unwrap().is_summarizable());
        assert!(s.attribute("POPULATION").unwrap().is_summarizable());
        assert!(s.attribute("AVE_SALARY").unwrap().is_summarizable());
    }

    #[test]
    fn project_and_append() {
        let s = schema();
        let p = s.project(&["POPULATION", "SEX"]).unwrap();
        assert_eq!(p.names(), vec!["POPULATION", "SEX"]);
        assert!(s.project(&["NOPE"]).is_err());
        let a = s
            .with_appended(Attribute::derived("LOG_POP", DataType::Float))
            .unwrap();
        assert_eq!(a.len(), 5);
        assert!(s
            .with_appended(Attribute::derived("SEX", DataType::Float))
            .is_err());
    }
}
