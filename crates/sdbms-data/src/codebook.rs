//! Code books: interpreting encoded category values.
//!
//! §2.1: "data values, such as age in Figure 1, are frequently
//! encoded. Thus, a table such as that found in Figure 2 must be used
//! to interpret the values of the AGE_GROUP attribute" — for the 1970
//! census the code book ran over 200 pages. A [`CodeBook`] is that
//! table, and it converts to a [`DataSet`] so decoding can be done with
//! a relational join (experiment F2) instead of a manual look-up.

use std::collections::BTreeMap;

use crate::dataset::DataSet;
use crate::error::{DataError, Result};
use crate::schema::{Attribute, Schema};
use crate::value::{DataType, Value};

/// Mapping from code values of one attribute to their meanings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBook {
    attribute: String,
    entries: BTreeMap<u32, String>,
}

impl CodeBook {
    /// An empty code book for `attribute`.
    #[must_use]
    pub fn new(attribute: &str) -> Self {
        CodeBook {
            attribute: attribute.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// The attribute this book interprets.
    #[must_use]
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// Define (or redefine) a code.
    pub fn define(&mut self, code: u32, meaning: &str) {
        self.entries.insert(code, meaning.to_string());
    }

    /// Builder-style [`CodeBook::define`].
    #[must_use]
    pub fn with(mut self, code: u32, meaning: &str) -> Self {
        self.define(code, meaning);
        self
    }

    /// Meaning of `code`, or an error naming the attribute (the
    /// "inconsistent encodings between 1970 and 1980" problem shows up
    /// as this error).
    pub fn decode(&self, code: u32) -> Result<&str> {
        self.entries
            .get(&code)
            .map(String::as_str)
            .ok_or(DataError::UnknownCode {
                attribute: self.attribute.clone(),
                code,
            })
    }

    /// Decode a [`Value::Code`]; passes `Missing` through.
    pub fn decode_value(&self, v: &Value) -> Result<Value> {
        match v {
            Value::Code(c) => Ok(Value::Str(self.decode(*c)?.to_string())),
            Value::Missing => Ok(Value::Missing),
            other => Ok(other.clone()),
        }
    }

    /// Number of codes defined.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no codes are defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All `(code, meaning)` pairs in code order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, &str)> {
        self.entries.iter().map(|(c, m)| (*c, m.as_str()))
    }

    /// Render as a two-column data set `(CATEGORY, VALUE)` — exactly
    /// paper Figure 2 — so decoding can be done with a relational join.
    #[must_use]
    pub fn to_dataset(&self) -> DataSet {
        let schema = Schema::new(vec![
            Attribute::category("CATEGORY", DataType::Code),
            Attribute::measured("VALUE", DataType::Str),
        ])
        // lint: allow(no-panic): two distinct literal attribute names can never collide
        .expect("static schema is valid");
        let rows = self
            .entries
            .iter()
            .map(|(c, m)| vec![Value::Code(*c), Value::Str(m.clone())])
            .collect();
        DataSet::from_rows(&format!("{}_codebook", self.attribute), schema, rows)
            // lint: allow(no-panic): every row is built as [Code, Str] right above, matching the literal schema
            .expect("codebook rows conform")
    }

    /// The paper's Figure 2: the AGE_GROUP code book.
    #[must_use]
    pub fn figure2_age_group() -> Self {
        CodeBook::new("AGE_GROUP")
            .with(1, "0 to 20")
            .with(2, "21 to 40")
            .with(3, "41 to 60")
            .with(4, "over 60")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_decode() {
        let cb = CodeBook::new("REGION")
            .with(1, "Northeast")
            .with(2, "South");
        assert_eq!(cb.decode(1).unwrap(), "Northeast");
        assert!(matches!(
            cb.decode(9),
            Err(DataError::UnknownCode { code: 9, .. })
        ));
    }

    #[test]
    fn decode_value_passthrough() {
        let cb = CodeBook::figure2_age_group();
        assert_eq!(
            cb.decode_value(&Value::Code(2)).unwrap(),
            Value::Str("21 to 40".into())
        );
        assert_eq!(cb.decode_value(&Value::Missing).unwrap(), Value::Missing);
        assert_eq!(
            cb.decode_value(&Value::Int(5)).unwrap(),
            Value::Int(5),
            "non-code values pass through"
        );
        assert!(cb.decode_value(&Value::Code(99)).is_err());
    }

    #[test]
    fn figure2_contents_match_paper() {
        let cb = CodeBook::figure2_age_group();
        let pairs: Vec<(u32, &str)> = cb.entries().collect();
        assert_eq!(
            pairs,
            vec![
                (1, "0 to 20"),
                (2, "21 to 40"),
                (3, "41 to 60"),
                (4, "over 60"),
            ]
        );
    }

    #[test]
    fn to_dataset_is_joinable_figure2() {
        let ds = CodeBook::figure2_age_group().to_dataset();
        assert_eq!(ds.schema().names(), vec!["CATEGORY", "VALUE"]);
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.value(0, "CATEGORY").unwrap(), &Value::Code(1));
        assert_eq!(ds.value(3, "VALUE").unwrap(), &Value::Str("over 60".into()));
    }

    #[test]
    fn redefine_overwrites() {
        let mut cb = CodeBook::new("X");
        cb.define(1, "old");
        cb.define(1, "new");
        assert_eq!(cb.decode(1).unwrap(), "new");
        assert_eq!(cb.len(), 1);
    }
}
