//! Morsel-driven parallel scan/aggregation executor.
//!
//! The paper's workload is column-at-a-time full scans over concrete
//! views — embarrassingly parallel work. This crate splits a column's
//! row range into fixed-size *morsels*, lets a pool of worker threads
//! pull morsels from a shared queue (the NUMA-oblivious core of
//! Leis et al.'s morsel-driven scheme), and combines per-morsel partial
//! results **deterministically**: partials are stored per morsel and
//! merged in morsel-index order, so the result is bit-identical no
//! matter how many workers ran the scan or how the morsels were
//! interleaved. The morsel partition depends only on the row count and
//! the configured morsel size — never on the worker count — which is
//! what makes `workers = 1` and `workers = 8` produce identical bytes.
//!
//! Aggregation state rides in [`ColumnProfile`]: the mergeable
//! accumulators of `sdbms-stats` (moments, extremes, frequencies) plus
//! the numeric values gathered *in row order*, so non-mergeable order
//! statistics (median, quartiles, trimmed means) can reuse the exact
//! serial quantile code on the concatenated data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernels;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use sdbms_columnar::TableStore;
use sdbms_data::Value;
use sdbms_stats::{FrequencyTable, MinMaxAcc, Moments};
use sdbms_storage::budget::{ambient_token, BudgetScope, CancelError, CancelToken};

/// Environment variable overriding the worker count
/// (`SDBMS_WORKERS=4`). Unset, empty, unparsable, or `0` all fall back
/// to the machine's available parallelism.
pub const WORKERS_ENV: &str = "SDBMS_WORKERS";

/// Default rows per morsel: four 256-row columnar segments, so a
/// morsel decodes whole segments and never splits one across workers.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Executor configuration: worker-pool size and morsel granularity.
///
/// Only `workers` may vary between runs that must agree bit-for-bit;
/// `morsel_rows` changes the partition and therefore the merge tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads for a scan (1 = run on the calling thread).
    pub workers: usize,
    /// Rows per morsel.
    pub morsel_rows: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

impl ExecConfig {
    /// Configuration from the environment: `SDBMS_WORKERS` workers,
    /// defaulting to the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|s| parse_workers(&s))
            .unwrap_or_else(default_workers);
        ExecConfig {
            workers,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }

    /// An explicit worker count with the default morsel size.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig {
            workers: workers.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }

    /// Single-threaded execution (still morsel-at-a-time, so results
    /// match the parallel path exactly).
    #[must_use]
    pub fn serial() -> Self {
        Self::with_workers(1)
    }

    /// Number of morsels a scan of `rows` rows splits into.
    #[must_use]
    pub fn morsel_count(&self, rows: usize) -> usize {
        rows.div_ceil(self.morsel_rows.max(1))
    }
}

/// Parse a `SDBMS_WORKERS` value; `None` for empty/invalid/zero.
#[must_use]
pub fn parse_workers(s: &str) -> Option<usize> {
    match s.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One unit of scan work: a contiguous row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the morsel sequence (the merge order).
    pub index: usize,
    /// First row of the range.
    pub start: usize,
    /// Rows in the range.
    pub len: usize,
}

/// Run `work` over every morsel of a `rows`-row scan and return the
/// per-morsel results **in morsel order**.
///
/// Workers pull morsel indices from a shared atomic counter; each
/// result lands in its morsel's slot, so the returned vector is
/// independent of scheduling. On error the scan aborts early
/// (cooperatively — no worker blocks on another) and the error with
/// the smallest morsel index among those actually produced is
/// returned, so a given fault pattern fails the same way regardless of
/// interleaving where possible.
pub fn scan_morsels<T, E, F>(rows: usize, cfg: &ExecConfig, work: F) -> Result<Vec<T>, E>
where
    F: Fn(Morsel) -> Result<T, E> + Sync,
    T: Send,
    E: Send,
{
    let morsel_rows = cfg.morsel_rows.max(1);
    let n = cfg.morsel_count(rows);
    let morsel = |i: usize| Morsel {
        index: i,
        start: i * morsel_rows,
        len: morsel_rows.min(rows - i * morsel_rows),
    };
    let workers = cfg.workers.max(1).min(n.max(1));
    if workers == 1 {
        // Same morsel partition, same merge order — just no threads.
        return (0..n).map(|i| work(morsel(i))).collect();
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // The calling thread's ambient request budget (if any) is
    // re-installed in every worker, so a deadline caps the scan's
    // storage I/O no matter how many threads it fans out over.
    let ambient = ambient_token();
    let mut slots: Vec<Option<Result<T, E>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _budget = ambient.clone().map(BudgetScope::enter);
                    let mut produced: Vec<(usize, Result<T, E>)> = Vec::new();
                    // lint: allow(relaxed-ordering): abort is a best-effort shutdown hint; a stale read only costs one extra morsel, never correctness
                    while !abort.load(Ordering::Relaxed) {
                        // lint: allow(relaxed-ordering): ticket dispenser — fetch_add's RMW atomicity alone guarantees unique morsel indices
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = work(morsel(i));
                        if r.is_err() {
                            // lint: allow(relaxed-ordering): see abort load above; results travel through join, not this flag
                            abort.store(true, Ordering::Relaxed);
                        }
                        produced.push((i, r));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            // A panic in `work` propagates: the scan never silently
            // drops a morsel.
            // lint: allow(no-panic): deliberately re-raises a worker panic on the coordinator; swallowing it would drop morsels
            for (i, r) in h.join().expect("scan worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut first_err: Option<E> = None;
    for slot in slots {
        match slot {
            Some(Ok(v)) if first_err.is_none() => out.push(v),
            Some(Ok(_)) => {}
            Some(Err(e)) => {
                first_err.get_or_insert(e);
            }
            // Skipped after an abort; the recorded error is returned.
            None => {}
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// [`scan_morsels`] with an injectable [`CancelToken`]: the token is
/// checked once per morsel, *before* the morsel's work runs, and a
/// trip surfaces as a typed error (`E::from(CancelError)`) through the
/// same cooperative-abort machinery internal worker errors use — one
/// shared stop path for external cancellation, deadline exhaustion,
/// and engine errors. A cancelled scan therefore stops within one
/// in-flight morsel per worker and never returns a partial result:
/// the typed error wins, exactly like any other morsel error.
pub fn scan_morsels_with<T, E, F>(
    rows: usize,
    cfg: &ExecConfig,
    token: &CancelToken,
    work: F,
) -> Result<Vec<T>, E>
where
    F: Fn(Morsel) -> Result<T, E> + Sync,
    T: Send,
    E: Send + From<CancelError>,
{
    scan_morsels(rows, cfg, |m| {
        token.check().map_err(E::from)?;
        work(m)
    })
}

/// Single-pass, mergeable summary state for one column — the paper's
/// "one scan feeds min/max/mean/median-window/frequency" design.
///
/// Per-morsel profiles are built independently and merged in morsel
/// order, so a profile is a pure function of (column, morsel size):
/// bit-identical across worker counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnProfile {
    /// Values seen (including missing / non-numeric).
    pub rows: usize,
    /// Values with no numeric view (`Missing`, strings, codes).
    pub non_numeric: usize,
    /// Welford/Chan moments over the numeric values.
    pub moments: Moments,
    /// Extremes with occurrence counts.
    pub minmax: MinMaxAcc,
    /// Occurrence counts of every value (including `Missing`).
    pub freq: FrequencyTable,
    /// The numeric values in row order — exactly the slice the serial
    /// path hands to the quantile code, so order statistics computed
    /// from a profile are bit-identical to the serial computation.
    pub numbers: Vec<f64>,
}

impl ColumnProfile {
    /// Absorb `n` consecutive rows holding the same value — the
    /// compressed-domain entry point fed by `(value, run-length)`
    /// pairs off RLE/dictionary pages.
    ///
    /// Contract: feeding the runs of a sequence (under *any* partition
    /// into constant runs) produces a profile `==` to
    /// [`ColumnProfile::from_values`] on the expanded sequence. The
    /// frequency table and extremes fold whole runs in O(1); the
    /// moments deliberately replay per row (see
    /// [`Moments::add_run`]) and `numbers` keeps every row for the
    /// exact quantile path — so the win is skipping per-row `Value`
    /// decode, clone, `as_f64` dispatch, and frequency-map lookups,
    /// not the flops.
    pub fn add_run(&mut self, v: &Value, n: usize) {
        if n == 0 {
            return;
        }
        self.rows += n;
        self.freq.add_count(v, n as u64);
        match v.as_f64() {
            Some(x) => {
                self.moments.add_run(x, n);
                self.minmax.add_run(x, n);
                self.numbers.extend(std::iter::repeat_n(x, n));
            }
            None => self.non_numeric += n,
        }
    }

    /// Profile a morsel given as `(value, run-length)` pairs.
    #[must_use]
    pub fn from_runs(runs: &[(Value, usize)]) -> Self {
        let mut p = ColumnProfile::default();
        for (v, n) in runs {
            p.add_run(v, *n);
        }
        p
    }

    /// Profile one run of values (a morsel's partial state).
    #[must_use]
    pub fn from_values(values: &[Value]) -> Self {
        let mut p = ColumnProfile {
            numbers: Vec::with_capacity(values.len()),
            ..ColumnProfile::default()
        };
        for v in values {
            p.rows += 1;
            p.freq.add(v);
            match v.as_f64() {
                Some(x) => {
                    p.moments.add(x);
                    p.minmax.add(x);
                    p.numbers.push(x);
                }
                None => p.non_numeric += 1,
            }
        }
        p
    }

    /// Absorb the partial state of the *following* row range.
    /// Merging morsel profiles in morsel-index order reconstructs the
    /// whole-column profile.
    pub fn merge(&mut self, other: ColumnProfile) {
        self.rows += other.rows;
        self.non_numeric += other.non_numeric;
        self.moments.merge(&other.moments);
        self.minmax.merge(&other.minmax);
        self.freq.merge(&other.freq);
        self.numbers.extend(other.numbers);
    }
}

/// Parallel-scan a column supplied by a range reader, merging morsel
/// profiles in order. `read(start, len)` must return the values of
/// rows `start..start + len`.
pub fn profile_with<E, F>(rows: usize, cfg: &ExecConfig, read: F) -> Result<ColumnProfile, E>
where
    F: Fn(usize, usize) -> Result<Vec<Value>, E> + Sync,
    E: Send,
{
    let partials = scan_morsels(rows, cfg, |m| {
        Ok(ColumnProfile::from_values(&read(m.start, m.len)?))
    })?;
    let mut profile = ColumnProfile::default();
    for p in partials {
        profile.merge(p);
    }
    Ok(profile)
}

/// Parallel column read: morsels are fetched and decoded concurrently,
/// then concatenated in morsel order — the result is the same
/// `Vec<Value>` a serial `read_column` produces.
pub fn read_with<E, F>(rows: usize, cfg: &ExecConfig, read: F) -> Result<Vec<Value>, E>
where
    F: Fn(usize, usize) -> Result<Vec<Value>, E> + Sync,
    E: Send,
{
    let chunks = scan_morsels(rows, cfg, |m| read(m.start, m.len))?;
    let mut out = Vec::with_capacity(rows);
    for c in chunks {
        out.extend(c);
    }
    Ok(out)
}

/// Parallel [`TableStore::read_column`]: bit-identical output, morsel
/// fetches in parallel.
pub fn read_table_column<S>(
    store: &S,
    attribute: &str,
    cfg: &ExecConfig,
) -> sdbms_columnar::store::Result<Vec<Value>>
where
    S: TableStore + Sync + ?Sized,
{
    read_with(store.len(), cfg, |start, len| {
        store.read_column_range(attribute, start, len)
    })
}

/// Single-pass parallel profile of one stored column.
///
/// Each morsel is fetched as a typed [`sdbms_columnar::ColumnBatch`]
/// — decoded straight from segment bytes on segmented layouts, no
/// per-row `Value` materialization — and folded by the vectorized
/// [`kernels::add_batch`] kernel. The result is `==` to the scalar
/// path (`profile_with` over `read_column_range`) bit for bit, at
/// every worker count.
pub fn profile_table_column<S>(
    store: &S,
    attribute: &str,
    cfg: &ExecConfig,
) -> sdbms_columnar::store::Result<ColumnProfile>
where
    S: TableStore + Sync + ?Sized,
{
    let partials = scan_morsels(
        store.len(),
        cfg,
        |m| -> sdbms_columnar::store::Result<ColumnProfile> {
            let batch = store.read_column_batch(attribute, m.start, m.len)?;
            let mut p = ColumnProfile::default();
            kernels::add_batch(&mut p, &batch);
            Ok(p)
        },
    )?;
    let mut profile = ColumnProfile {
        // Upper bound (non-numeric rows contribute nothing); spares
        // the merge loop its reallocation copies.
        numbers: Vec::with_capacity(store.len()),
        ..ColumnProfile::default()
    };
    for p in partials {
        profile.merge(p);
    }
    Ok(profile)
}

/// Run-aware parallel profile of one stored column: each morsel is
/// consumed as `(value, run-length)` pairs straight off the encoded
/// pages, so RLE-friendly columns aggregate in O(runs) decode work
/// instead of O(rows). The result is `==` to
/// [`profile_table_column`] — run boundaries never show in the
/// profile.
pub fn profile_table_column_runs<S>(
    store: &S,
    attribute: &str,
    cfg: &ExecConfig,
) -> sdbms_columnar::store::Result<ColumnProfile>
where
    S: TableStore + Sync + ?Sized,
{
    let partials = scan_morsels(
        store.len(),
        cfg,
        |m| -> sdbms_columnar::store::Result<ColumnProfile> {
            Ok(ColumnProfile::from_runs(
                &store.read_column_runs(attribute, m.start, m.len)?,
            ))
        },
    )?;
    let mut profile = ColumnProfile::default();
    for p in partials {
        profile.merge(p);
    }
    Ok(profile)
}

/// Decides whether a scan morsel can be skipped outright.
///
/// Implementations answer "may any row in `[start, start + len)`
/// satisfy the predicate?" from per-segment statistics. The contract
/// is one-sided: returning `false` asserts **no** row matches (the
/// morsel is never read), while `true` merely schedules the morsel
/// for a normal scan. A pruner with no information must return
/// `true` — that degrades pruning to a plain scan, never changes
/// results.
pub trait SegmentPruner: Sync {
    /// True unless the statistics refute every row of the range.
    fn may_match(&self, start: usize, len: usize) -> bool;
}

/// The trivial pruner: every morsel is scanned.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPruner;

impl SegmentPruner for NoPruner {
    fn may_match(&self, _start: usize, _len: usize) -> bool {
        true
    }
}

/// [`filter_indices`] with zone-map pushdown: morsels the pruner
/// refutes contribute no indices and are never evaluated (no page
/// reads, no decode). Because refuted morsels by contract contain no
/// matching rows, the output is identical to the unpruned scan for
/// every worker count.
pub fn filter_indices_pruned<E, F, P>(
    rows: usize,
    cfg: &ExecConfig,
    pruner: &P,
    keep: F,
) -> Result<Vec<usize>, E>
where
    F: Fn(usize) -> Result<bool, E> + Sync,
    E: Send,
    P: SegmentPruner + ?Sized,
{
    let chunks = scan_morsels(rows, cfg, |m| {
        let mut hits = Vec::new();
        if !pruner.may_match(m.start, m.len) {
            return Ok(hits);
        }
        for i in m.start..m.start + m.len {
            if keep(i)? {
                hits.push(i);
            }
        }
        Ok(hits)
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

/// Profile an in-memory column (morsel-parallel over slices).
#[must_use]
pub fn profile_values(values: &[Value], cfg: &ExecConfig) -> ColumnProfile {
    let result: Result<ColumnProfile, std::convert::Infallible> =
        profile_with(values.len(), cfg, |start, len| {
            Ok(values[start..start + len].to_vec())
        });
    match result {
        Ok(p) => p,
        Err(never) => match never {},
    }
}

/// Parallel predicate filter over row indices: returns the indices
/// `0..rows` for which `keep` holds, in ascending order (per-morsel
/// matches concatenated in morsel order) — the scan side of a
/// relational selection.
pub fn filter_indices<E, F>(rows: usize, cfg: &ExecConfig, keep: F) -> Result<Vec<usize>, E>
where
    F: Fn(usize) -> Result<bool, E> + Sync,
    E: Send,
{
    let chunks = scan_morsels(rows, cfg, |m| {
        let mut hits = Vec::new();
        for i in m.start..m.start + m.len {
            if keep(i)? {
                hits.push(i);
            }
        }
        Ok(hits)
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_column(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| match i % 7 {
                0 => Value::Missing,
                1 => Value::Code(u32::try_from(i % 5).unwrap()),
                2 => Value::Float(i as f64 * 0.25 - 100.0),
                _ => Value::Int(i as i64 % 97 - 40),
            })
            .collect()
    }

    #[test]
    fn profiles_bit_identical_across_worker_counts() {
        let col = mixed_column(5000);
        let baseline = profile_values(&col, &ExecConfig::serial());
        for workers in [2, 3, 4, 8] {
            let p = profile_values(&col, &ExecConfig::with_workers(workers));
            assert_eq!(p, baseline, "{workers} workers");
        }
        // The profile agrees with a single straight pass.
        let whole = ColumnProfile::from_values(&col);
        assert_eq!(baseline.rows, whole.rows);
        assert_eq!(baseline.non_numeric, whole.non_numeric);
        assert_eq!(baseline.numbers, whole.numbers);
        assert_eq!(baseline.freq, whole.freq);
        assert_eq!(baseline.minmax, whole.minmax);
    }

    #[test]
    fn parallel_read_matches_serial_concatenation() {
        let col = mixed_column(3000);
        for workers in [1, 2, 4, 8] {
            let got: Vec<Value> = read_with::<std::convert::Infallible, _>(
                col.len(),
                &ExecConfig::with_workers(workers),
                |s, l| Ok(col[s..s + l].to_vec()),
            )
            .unwrap();
            assert_eq!(got, col, "{workers} workers");
        }
    }

    #[test]
    fn filter_indices_in_order() {
        let cfg = ExecConfig {
            workers: 4,
            morsel_rows: 64,
        };
        let idx: Vec<usize> =
            filter_indices::<std::convert::Infallible, _>(1000, &cfg, |i| Ok(i % 3 == 0)).unwrap();
        let expect: Vec<usize> = (0..1000).filter(|i| i % 3 == 0).collect();
        assert_eq!(idx, expect);
    }

    #[test]
    fn run_fed_profile_bit_identical_to_per_row() {
        let col = mixed_column(4000);
        let per_row = ColumnProfile::from_values(&col);
        // Partition into group_eq runs…
        let mut runs: Vec<(Value, usize)> = Vec::new();
        for v in &col {
            match runs.last_mut() {
                Some((rv, n)) if rv.group_eq(v) => *n += 1,
                _ => runs.push((v.clone(), 1)),
            }
        }
        assert_eq!(ColumnProfile::from_runs(&runs), per_row);
        // …and into an arbitrary different partition (every run split):
        let split: Vec<(Value, usize)> = col.iter().map(|v| (v.clone(), 1)).collect();
        assert_eq!(ColumnProfile::from_runs(&split), per_row);
        // Zero-length runs are no-ops.
        let mut p = ColumnProfile::from_runs(&runs);
        p.add_run(&Value::Int(1), 0);
        assert_eq!(p, per_row);
    }

    #[test]
    fn pruned_filter_skips_refuted_morsels_exactly() {
        struct EvenMorselsOnly {
            morsel_rows: usize,
        }
        impl SegmentPruner for EvenMorselsOnly {
            fn may_match(&self, start: usize, _len: usize) -> bool {
                (start / self.morsel_rows).is_multiple_of(2)
            }
        }
        let cfg = ExecConfig {
            workers: 4,
            morsel_rows: 100,
        };
        let evaluated = AtomicUsize::new(0);
        let pruner = EvenMorselsOnly { morsel_rows: 100 };
        let got: Vec<usize> =
            filter_indices_pruned::<std::convert::Infallible, _, _>(1000, &cfg, &pruner, |i| {
                evaluated.fetch_add(1, Ordering::Relaxed);
                Ok(i % 3 == 0)
            })
            .unwrap();
        // Exactly the even-morsel rows were evaluated…
        assert_eq!(evaluated.load(Ordering::Relaxed), 500);
        // …and the hits are the unpruned hits restricted to them.
        let expect: Vec<usize> = (0..1000)
            .filter(|i| (i / 100) % 2 == 0 && i % 3 == 0)
            .collect();
        assert_eq!(got, expect);
        // NoPruner reproduces plain filter_indices bit-for-bit.
        let plain: Vec<usize> =
            filter_indices::<std::convert::Infallible, _>(1000, &cfg, |i| Ok(i % 3 == 0)).unwrap();
        let nopruned: Vec<usize> =
            filter_indices_pruned::<std::convert::Infallible, _, _>(1000, &cfg, &NoPruner, |i| {
                Ok(i % 3 == 0)
            })
            .unwrap();
        assert_eq!(nopruned, plain);
    }

    #[test]
    fn error_aborts_scan_and_surfaces() {
        let cfg = ExecConfig {
            workers: 4,
            morsel_rows: 16,
        };
        let calls = AtomicUsize::new(0);
        let r: Result<Vec<()>, String> = scan_morsels(10_000, &cfg, |m| {
            calls.fetch_add(1, Ordering::Relaxed);
            if m.index >= 3 {
                Err(format!("morsel {} failed", m.index))
            } else {
                Ok(())
            }
        });
        let err = r.unwrap_err();
        assert!(err.starts_with("morsel "), "{err}");
        // Cooperative abort: nowhere near all 625 morsels ran.
        assert!(calls.load(Ordering::Relaxed) < 600);
    }

    #[test]
    fn cancelled_scan_stops_within_one_morsel_per_worker() {
        use sdbms_storage::StorageError;
        let cfg = ExecConfig {
            workers: 4,
            morsel_rows: 16,
        };
        let token = CancelToken::unbounded();
        let calls = AtomicUsize::new(0);
        // The very first morsel to run cancels the scan; everything
        // else must stop at its next per-morsel token check.
        let r: Result<Vec<()>, StorageError> = scan_morsels_with(10_000, &cfg, &token, |_m| {
            calls.fetch_add(1, Ordering::SeqCst);
            token.cancel();
            Ok(())
        });
        assert_eq!(r.unwrap_err(), StorageError::Cancelled);
        assert!(
            calls.load(Ordering::SeqCst) <= cfg.workers,
            "at most the one in-flight morsel per worker may finish, got {}",
            calls.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn op_budget_exhaustion_surfaces_typed_deadline_error() {
        use sdbms_storage::StorageError;
        for workers in [1, 4] {
            let cfg = ExecConfig {
                workers,
                morsel_rows: 16,
            };
            let token = CancelToken::with_op_budget(5);
            let r: Result<Vec<()>, StorageError> = scan_morsels_with(10_000, &cfg, &token, |_m| {
                token.consume_ops(2);
                Ok(())
            });
            assert_eq!(
                r.unwrap_err(),
                StorageError::DeadlineExceeded,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn workers_inherit_the_ambient_budget() {
        use sdbms_storage::budget::charge_ambient_ops;
        use sdbms_storage::StorageError;
        let cfg = ExecConfig {
            workers: 4,
            morsel_rows: 16,
        };
        let token = CancelToken::with_op_budget(10);
        let _scope = BudgetScope::enter(token);
        // Each morsel plays one device attempt on whatever worker
        // thread it lands on; the charges must reach the calling
        // thread's ambient budget or the scan would never trip.
        let r: Result<Vec<()>, StorageError> = scan_morsels(10_000, &cfg, |_m| {
            charge_ambient_ops(1)?;
            Ok(())
        });
        assert_eq!(r.unwrap_err(), StorageError::DeadlineExceeded);
    }

    #[test]
    fn serial_path_reports_first_error_in_order() {
        let r: Result<Vec<()>, usize> = scan_morsels(4096, &ExecConfig::serial(), |m| Err(m.index));
        assert_eq!(r.unwrap_err(), 0);
    }

    #[test]
    fn empty_scan_is_empty() {
        let p = profile_values(&[], &ExecConfig::with_workers(4));
        assert_eq!(p, ColumnProfile::default());
        assert_eq!(ExecConfig::with_workers(4).morsel_count(0), 0);
    }

    #[test]
    fn workers_env_parsing() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 2 "), Some(2));
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("many"), None);
        assert!(ExecConfig::with_workers(0).workers >= 1);
        assert!(ExecConfig::from_env().workers >= 1);
    }

    #[test]
    fn morsel_partition_is_worker_independent() {
        let cfg_a = ExecConfig {
            workers: 1,
            morsel_rows: 100,
        };
        let cfg_b = ExecConfig {
            workers: 8,
            morsel_rows: 100,
        };
        assert_eq!(cfg_a.morsel_count(1001), cfg_b.morsel_count(1001));
        assert_eq!(cfg_a.morsel_count(1001), 11);
    }
}
