//! Vectorized scan kernels over typed column batches.
//!
//! The scalar scan path decodes every cell into a heap `Value`, then
//! dispatches on its variant once per row. The kernels here consume
//! [`ColumnBatch`]es instead — typed slices plus a validity bitmap —
//! so the hot loops are monomorphic over `&[f64]` / `&[i64]` and the
//! compiler can unroll and vectorize them:
//!
//! - [`add_batch`] folds a batch into a [`ColumnProfile`], preferring
//!   the batch's run view (O(runs) frequency/extreme work) and falling
//!   back to tight typed per-row loops.
//! - [`KernelPredicate`] is a comparison tree over batch slots that
//!   evaluates to a *selection bitmap* (`Vec<u64>`, one bit per row)
//!   with branchless word-at-a-time accumulation.
//! - [`profile_selected`] fuses filter and aggregate: it folds exactly
//!   the selected rows of a batch into a profile in one pass, no
//!   intermediate index vector.
//!
//! Every kernel is bit-compatible with its scalar counterpart: a
//! profile built here is `==` to [`ColumnProfile::from_values`] on the
//! expanded values, and a predicate bitmap selects exactly the rows
//! [`BoundPredicate::eval`]-style semantics select (comparisons with a
//! missing operand are false, even `Ne`; `Not` is logical complement).
//! That equivalence is what lets the executor switch paths freely
//! without perturbing a single statistic.
//!
//! [`BoundPredicate::eval`]: https://docs.rs/ (see `sdbms-relational::expr`)

use std::cmp::Ordering;

use sdbms_columnar::{BatchValues, ColumnBatch};
use sdbms_data::Value;

use crate::{scan_morsels, ColumnProfile, ExecConfig, Morsel, SegmentPruner};

/// Number of `u64` words a `rows`-bit selection bitmap needs.
#[must_use]
pub fn selection_words(rows: usize) -> usize {
    rows.div_ceil(64)
}

/// Comparison operator of a [`KernelPredicate::Cmp`] node. The truth
/// table over a [`Value::total_cmp`] ordering matches the scalar
/// predicate evaluator exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCmp {
    /// Equal.
    Eq,
    /// Not equal (still false when the row is missing).
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl KernelCmp {
    /// Whether an ordering outcome satisfies the operator.
    #[must_use]
    pub fn holds(self, ord: Ordering) -> bool {
        match self {
            KernelCmp::Eq => ord == Ordering::Equal,
            KernelCmp::Ne => ord != Ordering::Equal,
            KernelCmp::Lt => ord == Ordering::Less,
            KernelCmp::Le => ord != Ordering::Greater,
            KernelCmp::Gt => ord == Ordering::Greater,
            KernelCmp::Ge => ord != Ordering::Less,
        }
    }
}

/// A predicate over the columns of one morsel, referencing batches by
/// slot index (the compiler from the relational layer assigns slots).
///
/// Missing semantics mirror the row-at-a-time evaluator: a `Cmp` whose
/// row value or literal is missing is false; `Not` is a plain logical
/// complement, so `Not(Cmp)` *selects* missing rows; `IsMissing` is
/// the validity complement.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelPredicate {
    /// Every row matches.
    True,
    /// The slot's value is missing in this row.
    IsMissing(usize),
    /// Compare the slot's value against a literal.
    Cmp {
        /// Batch slot of the column operand.
        col: usize,
        /// Comparison operator.
        op: KernelCmp,
        /// Literal operand (a missing literal matches nothing).
        lit: Value,
    },
    /// Both subpredicates hold.
    And(Box<KernelPredicate>, Box<KernelPredicate>),
    /// Either subpredicate holds.
    Or(Box<KernelPredicate>, Box<KernelPredicate>),
    /// The subpredicate does not hold.
    Not(Box<KernelPredicate>),
}

impl KernelPredicate {
    /// Evaluate to a selection bitmap over `rows` rows: bit `i` set ⟺
    /// row `i` matches. `cols[slot]` must hold the batch a
    /// `Cmp`/`IsMissing` node's slot refers to, each `rows` rows long.
    /// Tail bits past `rows` are always zero.
    #[must_use]
    pub fn eval(&self, cols: &[ColumnBatch], rows: usize) -> Vec<u64> {
        match self {
            KernelPredicate::True => {
                let mut out = vec![0u64; selection_words(rows)];
                set_bit_range(&mut out, 0, rows);
                out
            }
            KernelPredicate::IsMissing(slot) => {
                let mut out: Vec<u64> = cols[*slot].validity_words().to_vec();
                complement_in_place(&mut out, rows);
                out
            }
            KernelPredicate::Cmp { col, op, lit } => {
                let mut out = vec![0u64; selection_words(rows)];
                cmp_bitmap(&cols[*col], *op, lit, &mut out);
                out
            }
            KernelPredicate::And(a, b) => {
                let mut x = a.eval(cols, rows);
                let y = b.eval(cols, rows);
                for (xw, yw) in x.iter_mut().zip(&y) {
                    *xw &= *yw;
                }
                x
            }
            KernelPredicate::Or(a, b) => {
                let mut x = a.eval(cols, rows);
                let y = b.eval(cols, rows);
                for (xw, yw) in x.iter_mut().zip(&y) {
                    *xw |= *yw;
                }
                x
            }
            KernelPredicate::Not(p) => {
                let mut x = p.eval(cols, rows);
                complement_in_place(&mut x, rows);
                x
            }
        }
    }

    /// Batch slots the predicate reads, ascending and deduplicated —
    /// what a driver must fetch before calling [`KernelPredicate::eval`].
    #[must_use]
    pub fn referenced_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_slots(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_slots(&self, out: &mut Vec<usize>) {
        match self {
            KernelPredicate::True => {}
            KernelPredicate::IsMissing(s) => out.push(*s),
            KernelPredicate::Cmp { col, .. } => out.push(*col),
            KernelPredicate::And(a, b) | KernelPredicate::Or(a, b) => {
                a.collect_slots(out);
                b.collect_slots(out);
            }
            KernelPredicate::Not(p) => p.collect_slots(out),
        }
    }
}

/// Set bits `[start, end)` of a bitmap.
fn set_bit_range(out: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (sw, ew) = (start / 64, (end - 1) / 64);
    let smask = !0u64 << (start % 64);
    let emask = !0u64 >> (63 - (end - 1) % 64);
    if sw == ew {
        out[sw] |= smask & emask;
    } else {
        out[sw] |= smask;
        for w in &mut out[sw + 1..ew] {
            *w = !0;
        }
        out[ew] |= emask;
    }
}

/// Complement a bitmap in place, keeping tail bits past `rows` zero.
fn complement_in_place(words: &mut [u64], rows: usize) {
    for w in words.iter_mut() {
        *w = !*w;
    }
    if !rows.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (rows % 64)) - 1;
        }
    }
}

/// OR per-row predicate outcomes into `out`, masked by validity, one
/// 64-row word at a time. The inner loop is branch-free: the predicate
/// result becomes a bit via `u64::from`, so the compiler can keep the
/// whole word in a register (and vectorize `f` when it is a simple
/// slice compare).
fn fill_masked<F: Fn(usize) -> bool>(out: &mut [u64], validity: &[u64], rows: usize, f: F) {
    for (w, word) in out.iter_mut().enumerate() {
        let base = w * 64;
        let lanes = (rows - base).min(64);
        let mut m = 0u64;
        for j in 0..lanes {
            m |= u64::from(f(base + j)) << j;
        }
        *word |= m & validity[w];
    }
}

/// Evaluate `batch[i] op lit` into a selection bitmap. Missing rows
/// never match; a run view is evaluated once per run.
fn cmp_bitmap(batch: &ColumnBatch, op: KernelCmp, lit: &Value, out: &mut [u64]) {
    if lit.is_missing() {
        return; // eval: a missing operand makes every comparison false
    }
    if let Some(runs) = batch.run_lens() {
        let mut row = 0usize;
        for &n in runs {
            if batch.is_valid(row) && op.holds(batch.value_at(row).total_cmp(lit)) {
                set_bit_range(out, row, row + n);
            }
            row += n;
        }
        return;
    }
    let rows = batch.rows();
    let validity = batch.validity_words();
    match (batch.values(), lit) {
        (BatchValues::F64(xs), Value::Float(l)) => {
            fill_masked(out, validity, rows, |i| op.holds(xs[i].total_cmp(l)));
        }
        (BatchValues::F64(xs), Value::Int(l)) => {
            let lf = *l as f64;
            fill_masked(out, validity, rows, |i| op.holds(xs[i].total_cmp(&lf)));
        }
        (BatchValues::I64(xs), Value::Int(l)) => {
            fill_masked(out, validity, rows, |i| op.holds(xs[i].cmp(l)));
        }
        (BatchValues::I64(xs), Value::Float(l)) => {
            fill_masked(out, validity, rows, |i| {
                op.holds((xs[i] as f64).total_cmp(l))
            });
        }
        (BatchValues::Code(xs), Value::Code(l)) => {
            fill_masked(out, validity, rows, |i| op.holds(xs[i].cmp(l)));
        }
        (BatchValues::Other(vs), _) => {
            fill_masked(out, validity, rows, |i| op.holds(vs[i].total_cmp(lit)));
        }
        // A typed lane against a literal of another rank compares
        // constantly (total_cmp falls through to rank order), so one
        // probe row decides the outcome for every valid row.
        (BatchValues::F64(_) | BatchValues::I64(_) | BatchValues::Code(_), _) => {
            let probe = validity
                .iter()
                .enumerate()
                .find(|(_, w)| **w != 0)
                .map(|(w, word)| w * 64 + word.trailing_zeros() as usize);
            if let Some(i) = probe {
                if op.holds(batch.value_at(i).total_cmp(lit)) {
                    for (o, v) in out.iter_mut().zip(validity) {
                        *o |= *v;
                    }
                }
            }
        }
    }
}

/// Append the row indices a selection bitmap selects, offset by
/// `base`, in ascending order.
pub fn selection_to_indices(sel: &[u64], base: usize, out: &mut Vec<usize>) {
    for (w, &word) in sel.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            out.push(base + w * 64 + b);
        }
    }
}

/// Number of selected rows in a bitmap.
#[must_use]
pub fn selection_count(sel: &[u64]) -> usize {
    sel.iter().map(|w| w.count_ones() as usize).sum()
}

/// Fold one row of `batch` into `profile`, replaying exactly the
/// per-row steps of [`ColumnProfile::from_values`].
fn add_row(profile: &mut ColumnProfile, batch: &ColumnBatch, i: usize) {
    profile.rows += 1;
    if !batch.is_valid(i) {
        profile.freq.add(&Value::Missing);
        profile.non_numeric += 1;
        return;
    }
    match batch.values() {
        BatchValues::F64(xs) => {
            let x = xs[i];
            profile.freq.add(&Value::Float(x));
            profile.moments.add(x);
            profile.minmax.add(x);
            profile.numbers.push(x);
        }
        BatchValues::I64(xs) => {
            let v = xs[i];
            profile.freq.add(&Value::Int(v));
            let x = v as f64;
            profile.moments.add(x);
            profile.minmax.add(x);
            profile.numbers.push(x);
        }
        BatchValues::Code(xs) => {
            profile.freq.add(&Value::Code(xs[i]));
            profile.non_numeric += 1;
        }
        BatchValues::Other(vs) => {
            let v = &vs[i];
            profile.freq.add(v);
            match v.as_f64() {
                Some(x) => {
                    profile.moments.add(x);
                    profile.minmax.add(x);
                    profile.numbers.push(x);
                }
                None => profile.non_numeric += 1,
            }
        }
    }
}

/// Fold a whole batch into `profile`. The result equals feeding
/// [`ColumnBatch::to_values`] through [`ColumnProfile::from_values`]
/// — without materializing a single `Value` for typed lanes. A run
/// view folds in O(runs) frequency/extreme updates; the all-valid
/// float lane is a branch-free slice loop.
pub fn add_batch(profile: &mut ColumnProfile, batch: &ColumnBatch) {
    if let Some(runs) = batch.run_lens() {
        let mut row = 0usize;
        for &n in runs {
            // One stack Value per run; the run-fed profile contract
            // guarantees equality with the per-row replay.
            profile.add_run(&batch.value_at(row), n);
            row += n;
        }
        return;
    }
    match batch.values() {
        BatchValues::F64(xs) if batch.all_valid() => {
            profile.rows += xs.len();
            profile.numbers.reserve(xs.len());
            for &x in xs {
                profile.moments.add(x);
                profile.minmax.add(x);
                profile.numbers.push(x);
            }
            // Frequency counts are additive, so equal keys can be
            // collapsed before touching the tree: sort by the same
            // total order the table is keyed on, then one
            // `add_count` per distinct value.
            let mut sorted = xs.to_vec();
            sorted.sort_unstable_by(f64::total_cmp);
            let mut i = 0;
            while i < sorted.len() {
                let x = sorted[i];
                let mut j = i + 1;
                while j < sorted.len() && sorted[j].to_bits() == x.to_bits() {
                    j += 1;
                }
                profile.freq.add_count(&Value::Float(x), (j - i) as u64);
                i = j;
            }
        }
        BatchValues::I64(xs) if batch.all_valid() => {
            profile.rows += xs.len();
            profile.numbers.reserve(xs.len());
            let (mut lo, mut hi) = (i64::MAX, i64::MIN);
            for &v in xs {
                lo = lo.min(v);
                hi = hi.max(v);
                let x = v as f64;
                profile.moments.add(x);
                profile.minmax.add(x);
                profile.numbers.push(x);
            }
            // Narrow value ranges (codes, block ids) take a counting
            // pass instead of a sort: one bucket per possible value.
            let width = hi.checked_sub(lo).and_then(|w| w.checked_add(1));
            match width {
                Some(w) if !xs.is_empty() && w <= 65_536 => {
                    let mut counts = vec![0u64; w as usize];
                    for &v in xs {
                        counts[(v - lo) as usize] += 1;
                    }
                    for (off, &n) in counts.iter().enumerate() {
                        if n > 0 {
                            profile.freq.add_count(&Value::Int(lo + off as i64), n);
                        }
                    }
                }
                _ => {
                    let mut sorted = xs.to_vec();
                    sorted.sort_unstable();
                    let mut i = 0;
                    while i < sorted.len() {
                        let v = sorted[i];
                        let mut j = i + 1;
                        while j < sorted.len() && sorted[j] == v {
                            j += 1;
                        }
                        profile.freq.add_count(&Value::Int(v), (j - i) as u64);
                        i = j;
                    }
                }
            }
        }
        _ => {
            for i in 0..batch.rows() {
                add_row(profile, batch, i);
            }
        }
    }
}

/// Fused filter + aggregate: fold exactly the rows a selection bitmap
/// selects into `profile`, equal to running
/// [`ColumnProfile::from_values`] over the selected subsequence. One
/// pass, no index vector, no `Value` decode for typed lanes.
pub fn profile_selected(batch: &ColumnBatch, sel: &[u64], profile: &mut ColumnProfile) {
    debug_assert!(sel.len() >= selection_words(batch.rows()));
    for (w, &word) in sel.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            add_row(profile, batch, w * 64 + b);
        }
    }
}

/// Morsel-parallel batch filter with zone-map pushdown: the ascending
/// row indices matching `pred`, identical at every worker count.
/// `fetch(m)` returns the predicate's column batches for morsel `m`,
/// indexed by the slots `pred` references; refuted morsels are skipped
/// before any fetch.
pub fn filter_batches_pruned<E, F, P>(
    rows: usize,
    cfg: &ExecConfig,
    pruner: &P,
    pred: &KernelPredicate,
    fetch: F,
) -> Result<Vec<usize>, E>
where
    F: Fn(Morsel) -> Result<Vec<ColumnBatch>, E> + Sync,
    E: Send,
    P: SegmentPruner + ?Sized,
{
    let chunks = scan_morsels(rows, cfg, |m| {
        let mut hits = Vec::new();
        if !pruner.may_match(m.start, m.len) {
            return Ok(hits);
        }
        // An always-true predicate selects the whole morsel; skip the
        // fetch and the bitmap and emit the index range directly.
        if matches!(pred, KernelPredicate::True) {
            hits.extend(m.start..m.start + m.len);
            return Ok(hits);
        }
        let cols = fetch(m)?;
        let sel = pred.eval(&cols, m.len);
        hits.reserve_exact(selection_count(&sel));
        selection_to_indices(&sel, m.start, &mut hits);
        Ok(hits)
    })?;
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend(c);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoPruner;

    /// Bit-exact profile equality. `ColumnProfile`'s derived
    /// `PartialEq` says NaN ≠ NaN, so profiles over data containing
    /// NaN compare unequal to *themselves*; this compares float state
    /// by bit pattern and frequency keys by `group_eq` instead.
    fn profile_bits_eq(a: &ColumnProfile, b: &ColumnProfile) -> bool {
        let (an, amean, am2) = a.moments.parts();
        let (bn, bmean, bm2) = b.moments.parts();
        let key = |p: Option<(f64, u64, f64, u64)>| {
            p.map(|(lo, lc, hi, hc)| (lo.to_bits(), lc, hi.to_bits(), hc))
        };
        let af: Vec<_> = a.freq.entries().collect();
        let bf: Vec<_> = b.freq.entries().collect();
        a.rows == b.rows
            && a.non_numeric == b.non_numeric
            && an == bn
            && amean.to_bits() == bmean.to_bits()
            && am2.to_bits() == bm2.to_bits()
            && key(a.minmax.parts()) == key(b.minmax.parts())
            && af.len() == bf.len()
            && af
                .iter()
                .zip(&bf)
                .all(|((va, ca), (vb, cb))| va.group_eq(vb) && ca == cb)
            && a.numbers.len() == b.numbers.len()
            && a.numbers
                .iter()
                .zip(&b.numbers)
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// Scalar reference evaluator with the exact row-at-a-time
    /// semantics the kernels must reproduce.
    fn scalar_eval(pred: &KernelPredicate, cols: &[Vec<Value>], i: usize) -> bool {
        match pred {
            KernelPredicate::True => true,
            KernelPredicate::IsMissing(s) => cols[*s][i].is_missing(),
            KernelPredicate::Cmp { col, op, lit } => {
                let v = &cols[*col][i];
                if v.is_missing() || lit.is_missing() {
                    return false;
                }
                op.holds(v.total_cmp(lit))
            }
            KernelPredicate::And(a, b) => scalar_eval(a, cols, i) && scalar_eval(b, cols, i),
            KernelPredicate::Or(a, b) => scalar_eval(a, cols, i) || scalar_eval(b, cols, i),
            KernelPredicate::Not(p) => !scalar_eval(p, cols, i),
        }
    }

    fn assert_bitmap_matches_scalar(pred: &KernelPredicate, cols: &[Vec<Value>]) {
        let rows = cols.first().map_or(0, Vec::len);
        let batches: Vec<ColumnBatch> = cols.iter().map(|c| ColumnBatch::from_values(c)).collect();
        let sel = pred.eval(&batches, rows);
        let mut got = Vec::new();
        selection_to_indices(&sel, 0, &mut got);
        let expect: Vec<usize> = (0..rows).filter(|&i| scalar_eval(pred, cols, i)).collect();
        assert_eq!(got, expect, "{pred:?}");
        assert_eq!(selection_count(&sel), expect.len());
        // Tail bits past `rows` stay clear.
        if !rows.is_multiple_of(64) {
            assert_eq!(sel.last().unwrap() >> (rows % 64), 0, "tail bits set");
        }
    }

    fn cmp(col: usize, op: KernelCmp, lit: Value) -> KernelPredicate {
        KernelPredicate::Cmp { col, op, lit }
    }

    fn mixed_float_col(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| match i % 9 {
                0 => Value::Missing,
                3 => Value::Float(f64::NAN),
                6 => Value::Float(-0.0),
                _ => Value::Float(i as f64 * 0.5 - 40.0),
            })
            .collect()
    }

    fn int_col(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                if i % 11 == 5 {
                    Value::Missing
                } else {
                    Value::Int(i as i64 % 50 - 25)
                }
            })
            .collect()
    }

    fn code_col(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| {
                if i % 13 == 1 {
                    Value::Missing
                } else {
                    Value::Code(u32::try_from(i % 4).unwrap())
                }
            })
            .collect()
    }

    const ALL_OPS: [KernelCmp; 6] = [
        KernelCmp::Eq,
        KernelCmp::Ne,
        KernelCmp::Lt,
        KernelCmp::Le,
        KernelCmp::Gt,
        KernelCmp::Ge,
    ];

    #[test]
    fn cmp_bitmaps_match_scalar_on_every_lane_and_op() {
        let floats = mixed_float_col(333);
        let ints = int_col(333);
        let codes = code_col(333);
        let cols = vec![floats, ints, codes];
        for op in ALL_OPS {
            assert_bitmap_matches_scalar(&cmp(0, op, Value::Float(-1.5)), &cols);
            assert_bitmap_matches_scalar(&cmp(0, op, Value::Int(3)), &cols);
            assert_bitmap_matches_scalar(&cmp(0, op, Value::Float(f64::NAN)), &cols);
            assert_bitmap_matches_scalar(&cmp(1, op, Value::Int(0)), &cols);
            assert_bitmap_matches_scalar(&cmp(1, op, Value::Float(0.5)), &cols);
            assert_bitmap_matches_scalar(&cmp(2, op, Value::Code(2)), &cols);
        }
    }

    #[test]
    fn cross_rank_literals_compare_constantly() {
        let cols = vec![int_col(100), code_col(100)];
        for op in ALL_OPS {
            // Int lane vs Str / Code literals: rank order decides.
            assert_bitmap_matches_scalar(&cmp(0, op, Value::Str("x".into())), &cols);
            assert_bitmap_matches_scalar(&cmp(0, op, Value::Code(1)), &cols);
            // Code lane vs numeric / string literals.
            assert_bitmap_matches_scalar(&cmp(1, op, Value::Int(2)), &cols);
            assert_bitmap_matches_scalar(&cmp(1, op, Value::Str("x".into())), &cols);
        }
    }

    #[test]
    fn missing_literal_matches_nothing_even_negated() {
        let cols = vec![int_col(90)];
        for op in ALL_OPS {
            assert_bitmap_matches_scalar(&cmp(0, op, Value::Missing), &cols);
        }
        // NOT (x = Missing) selects every row — including missing ones.
        let not = KernelPredicate::Not(Box::new(cmp(0, KernelCmp::Eq, Value::Missing)));
        assert_bitmap_matches_scalar(&not, &cols);
    }

    #[test]
    fn connectives_and_is_missing_match_scalar() {
        let cols = vec![mixed_float_col(257), int_col(257)];
        let p = KernelPredicate::And(
            Box::new(cmp(0, KernelCmp::Ge, Value::Float(-10.0))),
            Box::new(KernelPredicate::Not(Box::new(cmp(
                1,
                KernelCmp::Gt,
                Value::Int(10),
            )))),
        );
        assert_bitmap_matches_scalar(&p, &cols);
        let q = KernelPredicate::Or(
            Box::new(KernelPredicate::IsMissing(0)),
            Box::new(cmp(1, KernelCmp::Eq, Value::Int(-25))),
        );
        assert_bitmap_matches_scalar(&q, &cols);
        assert_bitmap_matches_scalar(&KernelPredicate::True, &cols);
        assert_bitmap_matches_scalar(&KernelPredicate::IsMissing(1), &cols);
        assert_eq!(p.referenced_slots(), vec![0, 1]);
        assert_eq!(
            KernelPredicate::True.referenced_slots(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn run_view_cmp_matches_per_row() {
        // A batch built from runs keeps its run view; the bitmap must
        // still equal the per-row evaluation of the expansion.
        let mut batch = ColumnBatch::new();
        let runs: [(Value, usize); 6] = [
            (Value::Code(1), 70),
            (Value::Missing, 3),
            (Value::Code(3), 130),
            (Value::Code(1), 1),
            (Value::Missing, 64),
            (Value::Code(0), 12),
        ];
        for (v, n) in &runs {
            batch.push_run(v, *n);
        }
        assert!(batch.run_lens().is_some());
        let expanded = batch.to_values();
        let cols = vec![expanded];
        for op in ALL_OPS {
            let pred = cmp(0, op, Value::Code(1));
            let sel = pred.eval(std::slice::from_ref(&batch), batch.rows());
            let mut got = Vec::new();
            selection_to_indices(&sel, 0, &mut got);
            let expect: Vec<usize> = (0..batch.rows())
                .filter(|&i| scalar_eval(&pred, &cols, i))
                .collect();
            assert_eq!(got, expect, "{op:?}");
        }
    }

    #[test]
    fn add_batch_equals_from_values() {
        for col in [
            mixed_float_col(1000),
            int_col(1000),
            code_col(1000),
            Vec::new(),
            vec![Value::Missing; 130],
            vec![
                Value::Str("a".into()),
                Value::Int(3),
                Value::Missing,
                Value::Float(f64::NAN),
            ],
        ] {
            let expect = ColumnProfile::from_values(&col);
            let batch = ColumnBatch::from_values(&col);
            let mut got = ColumnProfile::default();
            add_batch(&mut got, &batch);
            assert!(profile_bits_eq(&got, &expect), "{col:?}");
        }
    }

    #[test]
    fn add_batch_uses_run_view_identically() {
        let mut batch = ColumnBatch::new();
        batch.push_run(&Value::Int(7), 100);
        batch.push_run(&Value::Missing, 30);
        batch.push_run(&Value::Float(2.5), 65);
        batch.push_run(&Value::Int(7), 1);
        let expect = ColumnProfile::from_values(&batch.to_values());
        let mut got = ColumnProfile::default();
        add_batch(&mut got, &batch);
        assert_eq!(got, expect);
    }

    #[test]
    fn profile_selected_equals_scalar_subsequence() {
        let col = mixed_float_col(500);
        let batch = ColumnBatch::from_values(&col);
        let pred = cmp(0, KernelCmp::Lt, Value::Float(0.0));
        let sel = pred.eval(std::slice::from_ref(&batch), batch.rows());
        let cols = vec![col.clone()];
        let selected: Vec<Value> = (0..col.len())
            .filter(|&i| scalar_eval(&pred, &cols, i))
            .map(|i| col[i].clone())
            .collect();
        let expect = ColumnProfile::from_values(&selected);
        let mut got = ColumnProfile::default();
        profile_selected(&batch, &sel, &mut got);
        assert!(profile_bits_eq(&got, &expect));
        // An all-false selection folds nothing.
        let none = vec![0u64; selection_words(batch.rows())];
        let mut empty = ColumnProfile::default();
        profile_selected(&batch, &none, &mut empty);
        assert_eq!(empty, ColumnProfile::default());
    }

    #[test]
    fn filter_batches_pruned_matches_scalar_filter_at_every_worker_count() {
        let floats = mixed_float_col(5000);
        let ints = int_col(5000);
        let cols = vec![floats.clone(), ints.clone()];
        let pred = KernelPredicate::Or(
            Box::new(cmp(0, KernelCmp::Ge, Value::Float(10.0))),
            Box::new(KernelPredicate::And(
                Box::new(cmp(1, KernelCmp::Le, Value::Int(0))),
                Box::new(KernelPredicate::Not(Box::new(KernelPredicate::IsMissing(
                    0,
                )))),
            )),
        );
        let expect: Vec<usize> = (0..5000)
            .filter(|&i| scalar_eval(&pred, &cols, i))
            .collect();
        for workers in [1, 2, 4, 8] {
            let cfg = ExecConfig {
                workers,
                morsel_rows: 256,
            };
            let got = filter_batches_pruned::<std::convert::Infallible, _, _>(
                5000,
                &cfg,
                &NoPruner,
                &pred,
                |m| {
                    Ok(vec![
                        ColumnBatch::from_values(&floats[m.start..m.start + m.len]),
                        ColumnBatch::from_values(&ints[m.start..m.start + m.len]),
                    ])
                },
            )
            .unwrap();
            assert_eq!(got, expect, "{workers} workers");
        }
    }

    #[test]
    fn selection_helpers_round_trip() {
        let mut sel = vec![0u64; selection_words(150)];
        set_bit_range(&mut sel, 0, 3);
        set_bit_range(&mut sel, 63, 65);
        set_bit_range(&mut sel, 149, 150);
        set_bit_range(&mut sel, 10, 10); // empty range: no-op
        let mut idx = Vec::new();
        selection_to_indices(&sel, 1000, &mut idx);
        assert_eq!(idx, vec![1000, 1001, 1002, 1063, 1064, 1149]);
        assert_eq!(selection_count(&sel), 6);
        complement_in_place(&mut sel, 150);
        assert_eq!(selection_count(&sel), 150 - 6);
    }

    proptest::proptest! {
        /// Random data, random comparison: bitmap == scalar filter.
        #[test]
        fn prop_cmp_bitmap_matches_scalar(
            vals in proptest::collection::vec((0u8..5, -60i64..60), 0..300),
            op_i in 0usize..6,
            lit_kind in 0u8..5,
            lit_x in -70i64..70,
        ) {
            let col: Vec<Value> = vals
                .iter()
                .map(|&(k, x)| match k {
                    0 => Value::Missing,
                    1 => Value::Int(x),
                    2 => {
                        if x % 13 == 0 {
                            Value::Float(f64::NAN)
                        } else {
                            Value::Float(x as f64 / 4.0)
                        }
                    }
                    3 => Value::Code(x.unsigned_abs() as u32 % 8),
                    _ => Value::Str(format!("s{}", x % 6)),
                })
                .collect();
            let lit = match lit_kind {
                0 => Value::Missing,
                1 => Value::Int(lit_x),
                2 => Value::Float(lit_x as f64 / 4.0),
                3 => Value::Code(lit_x.unsigned_abs() as u32 % 8),
                _ => Value::Str(format!("s{}", lit_x % 6)),
            };
            let pred = KernelPredicate::Cmp { col: 0, op: ALL_OPS[op_i], lit };
            let cols = vec![col];
            let batch = ColumnBatch::from_values(&cols[0]);
            let sel = pred.eval(std::slice::from_ref(&batch), batch.rows());
            let mut got = Vec::new();
            selection_to_indices(&sel, 0, &mut got);
            let expect: Vec<usize> =
                (0..cols[0].len()).filter(|&i| scalar_eval(&pred, &cols, i)).collect();
            proptest::prop_assert_eq!(got, expect);
            // And the fused aggregate over that selection equals the
            // scalar profile of the selected subsequence.
            let selected: Vec<Value> = expect.iter().map(|&i| cols[0][i].clone()).collect();
            let want = ColumnProfile::from_values(&selected);
            let mut fused = ColumnProfile::default();
            profile_selected(&batch, &sel, &mut fused);
            proptest::prop_assert!(profile_bits_eq(&fused, &want));
        }
    }
}
