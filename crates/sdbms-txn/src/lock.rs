//! The per-view lock table: writer/writer and writer/repair
//! coordination with deadlock avoidance by construction.
//!
//! One exclusive lock class guards each view name. Update batches,
//! legacy `update_where` sections, the background scrubber, and
//! `repair_view` all acquire it, so a repair can never race an
//! in-flight batch. Two properties make the table deadlock-free:
//!
//! 1. **Try-lock only.** [`LockTable::acquire`] never blocks; a
//!    conflict returns [`LockError::Conflict`] immediately and the
//!    caller decides (fail the call, skip the view, retry later). No
//!    waiting means no wait-for cycle.
//! 2. **Ordered acquisition.** A session extending its lock set must
//!    do so in ascending view-name order; acquiring below its current
//!    maximum is rejected as [`LockError::OrderViolation`]. Even if a
//!    blocking mode were ever added, the ordering discipline keeps the
//!    schedule space cycle-free. The `txn-lock-order` lint enforces
//!    that library code goes through [`LockTable::acquire`] (which
//!    checks the order) rather than [`LockTable::acquire_raw`] (which
//!    does not).
//!
//! A third property matters to the request-lifecycle work (DESIGN.md
//! §16): locks release on **drop**, not on an explicit unlock call, so
//! a cooperative deadline/cancellation trip — which surfaces as an
//! ordinary `Err` unwinding out of the batch — releases every view
//! lock through the same [`LockGuard`] destructor a successful commit
//! uses. Budget errors are deliberately *not* treated as crashes
//! anywhere in the stack, so a cancelled batch can never strand a
//! view lock or require recovery to free it.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A logical analyst session (an open batch, a scrub pass, a repair).
pub type SessionId = u64;

/// Why a lock acquisition failed. Acquisition never blocks, so these
/// are the only outcomes besides success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Another session holds the lock.
    Conflict {
        /// The contended view name.
        resource: String,
        /// The session holding it.
        holder: SessionId,
    },
    /// The session tried to extend its lock set out of ascending
    /// order, which the deadlock-avoidance discipline forbids.
    OrderViolation {
        /// The view the session tried to lock.
        resource: String,
        /// The highest name the session already holds.
        held_max: String,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Conflict { resource, holder } => {
                write!(f, "view {resource:?} is locked by session {holder}")
            }
            LockError::OrderViolation { resource, held_max } => write!(
                f,
                "locking {resource:?} after {held_max:?} violates ordered acquisition"
            ),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Default)]
struct LockInner {
    /// View name → holding session.
    held: HashMap<String, SessionId>,
    /// Session → the names it holds (sorted, for the order check).
    by_session: HashMap<SessionId, BTreeSet<String>>,
}

/// The shared lock table (one per DBMS).
#[derive(Default)]
pub struct LockTable {
    next_session: AtomicU64,
    inner: Mutex<LockInner>,
}

impl fmt::Debug for LockTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LockTable")
            .field("held", &inner.held.len())
            .finish()
    }
}

impl LockTable {
    /// A fresh, empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint a new session id.
    pub fn session(&self) -> SessionId {
        // lint: allow(relaxed-ordering): a unique-id counter needs atomicity only
        self.next_session.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Which session holds `resource`, if any.
    #[must_use]
    pub fn holder(&self, resource: &str) -> Option<SessionId> {
        self.inner.lock().held.get(resource).copied()
    }

    /// Try to take the exclusive lock on each of `resources` for
    /// `session`, all or nothing. The set is sorted internally;
    /// ordered-acquisition requires every new name to sort strictly
    /// after anything the session already holds. Never blocks.
    pub fn acquire(
        self: &Arc<Self>,
        session: SessionId,
        resources: &[&str],
    ) -> Result<LockGuard, LockError> {
        let mut names: Vec<String> = resources.iter().map(ToString::to_string).collect();
        names.sort_unstable();
        names.dedup();
        let mut inner = self.inner.lock();
        if let Some(held_max) = inner
            .by_session
            .get(&session)
            .and_then(|s| s.iter().next_back())
        {
            if let Some(first) = names.first() {
                if first <= held_max {
                    return Err(LockError::OrderViolation {
                        resource: first.clone(),
                        held_max: held_max.clone(),
                    });
                }
            }
        }
        for n in &names {
            if let Some(&holder) = inner.held.get(n) {
                if holder != session {
                    return Err(LockError::Conflict {
                        resource: n.clone(),
                        holder,
                    });
                }
            }
        }
        for n in &names {
            inner.held.insert(n.clone(), session);
            inner
                .by_session
                .entry(session)
                .or_default()
                .insert(n.clone());
        }
        Ok(LockGuard {
            table: Arc::clone(self),
            session,
            resources: names,
        })
    }

    /// Take one lock with **no ordered-acquisition check**. This is
    /// the raw primitive [`LockTable::acquire`] is built on; calling
    /// it from library code is flagged by the `txn-lock-order` lint
    /// because it can create lock-order cycles under composition.
    pub fn acquire_raw(
        self: &Arc<Self>,
        session: SessionId,
        resource: &str,
    ) -> Result<LockGuard, LockError> {
        let mut inner = self.inner.lock();
        if let Some(&holder) = inner.held.get(resource) {
            if holder != session {
                return Err(LockError::Conflict {
                    resource: resource.to_string(),
                    holder,
                });
            }
        }
        inner.held.insert(resource.to_string(), session);
        inner
            .by_session
            .entry(session)
            .or_default()
            .insert(resource.to_string());
        Ok(LockGuard {
            table: Arc::clone(self),
            session,
            resources: vec![resource.to_string()],
        })
    }

    fn release(&self, session: SessionId, resources: &[String]) {
        let mut inner = self.inner.lock();
        for n in resources {
            if inner.held.get(n) == Some(&session) {
                inner.held.remove(n);
            }
            if let Some(set) = inner.by_session.get_mut(&session) {
                set.remove(n);
                if set.is_empty() {
                    inner.by_session.remove(&session);
                }
            }
        }
    }
}

/// Holds a set of view locks for one session; releases them on drop.
pub struct LockGuard {
    table: Arc<LockTable>,
    session: SessionId,
    resources: Vec<String>,
}

impl LockGuard {
    /// The owning session.
    #[must_use]
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The locked view names, ascending.
    #[must_use]
    pub fn resources(&self) -> &[String] {
        &self.resources
    }
}

impl fmt::Debug for LockGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockGuard")
            .field("session", &self.session)
            .field("resources", &self.resources)
            .finish()
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.table.release(self.session, &self.resources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<LockTable> {
        Arc::new(LockTable::new())
    }

    #[test]
    fn exclusive_conflict_and_release() {
        let t = table();
        let (a, b) = (t.session(), t.session());
        let guard = t.acquire(a, &["v"]).unwrap();
        let err = t.acquire(b, &["v"]).unwrap_err();
        assert_eq!(
            err,
            LockError::Conflict {
                resource: "v".into(),
                holder: a
            }
        );
        drop(guard);
        t.acquire(b, &["v"]).unwrap();
    }

    #[test]
    fn reacquire_by_holder_is_fine() {
        let t = table();
        let a = t.session();
        let _g1 = t.acquire(a, &["p"]).unwrap();
        // Extending upward in order is allowed, including names the
        // session already holds within the same call.
        let _g2 = t.acquire(a, &["q", "r"]).unwrap();
    }

    #[test]
    fn ordered_acquisition_enforced() {
        let t = table();
        let a = t.session();
        let _g = t.acquire(a, &["m"]).unwrap();
        let err = t.acquire(a, &["c"]).unwrap_err();
        assert!(matches!(err, LockError::OrderViolation { .. }), "{err:?}");
        // acquire_raw skips the check (and the lint flags its use).
        let _raw = t.acquire_raw(a, "c").unwrap();
    }

    #[test]
    fn multi_view_acquire_is_all_or_nothing() {
        let t = table();
        let (a, b) = (t.session(), t.session());
        let _held = t.acquire(b, &["y"]).unwrap();
        let err = t.acquire(a, &["x", "y", "z"]).unwrap_err();
        assert!(matches!(err, LockError::Conflict { .. }));
        assert_eq!(t.holder("x"), None, "nothing was taken on conflict");
        assert_eq!(t.holder("z"), None);
    }

    #[test]
    fn guard_drop_releases_everything() {
        let t = table();
        let a = t.session();
        let g = t.acquire(a, &["a", "b"]).unwrap();
        assert_eq!(g.resources(), &["a".to_string(), "b".to_string()]);
        drop(g);
        assert_eq!(t.holder("a"), None);
        assert_eq!(t.holder("b"), None);
        // With nothing held, the order check resets.
        let _g = t.acquire(a, &["a"]).unwrap();
    }

    #[test]
    fn cancelled_batch_releases_locks_through_normal_unwind() {
        // Stand-in for a deadline/cancellation trip mid-batch: the
        // budget error is an ordinary `Err`, so the guard's drop runs
        // exactly as it would on success and nothing stays locked.
        let t = table();
        let a = t.session();
        let cancelled_batch = |t: &Arc<LockTable>| -> Result<(), &'static str> {
            let _guard = t.acquire(a, &["u", "v"]).unwrap();
            Err("deadline exceeded")
        };
        assert!(cancelled_batch(&t).is_err());
        assert_eq!(t.holder("u"), None, "cancellation released the locks");
        assert_eq!(t.holder("v"), None);
        // A fresh session can take the views immediately: no repair or
        // recovery step is needed to clear a cancelled batch.
        let b = t.session();
        let _g = t.acquire(b, &["u", "v"]).unwrap();
    }

    #[test]
    fn sessions_are_unique_across_threads() {
        let t = table();
        let mut ids = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let t = Arc::clone(&t);
                    s.spawn(move || (0..100).map(|_| t.session()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        });
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
