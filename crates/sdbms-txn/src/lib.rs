//! # sdbms-txn — epochs and locks for multi-analyst sessions
//!
//! The paper's workload is many analysts sharing long-lived cleaned
//! views. Two small primitives make that safe without ever blocking a
//! reader:
//!
//! - [`EpochRegistry`] — epoch-based reclamation. A reader opening a
//!   snapshot takes an [`EpochPin`]; a writer installing a new view
//!   version *retires* the old one with a deferred destructor that
//!   runs only once every pin taken before the retirement has been
//!   dropped. Readers therefore never observe a freed page, and
//!   writers never wait for readers.
//! - [`LockTable`] — a try-lock table over view names coordinating
//!   writer/writer and writer/repair. Acquisition never blocks
//!   (conflicts surface as [`LockError::Conflict`] immediately), and
//!   multi-view acquisition is forced into ascending name order
//!   ([`LockError::OrderViolation`] otherwise), so the schedule space
//!   contains no deadlock by construction.
//!
//! Both structures are `Send + Sync`; the DBMS shares one of each
//! across every view.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod epoch;
pub mod lock;

pub use epoch::{EpochPin, EpochRegistry};
pub use lock::{LockError, LockGuard, LockTable, SessionId};
