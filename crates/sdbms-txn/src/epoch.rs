//! Epoch-based reclamation for snapshot-pinned view versions.
//!
//! The registry keeps a global epoch counter, a multiset of pinned
//! epochs (one entry per live [`EpochPin`]), and a retire list of
//! deferred actions. Retiring a version records its destructor at the
//! current epoch and bumps the counter; the destructor runs as soon as
//! every pin older than the retirement is gone. Reclamation is
//! attempted whenever a pin drops or a version is retired, so the
//! retire list never grows without bound while the system quiesces.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// A deferred destructor for a retired view version (typically: free
/// the version's pages back to the buffer pool and drop the store).
type RetireAction = Box<dyn FnOnce() + Send>;

struct Retired {
    epoch: u64,
    action: RetireAction,
}

#[derive(Default)]
struct EpochInner {
    /// Monotone global epoch. Bumped on every retirement.
    epoch: u64,
    /// Multiset of pinned epochs: epoch → live pin count.
    pins: BTreeMap<u64, usize>,
    /// Deferred destructors, oldest first.
    retired: Vec<Retired>,
}

impl EpochInner {
    /// Split off every action safe to run: those retired strictly
    /// before the oldest live pin (all of them when nothing is
    /// pinned).
    fn drain_ready(&mut self) -> Vec<RetireAction> {
        let min_pinned = self.pins.keys().next().copied();
        let ready = |r: &Retired| match min_pinned {
            None => true,
            Some(p) => r.epoch < p,
        };
        let mut out = Vec::new();
        let mut keep = Vec::with_capacity(self.retired.len());
        for r in self.retired.drain(..) {
            if ready(&r) {
                out.push(r.action);
            } else {
                keep.push(r);
            }
        }
        self.retired = keep;
        out
    }
}

/// The shared epoch registry (one per DBMS).
#[derive(Default)]
pub struct EpochRegistry {
    inner: Mutex<EpochInner>,
}

impl std::fmt::Debug for EpochRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("EpochRegistry")
            .field("epoch", &inner.epoch)
            .field("pins", &inner.pins.values().sum::<usize>())
            .field("retired", &inner.retired.len())
            .finish()
    }
}

impl EpochRegistry {
    /// A fresh registry at epoch 0 with nothing pinned or retired.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current global epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Live pins across all epochs.
    #[must_use]
    pub fn pinned(&self) -> usize {
        self.inner.lock().pins.values().sum()
    }

    /// Deferred destructors not yet run.
    #[must_use]
    pub fn retired_len(&self) -> usize {
        self.inner.lock().retired.len()
    }

    /// The oldest epoch a live [`EpochPin`] still protects, if any.
    /// `epoch() - oldest_pinned()` is the *pin lag*: how far the
    /// slowest pinned reader trails the live version — the serving
    /// layer exports it so operators can spot a session holding back
    /// page reclamation.
    #[must_use]
    pub fn oldest_pinned(&self) -> Option<u64> {
        self.inner.lock().pins.keys().next().copied()
    }

    /// Pin the current epoch. The returned guard keeps every version
    /// retired at or after this epoch alive until it drops.
    #[must_use]
    pub fn pin(self: &Arc<Self>) -> EpochPin {
        let epoch = {
            let mut inner = self.inner.lock();
            let e = inner.epoch;
            *inner.pins.entry(e).or_insert(0) += 1;
            e
        };
        EpochPin {
            registry: Arc::clone(self),
            epoch,
        }
    }

    /// Record a deferred destructor for a version being replaced, bump
    /// the epoch, and immediately run whatever became safe. The action
    /// runs outside the registry lock (it may free pages, which takes
    /// other locks).
    pub fn retire(&self, action: impl FnOnce() + Send + 'static) {
        let ready = {
            let mut inner = self.inner.lock();
            let epoch = inner.epoch;
            inner.retired.push(Retired {
                epoch,
                action: Box::new(action),
            });
            inner.epoch += 1;
            inner.drain_ready()
        };
        for a in ready {
            a();
        }
    }

    /// Run every deferred destructor no live pin can still reference.
    /// Returns how many ran. Called automatically on unpin and retire;
    /// public for tests and explicit quiesce points.
    pub fn try_reclaim(&self) -> usize {
        let ready = self.inner.lock().drain_ready();
        let n = ready.len();
        for a in ready {
            a();
        }
        n
    }

    fn unpin(&self, epoch: u64) {
        let ready = {
            let mut inner = self.inner.lock();
            if let Some(n) = inner.pins.get_mut(&epoch) {
                *n -= 1;
                if *n == 0 {
                    inner.pins.remove(&epoch);
                }
            }
            inner.drain_ready()
        };
        for a in ready {
            a();
        }
    }
}

/// A live pin on an epoch. While held, no version retired at or after
/// the pinned epoch is reclaimed. Dropping the pin triggers
/// reclamation of whatever became safe.
pub struct EpochPin {
    registry: Arc<EpochRegistry>,
    epoch: u64,
}

impl EpochPin {
    /// The epoch this pin protects.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl std::fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPin")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.registry.unpin(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counter_action(c: &Arc<AtomicUsize>) -> impl FnOnce() + Send + 'static {
        let c = Arc::clone(c);
        move || {
            c.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retire_with_no_pins_runs_immediately() {
        let reg = Arc::new(EpochRegistry::new());
        let ran = Arc::new(AtomicUsize::new(0));
        reg.retire(counter_action(&ran));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(reg.retired_len(), 0);
        assert_eq!(reg.epoch(), 1);
    }

    #[test]
    fn pinned_reader_defers_reclamation_until_drop() {
        let reg = Arc::new(EpochRegistry::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let pin = reg.pin();
        reg.retire(counter_action(&ran));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "pin predates the retire");
        assert_eq!(reg.retired_len(), 1);
        drop(pin);
        assert_eq!(ran.load(Ordering::SeqCst), 1, "last pin drained");
        assert_eq!(reg.retired_len(), 0);
    }

    #[test]
    fn pin_taken_after_retire_does_not_block_it() {
        let reg = Arc::new(EpochRegistry::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let old = reg.pin();
        reg.retire(counter_action(&ran));
        // A late reader pins the *new* version; it must not keep the
        // old one alive.
        let late = reg.pin();
        drop(old);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        drop(late);
    }

    #[test]
    fn multiple_pins_on_one_epoch_all_must_drain() {
        let reg = Arc::new(EpochRegistry::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let a = reg.pin();
        let b = reg.pin();
        reg.retire(counter_action(&ran));
        drop(a);
        assert_eq!(ran.load(Ordering::SeqCst), 0, "one pin still live");
        drop(b);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retirements_run_in_order_once_safe() {
        let reg = Arc::new(EpochRegistry::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let pin = reg.pin();
        for i in 0..3 {
            let order = Arc::clone(&order);
            reg.retire(move || order.lock().push(i));
        }
        assert!(order.lock().is_empty());
        drop(pin);
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn oldest_pinned_tracks_the_slowest_reader() {
        let reg = Arc::new(EpochRegistry::new());
        assert_eq!(reg.oldest_pinned(), None);
        let old = reg.pin();
        reg.retire(|| {});
        reg.retire(|| {});
        let newer = reg.pin();
        assert_eq!(reg.oldest_pinned(), Some(old.epoch()));
        assert_eq!(reg.epoch(), 2);
        drop(old);
        assert_eq!(reg.oldest_pinned(), Some(newer.epoch()));
        drop(newer);
        assert_eq!(reg.oldest_pinned(), None);
    }

    #[test]
    fn try_reclaim_counts() {
        let reg = Arc::new(EpochRegistry::new());
        let pin = reg.pin();
        reg.retire(|| {});
        reg.retire(|| {});
        assert_eq!(reg.try_reclaim(), 0);
        drop(pin);
        // The drop already reclaimed; nothing left.
        assert_eq!(reg.try_reclaim(), 0);
        assert_eq!(reg.retired_len(), 0);
    }

    #[test]
    fn pins_from_many_threads() {
        let reg = Arc::new(EpochRegistry::new());
        let ran = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    for _ in 0..200 {
                        let pin = reg.pin();
                        reg.retire(counter_action(&ran));
                        drop(pin);
                    }
                });
            }
        });
        reg.try_reclaim();
        assert_eq!(ran.load(Ordering::SeqCst), 8 * 200, "every action ran");
        assert_eq!(reg.pinned(), 0);
        assert_eq!(reg.retired_len(), 0);
    }
}
