//! The experiment harness: regenerates every figure of the paper and a
//! measured table for every performance claim (experiment index in
//! DESIGN.md; results recorded in EXPERIMENTS.md).
//!
//! Run all: `cargo run --release -p sdbms-bench --bin experiments`
//! Run one: `cargo run --release -p sdbms-bench --bin experiments -- e4`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdbms_bench::{clean_micro, dbms_with_view, ratio, render_table, us};
use sdbms_columnar::{rle, RowStore, TableStore, TransposedFile};
use sdbms_core::{
    AccuracyPolicy, CmpOp, ComputeSource, Expr, Layout, MaintenancePolicy, Predicate, ScalarFunc,
    StatDbms, StatFunction, ViewDefinition,
};
use sdbms_data::census::{aggregate_census, figure1, CensusConfig};
use sdbms_data::{CodeBook, DataType, RawDatabase, Value};
use sdbms_management::{differentiate, AggExpr};
use sdbms_relational::ops;
use sdbms_stats::quantile;
use sdbms_storage::{ArchiveStore, CostModel, StorageEnv, Tracker};
use sdbms_summary::{
    apply_updates, get_or_compute, Entry, Freshness, MedianWindow, SummaryDb, SummaryValue,
    UpdateDelta,
};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    let run = |id: &str| all || which.eq_ignore_ascii_case(id);

    if run("f1") {
        f1_figure1();
    }
    if run("f2") {
        f2_codebook_decode();
    }
    if run("f3") {
        f3_lifecycle();
    }
    if run("f4") {
        f4_summary_db();
    }
    if run("f5") {
        f5_differencing_loop();
    }
    if run("e1") {
        e1_cache_hit();
    }
    if run("e2") {
        e2_incremental_vs_recompute();
    }
    if run("e3") {
        e3_median_window();
    }
    if run("e4") {
        e4_transposed_vs_row();
    }
    if run("e5") {
        e5_compression();
    }
    if run("e6") {
        e6_policy_sweep();
    }
    if run("e7") {
        e7_sampling();
    }
    if run("e8") {
        e8_derived_rules();
    }
    if run("e9") {
        e9_materialization();
    }
    if run("e10") {
        e10_summary_index();
    }
    if run("e11") {
        e11_history_rollback();
    }
    if run("e12") {
        e12_full_workload();
    }
    if run("e13") {
        e13_zone_map_pruning();
    }
    if run("e14") {
        e14_serving();
    }
    if run("e15") {
        e15_vectorized_kernels();
    }
    if run("e16") {
        e16_lifecycle();
    }
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

// ---------------------------------------------------------------------------

fn f1_figure1() {
    banner(
        "F1",
        "Paper Figure 1 — the example data set, regenerated exactly",
    );
    let ds = figure1();
    println!("{ds}");
    println!("category cross-product scaling (SEX × RACE × AGE_GROUP × REGION):");
    let mut rows = Vec::new();
    for regions in [2u32, 8, 32, 128] {
        let ds = aggregate_census(&CensusConfig {
            regions,
            ..Default::default()
        })
        .expect("generate");
        rows.push(vec![
            regions.to_string(),
            ds.len().to_string(),
            format!("2 × 4 × 4 × {regions}"),
        ]);
    }
    println!("{}", render_table(&["regions", "rows", "= product"], &rows));
}

fn f2_codebook_decode() {
    banner(
        "F2",
        "Paper Figure 2 — code book decode: relational join vs manual lookup",
    );
    let cb = CodeBook::figure2_age_group();
    println!("{}", cb.to_dataset());
    let ds = clean_micro(50_000, 42);
    let code_ds = cb.to_dataset();

    let t0 = Instant::now();
    let joined = ops::hash_join(&ds, &code_ds, "AGE_GROUP", "CATEGORY").expect("join");
    let t_join = t0.elapsed().as_micros();

    let t0 = Instant::now();
    let col = ds.column("AGE_GROUP").expect("column");
    let mut decoded = Vec::with_capacity(ds.len());
    for v in col {
        decoded.push(cb.decode_value(v).expect("decode"));
    }
    let t_manual = t0.elapsed().as_micros();

    let rows = vec![
        vec![
            "hash join (Figure 2 as a relation)".into(),
            us(t_join),
            joined.len().to_string(),
        ],
        vec![
            "manual per-value lookup".into(),
            us(t_manual),
            decoded.len().to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["decode method (50k rows)", "time", "rows out"], &rows)
    );
    println!("(the point is capability, not speed: statistical packages of 1982");
    println!(" had no join at all — analysts decoded against a 200-page book)");
}

fn f3_lifecycle() {
    banner(
        "F3",
        "Paper Figure 3 — the architecture, one full lifecycle trace",
    );
    let mut dbms = StatDbms::new(512);
    dbms.load_raw(&clean_micro(10_000, 3)).expect("load");
    let before = dbms.io();
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "analyst")
        .expect("materialize");
    let d = dbms.io().since(&before);
    println!(
        "materialize 10k rows from tape:   {:>6} archive blocks read, {:>6} disk page writes",
        d.archive_block_reads, d.page_writes
    );
    let before = dbms.io();
    dbms.compute("v", "INCOME", &StatFunction::Median, AccuracyPolicy::Exact)
        .expect("compute");
    let d = dbms.io().since(&before);
    println!(
        "first median(INCOME):             {:>6} page reads (column scan), result cached",
        d.page_reads + d.pool_hits
    );
    let before = dbms.io();
    dbms.compute("v", "INCOME", &StatFunction::Median, AccuracyPolicy::Exact)
        .expect("compute");
    let d = dbms.io().since(&before);
    println!(
        "second median(INCOME):            {:>6} page touches (Summary DB only)",
        d.page_reads + d.pool_hits
    );
    let report = dbms
        .update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", 17i64),
            &[("INCOME", Expr::lit(12_345.0))],
        )
        .expect("update");
    println!(
        "update one INCOME cell:           {:>6} summary entries maintained incrementally",
        report.maintenance.incremental
    );
    let (_, src) = dbms
        .compute("v", "INCOME", &StatFunction::Median, AccuracyPolicy::Exact)
        .expect("compute");
    println!("median after update:              source = {src:?} (window absorbed the edit)");
}

fn f4_summary_db() {
    banner(
        "F4",
        "Paper Figure 4 — the Summary Database after the paper's queries",
    );
    let mut dbms = sdbms_core::paper_demo_dbms(256).expect("demo dbms");
    dbms.materialize(ViewDefinition::scan("census", "figure1"), "analyst")
        .expect("materialize");
    for (attr, f) in [
        ("POPULATION", StatFunction::Min),
        ("POPULATION", StatFunction::Max),
        ("AVE_SALARY", StatFunction::Median),
    ] {
        dbms.compute("census", attr, &f, AccuracyPolicy::Exact)
            .expect("compute");
    }
    print!(
        "{}",
        dbms.view("census")
            .expect("view")
            .summary
            .render_figure4()
            .expect("render")
    );
    println!();
    println!("note: the paper's Figure 4 prints median(AVE_SALARY) = 29,933, but the");
    println!("median of its own Figure 1 column is 29,402 (n = 9, middle of the sorted");
    println!("values). The min/max rows match the paper exactly.");
}

fn f5_differencing_loop() {
    banner(
        "F5",
        "Paper Figure 5 — recompute f(x1..xn) in a loop vs the differenced f'",
    );
    let n = 50_000usize;
    let iterations = 200usize;
    let mut data: Vec<f64> = (0..n).map(|i| ((i * 31) % 9973) as f64).collect();

    // Naive: the Figure 5 loop recomputes f over all n arguments each
    // iteration.
    let t0 = Instant::now();
    let mut naive_result = 0.0;
    for i in 0..iterations {
        data[2] = (i * 7) as f64; // x2 := g(i)
        naive_result = sdbms_stats::descriptive::mean(&data).expect("mean");
    }
    let t_naive = t0.elapsed().as_micros();

    // Differenced: f' consumes only the changed argument.
    let mut program = differentiate(&AggExpr::mean()).expect("mean is differentiable");
    data[2] = 0.0;
    program.initialize(&data);
    let t0 = Instant::now();
    let mut diff_result = 0.0;
    let mut prev = data[2];
    for i in 0..iterations {
        let next = (i * 7) as f64;
        program.replace(prev, next);
        prev = next;
        diff_result = program.evaluate().expect("evaluate");
    }
    let t_diff = t0.elapsed().as_micros();

    // Also set data[2] for the comparison.
    data[2] = prev;
    assert!((naive_result - diff_result).abs() < 1e-9);
    let rows = vec![
        vec![
            format!("recompute f every iteration (O(n), n={n})"),
            us(t_naive),
        ],
        vec!["differenced f' (O(1) per iteration)".into(), us(t_diff)],
        vec!["speedup".into(), ratio(t_naive as f64, t_diff as f64)],
    ];
    println!(
        "{}",
        render_table(
            &[&format!("{iterations} iterations of Figure 5"), "time"],
            &rows
        )
    );
    println!("variance is likewise differentiable; median is rejected:");
    match differentiate(&AggExpr::MedianOf) {
        Err(e) => println!("  differentiate(median) -> {e}"),
        Ok(_) => unreachable!(),
    }
}

// ---------------------------------------------------------------------------

fn e1_cache_hit() {
    banner(
        "E1",
        "§3.2 claim — cached function results save the column scan (per function)",
    );
    let mut rows = Vec::new();
    for n in [1_000usize, 10_000, 100_000] {
        let mut dbms = dbms_with_view(n, 1024);
        for f in [
            StatFunction::Mean,
            StatFunction::Variance,
            StatFunction::Median,
            StatFunction::Min,
            StatFunction::Histogram(20),
        ] {
            let t0 = Instant::now();
            dbms.compute("v", "INCOME", &f, AccuracyPolicy::Exact)
                .expect("compute");
            let t_miss = t0.elapsed().as_micros();
            let t0 = Instant::now();
            let (_, src) = dbms
                .compute("v", "INCOME", &f, AccuracyPolicy::Exact)
                .expect("compute");
            let t_hit = t0.elapsed().as_micros().max(1);
            assert_eq!(src, ComputeSource::Cache);
            rows.push(vec![
                n.to_string(),
                f.name(),
                us(t_miss),
                us(t_hit),
                ratio(t_miss as f64, t_hit as f64),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["rows", "function", "compute (miss)", "cache hit", "speedup"],
            &rows
        )
    );
}

fn e2_incremental_vs_recompute() {
    banner(
        "E2",
        "§4.2 claim — incremental aggregate maintenance vs full recompute (batch sweep)",
    );
    let n = 100_000usize;
    let base: Vec<Value> = (0..n)
        .map(|i| Value::Int(((i * 31) % 9973) as i64))
        .collect();
    let fns = [
        StatFunction::Count,
        StatFunction::Sum,
        StatFunction::Mean,
        StatFunction::Variance,
    ];
    let mut rows = Vec::new();
    for batch in [1usize, 10, 100, 1_000, 10_000, 100_000] {
        let deltas: Vec<UpdateDelta> = (0..batch)
            .map(|i| UpdateDelta {
                old: base[i].clone(),
                new: Value::Int(base[i].as_i64().unwrap() + 5),
            })
            .collect();
        let mut updated = base.clone();
        for (i, d) in deltas.iter().enumerate() {
            updated[i] = d.new.clone();
        }
        let time_policy = |policy: MaintenancePolicy| -> u128 {
            let env = StorageEnv::new(512);
            let db = SummaryDb::create(env.pool).expect("create");
            for f in &fns {
                get_or_compute(&db, "X", f, AccuracyPolicy::Exact, &mut || Ok(base.clone()))
                    .expect("seed");
            }
            let t0 = Instant::now();
            apply_updates(&db, "X", &deltas, policy, &mut || Ok(updated.clone())).expect("apply");
            t0.elapsed().as_micros()
        };
        let t_inc = time_policy(MaintenancePolicy::Incremental);
        let t_eager = time_policy(MaintenancePolicy::EagerRecompute);
        rows.push(vec![
            batch.to_string(),
            us(t_inc),
            us(t_eager),
            ratio(t_eager as f64, t_inc.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                &format!("updated values (of {n})"),
                "incremental",
                "eager recompute",
                "recompute/incremental",
            ],
            &rows
        )
    );
    println!("(count/sum/mean/variance cached; incremental wins until the batch");
    println!(" approaches the data size, where one recompute beats per-delta work)");
}

fn e3_median_window() {
    banner(
        "E3",
        "§4.2 claim — the median window absorbs updates; regeneration is rare and one pass",
    );
    let n = 20_000usize;
    let updates = 2_000usize;
    let mut rng = StdRng::seed_from_u64(11);
    let base: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10_000.0)).collect();

    let mut rows = Vec::new();
    for window in [11usize, 101, 1001] {
        let mut data = base.clone();
        let mut w = MedianWindow::new(window);
        w.rebuild(&data);
        let mut rebuilds = 0usize;
        let mut rng = StdRng::seed_from_u64(99);
        let t0 = Instant::now();
        for _ in 0..updates {
            let i = rng.gen_range(0..n);
            let new = rng.gen_range(0.0..10_000.0);
            let old = data[i];
            data[i] = new;
            if !w.replace(old, new) || !w.is_usable() {
                w.rebuild(&data);
                rebuilds += 1;
            }
        }
        let t_window = t0.elapsed().as_micros();
        let med = w.median().expect("median");
        let expect = quantile::median(&data).expect("median");
        assert!((med - expect).abs() < 1e-9);
        rows.push(vec![
            window.to_string(),
            rebuilds.to_string(),
            us(t_window),
            format!("{:.2}", med),
        ]);
    }
    // Baseline: recompute the median from scratch after every update.
    let mut data = base.clone();
    let mut rng = StdRng::seed_from_u64(99);
    let t0 = Instant::now();
    let mut last = 0.0;
    for _ in 0..updates {
        let i = rng.gen_range(0..n);
        data[i] = rng.gen_range(0.0..10_000.0);
        last = quantile::kth_smallest(&data, (n - 1) / 2).expect("kth");
    }
    let t_naive = t0.elapsed().as_micros();
    let _ = last;
    rows.push(vec![
        "(recompute each update)".into(),
        updates.to_string(),
        us(t_naive),
        "-".into(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "window size",
                &format!("full passes over {n} values ({updates} updates)"),
                "time",
                "final median",
            ],
            &rows
        )
    );
}

fn e4_transposed_vs_row() {
    banner(
        "E4",
        "§2.6 claim — transposed files win statistical queries, lose informational ones",
    );
    let mut rows = Vec::new();
    for n in [2_000usize, 8_000, 32_000] {
        let ds = clean_micro(n, 5);
        let env_t = StorageEnv::new(8);
        let t = TransposedFile::from_dataset(env_t.pool.clone(), &ds).expect("transposed");
        let env_r = StorageEnv::new(8);
        let r = RowStore::from_dataset(env_r.pool.clone(), &ds).expect("row");

        env_t.tracker.reset();
        t.read_column("INCOME").expect("col");
        let t_col = env_t.tracker.snapshot().page_reads;
        env_r.tracker.reset();
        r.read_column("INCOME").expect("col");
        let r_col = env_r.tracker.snapshot().page_reads;

        env_t.tracker.reset();
        t.read_row(n / 2).expect("row");
        let t_row = env_t.tracker.snapshot().page_reads;
        env_r.tracker.reset();
        r.read_row(n / 2).expect("row");
        let r_row = env_r.tracker.snapshot().page_reads;

        rows.push(vec![
            n.to_string(),
            t_col.to_string(),
            r_col.to_string(),
            ratio(r_col as f64, t_col.max(1) as f64),
            t_row.to_string(),
            r_row.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "rows",
                "col scan: transposed (pages)",
                "col scan: row store (pages)",
                "row-store/transposed",
                "row fetch: transposed (pages)",
                "row fetch: row store (pages)",
            ],
            &rows
        )
    );

    // Ablation (DESIGN.md): the transposed advantage vs buffer pool
    // size. With a pool large enough to hold the whole file, repeat
    // scans are free in both layouts and the advantage disappears.
    println!("ablation: pool size vs repeat-scan page reads (8000 rows, 2nd scan):");
    let ds = clean_micro(8_000, 5);
    let mut rows = Vec::new();
    for pool in [4usize, 32, 256, 2048] {
        let env_t = StorageEnv::new(pool);
        let t = TransposedFile::from_dataset(env_t.pool.clone(), &ds).expect("transposed");
        let env_r = StorageEnv::new(pool);
        let r = RowStore::from_dataset(env_r.pool.clone(), &ds).expect("row");
        // First scan warms the pool; measure the second.
        t.read_column("INCOME").expect("col");
        env_t.tracker.reset();
        t.read_column("INCOME").expect("col");
        let t_reads = env_t.tracker.snapshot().page_reads;
        r.read_column("INCOME").expect("col");
        env_r.tracker.reset();
        r.read_column("INCOME").expect("col");
        let r_reads = env_r.tracker.snapshot().page_reads;
        rows.push(vec![
            pool.to_string(),
            t_reads.to_string(),
            r_reads.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "pool pages",
                "transposed page reads",
                "row-store page reads"
            ],
            &rows
        )
    );
}

fn e5_compression() {
    banner(
        "E5",
        "§2.6 claim — run-length compression works down columns, not across rows",
    );
    // Aggregate census in cross-product order: category columns are
    // long runs.
    let ds = aggregate_census(&CensusConfig {
        regions: 64,
        ..Default::default()
    })
    .expect("generate");
    let mut rows = Vec::new();
    for attr in [
        "SEX",
        "RACE",
        "AGE_GROUP",
        "REGION",
        "POPULATION",
        "AVE_SALARY",
    ] {
        let col: Vec<Value> = ds.column(attr).expect("column").cloned().collect();
        let r = rle::column_compression_ratio(&col);
        rows.push(vec![attr.to_string(), format!("{r:.2}×")]);
    }
    // Rowwise: RLE over concatenated row images.
    let mut row_bytes = Vec::new();
    for row in ds.rows() {
        row_bytes.extend_from_slice(&sdbms_data::encode_row(row));
    }
    let compressed = rle::compress_bytes(&row_bytes);
    rows.push(vec![
        "(entire rows, byte RLE)".into(),
        format!("{:.2}×", row_bytes.len() as f64 / compressed.len() as f64),
    ]);
    println!(
        "{}",
        render_table(
            &[
                &format!("column ({} rows, cross-product order)", ds.len()),
                "RLE compression ratio",
            ],
            &rows
        )
    );
}

fn e6_policy_sweep() {
    banner(
        "E6",
        "§4.3 — maintenance policy sweep over the read/update mix",
    );
    let n = 10_000usize;
    let ops_total = 300usize;
    let fns = [
        StatFunction::Mean,
        StatFunction::Median,
        StatFunction::Variance,
        StatFunction::Min,
    ];
    let mut rows = Vec::new();
    for update_frac in [0.01f64, 0.1, 0.5, 0.9] {
        let mut cells = vec![format!("{:.0}%", update_frac * 100.0)];
        for policy in [
            Some(MaintenancePolicy::Incremental),
            Some(MaintenancePolicy::InvalidateLazy),
            Some(MaintenancePolicy::EagerRecompute),
            None, // no cache
        ] {
            let mut dbms = dbms_with_view(n, 1024);
            if let Some(p) = policy {
                dbms.set_policy("v", p).expect("policy");
            }
            let mut rng = StdRng::seed_from_u64(7);
            let t0 = Instant::now();
            for op in 0..ops_total {
                let is_update = rng.gen::<f64>() < update_frac;
                if is_update {
                    let id = rng.gen_range(0..n as i64);
                    dbms.update_where(
                        "v",
                        &Predicate::col_eq("PERSON_ID", id),
                        &[("INCOME", Expr::lit(1_000.0 + op as f64))],
                    )
                    .expect("update");
                } else {
                    let f = &fns[rng.gen_range(0..fns.len())];
                    if policy.is_some() {
                        dbms.compute("v", "INCOME", f, AccuracyPolicy::Exact)
                            .expect("compute");
                    } else {
                        // No-cache baseline: read the column, compute
                        // directly, cache nothing.
                        let col = dbms.column("v", "INCOME").expect("column");
                        let _ = f.compute(&col);
                    }
                }
            }
            cells.push(us(t0.elapsed().as_micros()));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &[
                &format!("update fraction ({ops_total} ops, {n} rows)"),
                "incremental",
                "invalidate-lazy",
                "eager recompute",
                "no cache",
            ],
            &rows
        )
    );
}

fn e7_sampling() {
    banner(
        "E7",
        "§2.2 — exploratory analysis on samples: speed vs estimate error",
    );
    let n = 100_000usize;
    let ds = clean_micro(n, 77);
    let (full, _) = ds.column_f64("INCOME").expect("column");
    let t0 = Instant::now();
    let full_mean = sdbms_stats::descriptive::mean(&full).expect("mean");
    let full_median = quantile::median(&full).expect("median");
    let t_full = t0.elapsed().as_micros().max(1);
    let mut rows = vec![vec![
        "100% (full)".into(),
        us(t_full),
        "0.00%".into(),
        "0.00%".into(),
    ]];
    for frac in [0.005f64, 0.01, 0.05, 0.1] {
        let k = (n as f64 * frac) as usize;
        let t0 = Instant::now();
        let sample = sdbms_stats::sample::sample_dataset(&ds, k, 13).expect("sample");
        let (s, _) = sample.column_f64("INCOME").expect("column");
        let s_mean = sdbms_stats::descriptive::mean(&s).expect("mean");
        let s_median = quantile::median(&s).expect("median");
        let t = t0.elapsed().as_micros().max(1);
        rows.push(vec![
            format!("{:.1}% ({k})", frac * 100.0),
            us(t),
            format!("{:.2}%", 100.0 * (s_mean - full_mean).abs() / full_mean),
            format!(
                "{:.2}%",
                100.0 * (s_median - full_median).abs() / full_median
            ),
        ]);
    }
    println!(
        "{}",
        render_table(&["sample", "time", "mean error", "median error"], &rows)
    );
}

fn e8_derived_rules() {
    banner(
        "E8",
        "§3.2 — derived-attribute rules: local (1 row) vs regenerate (n rows)",
    );
    let mut rows = Vec::new();
    for n in [1_000usize, 5_000, 20_000] {
        // Local-rule view.
        let mut dbms_local = dbms_with_view(n, 1024);
        dbms_local
            .add_derived_column(
                "v",
                "LOG_INCOME",
                DataType::Float,
                Expr::col("INCOME").apply(ScalarFunc::Ln),
            )
            .expect("derived");
        let t0 = Instant::now();
        dbms_local
            .update_where(
                "v",
                &Predicate::col_eq("PERSON_ID", 5i64),
                &[("INCOME", Expr::lit(33_333.0))],
            )
            .expect("update");
        let t_local = t0.elapsed().as_micros();

        // Regenerate-rule view.
        let mut dbms_regen = dbms_with_view(n, 1024);
        dbms_regen
            .add_residuals_column("v", "RESID", "AGE", "INCOME")
            .expect("resid");
        let t0 = Instant::now();
        dbms_regen
            .update_where(
                "v",
                &Predicate::col_eq("PERSON_ID", 5i64),
                &[("INCOME", Expr::lit(33_333.0))],
            )
            .expect("update");
        let t_regen = t0.elapsed().as_micros();

        rows.push(vec![
            n.to_string(),
            us(t_local),
            us(t_regen),
            ratio(t_regen as f64, t_local.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "view rows",
                "local rule (log column)",
                "regenerate rule (residuals)",
                "regen/local",
            ],
            &rows
        )
    );
    println!("(both include the predicate scan; the gap is the whole-vector refit)");
}

fn e9_materialization() {
    banner(
        "E9",
        "§2.3 — concrete views amortize the tape extraction over repeated use",
    );
    let n = 20_000usize;
    let ds = clean_micro(n, 9);
    let model = CostModel::default();
    let uses = 8usize;

    // Strategy A: re-extract from tape on every use.
    let tracker_a = Tracker::new();
    let archive_a = std::sync::Arc::new(ArchiveStore::new(tracker_a.clone()));
    let raw_a = RawDatabase::new(archive_a);
    raw_a.store(&ds).expect("store");
    let mut cum_a = Vec::new();
    for _ in 0..uses {
        let extracted = raw_a
            .extract("census_microdata", None, None)
            .expect("extract");
        let (col, _) = extracted.column_f64("INCOME").expect("column");
        let _ = sdbms_stats::descriptive::mean(&col).expect("mean");
        cum_a.push(model.cost(&tracker_a.snapshot()));
    }

    // Strategy B: materialize once to disk, then read the column.
    let env = StorageEnv::new(64);
    let raw_b = RawDatabase::new(env.archive.clone());
    raw_b.store(&ds).expect("store");
    let extracted = raw_b
        .extract("census_microdata", None, None)
        .expect("extract");
    let store = TransposedFile::from_dataset(env.pool.clone(), &extracted).expect("build");
    env.pool.flush_all().expect("flush");
    let mut cum_b = Vec::new();
    for _ in 0..uses {
        let (col, _) = store.read_column_f64("INCOME").expect("column");
        let _ = sdbms_stats::descriptive::mean(&col).expect("mean");
        cum_b.push(model.cost(&env.tracker.snapshot()));
    }

    let mut rows = Vec::new();
    let mut crossover: Option<usize> = None;
    for i in 0..uses {
        if crossover.is_none() && cum_b[i] < cum_a[i] {
            crossover = Some(i + 1);
        }
        rows.push(vec![
            (i + 1).to_string(),
            format!("{:.0}", cum_a[i]),
            format!("{:.0}", cum_b[i]),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "uses",
                "cumulative cost: re-extract from tape",
                "cumulative cost: materialized view",
            ],
            &rows
        )
    );
    match crossover {
        Some(k) => println!("materialization pays for itself by use #{k}"),
        None => println!("no crossover within {uses} uses"),
    }
}

fn e10_summary_index() {
    banner(
        "E10",
        "§3.2 — the (attribute, function) secondary index vs scanning the Summary DB",
    );
    let mut rows = Vec::new();
    for entries in [64usize, 512, 2048] {
        let env = StorageEnv::new(64);
        let db = SummaryDb::create(env.pool).expect("create");
        for i in 0..entries {
            db.put(&Entry {
                attribute: format!("ATTR_{:04}", i / 8),
                function: StatFunction::Quantile((i % 8 * 100) as u16),
                result: SummaryValue::Scalar(i as f64),
                freshness: Freshness::Fresh,
                aux: None,
                updates_since_refresh: 0,
            })
            .expect("put");
        }
        let target_attr = format!("ATTR_{:04}", entries / 16);
        let target_fn = StatFunction::Quantile(300);

        env.tracker.reset();
        let t0 = Instant::now();
        let via_index = db.lookup(&target_attr, &target_fn).expect("lookup");
        let t_index = t0.elapsed().as_micros().max(1);
        let io_index = env.tracker.snapshot();

        env.tracker.reset();
        let t0 = Instant::now();
        let via_scan = db
            .all_entries()
            .expect("scan")
            .into_iter()
            .find(|e| e.attribute == target_attr && e.function == target_fn);
        let t_scan = t0.elapsed().as_micros().max(1);
        let io_scan = env.tracker.snapshot();

        assert_eq!(via_index, via_scan);
        rows.push(vec![
            entries.to_string(),
            format!(
                "{} ({} pages)",
                us(t_index),
                io_index.page_reads + io_index.pool_hits
            ),
            format!(
                "{} ({} pages)",
                us(t_scan),
                io_scan.page_reads + io_scan.pool_hits
            ),
            ratio(t_scan as f64, t_index as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["entries", "indexed lookup", "full scan", "scan/indexed"],
            &rows
        )
    );
}

fn e11_history_rollback() {
    banner("E11", "§2.3 — undo: rollback cost grows with history depth");
    let mut rows = Vec::new();
    for depth in [10usize, 100, 1_000] {
        let n = 5_000usize;
        let mut dbms = dbms_with_view(n, 1024);
        let cp = dbms.checkpoint("v", "start").expect("checkpoint");
        for k in 0..depth {
            dbms.update_where(
                "v",
                &Predicate::col_eq("PERSON_ID", (k % n) as i64),
                &[("HOURS_WORKED", Expr::lit((k % 90) as i64))],
            )
            .expect("update");
        }
        let t0 = Instant::now();
        let undone = dbms.rollback_to("v", cp).expect("rollback");
        let t = t0.elapsed().as_micros();
        // Verify the restore.
        let original = clean_micro(n, 1982);
        assert_eq!(dbms.dataset("v").expect("ds").rows(), original.rows());
        rows.push(vec![depth.to_string(), undone.to_string(), us(t)]);
    }
    println!(
        "{}",
        render_table(&["history depth", "changes undone", "rollback time"], &rows)
    );
}

fn e12_full_workload() {
    banner(
        "E12",
        "§2.2 lifecycle — a 40-day exploratory/confirmatory workload, with and without the Summary DB",
    );
    let days = 40usize;
    let n = 5_000usize;
    let queries = [
        ("INCOME", StatFunction::Median),
        ("INCOME", StatFunction::Mean),
        ("AGE", StatFunction::Median),
        ("AGE", StatFunction::Max),
        ("HOURS_WORKED", StatFunction::Mean),
        ("INCOME", StatFunction::Quantile(950)),
    ];
    let run = |use_cache: bool| -> (u128, String) {
        let mut dbms = dbms_with_view(n, 1024);
        let t0 = Instant::now();
        for day in 0..days {
            for (attr, f) in &queries {
                if use_cache {
                    dbms.compute("v", attr, f, AccuracyPolicy::Exact)
                        .expect("compute");
                } else {
                    let col = dbms.column("v", attr).expect("col");
                    let _ = f.compute(&col);
                }
            }
            // One correction per day.
            dbms.update_where(
                "v",
                &Predicate::col_eq("PERSON_ID", (day * 13 % n) as i64),
                &[("INCOME", Expr::lit(25_000.0 + day as f64))],
            )
            .expect("update");
        }
        let elapsed = t0.elapsed().as_micros();
        let stats = dbms.cache_stats("v").expect("stats");
        (
            elapsed,
            format!(
                "hits {} / recomputes {} / incremental {}",
                stats.hits, stats.recomputes, stats.incremental_updates
            ),
        )
    };
    let (t_cache, s_cache) = run(true);
    let (t_none, s_none) = run(false);
    let rows = vec![
        vec!["Summary DB (incremental)".into(), us(t_cache), s_cache],
        vec!["no Summary DB".into(), us(t_none), s_none],
        vec![
            "speedup".into(),
            ratio(t_none as f64, t_cache.max(1) as f64),
            String::new(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                &format!("{days} days × {} queries + 1 update", queries.len()),
                "total time",
                "cache behaviour",
            ],
            &rows
        )
    );
}

fn e13_zone_map_pruning() {
    use sdbms_columnar::Compression;
    use sdbms_data::dataset::DataSet;
    use sdbms_data::schema::{Attribute, Schema};
    use sdbms_exec::{filter_indices, profile_table_column, profile_table_column_runs, ExecConfig};
    use sdbms_relational::filter_table_rows;

    banner(
        "E13",
        "zone-map pruning + run-aware aggregation on the scan hot path",
    );

    // A clustered table: 100 blocks of 2048 rows, eight 256-row
    // segments per block, so equality on the clustering column refutes
    // 99% of all zone maps.
    const BLOCK_ROWS: i64 = 2_048;
    const BLOCKS: i64 = 100;
    let n_rows = (BLOCKS * BLOCK_ROWS) as usize;
    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("X", DataType::Int),
    ])
    .expect("schema");
    let raw: Vec<Vec<Value>> = (0..BLOCKS * BLOCK_ROWS)
        .map(|i| {
            vec![
                Value::Int(i / BLOCK_ROWS),
                Value::Int((i * 37) % 1_001 - 500),
            ]
        })
        .collect();
    let ds = DataSet::from_rows("clustered", schema.clone(), raw).expect("dataset");
    let env = StorageEnv::new(8_192);
    let mut store = TransposedFile::create_with(
        env.pool.clone(),
        schema,
        &[Compression::Rle, Compression::None],
    )
    .expect("create");
    store.bulk_append(&ds).expect("load");

    // The seed path: decode every referenced column, evaluate every row.
    let naive = |pred: &Predicate, cfg: &ExecConfig| -> Vec<usize> {
        let schema = store.schema().clone();
        let ref_cols = pred.referenced_columns();
        let names: Vec<&str> = ref_cols.iter().map(String::as_str).collect();
        let proj = schema.project(&names).expect("project");
        let bound = pred.bind(&proj).expect("bind");
        let cols: Vec<Vec<Value>> = names
            .iter()
            .map(|c| store.read_column(c).expect("column"))
            .collect();
        filter_indices::<sdbms_data::DataError, _>(store.len(), cfg, |i| {
            let row: Vec<Value> = cols.iter().map(|c| c[i].clone()).collect();
            Ok(bound.eval(&row))
        })
        .expect("filter")
    };
    let time_us = |f: &mut dyn FnMut()| -> u128 {
        // Warm once, then take the best of three (scans are pool-hot
        // and deterministic; best-of smooths scheduler noise).
        f();
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_micros()
            })
            .min()
            .unwrap_or(0)
    };

    let selectivities: Vec<(&str, Predicate)> = vec![
        ("0%", Predicate::col_eq("BLOCK", -1i64)),
        ("1%", Predicate::col_eq("BLOCK", 5i64)),
        (
            "50%",
            Predicate::cmp(Expr::col("BLOCK"), CmpOp::Lt, Expr::lit(BLOCKS / 2)),
        ),
        ("100%", Predicate::True),
    ];
    let mut table = Vec::new();
    let mut scan_json = Vec::new();
    for workers in [1usize, 4] {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 1_024,
        };
        for (label, pred) in &selectivities {
            let t_naive = time_us(&mut || {
                naive(pred, &cfg);
            });
            let t_pruned = time_us(&mut || {
                filter_table_rows(&store, pred, &cfg).expect("pruned scan");
            });
            let speedup = t_naive as f64 / t_pruned.max(1) as f64;
            table.push(vec![
                (*label).to_string(),
                workers.to_string(),
                us(t_naive),
                us(t_pruned),
                ratio(t_naive as f64, t_pruned.max(1) as f64),
            ]);
            scan_json.push(format!(
                "    {{\"selectivity\": \"{label}\", \"workers\": {workers}, \
                 \"naive_us\": {t_naive}, \"pruned_us\": {t_pruned}, \
                 \"speedup\": {speedup:.2}}}"
            ));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "selectivity",
                "workers",
                "naive scan",
                "pruned scan",
                "speedup",
            ],
            &table
        )
    );

    let mut table = Vec::new();
    let mut agg_json = Vec::new();
    for workers in [1usize, 4] {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 1_024,
        };
        let t_decode = time_us(&mut || {
            profile_table_column(&store, "BLOCK", &cfg).expect("profile");
        });
        let t_runs = time_us(&mut || {
            profile_table_column_runs(&store, "BLOCK", &cfg).expect("profile");
        });
        let speedup = t_decode as f64 / t_runs.max(1) as f64;
        table.push(vec![
            "BLOCK (RLE)".into(),
            workers.to_string(),
            us(t_decode),
            us(t_runs),
            ratio(t_decode as f64, t_runs.max(1) as f64),
        ]);
        agg_json.push(format!(
            "    {{\"column\": \"BLOCK\", \"workers\": {workers}, \
             \"decode_us\": {t_decode}, \"runs_us\": {t_runs}, \
             \"speedup\": {speedup:.2}}}"
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "aggregate over",
                "workers",
                "decode profile",
                "run-aware profile",
                "speedup",
            ],
            &table
        )
    );

    let json = format!(
        "{{\n  \"experiment\": \"e13_zone_map_pruning\",\n  \"rows\": {n_rows},\n  \
         \"scan\": [\n{}\n  ],\n  \"aggregate\": [\n{}\n  ]\n}}\n",
        scan_json.join(",\n"),
        agg_json.join(",\n"),
    );
    match std::fs::write("BENCH_scan.json", &json) {
        Ok(()) => println!("wrote BENCH_scan.json"),
        Err(e) => println!("could not write BENCH_scan.json: {e}"),
    }
}

fn e14_serving() {
    use sdbms_serve::{run_traffic, QuotaConfig, ServeConfig, Server, TrafficConfig};
    use sdbms_testkit::{CensusFixture, CENSUS_VIEW};

    banner(
        "E14",
        "serving layer: front result cache vs uncached under a Zipfian analyst mix",
    );

    // A serving-scale fixture: enough rows that a summary recompute
    // costs real column work, so the front cache has something to save.
    // No WAL — this experiment measures the read path, and the
    // crash-consistent commit flushes would dominate wall clock
    // identically in both modes, washing out the cache signal.
    const ROWS: usize = 20_000;
    const REQUESTS: usize = 1_000;
    let fixture = || {
        CensusFixture::new()
            .rows(ROWS)
            .pool_pages(8_192)
            .crash_consistent(false)
            .build()
            .expect("fixture")
    };

    let mut table = Vec::new();
    let mut entries = Vec::new();
    for sessions in [2usize, 4, 8] {
        // The same deterministic closed-loop Zipfian mix (reads plus a
        // writer analyst committing an update batch mid-run) against a
        // cached and an uncached server over identical fixtures. The
        // commit cadence is deliberately sparse: a commit rewrites the
        // store in both modes, so a write-heavy mix would measure the
        // commit path rather than the cache.
        let traffic = TrafficConfig::new(CENSUS_VIEW)
            .analysts(sessions)
            .requests_per_analyst(REQUESTS)
            .update_every(600)
            .seed(0xE14);
        let mut reports = Vec::new();
        for cached in [true, false] {
            let mut cfg = ServeConfig {
                workers: 4,
                queue_capacity: 4_096,
                quota: QuotaConfig::unlimited(),
                ..ServeConfig::default()
            };
            if !cached {
                cfg = cfg.uncached();
            }
            let server = Server::start(fixture(), cfg);
            let report = run_traffic(&server, &traffic);
            assert_eq!(
                report.completed as usize,
                sessions * REQUESTS,
                "deep queue + unlimited quota: nothing may be rejected"
            );
            drop(server.shutdown());
            reports.push(report);
        }
        let (cached, uncached) = (&reports[0], &reports[1]);
        let speedup = uncached.wall_us as f64 / cached.wall_us.max(1) as f64;
        for (label, r) in [("cached", cached), ("uncached", uncached)] {
            table.push(vec![
                sessions.to_string(),
                label.to_string(),
                us(u128::from(r.latency_us(50.0))),
                us(u128::from(r.latency_us(99.0))),
                format!("{:.0}", r.throughput_rps),
                format!("{:.0}%", r.hit_rate() * 100.0),
            ]);
        }
        table.push(vec![
            sessions.to_string(),
            "speedup".to_string(),
            String::new(),
            String::new(),
            ratio(uncached.wall_us as f64, cached.wall_us.max(1) as f64),
            String::new(),
        ]);
        entries.push(format!(
            "    {{\"sessions\": {sessions}, \
             \"cached\": {{\"p50_us\": {}, \"p99_us\": {}, \
             \"throughput_rps\": {:.1}, \"hit_rate\": {:.3}}}, \
             \"uncached\": {{\"p50_us\": {}, \"p99_us\": {}, \
             \"throughput_rps\": {:.1}, \"hit_rate\": {:.3}}}, \
             \"speedup\": {speedup:.2}}}",
            cached.latency_us(50.0),
            cached.latency_us(99.0),
            cached.throughput_rps,
            cached.hit_rate(),
            uncached.latency_us(50.0),
            uncached.latency_us(99.0),
            uncached.throughput_rps,
            uncached.hit_rate(),
        ));
    }
    println!(
        "{}",
        render_table(
            &["sessions", "mode", "p50", "p99", "rps", "hit rate"],
            &table
        )
    );

    let json = format!(
        "{{\n  \"experiment\": \"e14_serving\",\n  \"rows\": {ROWS},\n  \
         \"requests_per_analyst\": {REQUESTS},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => println!("could not write BENCH_serve.json: {e}"),
    }
}

fn e15_vectorized_kernels() {
    use sdbms_columnar::Compression;
    use sdbms_data::dataset::DataSet;
    use sdbms_data::schema::{Attribute, Schema};
    use sdbms_exec::{
        profile_table_column, scan_morsels, ColumnProfile, ExecConfig, SegmentPruner,
    };
    use sdbms_relational::{filter_table_rows, ZoneMapPruner};

    banner(
        "E15",
        "vectorized batch kernels vs per-cell Value decode (filter + aggregate)",
    );

    // The same clustered shape E13 uses (doubled, so that on small
    // boxes worker spawn overhead does not dominate the morsel loops):
    // RLE on the clustering column, raw encoding on the noisy one. A
    // third raw column G holds a low-cardinality code (16 distinct
    // values) — the shape where the frequency table stops dominating
    // and the kernels' typed lanes show.
    const BLOCK_ROWS: i64 = 2_048;
    const BLOCKS: i64 = 100;
    let n_rows = (BLOCKS * BLOCK_ROWS) as usize;
    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("X", DataType::Int),
        Attribute::measured("G", DataType::Int),
    ])
    .expect("schema");
    let raw: Vec<Vec<Value>> = (0..BLOCKS * BLOCK_ROWS)
        .map(|i| {
            vec![
                Value::Int(i / BLOCK_ROWS),
                Value::Int((i * 37) % 1_001 - 500),
                Value::Int((i * 7) % 16),
            ]
        })
        .collect();
    let ds = DataSet::from_rows("clustered", schema.clone(), raw).expect("dataset");
    let env = StorageEnv::new(8_192);
    let mut store = TransposedFile::create_with(
        env.pool.clone(),
        schema,
        &[Compression::Rle, Compression::None, Compression::None],
    )
    .expect("create");
    store.bulk_append(&ds).expect("load");

    // The pre-kernel scan path, preserved as the baseline: zone-map
    // pruned exactly like the live path, but every surviving morsel
    // decodes its referenced columns to `Value`s and evaluates the
    // bound predicate row by row over an assembled row buffer.
    let percell_filter = |pred: &Predicate, cfg: &ExecConfig| -> Vec<usize> {
        let schema = store.schema();
        let bound = pred.bind(schema).expect("bind");
        let referenced: Vec<(usize, String)> = pred
            .referenced_columns()
            .into_iter()
            .map(|name| (schema.require(&name).expect("column"), name))
            .collect();
        let width = schema.len();
        let pruner = ZoneMapPruner::new(&store, pred);
        let chunks = scan_morsels(
            store.len(),
            cfg,
            |m| -> Result<Vec<usize>, sdbms_data::DataError> {
                let mut hits = Vec::new();
                if !pruner.may_match(m.start, m.len) {
                    return Ok(hits);
                }
                let mut cols: Vec<(usize, Vec<Value>)> = Vec::with_capacity(referenced.len());
                for (ci, name) in &referenced {
                    cols.push((*ci, store.read_column_range(name, m.start, m.len)?));
                }
                let mut row = vec![Value::Missing; width];
                for i in 0..m.len {
                    for (ci, vals) in &cols {
                        row[*ci] = vals[i].clone();
                    }
                    if bound.eval(&row) {
                        hits.push(m.start + i);
                    }
                }
                Ok(hits)
            },
        )
        .expect("per-cell scan");
        chunks.into_iter().flatten().collect()
    };

    // The pre-kernel aggregation path: decode each morsel to `Value`s
    // and feed the per-row profile accumulators.
    let percell_profile = |attr: &str, cfg: &ExecConfig| -> ColumnProfile {
        let partials = scan_morsels(
            store.len(),
            cfg,
            |m| -> Result<ColumnProfile, sdbms_data::DataError> {
                let vals = store.read_column_range(attr, m.start, m.len)?;
                Ok(ColumnProfile::from_values(&vals))
            },
        )
        .expect("per-cell profile");
        let mut profile = ColumnProfile::default();
        for p in partials {
            profile.merge(p);
        }
        profile
    };

    let time_us = |f: &mut dyn FnMut()| -> u128 {
        f();
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_micros()
            })
            .min()
            .unwrap_or(0)
    };

    let selectivities: Vec<(&str, Predicate)> = vec![
        ("0%", Predicate::col_eq("BLOCK", -1i64)),
        ("1%", Predicate::col_eq("BLOCK", 5i64)),
        (
            "50%",
            Predicate::cmp(Expr::col("BLOCK"), CmpOp::Lt, Expr::lit(BLOCKS / 2)),
        ),
        ("100%", Predicate::True),
        (
            "100% (X ≥ min)",
            Predicate::cmp(Expr::col("X"), CmpOp::Ge, Expr::lit(-500i64)),
        ),
    ];
    let mut table = Vec::new();
    let mut scan_json = Vec::new();
    for workers in [1usize, 4, 8] {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 1_024,
        };
        for (label, pred) in &selectivities {
            // Both paths prune identically; the difference under
            // measurement is the per-morsel inner loop.
            let want = percell_filter(pred, &cfg);
            let got = filter_table_rows(&store, pred, &cfg).expect("batch scan");
            assert_eq!(got, want, "{label}: kernel path diverged");
            let t_cell = time_us(&mut || {
                percell_filter(pred, &cfg);
            });
            let t_batch = time_us(&mut || {
                filter_table_rows(&store, pred, &cfg).expect("batch scan");
            });
            let speedup = t_cell as f64 / t_batch.max(1) as f64;
            table.push(vec![
                (*label).to_string(),
                workers.to_string(),
                us(t_cell),
                us(t_batch),
                ratio(t_cell as f64, t_batch.max(1) as f64),
            ]);
            scan_json.push(format!(
                "    {{\"selectivity\": \"{label}\", \"workers\": {workers}, \
                 \"percell_us\": {t_cell}, \"batch_us\": {t_batch}, \
                 \"speedup\": {speedup:.2}}}"
            ));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "selectivity",
                "workers",
                "per-cell scan",
                "batch-kernel scan",
                "speedup",
            ],
            &table
        )
    );

    let mut table = Vec::new();
    let mut agg_json = Vec::new();
    for workers in [1usize, 4, 8] {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 1_024,
        };
        for (attr, label) in [("BLOCK", "BLOCK (RLE)"), ("G", "G (raw, low-card)")] {
            let t_cell = time_us(&mut || {
                percell_profile(attr, &cfg);
            });
            let t_batch = time_us(&mut || {
                profile_table_column(&store, attr, &cfg).expect("batch profile");
            });
            let speedup = t_cell as f64 / t_batch.max(1) as f64;
            table.push(vec![
                label.to_string(),
                workers.to_string(),
                us(t_cell),
                us(t_batch),
                ratio(t_cell as f64, t_batch.max(1) as f64),
            ]);
            agg_json.push(format!(
                "    {{\"column\": \"{attr}\", \"workers\": {workers}, \
                 \"percell_us\": {t_cell}, \"batch_us\": {t_batch}, \
                 \"speedup\": {speedup:.2}}}"
            ));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "aggregate over",
                "workers",
                "per-cell profile",
                "batch-kernel profile",
                "speedup",
            ],
            &table
        )
    );

    let json = format!(
        "{{\n  \"experiment\": \"e15_vectorized_kernels\",\n  \"rows\": {n_rows},\n  \
         \"scan\": [\n{}\n  ],\n  \"aggregate\": [\n{}\n  ]\n}}\n",
        scan_json.join(",\n"),
        agg_json.join(",\n"),
    );
    match std::fs::write("BENCH_scan.json", &json) {
        Ok(()) => println!("wrote BENCH_scan.json"),
        Err(e) => println!("could not write BENCH_scan.json: {e}"),
    }
}

fn e16_lifecycle() {
    use sdbms_serve::{
        run_traffic, BreakerConfig, Outcome, QuotaConfig, ServeConfig, Server, TrafficConfig,
        TrafficReport,
    };
    use sdbms_storage::{DeviceFaults, FaultPlan};
    use sdbms_testkit::{CensusFixture, CENSUS_VIEW};

    banner(
        "E16",
        "request lifecycle: deadlines + circuit breaker vs unguarded, under 5% slow-read faults",
    );

    // The working set deliberately overflows the pool, so queries keep
    // hitting the (fault-injectable) disk for the whole run instead of
    // going quiet after one warm-up pass. Slow faults stall in
    // *simulated* time units — the deterministic clock deadlines are
    // counted in — so the guarded arm's win shows up as typed trips,
    // breaker fast-fails, and a bounded per-request simulated cost,
    // while the unguarded arm silently absorbs every stall.
    const ROWS: usize = 8_000;
    const REQUESTS: usize = 400;
    const SLOW_UNITS: u64 = 400;
    let fixture = || {
        CensusFixture::new()
            .rows(ROWS)
            .pool_pages(64)
            .crash_consistent(false)
            .build()
            .expect("fixture")
    };
    // 4 analysts: analyst 0 is the protected "good" tenant, the rest
    // share a "busy" tenant — the goodput column tracks analyst 0.
    let traffic = |honor| {
        TrafficConfig::new(CENSUS_VIEW)
            .analysts(4)
            .requests_per_analyst(REQUESTS)
            .update_every(0)
            .tenants(&["good", "busy", "busy", "busy"])
            .honor_retry_hints(honor)
            .seed(0xE16)
    };
    let good_completed = |r: &TrafficReport| {
        r.outcomes[0]
            .iter()
            .filter(|o| matches!(o, Outcome::Ok(..)))
            .count() as u64
    };
    let max_backoff = |r: &TrafficReport| {
        r.outcomes
            .iter()
            .flatten()
            .filter_map(|o| match o {
                Outcome::Ok(resp, _) => Some(resp.io.backoff_units),
                Outcome::Rejected { .. } => None,
            })
            .max()
            .unwrap_or(0)
    };

    let mut table = Vec::new();
    let mut entries = Vec::new();
    for guarded in [false, true] {
        let mut cfg = ServeConfig {
            workers: 4,
            queue_capacity: 4_096,
            quota: QuotaConfig::unlimited(),
            ..ServeConfig::default().uncached()
        };
        if guarded {
            // A deadline that admits a clean 32-page scan plus one slow
            // stall but trips on a multi-stall request, and a breaker
            // that opens after a run of consecutive trips.
            cfg.deadline_ops = Some(1_000);
            cfg.breaker = BreakerConfig {
                failure_threshold: 4,
                open_ticks: 50,
                half_open_probes: 2,
            };
        }
        let server = Server::start(fixture(), cfg);
        server.with_dbms_mut(|dbms| {
            dbms.env().injector.set_plan(FaultPlan {
                seed: 0xE16,
                disk: DeviceFaults {
                    slow_read: 0.05,
                    slow_read_units: SLOW_UNITS,
                    ..DeviceFaults::default()
                },
                ..FaultPlan::none()
            });
        });
        // The guarded arm honors retry hints — the satellite contract:
        // a shed analyst backs off the hinted time instead of hammering.
        let report = run_traffic(&server, &traffic(guarded));
        let total = 4 * REQUESTS as u64;
        assert_eq!(
            report.completed + report.budget_tripped + report.shed + report.overloaded,
            total,
            "every request is served or typed-rejected"
        );
        let metrics = server.metrics();
        drop(server.shutdown());

        let label = if guarded { "guarded" } else { "unguarded" };
        table.push(vec![
            label.to_string(),
            us(u128::from(report.latency_us(50.0))),
            us(u128::from(report.latency_us(99.0))),
            us(u128::from(report.latency_us(99.9))),
            format!("{:.0}", report.throughput_rps),
            format!("{}/{}", good_completed(&report), REQUESTS),
            report.budget_tripped.to_string(),
            report.shed.to_string(),
            max_backoff(&report).to_string(),
        ]);
        entries.push(format!(
            "    {{\"mode\": \"{label}\", \"p50_us\": {}, \"p99_us\": {}, \
             \"p999_us\": {}, \"throughput_rps\": {:.1}, \
             \"completed\": {}, \"good_tenant_completed\": {}, \
             \"deadline_tripped\": {}, \"breaker_or_brownout_shed\": {}, \
             \"backoffs_honored\": {}, \"breaker_opened\": {}, \
             \"max_completed_backoff_units\": {}}}",
            report.latency_us(50.0),
            report.latency_us(99.0),
            report.latency_us(99.9),
            report.throughput_rps,
            report.completed,
            good_completed(&report),
            report.budget_tripped,
            report.shed,
            report.backoffs_honored,
            metrics.breaker.opened,
            max_backoff(&report),
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "p50",
                "p99",
                "p99.9",
                "rps",
                "good tenant",
                "tripped",
                "shed",
                "max backoff",
            ],
            &table
        )
    );

    let json = format!(
        "{{\n  \"experiment\": \"e16_lifecycle\",\n  \"rows\": {ROWS},\n  \
         \"requests_per_analyst\": {REQUESTS},\n  \"slow_read\": 0.05,\n  \
         \"slow_read_units\": {SLOW_UNITS},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    match std::fs::write("BENCH_lifecycle.json", &json) {
        Ok(()) => println!("wrote BENCH_lifecycle.json"),
        Err(e) => println!("could not write BENCH_lifecycle.json: {e}"),
    }
}

// Silence the unused-import warning for CmpOp/Layout which are used
// only in some experiment configurations.
#[allow(dead_code)]
fn _use_imports(_: CmpOp, _: Layout) {}
