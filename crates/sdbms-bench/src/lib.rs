//! Shared infrastructure for the experiment harness and Criterion
//! benches: deterministic workload builders and plain-text table
//! rendering (every experiment prints the table EXPERIMENTS.md
//! records).

#![forbid(unsafe_code)]

use sdbms_core::{StatDbms, ViewDefinition};
use sdbms_data::census::{microdata_census, CensusConfig};
use sdbms_data::DataSet;

/// Render an aligned text table.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        out.push_str(&format!("{:-<w$}  ", "", w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

/// Deterministic clean census microdata (no planted errors).
#[must_use]
pub fn clean_micro(rows: usize, seed: u64) -> DataSet {
    microdata_census(&CensusConfig {
        rows,
        seed,
        invalid_fraction: 0.0,
        outlier_fraction: 0.0,
        ..Default::default()
    })
    .expect("census generation is infallible for valid configs")
}

/// A DBMS with `rows` of microdata loaded and materialized as view
/// `"v"` (transposed layout, incremental policy).
#[must_use]
pub fn dbms_with_view(rows: usize, pool_pages: usize) -> StatDbms {
    let mut dbms = StatDbms::new(pool_pages);
    dbms.load_raw(&clean_micro(rows, 1982)).expect("load raw");
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "bench")
        .expect("materialize");
    dbms
}

/// Format a microsecond count human-readably.
#[must_use]
pub fn us(micros: u128) -> String {
    if micros >= 100_000 {
        format!("{:.1} ms", micros as f64 / 1000.0)
    } else {
        format!("{micros} µs")
    }
}

/// Format a ratio as `N.N×`.
#[must_use]
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.1}×", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----"));
    }

    #[test]
    fn workload_builders() {
        let ds = clean_micro(100, 7);
        assert_eq!(ds.len(), 100);
        let dbms = dbms_with_view(50, 128);
        assert_eq!(dbms.view_names(), vec!["v"]);
    }

    #[test]
    fn formatting() {
        assert_eq!(us(500), "500 µs");
        assert_eq!(us(250_000), "250.0 ms");
        assert_eq!(ratio(10.0, 2.0), "5.0×");
        assert_eq!(ratio(1.0, 0.0), "∞");
    }
}
