//! Zone-map pruning + compressed-domain execution on the scan hot
//! path: the pruned predicate scan (`filter_table_rows`) against the
//! seed path (decode every referenced column, evaluate every row), and
//! the run-aware aggregation (`profile_table_column_runs`) against
//! decode-everything profiling, across a selectivity sweep and worker
//! counts.
//!
//! The fixture is a clustered table — exactly the shape statistical
//! archives take after sorting by a stratification variable — so the
//! per-segment zone maps have narrow, refutable bounds. Both paths are
//! proven bit-identical in `tests/parallel_equivalence.rs`; this bench
//! measures only time. Acceptance: ≥5× on the ≤1%-selectivity scan and
//! ≥2× on run-aware aggregation of the RLE column, at 1 and 4 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_columnar::{Compression, TableStore, TransposedFile};
use sdbms_data::dataset::DataSet;
use sdbms_data::schema::{Attribute, Schema};
use sdbms_data::{DataType, Value};
use sdbms_exec::{filter_indices, profile_table_column, profile_table_column_runs, ExecConfig};
use sdbms_relational::{filter_table_rows, CmpOp, Expr, Predicate};
use sdbms_storage::StorageEnv;

/// 100 blocks of 2048 rows: each block spans eight 256-row segments,
/// so an equality predicate on the clustering column refutes 99% of
/// all zone maps.
const BLOCK_ROWS: i64 = 2_048;
const BLOCKS: i64 = 100;

fn clustered_store() -> TransposedFile {
    let schema = Schema::new(vec![
        Attribute::measured("BLOCK", DataType::Int),
        Attribute::measured("X", DataType::Int),
    ])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..BLOCKS * BLOCK_ROWS)
        .map(|i| {
            vec![
                Value::Int(i / BLOCK_ROWS),
                Value::Int((i * 37) % 1_001 - 500),
            ]
        })
        .collect();
    let ds = DataSet::from_rows("clustered", schema.clone(), rows).expect("dataset");
    let env = StorageEnv::new(8_192);
    let mut store = TransposedFile::create_with(
        env.pool.clone(),
        schema,
        &[Compression::Rle, Compression::None],
    )
    .expect("create");
    store.bulk_append(&ds).expect("load");
    store
}

/// The seed scan path: decode every referenced column in full, then
/// evaluate the predicate row by row (morsel-parallel, unpruned).
fn naive_filter(store: &TransposedFile, pred: &Predicate, cfg: &ExecConfig) -> Vec<usize> {
    let schema = store.schema().clone();
    let ref_cols = pred.referenced_columns();
    let names: Vec<&str> = ref_cols.iter().map(String::as_str).collect();
    let proj = schema.project(&names).expect("project");
    let bound = pred.bind(&proj).expect("bind");
    let cols: Vec<Vec<Value>> = names
        .iter()
        .map(|c| store.read_column(c).expect("column"))
        .collect();
    filter_indices::<sdbms_data::DataError, _>(store.len(), cfg, |i| {
        let row: Vec<Value> = cols.iter().map(|c| c[i].clone()).collect();
        Ok(bound.eval(&row))
    })
    .expect("filter")
}

fn bench(c: &mut Criterion) {
    let store = clustered_store();

    let selectivities: Vec<(&str, Predicate)> = vec![
        ("sel_0pct", Predicate::col_eq("BLOCK", -1i64)),
        ("sel_1pct", Predicate::col_eq("BLOCK", 5i64)),
        (
            "sel_50pct",
            Predicate::cmp(Expr::col("BLOCK"), CmpOp::Lt, Expr::lit(BLOCKS / 2)),
        ),
        ("sel_100pct", Predicate::True),
    ];

    let mut group = c.benchmark_group("pruned_scan");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 1_024,
        };
        for (label, pred) in &selectivities {
            group.bench_with_input(
                BenchmarkId::new(format!("naive/{label}"), workers),
                &workers,
                |b, _| b.iter(|| naive_filter(&store, pred, &cfg)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("pruned/{label}"), workers),
                &workers,
                |b, _| b.iter(|| filter_table_rows(&store, pred, &cfg).expect("scan")),
            );
        }
    }
    group.finish();

    // Aggregation over the RLE clustering column: the run-aware path
    // touches O(runs) values instead of O(rows).
    let mut group = c.benchmark_group("run_aware_aggregate");
    group.sample_size(10);
    for workers in [1usize, 4] {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 1_024,
        };
        group.bench_with_input(BenchmarkId::new("decode", workers), &workers, |b, _| {
            b.iter(|| profile_table_column(&store, "BLOCK", &cfg).expect("profile"))
        });
        group.bench_with_input(BenchmarkId::new("runs", workers), &workers, |b, _| {
            b.iter(|| profile_table_column_runs(&store, "BLOCK", &cfg).expect("profile"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
