//! E2 — incremental aggregate maintenance vs eager recompute, by batch
//! size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_data::Value;
use sdbms_storage::StorageEnv;
use sdbms_summary::{
    apply_updates, get_or_compute, AccuracyPolicy, MaintenancePolicy, StatFunction, SummaryDb,
    UpdateDelta,
};

const N: usize = 50_000;

fn seeded_db(base: &[Value]) -> SummaryDb {
    let env = StorageEnv::new(256);
    let db = SummaryDb::create(env.pool).expect("create");
    for f in [
        StatFunction::Count,
        StatFunction::Sum,
        StatFunction::Mean,
        StatFunction::Variance,
    ] {
        get_or_compute(&db, "X", &f, AccuracyPolicy::Exact, &mut || {
            Ok(base.to_vec())
        })
        .expect("seed");
    }
    db
}

fn bench(c: &mut Criterion) {
    let base: Vec<Value> = (0..N)
        .map(|i| Value::Int(((i * 31) % 9973) as i64))
        .collect();
    let mut group = c.benchmark_group("e2_incremental");
    group.sample_size(10);
    for batch in [1usize, 100, 10_000] {
        let deltas: Vec<UpdateDelta> = (0..batch)
            .map(|i| UpdateDelta {
                old: base[i].clone(),
                new: Value::Int(base[i].as_i64().unwrap() + 5),
            })
            .collect();
        let mut updated = base.clone();
        for (i, d) in deltas.iter().enumerate() {
            updated[i] = d.new.clone();
        }
        for (name, policy) in [
            ("incremental", MaintenancePolicy::Incremental),
            ("eager", MaintenancePolicy::EagerRecompute),
        ] {
            group.bench_with_input(BenchmarkId::new(name, batch), &batch, |b, _| {
                b.iter_batched(
                    || seeded_db(&base),
                    |db| {
                        apply_updates(&db, "X", &deltas, policy, &mut || Ok(updated.clone()))
                            .expect("apply")
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
