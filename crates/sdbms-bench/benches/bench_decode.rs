//! F2 — code book decode: join (hash and nested-loop) vs manual
//! lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::clean_micro;
use sdbms_data::CodeBook;
use sdbms_relational::ops;

fn bench(c: &mut Criterion) {
    let cb = CodeBook::figure2_age_group();
    let code_ds = cb.to_dataset();
    let mut group = c.benchmark_group("f2_decode");
    group.sample_size(10);
    for rows in [1_000usize, 10_000] {
        let ds = clean_micro(rows, 42);
        group.bench_with_input(BenchmarkId::new("hash_join", rows), &rows, |b, _| {
            b.iter(|| ops::hash_join(&ds, &code_ds, "AGE_GROUP", "CATEGORY").expect("join"))
        });
        group.bench_with_input(BenchmarkId::new("nested_loop_join", rows), &rows, |b, _| {
            b.iter(|| ops::nested_loop_join(&ds, &code_ds, "AGE_GROUP", "CATEGORY").expect("join"))
        });
        group.bench_with_input(BenchmarkId::new("manual_lookup", rows), &rows, |b, _| {
            b.iter(|| {
                ds.column("AGE_GROUP")
                    .expect("col")
                    .map(|v| cb.decode_value(v).expect("decode"))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
