//! E1 — Summary Database hit vs recompute, per function and data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::dbms_with_view;
use sdbms_core::{AccuracyPolicy, StatFunction};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_cache_hit");
    group.sample_size(20);
    for rows in [1_000usize, 10_000] {
        for f in [
            StatFunction::Mean,
            StatFunction::Median,
            StatFunction::Variance,
        ] {
            // Miss path: fresh DBMS per measurement would be too slow,
            // so measure the miss once via remove-and-recompute through
            // a stale read instead: simplest faithful proxy is a
            // separate benchmark over an unseeded attribute rotation.
            let mut dbms = dbms_with_view(rows, 1024);
            dbms.compute("v", "INCOME", &f, AccuracyPolicy::Exact)
                .expect("seed");
            group.bench_with_input(
                BenchmarkId::new(format!("hit_{}", f.name()), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        dbms.compute("v", "INCOME", &f, AccuracyPolicy::Exact)
                            .expect("hit")
                    });
                },
            );
            // Uncached baseline: full column read + direct computation.
            let mut dbms2 = dbms_with_view(rows, 1024);
            group.bench_with_input(
                BenchmarkId::new(format!("uncached_{}", f.name()), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        let col = dbms2.column("v", "INCOME").expect("col");
                        f.compute(&col).expect("compute")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
