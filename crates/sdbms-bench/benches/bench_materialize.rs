//! E9 — view materialization: re-extract from tape vs read the
//! materialized view.

use criterion::{criterion_group, criterion_main, Criterion};

use sdbms_bench::clean_micro;
use sdbms_columnar::{TableStore, TransposedFile};
use sdbms_data::RawDatabase;
use sdbms_stats::descriptive;
use sdbms_storage::{ArchiveStore, StorageEnv, Tracker};

fn bench(c: &mut Criterion) {
    let ds = clean_micro(10_000, 9);
    let tracker = Tracker::new();
    let archive = std::sync::Arc::new(ArchiveStore::new(tracker));
    let raw = RawDatabase::new(archive);
    raw.store(&ds).expect("store");

    let env = StorageEnv::new(128);
    let store = TransposedFile::from_dataset(env.pool.clone(), &ds).expect("build");

    let mut group = c.benchmark_group("e9_materialize");
    group.sample_size(10);
    group.bench_function("use_via_tape_extract", |b| {
        b.iter(|| {
            let extracted = raw
                .extract("census_microdata", Some(&["INCOME"]), None)
                .expect("extract");
            let (col, _) = extracted.column_f64("INCOME").expect("col");
            descriptive::mean(&col).expect("mean")
        })
    });
    group.bench_function("use_via_materialized_view", |b| {
        b.iter(|| {
            let (col, _) = store.read_column_f64("INCOME").expect("col");
            descriptive::mean(&col).expect("mean")
        })
    });
    group.bench_function("materialize_once", |b| {
        b.iter(|| {
            let env = StorageEnv::new(128);
            let extracted = raw
                .extract("census_microdata", None, None)
                .expect("extract");
            TransposedFile::from_dataset(env.pool, &extracted).expect("build")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
