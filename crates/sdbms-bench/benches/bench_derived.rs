//! E8 — derived-attribute rule cost: local vs regenerate per update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::dbms_with_view;
use sdbms_core::{Expr, Predicate, ScalarFunc, StatDbms};
use sdbms_data::DataType;

fn with_local(rows: usize) -> StatDbms {
    let mut dbms = dbms_with_view(rows, 512);
    dbms.add_derived_column(
        "v",
        "LOG_INCOME",
        DataType::Float,
        Expr::col("INCOME").apply(ScalarFunc::Ln),
    )
    .expect("derived");
    dbms
}

fn with_regen(rows: usize) -> StatDbms {
    let mut dbms = dbms_with_view(rows, 512);
    dbms.add_residuals_column("v", "RESID", "AGE", "INCOME")
        .expect("resid");
    dbms
}

fn one_update(dbms: &mut StatDbms, k: usize) {
    dbms.update_where(
        "v",
        &Predicate::col_eq("PERSON_ID", (k % 500) as i64),
        &[("INCOME", Expr::lit(30_000.0 + k as f64))],
    )
    .expect("update");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_derived");
    group.sample_size(10);
    for rows in [1_000usize, 5_000] {
        let mut local = with_local(rows);
        let mut k = 0usize;
        group.bench_with_input(BenchmarkId::new("local_rule", rows), &rows, |b, _| {
            b.iter(|| {
                k += 1;
                one_update(&mut local, k)
            })
        });
        let mut regen = with_regen(rows);
        let mut k = 0usize;
        group.bench_with_input(BenchmarkId::new("regenerate_rule", rows), &rows, |b, _| {
            b.iter(|| {
                k += 1;
                one_update(&mut regen, k)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
