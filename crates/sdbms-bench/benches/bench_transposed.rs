//! E4 — transposed vs row layout for statistical and informational
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::clean_micro;
use sdbms_columnar::{RowStore, TableStore, TransposedFile};
use sdbms_storage::StorageEnv;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_transposed");
    group.sample_size(10);
    for rows in [2_000usize, 8_000] {
        let ds = clean_micro(rows, 5);
        let env_t = StorageEnv::new(8);
        let t = TransposedFile::from_dataset(env_t.pool.clone(), &ds).expect("build");
        let env_r = StorageEnv::new(8);
        let r = RowStore::from_dataset(env_r.pool.clone(), &ds).expect("build");

        group.bench_with_input(
            BenchmarkId::new("column_scan_transposed", rows),
            &rows,
            |b, _| b.iter(|| t.read_column("INCOME").expect("col")),
        );
        group.bench_with_input(
            BenchmarkId::new("column_scan_rowstore", rows),
            &rows,
            |b, _| b.iter(|| r.read_column("INCOME").expect("col")),
        );
        group.bench_with_input(
            BenchmarkId::new("row_fetch_transposed", rows),
            &rows,
            |b, _| b.iter(|| t.read_row(rows / 2).expect("row")),
        );
        group.bench_with_input(
            BenchmarkId::new("row_fetch_rowstore", rows),
            &rows,
            |b, _| b.iter(|| r.read_row(rows / 2).expect("row")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
