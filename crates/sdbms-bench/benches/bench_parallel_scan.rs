//! Morsel-driven parallel scan: wall-clock scaling across worker
//! counts, on the two hot paths the executor serves — in-memory
//! profiling (pure aggregation CPU) and stored-column profiling
//! (segment decode through the buffer pool).
//!
//! Every configuration computes bit-identical results (asserted in
//! `tests/parallel_equivalence.rs`); this bench measures only time.
//! The acceptance bar is ≥2× at 4 workers on the large in-memory
//! fixture — on a multi-core machine. On a single-core container the
//! times are flat across worker counts, which doubles as the overhead
//! check: the worker pool must not cost anything when it cannot help.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::clean_micro;
use sdbms_columnar::TransposedFile;
use sdbms_data::Value;
use sdbms_exec::{profile_table_column, profile_values, ExecConfig};
use sdbms_storage::StorageEnv;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scan");
    group.sample_size(10);

    // Large in-memory column: the aggregation kernel itself. A
    // realistic statistical column has a bounded value domain (ages,
    // codes, bucketed measurements), which keeps the frequency table
    // small — per-value accumulator work, not table growth, dominates.
    let values: Vec<Value> = (0..400_000i64)
        .map(|i| match i % 31 {
            0 => Value::Missing,
            1 => Value::Int(i % 97),
            _ => Value::Float((i % 211) as f64 / 7.0),
        })
        .collect();
    for workers in WORKER_COUNTS {
        let cfg = ExecConfig {
            workers,
            morsel_rows: 4_096,
        };
        group.bench_with_input(
            BenchmarkId::new("profile_values_400k", workers),
            &workers,
            |b, _| b.iter(|| profile_values(&values, &cfg)),
        );
    }

    // Stored column: morsels fetch and decode segments concurrently.
    // The pool is sized to hold the view, so this measures decode
    // parallelism, not eviction churn.
    let ds = clean_micro(32_000, 5);
    let env = StorageEnv::new(4_096);
    let store = TransposedFile::from_dataset(env.pool.clone(), &ds).expect("build");
    for workers in WORKER_COUNTS {
        let cfg = ExecConfig::with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("profile_stored_column_32k", workers),
            &workers,
            |b, _| b.iter(|| profile_table_column(&store, "AGE", &cfg).expect("profile")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
