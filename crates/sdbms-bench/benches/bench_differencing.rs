//! F5 — finite differencing: the Figure 5 loop, naive vs differenced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_management::{differentiate, AggExpr};
use sdbms_stats::descriptive;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_differencing");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let base: Vec<f64> = (0..n).map(|i| ((i * 31) % 9973) as f64).collect();
        group.bench_with_input(
            BenchmarkId::new("figure5_naive_recompute", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut data = base.clone();
                    let mut result = 0.0;
                    for i in 0..20 {
                        data[2] = (i * 7) as f64;
                        result = descriptive::mean(&data).expect("mean");
                    }
                    result
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("figure5_differenced", n), &n, |b, _| {
            b.iter(|| {
                let mut program = differentiate(&AggExpr::mean()).expect("differentiable");
                program.initialize(&base);
                let mut prev = base[2];
                let mut result = 0.0;
                for i in 0..20 {
                    let next = (i * 7) as f64;
                    program.replace(prev, next);
                    prev = next;
                    result = program.evaluate().expect("eval");
                }
                result
            })
        });
        group.bench_with_input(BenchmarkId::new("variance_program", n), &n, |b, _| {
            let mut program = differentiate(&AggExpr::variance()).expect("differentiable");
            program.initialize(&base);
            let mut k = 0usize;
            b.iter(|| {
                k += 1;
                program.replace(base[k % n], (k % 977) as f64);
                program.evaluate()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
