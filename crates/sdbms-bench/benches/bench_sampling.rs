//! E7 — sampling speed: SRS / reservoir / Bernoulli, and
//! estimate-on-sample vs estimate-on-full.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::clean_micro;
use sdbms_stats::{descriptive, quantile, sample};

fn bench(c: &mut Criterion) {
    let ds = clean_micro(50_000, 77);
    let (incomes, _) = ds.column_f64("INCOME").expect("col");

    let mut group = c.benchmark_group("e7_sampling");
    for k in [500usize, 5_000] {
        group.bench_with_input(BenchmarkId::new("srs_indices", k), &k, |b, &k| {
            b.iter(|| sample::sample_indices(incomes.len(), k, 13).expect("srs"))
        });
        group.bench_with_input(BenchmarkId::new("reservoir", k), &k, |b, &k| {
            b.iter(|| sample::reservoir_sample(incomes.iter().copied(), k, 13))
        });
        group.bench_with_input(BenchmarkId::new("mean_median_on_sample", k), &k, |b, &k| {
            let idx = sample::sample_indices(incomes.len(), k, 13).expect("srs");
            let sampled: Vec<f64> = idx.iter().map(|&i| incomes[i]).collect();
            b.iter(|| {
                (
                    descriptive::mean(&sampled).expect("mean"),
                    quantile::median(&sampled).expect("median"),
                )
            })
        });
    }
    group.bench_function("bernoulli_10pct", |b| {
        b.iter(|| sample::bernoulli_indices(incomes.len(), 0.1, 13).expect("bernoulli"))
    });
    group.bench_function("mean_median_on_full", |b| {
        b.iter(|| {
            (
                descriptive::mean(&incomes).expect("mean"),
                quantile::median(&incomes).expect("median"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
