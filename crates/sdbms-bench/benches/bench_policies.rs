//! E6 — maintenance policy comparison under a mixed read/update
//! workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdbms_bench::dbms_with_view;
use sdbms_core::{AccuracyPolicy, Expr, MaintenancePolicy, Predicate, StatFunction};

const ROWS: usize = 5_000;
const OPS: usize = 40;

fn run_mix(policy: MaintenancePolicy, update_frac: f64) {
    let mut dbms = dbms_with_view(ROWS, 512);
    dbms.set_policy("v", policy).expect("policy");
    let fns = [
        StatFunction::Mean,
        StatFunction::Median,
        StatFunction::Variance,
    ];
    let mut rng = StdRng::seed_from_u64(7);
    for op in 0..OPS {
        if rng.gen::<f64>() < update_frac {
            let id = rng.gen_range(0..ROWS as i64);
            dbms.update_where(
                "v",
                &Predicate::col_eq("PERSON_ID", id),
                &[("INCOME", Expr::lit(1_000.0 + op as f64))],
            )
            .expect("update");
        } else {
            let f = &fns[rng.gen_range(0..fns.len())];
            dbms.compute("v", "INCOME", f, AccuracyPolicy::Exact)
                .expect("compute");
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_policies");
    group.sample_size(10);
    for update_frac in [0.1f64, 0.5] {
        for (name, policy) in [
            ("incremental", MaintenancePolicy::Incremental),
            ("invalidate_lazy", MaintenancePolicy::InvalidateLazy),
            ("eager", MaintenancePolicy::EagerRecompute),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{:.0}%", update_frac * 100.0)),
                &update_frac,
                |b, &f| b.iter(|| run_mix(policy, f)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
