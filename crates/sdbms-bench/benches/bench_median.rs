//! E3 — median maintenance: §4.2 window vs recompute-per-update; window
//! size ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdbms_stats::quantile;
use sdbms_summary::MedianWindow;

const N: usize = 20_000;
const UPDATES: usize = 200;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let base: Vec<f64> = (0..N).map(|_| rng.gen_range(0.0..10_000.0)).collect();
    let updates: Vec<(usize, f64)> = (0..UPDATES)
        .map(|_| (rng.gen_range(0..N), rng.gen_range(0.0..10_000.0)))
        .collect();

    let mut group = c.benchmark_group("e3_median");
    group.sample_size(10);
    for window in [11usize, 101, 1001] {
        group.bench_with_input(BenchmarkId::new("window", window), &window, |b, &window| {
            b.iter(|| {
                let mut data = base.clone();
                let mut w = MedianWindow::new(window);
                w.rebuild(&data);
                let mut med = 0.0;
                for &(i, new) in &updates {
                    let old = data[i];
                    data[i] = new;
                    if !w.replace(old, new) || !w.is_usable() {
                        w.rebuild(&data);
                    }
                    med = w.median().expect("median");
                }
                med
            });
        });
    }
    group.bench_function("recompute_per_update", |b| {
        b.iter(|| {
            let mut data = base.clone();
            let mut med = 0.0;
            for &(i, new) in &updates {
                data[i] = new;
                med = quantile::kth_smallest(&data, (N - 1) / 2).expect("kth");
            }
            med
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
