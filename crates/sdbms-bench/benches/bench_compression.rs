//! E5 — run-length compression columnwise vs rowwise, and segment
//! encodings.

use criterion::{criterion_group, criterion_main, Criterion};

use sdbms_columnar::segment::{decode_segment, encode_segment};
use sdbms_columnar::{rle, Compression};
use sdbms_data::census::{aggregate_census, CensusConfig};
use sdbms_data::{encode_row, Value};

fn bench(c: &mut Criterion) {
    let ds = aggregate_census(&CensusConfig {
        regions: 64,
        ..Default::default()
    })
    .expect("generate");
    let sex: Vec<Value> = ds.column("SEX").expect("col").cloned().collect();
    let pop: Vec<Value> = ds.column("POPULATION").expect("col").cloned().collect();
    let mut row_bytes = Vec::new();
    for row in ds.rows() {
        row_bytes.extend_from_slice(&encode_row(row));
    }

    let mut group = c.benchmark_group("e5_compression");
    group.bench_function("rle_compress_category_column", |b| {
        b.iter(|| rle::compress_values(&sex))
    });
    group.bench_function("rle_compress_measure_column", |b| {
        b.iter(|| rle::compress_values(&pop))
    });
    group.bench_function("rle_compress_rowwise_bytes", |b| {
        b.iter(|| rle::compress_bytes(&row_bytes))
    });
    let seg: Vec<Value> = sex.iter().take(256).cloned().collect();
    for comp in [Compression::None, Compression::Rle, Compression::Dictionary] {
        let encoded = encode_segment(&seg, comp);
        group.bench_function(format!("segment_roundtrip_{comp:?}"), |b| {
            b.iter(|| {
                let buf = encode_segment(&seg, comp);
                decode_segment(&buf).expect("decode");
                buf.len()
            })
        });
        let _ = encoded;
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
