//! E12 — the full exploratory/confirmatory mixed workload, with and
//! without the Summary Database.

use criterion::{criterion_group, criterion_main, Criterion};

use sdbms_bench::dbms_with_view;
use sdbms_core::{AccuracyPolicy, Expr, Predicate, StatFunction};

const ROWS: usize = 2_000;
const DAYS: usize = 5;

fn workload(use_cache: bool) {
    let mut dbms = dbms_with_view(ROWS, 512);
    let queries = [
        ("INCOME", StatFunction::Median),
        ("INCOME", StatFunction::Mean),
        ("AGE", StatFunction::Max),
        ("HOURS_WORKED", StatFunction::Mean),
    ];
    for day in 0..DAYS {
        for (attr, f) in &queries {
            if use_cache {
                dbms.compute("v", attr, f, AccuracyPolicy::Exact)
                    .expect("compute");
            } else {
                let col = dbms.column("v", attr).expect("col");
                let _ = f.compute(&col);
            }
        }
        dbms.update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", (day * 13 % ROWS) as i64),
            &[("INCOME", Expr::lit(25_000.0 + day as f64))],
        )
        .expect("update");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_workload");
    group.sample_size(10);
    group.bench_function("with_summary_db", |b| b.iter(|| workload(true)));
    group.bench_function("without_summary_db", |b| b.iter(|| workload(false)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
