//! E11 — update-history rollback cost vs depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_bench::dbms_with_view;
use sdbms_core::{Expr, Predicate, StatDbms};

const ROWS: usize = 2_000;

fn edited_dbms(depth: usize) -> (StatDbms, u64) {
    let mut dbms = dbms_with_view(ROWS, 512);
    let cp = dbms.checkpoint("v", "start").expect("checkpoint");
    for k in 0..depth {
        dbms.update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", (k % ROWS) as i64),
            &[("HOURS_WORKED", Expr::lit((k % 90) as i64))],
        )
        .expect("update");
    }
    (dbms, cp)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_history");
    group.sample_size(10);
    for depth in [10usize, 100, 500] {
        group.bench_with_input(BenchmarkId::new("rollback", depth), &depth, |b, &depth| {
            b.iter_batched(
                || edited_dbms(depth),
                |(mut dbms, cp)| dbms.rollback_to("v", cp).expect("rollback"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
