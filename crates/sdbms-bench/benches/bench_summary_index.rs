//! E10 — Summary Database secondary index vs full scan, plus the
//! clustered per-attribute prefix access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sdbms_storage::StorageEnv;
use sdbms_summary::{Entry, Freshness, StatFunction, SummaryDb, SummaryValue};

fn filled_db(entries: usize) -> SummaryDb {
    let env = StorageEnv::new(128);
    let db = SummaryDb::create(env.pool).expect("create");
    for i in 0..entries {
        db.put(&Entry {
            attribute: format!("ATTR_{:04}", i / 8),
            function: StatFunction::Quantile((i % 8 * 100) as u16),
            result: SummaryValue::Scalar(i as f64),
            freshness: Freshness::Fresh,
            aux: None,
            updates_since_refresh: 0,
        })
        .expect("put");
    }
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_summary_index");
    for entries in [64usize, 1024] {
        let db = filled_db(entries);
        let attr = format!("ATTR_{:04}", entries / 16);
        let f = StatFunction::Quantile(300);
        group.bench_with_input(
            BenchmarkId::new("indexed_lookup", entries),
            &entries,
            |b, _| b.iter(|| db.lookup(&attr, &f).expect("lookup")),
        );
        group.bench_with_input(
            BenchmarkId::new("full_scan_lookup", entries),
            &entries,
            |b, _| {
                b.iter(|| {
                    db.all_entries()
                        .expect("scan")
                        .into_iter()
                        .find(|e| e.attribute == attr && e.function == f)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("clustered_attribute_prefix", entries),
            &entries,
            |b, _| b.iter(|| db.entries_for_attribute(&attr).expect("prefix")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
