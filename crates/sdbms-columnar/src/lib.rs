//! # sdbms-columnar — transposed files and compression
//!
//! §2.6 of the paper concludes that "the transposed file structure
//! appears to be the best all-around storage structure for statistical
//! data sets": exploratory/confirmatory operations read a few columns
//! of every row, so storing each column contiguously minimizes page
//! I/O, and run-length compression works *down* a column where category
//! cross-products produce long runs. The cost is the "informational"
//! query (one row, all columns), which must now touch one file per
//! column.
//!
//! - [`store`] — the [`store::TableStore`] trait both layouts
//!   implement, so the DBMS core can reorganize a live view.
//! - [`rowstore`] — the conventional row layout (baseline of
//!   experiment E4).
//! - [`transposed`] — one segment-chain file per column.
//! - [`segment`] — the segment encoding (raw / RLE / dictionary).
//! - [`rle`] — run-length codecs and the column-vs-row compression
//!   ratio measurements of experiment E5.
//! - [`zonemap`] — per-segment statistics for predicate pruning and
//!   run-aware (compressed-domain) aggregation.
//! - [`batch`] — typed column batches ([`batch::ColumnBatch`]) decoded
//!   straight from segment bytes, the unit the vectorized kernels in
//!   `sdbms-exec` consume.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod rle;
pub mod rowstore;
pub mod segment;
pub mod store;
pub mod transposed;
pub mod zonemap;

pub use batch::{decode_batch, decode_batch_range, BatchValues, ColumnBatch};
pub use rle::RunCursor;
pub use rowstore::RowStore;
pub use segment::{Compression, SEGMENT_ROWS};
pub use store::{Layout, TableStore};
pub use transposed::TransposedFile;
pub use zonemap::{ZoneMap, ZONE_DISTINCT_CAP};

/// Read a little-endian u16 at `pos`, or fail with a decode error —
/// the bounds check and the width conversion are one fallible step, so
/// codecs never need an infallible-looking `try_into().unwrap()`.
pub(crate) fn read_u16(
    buf: &[u8],
    pos: usize,
    what: &'static str,
) -> Result<u16, sdbms_data::DataError> {
    match buf.get(pos..pos + 2) {
        Some([a, b]) => Ok(u16::from_le_bytes([*a, *b])),
        _ => Err(sdbms_data::DataError::Decode(what)),
    }
}
