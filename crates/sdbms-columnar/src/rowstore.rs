//! Row-oriented view storage: one heap record per row.
//!
//! This is the layout a conventional DBMS gives you and the baseline
//! experiment E4 compares transposed files against: informational
//! queries (one row, all columns) cost one record fetch, but
//! statistical queries (one column, all rows) must read *every page of
//! the file*.

use std::sync::Arc;

use sdbms_data::{decode_row, encode_row, DataError, DataSet, Schema, Value};
use sdbms_storage::{BufferPool, HeapFile, Rid};

use crate::store::{Result, TableStore};

/// A view stored as whole-row records in a heap file.
pub struct RowStore {
    schema: Schema,
    file: HeapFile,
    /// Row index → record id (updates may move records).
    rids: Vec<Rid>,
}

impl std::fmt::Debug for RowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowStore")
            .field("rows", &self.rids.len())
            .field("pages", &self.file.page_count())
            .finish()
    }
}

impl RowStore {
    /// Create an empty row store.
    pub fn create(pool: Arc<BufferPool>, schema: Schema) -> Result<Self> {
        Ok(RowStore {
            schema,
            file: HeapFile::create(pool).map_err(DataError::Storage)?,
            rids: Vec::new(),
        })
    }

    /// Bulk-load a data set.
    pub fn from_dataset(pool: Arc<BufferPool>, ds: &DataSet) -> Result<Self> {
        let mut store = Self::create(pool, ds.schema().clone())?;
        for row in ds.rows() {
            store.append_row(row.clone())?;
        }
        Ok(store)
    }

    /// Number of disk pages occupied.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }

    fn rid(&self, row: usize) -> Result<Rid> {
        self.rids.get(row).copied().ok_or(DataError::NoSuchRow(row))
    }
}

impl TableStore for RowStore {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.rids.len()
    }

    fn read_column(&self, attribute: &str) -> Result<Vec<Value>> {
        let col = self.schema.require(attribute)?;
        // Sequential scan of the whole file — every page is touched even
        // though one column is wanted. Scan order is page order, so we
        // map rids back to row positions to return values in row order.
        let mut by_rid: std::collections::HashMap<Rid, usize> =
            self.rids.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let mut out = vec![Value::Missing; self.rids.len()];
        for rec in self.file.scan() {
            let (rid, bytes) = rec.map_err(DataError::Storage)?;
            if let Some(row_idx) = by_rid.remove(&rid) {
                let row = decode_row(&bytes)?;
                out[row_idx] = row
                    .get(col)
                    .cloned()
                    .ok_or(DataError::Decode("row shorter than schema"))?;
            }
        }
        if !by_rid.is_empty() {
            return Err(DataError::Decode("row store directory out of sync"));
        }
        Ok(out)
    }

    fn read_column_range(&self, attribute: &str, start: usize, len: usize) -> Result<Vec<Value>> {
        let col = self.schema.require(attribute)?;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.rids.len())
            .ok_or(DataError::NoSuchRow(start.saturating_add(len).max(1) - 1))?;
        // Fetch each row's record directly by rid — a range read touches
        // only the range's records, not every page like read_column.
        let mut out = Vec::with_capacity(len);
        for row in start..end {
            let mut vals = self.read_row(row)?;
            if col >= vals.len() {
                return Err(DataError::Decode("row shorter than schema"));
            }
            out.push(vals.swap_remove(col));
        }
        Ok(out)
    }

    fn read_row(&self, row: usize) -> Result<Vec<Value>> {
        let rid = self.rid(row)?;
        let bytes = self.file.get(rid).map_err(DataError::Storage)?;
        decode_row(&bytes)
    }

    fn data_page_ids(&self) -> Vec<sdbms_storage::PageId> {
        self.file.pages()
    }

    fn get_cell(&self, row: usize, attribute: &str) -> Result<Value> {
        let col = self.schema.require(attribute)?;
        Ok(self.read_row(row)?.swap_remove(col))
    }

    fn set_cell(&mut self, row: usize, attribute: &str, value: Value) -> Result<Value> {
        let col = self.schema.require(attribute)?;
        let attr = self.schema.attribute_at(col);
        if !value.conforms_to(attr.dtype) {
            return Err(DataError::TypeMismatch {
                attribute: attr.name.clone(),
                expected: "declared attribute type",
                got: value.type_name(),
            });
        }
        let mut vals = self.read_row(row)?;
        let old = std::mem::replace(&mut vals[col], value);
        let rid = self.rid(row)?;
        let new_rid = self
            .file
            .update(rid, &encode_row(&vals))
            .map_err(DataError::Storage)?;
        self.rids[row] = new_rid;
        Ok(old)
    }

    fn append_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.schema.check_row(&row)?;
        let rid = self
            .file
            .insert(&encode_row(&row))
            .map_err(DataError::Storage)?;
        self.rids.push(rid);
        Ok(())
    }

    fn boxed_clone(&self) -> Result<Box<dyn TableStore + Send + Sync>> {
        // Shadow copy onto fresh pages; the original's are never
        // written, which is what makes copy-on-write installs atomic.
        let ds = self.to_dataset("shadow")?;
        Ok(Box::new(Self::from_dataset(self.file.pool().clone(), &ds)?))
    }

    fn add_column(&mut self, attr: sdbms_data::Attribute, values: Vec<Value>) -> Result<()> {
        if values.len() != self.rids.len() {
            return Err(DataError::ArityMismatch {
                expected: self.rids.len(),
                got: values.len(),
            });
        }
        let new_schema = self.schema.with_appended(attr)?;
        // Rewrite every record with the extra value (row layout pays
        // the full price for schema growth).
        for (i, v) in values.into_iter().enumerate() {
            let mut row = self.read_row(i)?;
            row.push(v);
            new_schema.check_row(&row)?;
            let rid = self.rids[i];
            let new_rid = self
                .file
                .update(rid, &encode_row(&row))
                .map_err(DataError::Storage)?;
            self.rids[i] = new_rid;
        }
        self.schema = new_schema;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_data::census::figure1;
    use sdbms_storage::StorageEnv;

    fn store() -> RowStore {
        let env = StorageEnv::new(64);
        RowStore::from_dataset(env.pool, &figure1()).unwrap()
    }

    #[test]
    fn roundtrip_figure1() {
        let s = store();
        assert_eq!(s.len(), 9);
        let ds = s.to_dataset("check").unwrap();
        assert_eq!(ds.rows(), figure1().rows());
    }

    #[test]
    fn read_column_in_row_order() {
        let s = store();
        let pops = s.read_column("POPULATION").unwrap();
        assert_eq!(pops[0], Value::Int(12_300_347));
        assert_eq!(pops[8], Value::Int(2_143_924));
        let (nums, skipped) = s.read_column_f64("POPULATION").unwrap();
        assert_eq!(nums.len(), 9);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn set_cell_roundtrip() {
        let mut s = store();
        let old = s.set_cell(0, "POPULATION", Value::Int(1)).unwrap();
        assert_eq!(old, Value::Int(12_300_347));
        assert_eq!(s.get_cell(0, "POPULATION").unwrap(), Value::Int(1));
        // Type check enforced.
        assert!(s.set_cell(0, "POPULATION", Value::Float(1.0)).is_err());
        // Missing allowed anywhere.
        s.set_cell(1, "POPULATION", Value::Missing).unwrap();
        assert_eq!(s.get_cell(1, "POPULATION").unwrap(), Value::Missing);
    }

    #[test]
    fn range_reads_match_full_column() {
        let s = store();
        let full = s.read_column("POPULATION").unwrap();
        for (start, len) in [(0, 9), (3, 4), (8, 1), (4, 0)] {
            let got = s.read_column_range("POPULATION", start, len).unwrap();
            assert_eq!(got, full[start..start + len], "range ({start}, {len})");
        }
        assert!(s.read_column_range("POPULATION", 5, 5).is_err());
        assert!(s.read_column_range("NOPE", 0, 1).is_err());
    }

    #[test]
    fn bad_row_and_attr_errors() {
        let mut s = store();
        assert!(s.read_row(99).is_err());
        assert!(s.read_column("NOPE").is_err());
        assert!(s.append_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn boxed_clone_copies_data_onto_fresh_pages() {
        let s = store();
        let mut shadow = s.boxed_clone().unwrap();
        assert_eq!(shadow.len(), s.len());
        assert_eq!(shadow.store_generation(), 0, "row layout tracks none");
        let s_pages: std::collections::HashSet<_> = s.data_page_ids().into_iter().collect();
        assert!(shadow.data_page_ids().iter().all(|p| !s_pages.contains(p)));
        let before = s.get_cell(2, "POPULATION").unwrap();
        shadow.set_cell(2, "POPULATION", Value::Int(0)).unwrap();
        assert_eq!(s.get_cell(2, "POPULATION").unwrap(), before);
    }

    #[test]
    fn many_rows_with_moved_updates() {
        let env = StorageEnv::new(32);
        let mut s = RowStore::create(env.pool, figure1().schema().clone()).unwrap();
        for i in 0..500i64 {
            s.append_row(vec![
                Value::Str("M".into()),
                Value::Str("W".into()),
                Value::Code(1),
                Value::Int(i),
                Value::Int(i * 2),
            ])
            .unwrap();
        }
        // Grow row 3's SEX string so the record has to move.
        s.set_cell(3, "SEX", Value::Str("a much longer marker string".into()))
            .unwrap();
        assert_eq!(
            s.get_cell(3, "SEX").unwrap(),
            Value::Str("a much longer marker string".into())
        );
        assert_eq!(s.get_cell(3, "POPULATION").unwrap(), Value::Int(3));
        assert_eq!(s.len(), 500);
        // Column read still aligned after the move.
        let pops = s.read_column("POPULATION").unwrap();
        assert_eq!(pops[3], Value::Int(3));
        assert_eq!(pops[499], Value::Int(499));
    }
}
