//! Run-length encoding of value sequences.
//!
//! §2.6: "run-length compression techniques are more likely to improve
//! storage efficiency when they are applied down a column rather than
//! across a row" — category columns (the cross-product key of a
//! statistical data set) are long runs of identical values when the
//! data is in cross-product order. Experiment E5 measures exactly this
//! columnwise-vs-rowwise asymmetry, using [`compress_values`] for
//! columns and [`compress_bytes`] for raw row images.

use sdbms_data::{DataError, Value};

/// Encode a sequence of values as `(run-length, value)` pairs.
///
/// Format: `u16 n_runs`, then per run `u16 len` + one encoded value.
/// Runs group by [`Value::group_eq`], so NaN runs with NaN and Missing
/// with Missing.
#[must_use]
pub fn compress_values(values: &[Value]) -> Vec<u8> {
    let mut runs: Vec<(u16, &Value)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((len, rv)) if *len < u16::MAX && rv.group_eq(v) => *len += 1,
            _ => runs.push((1, v)),
        }
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(&(runs.len() as u16).to_le_bytes());
    for (len, v) in runs {
        buf.extend_from_slice(&len.to_le_bytes());
        v.encode(&mut buf);
    }
    buf
}

/// Decode [`compress_values`] output.
pub fn decompress_values(buf: &[u8]) -> Result<Vec<Value>, DataError> {
    let mut pos = 0usize;
    let n_runs = crate::read_u16(buf, 0, "rle header truncated")? as usize;
    pos += 2;
    let mut out = Vec::new();
    for _ in 0..n_runs {
        let len = crate::read_u16(buf, pos, "rle run truncated")? as usize;
        pos += 2;
        let v = Value::decode(buf, &mut pos)?;
        out.extend(std::iter::repeat_with(|| v.clone()).take(len));
    }
    if pos != buf.len() {
        return Err(DataError::Decode("trailing bytes after rle runs"));
    }
    Ok(out)
}

/// Streaming iterator over the `(value, run-length)` pairs of a
/// [`compress_values`] body — the compressed-domain read path.
///
/// Unlike [`decompress_values`], the cursor never materializes a
/// `Vec<Value>`: run-aware consumers (zone-map builders, `(value, n)`
/// accumulators) decode one representative value per run and process
/// the run length arithmetically, turning O(rows) work into O(runs).
///
/// Contract: concatenating each yielded value `len` times reproduces
/// the original sequence exactly. Run boundaries are an encoding
/// artifact — consumers must not assume adjacent runs hold
/// non-[`Value::group_eq`] values (encoders split runs at `u16::MAX`).
#[derive(Debug)]
pub struct RunCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    remaining: usize,
}

impl<'a> RunCursor<'a> {
    /// Open a cursor over a [`compress_values`] body. Fails fast on a
    /// truncated header; per-run damage surfaces while iterating.
    pub fn new(buf: &'a [u8]) -> Result<RunCursor<'a>, DataError> {
        let n_runs = crate::read_u16(buf, 0, "rle header truncated")? as usize;
        Ok(RunCursor {
            buf,
            pos: 2,
            remaining: n_runs,
        })
    }
}

impl Iterator for RunCursor<'_> {
    type Item = Result<(Value, usize), DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return if self.pos == self.buf.len() {
                None
            } else {
                self.remaining = usize::MAX; // poison: report once
                Some(Err(DataError::Decode("trailing bytes after rle runs")))
            };
        }
        if self.remaining == usize::MAX {
            return None;
        }
        self.remaining -= 1;
        let len = match crate::read_u16(self.buf, self.pos, "rle run truncated") {
            Ok(len) => len as usize,
            Err(e) => {
                self.remaining = 0;
                self.pos = self.buf.len();
                return Some(Err(e));
            }
        };
        self.pos += 2;
        match Value::decode(self.buf, &mut self.pos) {
            Ok(v) => Some(Ok((v, len))),
            Err(e) => {
                self.remaining = 0;
                self.pos = self.buf.len();
                Some(Err(e))
            }
        }
    }
}

/// Byte-level RLE (used to measure rowwise compression of row images):
/// `(u8 run_len, u8 byte)` pairs, runs capped at 255.
#[must_use]
pub fn compress_bytes(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let mut len = 1usize;
        while i + len < bytes.len() && bytes[i + len] == b && len < 255 {
            len += 1;
        }
        out.push(len as u8);
        out.push(b);
        i += len;
    }
    out
}

/// Decode [`compress_bytes`] output.
pub fn decompress_bytes(buf: &[u8]) -> Result<Vec<u8>, DataError> {
    if !buf.len().is_multiple_of(2) {
        return Err(DataError::Decode("byte-rle input has odd length"));
    }
    let mut out = Vec::new();
    for pair in buf.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    Ok(out)
}

/// `uncompressed_len / compressed_len` for a value sequence under
/// [`compress_values`] (uncompressed = raw encoded values).
#[must_use]
pub fn column_compression_ratio(values: &[Value]) -> f64 {
    let mut raw = Vec::new();
    for v in values {
        v.encode(&mut raw);
    }
    let compressed = compress_values(values);
    if compressed.is_empty() {
        return 1.0;
    }
    raw.len() as f64 / compressed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_runs() {
        let vals: Vec<Value> = std::iter::repeat_n(Value::Str("M".into()), 500)
            .chain(std::iter::repeat_n(Value::Str("F".into()), 500))
            .collect();
        let buf = compress_values(&vals);
        assert!(
            buf.len() < 40,
            "two runs should compress tiny: {}",
            buf.len()
        );
        assert_eq!(decompress_values(&buf).unwrap(), vals);
    }

    #[test]
    fn roundtrip_no_runs() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let buf = compress_values(&vals);
        assert_eq!(decompress_values(&buf).unwrap(), vals);
    }

    #[test]
    fn empty_roundtrip() {
        let buf = compress_values(&[]);
        assert_eq!(decompress_values(&buf).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn missing_and_nan_run_together() {
        let vals = vec![
            Value::Missing,
            Value::Missing,
            Value::Float(f64::NAN),
            Value::Float(f64::NAN),
        ];
        let buf = compress_values(&vals);
        let out = decompress_values(&buf).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out[0].is_missing() && out[1].is_missing());
        assert!(matches!(out[2], Value::Float(x) if x.is_nan()));
        // 2 runs only.
        assert_eq!(u16::from_le_bytes([buf[0], buf[1]]), 2);
    }

    #[test]
    fn long_runs_split_at_u16_max() {
        let vals: Vec<Value> = std::iter::repeat_n(Value::Code(1), 70_000).collect();
        let buf = compress_values(&vals);
        assert_eq!(decompress_values(&buf).unwrap().len(), 70_000);
    }

    #[test]
    fn byte_rle_roundtrip() {
        let data = [0u8, 0, 0, 1, 2, 2, 2, 2, 2, 3];
        let c = compress_bytes(&data);
        assert_eq!(decompress_bytes(&c).unwrap(), data);
        assert_eq!(compress_bytes(&[]), Vec::<u8>::new());
        let long = vec![7u8; 1000];
        assert_eq!(decompress_bytes(&compress_bytes(&long)).unwrap(), long);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decompress_values(&[5]).is_err());
        assert!(decompress_values(&[1, 0, 2, 0]).is_err());
        assert!(decompress_bytes(&[1]).is_err());
        let mut ok = compress_values(&[Value::Int(1)]);
        ok.push(9);
        assert!(decompress_values(&ok).is_err());
    }

    #[test]
    fn ratio_reflects_redundancy() {
        let runs: Vec<Value> = std::iter::repeat_n(Value::Code(3), 1000).collect();
        assert!(column_compression_ratio(&runs) > 100.0);
        let unique: Vec<Value> = (0..1000).map(Value::Int).collect();
        assert!(
            column_compression_ratio(&unique) < 1.0,
            "overhead on unique data"
        );
    }

    #[test]
    fn run_cursor_yields_exact_runs() {
        let vals = vec![
            Value::Code(7),
            Value::Code(7),
            Value::Missing,
            Value::Int(3),
            Value::Int(3),
            Value::Int(3),
        ];
        let buf = compress_values(&vals);
        let runs: Vec<(Value, usize)> = RunCursor::new(&buf)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], (Value::Code(7), 2));
        assert!(runs[1].0.is_missing() && runs[1].1 == 1);
        assert_eq!(runs[2], (Value::Int(3), 3));
        // Expanding the runs reproduces the sequence.
        let expanded: Vec<Value> = runs
            .iter()
            .flat_map(|(v, n)| std::iter::repeat_n(v.clone(), *n))
            .collect();
        assert_eq!(expanded, vals);
    }

    #[test]
    fn run_cursor_surfaces_damage_once() {
        let good = compress_values(&[Value::Int(1), Value::Int(2)]);
        // Truncation mid-run.
        let errs: Vec<_> = RunCursor::new(&good[..good.len() - 1]).unwrap().collect();
        assert!(errs.last().unwrap().is_err());
        // Trailing garbage.
        let mut junk = good.clone();
        junk.push(0xAB);
        let mut cursor = RunCursor::new(&junk).unwrap();
        assert!(cursor.next().unwrap().is_ok());
        assert!(cursor.next().unwrap().is_ok());
        assert!(cursor.next().unwrap().is_err());
        assert!(cursor.next().is_none());
        // Truncated header.
        assert!(RunCursor::new(&[9]).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_value_rle_roundtrip(codes in proptest::collection::vec(0u32..5, 0..400)) {
            let vals: Vec<Value> = codes.into_iter().map(Value::Code).collect();
            let buf = compress_values(&vals);
            proptest::prop_assert_eq!(decompress_values(&buf).unwrap(), vals);
        }

        #[test]
        fn prop_byte_rle_roundtrip(bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..600)) {
            let c = compress_bytes(&bytes);
            proptest::prop_assert_eq!(decompress_bytes(&c).unwrap(), bytes);
        }
    }
}
