//! The common interface of view storage layouts.
//!
//! A concrete view lives on disk in either a row layout
//! ([`crate::rowstore::RowStore`]) or a transposed layout
//! ([`crate::transposed::TransposedFile`]). The DBMS core talks to both
//! through [`TableStore`], which is also what lets the access-pattern
//! tracker swap layouts under a live view (§2.3's "intelligent access
//! methods that … dynamically reorganize the storage structures").

use sdbms_data::{DataError, DataSet, Schema, Value};
use sdbms_storage::PageId;

use crate::batch::ColumnBatch;
use crate::zonemap::ZoneMap;

/// Result alias matching the data-layer error type.
pub type Result<T> = std::result::Result<T, DataError>;

/// On-disk storage of one flat-file view.
pub trait TableStore {
    /// The view's schema.
    fn schema(&self) -> &Schema;

    /// Number of rows.
    fn len(&self) -> usize;

    /// True if the store holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one full column (the *statistical* access pattern: a few
    /// columns, every row).
    fn read_column(&self, attribute: &str) -> Result<Vec<Value>>;

    /// Read `len` values of one column starting at row `start` — the
    /// morsel-sized unit of a parallel scan. The default implementation
    /// reads the whole column and slices it; layouts override this to
    /// touch only the pages that hold the range.
    fn read_column_range(&self, attribute: &str, start: usize, len: usize) -> Result<Vec<Value>> {
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.len())
            .ok_or(DataError::NoSuchRow(start.saturating_add(len).max(1) - 1))?;
        let col = self.read_column(attribute)?;
        Ok(col[start..end].to_vec())
    }

    /// Zone-map statistics covering rows `[start, start + len)` of one
    /// column, if the layout maintains them and every overlapping
    /// segment's map is present and readable. `None` means "no
    /// statistics" — callers must scan unpruned, never guess. The
    /// default layout keeps no maps.
    fn range_stats(&self, _attribute: &str, _start: usize, _len: usize) -> Option<ZoneMap> {
        None
    }

    /// Read rows `[start, start + len)` of one column as `(value,
    /// run-length)` pairs whose expansion equals
    /// [`TableStore::read_column_range`] exactly. Run boundaries are
    /// layout-dependent and carry no meaning; run-aware consumers must
    /// produce identical results for any partition of the sequence
    /// into constant runs. The default coalesces a decoded range.
    fn read_column_runs(
        &self,
        attribute: &str,
        start: usize,
        len: usize,
    ) -> Result<Vec<(Value, usize)>> {
        let vals = self.read_column_range(attribute, start, len)?;
        let mut out: Vec<(Value, usize)> = Vec::new();
        for v in vals {
            match out.last_mut() {
                Some((rv, n)) if rv.group_eq(&v) => *n += 1,
                _ => out.push((v, 1)),
            }
        }
        Ok(out)
    }

    /// Read rows `[start, start + len)` of one column as a typed
    /// [`ColumnBatch`] whose expansion
    /// ([`ColumnBatch::to_values`]) equals
    /// [`TableStore::read_column_range`] exactly, bit for bit. This is
    /// the vectorized scan unit: segmented layouts override it to
    /// decode straight from segment bytes with no per-row `Value`
    /// materialization; the default wraps the scalar range read.
    fn read_column_batch(&self, attribute: &str, start: usize, len: usize) -> Result<ColumnBatch> {
        Ok(ColumnBatch::from_values(
            &self.read_column_range(attribute, start, len)?,
        ))
    }

    /// Seal the store for scanning: capture CRC-verified page images
    /// so subsequent batch reads bypass the buffer pool entirely (the
    /// simulated-mmap read path). Returns `true` if the layout
    /// supports sealing and the seal is now in place; the default
    /// layout does not. Any mutation unseals. Errors (corrupt pages,
    /// injected faults during the capture) leave the store unsealed —
    /// callers degrade to the buffer-pool path.
    fn seal_for_scan(&mut self) -> Result<bool> {
        Ok(false)
    }

    /// True while a scan seal from [`TableStore::seal_for_scan`] is in
    /// place (reads are served from the mapped images).
    fn scan_sealed(&self) -> bool {
        false
    }

    /// Read one full row (the *informational* access pattern: every
    /// column, one row).
    fn read_row(&self, row: usize) -> Result<Vec<Value>>;

    /// Read one cell.
    fn get_cell(&self, row: usize, attribute: &str) -> Result<Value>;

    /// Overwrite one cell, returning the previous value.
    fn set_cell(&mut self, row: usize, attribute: &str, value: Value) -> Result<Value>;

    /// Append one row.
    fn append_row(&mut self, row: Vec<Value>) -> Result<()>;

    /// Append a whole new column (derived attributes, §3.2). `values`
    /// must have exactly `len()` entries.
    fn add_column(&mut self, attr: sdbms_data::Attribute, values: Vec<Value>) -> Result<()>;

    /// Materialize the whole store as an in-memory data set.
    fn to_dataset(&self, name: &str) -> Result<DataSet> {
        let mut ds = DataSet::new(name, self.schema().clone());
        for i in 0..self.len() {
            ds.push_row(self.read_row(i)?)?;
        }
        Ok(ds)
    }

    /// Disk pages holding the view's encoded data records (not zone
    /// maps). Exposed for scrubbing and targeted fault injection;
    /// layouts that don't track their pages report none, and the
    /// scrubber skips page-level verification for them.
    fn data_page_ids(&self) -> Vec<PageId> {
        Vec::new()
    }

    /// Disk pages holding persisted zone-map records, disjoint from
    /// data pages. Layouts without maps report none.
    fn zone_map_page_ids(&self) -> Vec<PageId> {
        Vec::new()
    }

    /// Rebuild every persisted zone map from the (intact) encoded
    /// segment data, abandoning whatever maps were there — the repair
    /// for damaged zone-map pages, whose authority is the segment
    /// data. Returns the number of maps written. Layouts without maps
    /// do nothing.
    fn rebuild_zone_maps(&mut self) -> Result<usize> {
        Ok(0)
    }

    /// Number of encoded segments backing one column (0 when the
    /// layout is not segmented or the attribute is unknown).
    fn segment_count(&self, _attribute: &str) -> usize {
        0
    }

    /// Raw encoded bytes of one segment of one column, or `None` when
    /// the layout is not segmented / the index is out of range.
    /// Segment encoding is deterministic, so two stores bulk-loaded
    /// from equal data and edited identically compare byte-for-byte —
    /// the oracle the differential repair tests rely on.
    fn encoded_segment(&self, _attribute: &str, _segment: usize) -> Result<Option<Vec<u8>>> {
        Ok(None)
    }

    /// Deep-copy this store into freshly allocated pages of the same
    /// buffer pool, carrying the data, layout, and (for layouts that
    /// track one) a *successor* store generation. This is the shadow
    /// half of copy-on-write versioning: a transactional batch clones
    /// the live store, applies its staged operations to the clone, and
    /// installs it atomically — the original's pages are never written,
    /// which is what makes batch commit all-or-nothing under any crash.
    fn boxed_clone(&self) -> Result<Box<dyn TableStore + Send + Sync>>;

    /// The version generation this store's persisted artifacts (zone
    /// maps) are stamped with. Layouts without generation tracking
    /// report 0.
    fn store_generation(&self) -> u64 {
        0
    }

    /// One column as `(numeric values, skipped)` — the hot path for
    /// statistical functions.
    fn read_column_f64(&self, attribute: &str) -> Result<(Vec<f64>, usize)> {
        let vals = self.read_column(attribute)?;
        let mut out = Vec::with_capacity(vals.len());
        let mut skipped = 0usize;
        for v in &vals {
            match v.as_f64() {
                Some(x) => out.push(x),
                None => skipped += 1,
            }
        }
        Ok((out, skipped))
    }
}

/// Which layout a store uses (reported by the core for diagnostics and
/// reorganization decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Records hold whole rows (heap file of row images).
    Row,
    /// One file per column (transposed files, §2.6).
    Transposed,
}

impl std::fmt::Display for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Layout::Row => "row",
            Layout::Transposed => "transposed",
        })
    }
}
