//! Column segments: the unit of transposed-file storage.
//!
//! A segment packs up to [`SEGMENT_ROWS`] consecutive values of one
//! column into one storage record, under one of three encodings:
//! raw, run-length ([`crate::rle`]), or dictionary. The per-column
//! encoding choice is the knob experiment E5 sweeps.

use std::collections::HashMap;

use sdbms_data::{DataError, Value};

use crate::rle;

/// Maximum values per segment. 256 keeps raw float segments
/// (256 × 9 B ≈ 2.3 KiB) comfortably inside one storage record.
pub const SEGMENT_ROWS: usize = 256;

/// How a column's segments are encoded on storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compression {
    /// Values stored back to back.
    None,
    /// Run-length encoded (best for sorted / category columns).
    Rle,
    /// Dictionary encoded (best for low-cardinality strings).
    Dictionary,
}

/// Encode `values` as one segment record.
#[must_use]
pub fn encode_segment(values: &[Value], compression: Compression) -> Vec<u8> {
    debug_assert!(values.len() <= SEGMENT_ROWS);
    let mut buf = Vec::new();
    buf.extend_from_slice(&(values.len() as u16).to_le_bytes());
    match compression {
        Compression::None => {
            buf.push(0);
            for v in values {
                v.encode(&mut buf);
            }
        }
        Compression::Rle => {
            buf.push(1);
            buf.extend_from_slice(&rle::compress_values(values));
        }
        Compression::Dictionary => {
            buf.push(2);
            let mut dict: Vec<&Value> = Vec::new();
            let mut index: HashMap<String, u16> = HashMap::new();
            let mut codes: Vec<u16> = Vec::with_capacity(values.len());
            for v in values {
                // Keyed on the full debug form so distinct values never
                // collide; group_eq semantics preserved by exact bytes.
                let key = format!("{v:?}");
                let code = *index.entry(key).or_insert_with(|| {
                    dict.push(v);
                    (dict.len() - 1) as u16
                });
                codes.push(code);
            }
            buf.extend_from_slice(&(dict.len() as u16).to_le_bytes());
            for v in dict {
                v.encode(&mut buf);
            }
            for c in codes {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    buf
}

/// Decode a segment record back into values.
pub fn decode_segment(buf: &[u8]) -> Result<Vec<Value>, DataError> {
    let n = crate::read_u16(buf, 0, "segment header truncated")? as usize;
    let tag = *buf.get(2).ok_or(DataError::Decode("segment tag missing"))?;
    let body = &buf[3..];
    let out = match tag {
        0 => {
            let mut pos = 0usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(Value::decode(body, &mut pos)?);
            }
            if pos != body.len() {
                return Err(DataError::Decode("trailing bytes in raw segment"));
            }
            out
        }
        1 => rle::decompress_values(body)?,
        2 => {
            let dict_size = crate::read_u16(body, 0, "dict size truncated")? as usize;
            let mut pos = 2usize;
            let mut dict = Vec::with_capacity(dict_size);
            for _ in 0..dict_size {
                dict.push(Value::decode(body, &mut pos)?);
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let code = crate::read_u16(body, pos, "dict code truncated")? as usize;
                pos += 2;
                let v = dict
                    .get(code)
                    .ok_or(DataError::Decode("dict code out of range"))?;
                out.push(v.clone());
            }
            if pos != body.len() {
                return Err(DataError::Decode("trailing bytes in dict segment"));
            }
            out
        }
        _ => return Err(DataError::Decode("unknown segment encoding tag")),
    };
    if out.len() != n {
        return Err(DataError::Decode("segment count mismatch"));
    }
    Ok(out)
}

/// Decode only rows `[lo, hi)` of a segment record (positions are
/// segment-relative; the range is clamped to the stored count).
///
/// This is the partial-range read path: a raw segment stops decoding at
/// `hi`, an RLE segment walks runs and never materializes rows outside
/// the window, and a dictionary segment jumps straight to the fixed-
/// width code array. Returns exactly `decode_segment(buf)[lo..hi]`.
pub fn decode_segment_range(buf: &[u8], lo: usize, hi: usize) -> Result<Vec<Value>, DataError> {
    let n = crate::read_u16(buf, 0, "segment header truncated")? as usize;
    let tag = *buf.get(2).ok_or(DataError::Decode("segment tag missing"))?;
    let body = &buf[3..];
    let lo = lo.min(n);
    let hi = hi.min(n);
    if lo >= hi {
        return Ok(Vec::new());
    }
    match tag {
        0 => {
            let mut pos = 0usize;
            let mut out = Vec::with_capacity(hi - lo);
            for i in 0..hi {
                let v = Value::decode(body, &mut pos)?;
                if i >= lo {
                    out.push(v);
                }
            }
            Ok(out)
        }
        1 => {
            let mut out = Vec::with_capacity(hi - lo);
            let mut row = 0usize;
            for run in rle::RunCursor::new(body)? {
                let (v, len) = run?;
                let start = row;
                row += len;
                if row <= lo {
                    continue;
                }
                let take = row.min(hi) - start.max(lo);
                out.extend(std::iter::repeat_n(v, take));
                if row >= hi {
                    break;
                }
            }
            if out.len() != hi - lo {
                return Err(DataError::Decode("rle segment shorter than header count"));
            }
            Ok(out)
        }
        2 => {
            let dict_size = crate::read_u16(body, 0, "dict size truncated")? as usize;
            let mut pos = 2usize;
            let mut dict = Vec::with_capacity(dict_size);
            for _ in 0..dict_size {
                dict.push(Value::decode(body, &mut pos)?);
            }
            let mut out = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let code = crate::read_u16(body, pos + 2 * i, "dict code truncated")? as usize;
                let v = dict
                    .get(code)
                    .ok_or(DataError::Decode("dict code out of range"))?;
                out.push(v.clone());
            }
            Ok(out)
        }
        _ => Err(DataError::Decode("unknown segment encoding tag")),
    }
}

/// Read a segment as `(value, run-length)` pairs — the compressed-
/// domain path for run-aware accumulators.
///
/// An RLE segment yields its stored runs without expansion; raw and
/// dictionary segments coalesce adjacent [`Value::group_eq`] values
/// (for a dictionary this compares 2-byte codes, not values). The
/// expansion of the result always equals [`decode_segment`]; run
/// boundaries themselves carry no meaning.
pub fn segment_runs(buf: &[u8]) -> Result<Vec<(Value, usize)>, DataError> {
    let n = crate::read_u16(buf, 0, "segment header truncated")? as usize;
    let tag = *buf.get(2).ok_or(DataError::Decode("segment tag missing"))?;
    let body = &buf[3..];
    let runs: Vec<(Value, usize)> = match tag {
        1 => rle::RunCursor::new(body)?.collect::<Result<_, _>>()?,
        2 => {
            let dict_size = crate::read_u16(body, 0, "dict size truncated")? as usize;
            let mut pos = 2usize;
            let mut dict = Vec::with_capacity(dict_size);
            for _ in 0..dict_size {
                dict.push(Value::decode(body, &mut pos)?);
            }
            let mut runs: Vec<(usize, usize)> = Vec::new(); // (code, len)
            for _ in 0..n {
                let code = crate::read_u16(body, pos, "dict code truncated")? as usize;
                pos += 2;
                match runs.last_mut() {
                    Some((c, len)) if *c == code => *len += 1,
                    _ => runs.push((code, 1)),
                }
            }
            if pos != body.len() {
                return Err(DataError::Decode("trailing bytes in dict segment"));
            }
            let mut out = Vec::with_capacity(runs.len());
            for (code, len) in runs {
                let v = dict
                    .get(code)
                    .ok_or(DataError::Decode("dict code out of range"))?;
                out.push((v.clone(), len));
            }
            out
        }
        _ => {
            let mut out: Vec<(Value, usize)> = Vec::new();
            for v in decode_segment(buf)? {
                match out.last_mut() {
                    Some((rv, len)) if rv.group_eq(&v) => *len += 1,
                    _ => out.push((v, 1)),
                }
            }
            out
        }
    };
    if runs.iter().map(|(_, len)| len).sum::<usize>() != n {
        return Err(DataError::Decode("segment count mismatch"));
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Value> {
        vec![
            Value::Str("M".into()),
            Value::Str("M".into()),
            Value::Str("F".into()),
            Value::Missing,
            Value::Code(4),
            Value::Int(-3),
            Value::Float(2.5),
        ]
    }

    #[test]
    fn roundtrip_all_encodings() {
        for c in [Compression::None, Compression::Rle, Compression::Dictionary] {
            let buf = encode_segment(&sample(), c);
            assert_eq!(decode_segment(&buf).unwrap(), sample(), "{c:?}");
        }
    }

    #[test]
    fn empty_segment_roundtrip() {
        for c in [Compression::None, Compression::Rle, Compression::Dictionary] {
            let buf = encode_segment(&[], c);
            assert_eq!(decode_segment(&buf).unwrap(), Vec::<Value>::new());
        }
    }

    #[test]
    fn rle_smaller_on_runs_dict_smaller_on_low_cardinality() {
        let runs: Vec<Value> =
            std::iter::repeat_n(Value::Str("White".into()), SEGMENT_ROWS).collect();
        let raw = encode_segment(&runs, Compression::None).len();
        let rle = encode_segment(&runs, Compression::Rle).len();
        assert!(rle * 10 < raw, "rle {rle} vs raw {raw}");

        // Alternating values defeat RLE but not a dictionary.
        let alt: Vec<Value> = (0..SEGMENT_ROWS)
            .map(|i| Value::Str(if i % 2 == 0 { "Male" } else { "Female" }.into()))
            .collect();
        let raw = encode_segment(&alt, Compression::None).len();
        let rle = encode_segment(&alt, Compression::Rle).len();
        let dict = encode_segment(&alt, Compression::Dictionary).len();
        assert!(dict < raw, "dict {dict} vs raw {raw}");
        assert!(dict < rle, "dict {dict} vs rle {rle}");
    }

    #[test]
    fn decode_rejects_bad_tag_and_truncation() {
        let mut buf = encode_segment(&sample(), Compression::None);
        buf[2] = 9;
        assert!(decode_segment(&buf).is_err());
        let good = encode_segment(&sample(), Compression::Dictionary);
        assert!(decode_segment(&good[..good.len() - 1]).is_err());
        assert!(decode_segment(&[0]).is_err());
    }

    #[test]
    fn nan_distinct_values_in_dictionary() {
        // Two different NaN payloads must each roundtrip bit-exactly.
        let vals = vec![
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(f64::NAN),
        ];
        let buf = encode_segment(&vals, Compression::Dictionary);
        let out = decode_segment(&buf).unwrap();
        assert!(matches!(out[0], Value::Float(x) if x.is_nan()));
        assert_eq!(out[1], Value::Float(1.0));
    }

    #[test]
    fn range_decode_matches_full_decode_slice() {
        let vals: Vec<Value> = (0..SEGMENT_ROWS)
            .map(|i| match i % 7 {
                0 => Value::Missing,
                1 | 2 => Value::Code(u32::try_from(i / 50).unwrap()),
                3 => Value::Str("x".into()),
                _ => Value::Int(i as i64 % 11),
            })
            .collect();
        for c in [Compression::None, Compression::Rle, Compression::Dictionary] {
            let buf = encode_segment(&vals, c);
            let full = decode_segment(&buf).unwrap();
            for (lo, hi) in [
                (0, 256),
                (0, 1),
                (100, 200),
                (255, 256),
                (40, 40),
                (250, 999),
            ] {
                let got = decode_segment_range(&buf, lo, hi).unwrap();
                let want = &full[lo.min(full.len())..hi.min(full.len())];
                assert_eq!(got, want, "{c:?} [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn segment_runs_expand_to_decoded_values() {
        let vals: Vec<Value> = (0..200)
            .map(|i| match (i / 25) % 3 {
                0 => Value::Code(9),
                1 => Value::Missing,
                _ => Value::Int(i as i64 / 60),
            })
            .collect();
        for c in [Compression::None, Compression::Rle, Compression::Dictionary] {
            let buf = encode_segment(&vals, c);
            let runs = segment_runs(&buf).unwrap();
            let expanded: Vec<Value> = runs
                .iter()
                .flat_map(|(v, n)| std::iter::repeat_n(v.clone(), *n))
                .collect();
            assert_eq!(expanded, vals, "{c:?}");
            // Runs are genuinely coalesced: far fewer runs than rows.
            assert!(runs.len() * 10 < vals.len(), "{c:?}: {} runs", runs.len());
        }
    }

    #[test]
    fn range_and_runs_reject_damage() {
        let buf = encode_segment(&sample(), Compression::Rle);
        assert!(decode_segment_range(&buf[..buf.len() - 1], 0, 7).is_err());
        assert!(segment_runs(&buf[..buf.len() - 1]).is_err());
        let mut bad = buf;
        bad[2] = 9;
        assert!(decode_segment_range(&bad, 0, 7).is_err());
        assert!(segment_runs(&bad).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_segment_roundtrip(
            codes in proptest::collection::vec(0u32..8, 0..SEGMENT_ROWS),
            tag in 0u8..3
        ) {
            let vals: Vec<Value> = codes.into_iter().map(Value::Code).collect();
            let c = match tag {
                0 => Compression::None,
                1 => Compression::Rle,
                _ => Compression::Dictionary,
            };
            let buf = encode_segment(&vals, c);
            proptest::prop_assert_eq!(decode_segment(&buf).unwrap(), vals);
        }
    }
}
