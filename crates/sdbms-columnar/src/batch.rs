//! Typed column batches: the vectorized unit of scan execution.
//!
//! A [`ColumnBatch`] holds a window of one column as a *typed lane*
//! (`&[f64]`, `&[i64]`, `&[u32]` codes, or a `Value` fallback) plus a
//! validity bitmap, instead of a `Vec<Value>` of per-cell enums. The
//! kernels in `sdbms-exec` run branchless loops straight over the lane
//! slices, which is what lets the compiler auto-vectorize filter and
//! aggregate scans.
//!
//! Batches are produced directly from encoded segment bytes by
//! [`decode_batch_range`] — the RLE and dictionary paths never
//! materialize one `Value` per row (a run becomes one `Value` plus a
//! length), and the raw path decodes primitive payloads straight into
//! the lane. The contract, tested below, is exact equivalence:
//! expanding a batch with [`ColumnBatch::to_values`] yields the same
//! `Vec<Value>` as [`crate::segment::decode_segment_range`] on the
//! same bytes, bit for bit (NaN payloads included).
//!
//! ## Lane semantics
//!
//! - A lane is *type-homogeneous*: every **valid** row in an `F64`
//!   lane came from `Value::Float`, every valid `I64` row from
//!   `Value::Int`, every valid `Code` row from `Value::Code`. Missing
//!   rows sit in the lane as placeholders (`0.0` / `0`) with their
//!   validity bit clear — kernels must consult the bitmap before
//!   trusting a slot.
//! - Mixing types (or any `Str`) demotes the lane to `Other`, which
//!   stores exact `Value`s; correctness never depends on staying
//!   typed, only speed does.
//! - The validity bitmap is little-endian within each `u64` word (row
//!   `i` is bit `i & 63` of word `i >> 6`); a **set** bit means
//!   present. Bits at positions `>= rows()` are always zero, so
//!   word-granular kernels need no tail masking when intersecting
//!   with validity.
//!
//! ## Run view
//!
//! When a batch was built purely from run-level pushes (RLE or
//! dictionary segments), [`ColumnBatch::run_lens`] exposes the run
//! partition: `run_lens()[k]` consecutive rows sharing one value.
//! Run boundaries carry no meaning — the paper's accumulators are
//! run-invariant (`ColumnProfile::from_runs == from_values` under any
//! partition) — so the view is purely an optimization handle. Any
//! row-level push drops it.

use sdbms_data::{DataError, Value};

use crate::rle;

/// The typed storage behind a batch. Private: callers go through
/// [`BatchValues`] so the invariants stay inside this module.
#[derive(Debug, Clone)]
enum Lane {
    F64(Vec<f64>),
    I64(Vec<i64>),
    Code(Vec<u32>),
    Other(Vec<Value>),
}

/// Borrowed, typed view of a batch's lane. Pattern-match to pick the
/// specialized kernel; `Other` is the exact scalar fallback.
#[derive(Debug, Clone, Copy)]
pub enum BatchValues<'a> {
    /// Float lane: valid rows were `Value::Float`.
    F64(&'a [f64]),
    /// Integer lane: valid rows were `Value::Int`.
    I64(&'a [i64]),
    /// Category-code lane: valid rows were `Value::Code`.
    Code(&'a [u32]),
    /// Fallback lane of exact `Value`s (mixed types or strings).
    Other(&'a [Value]),
}

/// A typed window of one column: lane + validity bitmap + optional
/// run-length view. See the module docs for the layout contract.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    rows: usize,
    missing: usize,
    lane: Lane,
    validity: Vec<u64>,
    run_lens: Option<Vec<usize>>,
}

impl Default for ColumnBatch {
    fn default() -> Self {
        ColumnBatch {
            rows: 0,
            missing: 0,
            lane: Lane::F64(Vec::new()),
            validity: Vec::new(),
            run_lens: Some(Vec::new()),
        }
    }
}

impl ColumnBatch {
    /// Empty batch (float lane until told otherwise, live run view).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a batch from scalar values (row-level pushes: no run
    /// view). `to_values` of the result equals `values`.
    #[must_use]
    pub fn from_values(values: &[Value]) -> Self {
        let mut b = Self::new();
        for v in values {
            b.push_value(v);
        }
        b
    }

    /// Number of rows in the batch.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of missing rows.
    #[must_use]
    pub fn missing(&self) -> usize {
        self.missing
    }

    /// True when every row is present (kernels may skip the bitmap).
    #[must_use]
    pub fn all_valid(&self) -> bool {
        self.missing == 0
    }

    /// Validity bitmap words (set bit = present; tail bits zero).
    #[must_use]
    pub fn validity_words(&self) -> &[u64] {
        &self.validity
    }

    /// Whether row `i < rows()` is present.
    #[must_use]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.rows);
        (self.validity[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Borrowed typed view of the lane.
    #[must_use]
    pub fn values(&self) -> BatchValues<'_> {
        match &self.lane {
            Lane::F64(v) => BatchValues::F64(v),
            Lane::I64(v) => BatchValues::I64(v),
            Lane::Code(v) => BatchValues::Code(v),
            Lane::Other(v) => BatchValues::Other(v),
        }
    }

    /// Run partition, if the batch was built purely from run-level
    /// pushes: `run_lens()[k]` consecutive rows share one value and
    /// one validity state. `None` after any row-level push.
    #[must_use]
    pub fn run_lens(&self) -> Option<&[usize]> {
        self.run_lens.as_deref()
    }

    /// Reconstruct the exact `Value` at row `i < rows()`.
    #[must_use]
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Missing;
        }
        match &self.lane {
            Lane::F64(v) => Value::Float(v[i]),
            Lane::I64(v) => Value::Int(v[i]),
            Lane::Code(v) => Value::Code(v[i]),
            Lane::Other(v) => v[i].clone(),
        }
    }

    /// Expand the batch back to scalar values (the equivalence oracle
    /// for every kernel: exact, NaN payloads included).
    #[must_use]
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.rows).map(|i| self.value_at(i)).collect()
    }

    /// Append one value, dropping the run view.
    pub fn push_value(&mut self, v: &Value) {
        self.run_lens = None;
        self.push_value_lane(v);
    }

    /// Append `n` copies of `v`, extending the run view if still live.
    pub fn push_run(&mut self, v: &Value, n: usize) {
        if n == 0 {
            return;
        }
        // The first row settles lane typing (re-laning or demotion);
        // the rest of the run then extends the settled lane wholesale
        // instead of re-dispatching per row.
        self.push_value_lane(v);
        let rest = n - 1;
        if rest > 0 {
            #[derive(PartialEq)]
            enum Note {
                Valid,
                Missing,
                PerRow,
            }
            let note = match (v, &mut self.lane) {
                (Value::Missing, lane) => {
                    match lane {
                        Lane::F64(xs) => xs.extend(std::iter::repeat_n(0.0, rest)),
                        Lane::I64(xs) => xs.extend(std::iter::repeat_n(0, rest)),
                        Lane::Code(xs) => xs.extend(std::iter::repeat_n(0, rest)),
                        Lane::Other(xs) => xs.extend(std::iter::repeat_n(Value::Missing, rest)),
                    }
                    Note::Missing
                }
                (Value::Int(x), Lane::I64(xs)) => {
                    xs.extend(std::iter::repeat_n(*x, rest));
                    Note::Valid
                }
                (Value::Float(x), Lane::F64(xs)) => {
                    xs.extend(std::iter::repeat_n(*x, rest));
                    Note::Valid
                }
                (Value::Code(x), Lane::Code(xs)) => {
                    xs.extend(std::iter::repeat_n(*x, rest));
                    Note::Valid
                }
                (other, Lane::Other(xs)) => {
                    xs.extend(std::iter::repeat_n(other.clone(), rest));
                    Note::Valid
                }
                // Unreachable in practice — the first push settled the
                // lane to match `v` — but stay correct if it ever isn't.
                _ => Note::PerRow,
            };
            match note {
                Note::Valid => self.note_valid_run(rest),
                Note::Missing => self.note_missing_run(rest),
                Note::PerRow => {
                    for _ in 0..rest {
                        self.push_value_lane(v);
                    }
                }
            }
        }
        if let Some(runs) = &mut self.run_lens {
            runs.push(n);
        }
    }

    // ---- internal lane machinery -------------------------------------

    fn push_value_lane(&mut self, v: &Value) {
        match v {
            Value::Missing => self.lane_push_missing(),
            Value::Float(x) => self.lane_push_f64(*x),
            Value::Int(i) => self.lane_push_i64(*i),
            Value::Code(c) => self.lane_push_code(*c),
            Value::Str(_) => self.lane_push_other(v.clone()),
        }
    }

    fn note_valid(&mut self) {
        let i = self.rows;
        if self.validity.len() * 64 <= i {
            self.validity.push(0);
        }
        self.validity[i >> 6] |= 1u64 << (i & 63);
        self.rows += 1;
    }

    fn note_missing(&mut self) {
        if self.validity.len() * 64 <= self.rows {
            self.validity.push(0);
        }
        self.rows += 1;
        self.missing += 1;
    }

    /// Mark the next `n` rows valid in one pass: whole validity words
    /// at a time instead of a bit test per row.
    fn note_valid_run(&mut self, n: usize) {
        let start = self.rows;
        let end = start + n;
        while self.validity.len() * 64 < end {
            self.validity.push(0);
        }
        let mut i = start;
        while i < end {
            let take = (64 - (i & 63)).min(end - i);
            self.validity[i >> 6] |= (!0u64 >> (64 - take)) << (i & 63);
            i += take;
        }
        self.rows = end;
    }

    /// Mark the next `n` rows missing in one pass (validity bits stay
    /// zero; only the word vector needs to cover them).
    fn note_missing_run(&mut self, n: usize) {
        self.rows += n;
        self.missing += n;
        while self.validity.len() * 64 < self.rows {
            self.validity.push(0);
        }
    }

    /// Rebuild the lane as exact `Value`s. Exact because lanes are
    /// type-homogeneous: `value_at` reconstructs precisely what was
    /// pushed.
    fn demote(&mut self) {
        let vals: Vec<Value> = self.to_values();
        self.lane = Lane::Other(vals);
    }

    /// Ensure the lane is `Other` before pushing a `Value` verbatim.
    fn ensure_other(&mut self) {
        if !matches!(self.lane, Lane::Other(_)) {
            self.demote();
        }
    }

    fn lane_push_missing(&mut self) {
        match &mut self.lane {
            Lane::F64(v) => v.push(0.0),
            Lane::I64(v) => v.push(0),
            Lane::Code(v) => v.push(0),
            Lane::Other(v) => v.push(Value::Missing),
        }
        self.note_missing();
    }

    fn lane_push_f64(&mut self, x: f64) {
        loop {
            match &mut self.lane {
                Lane::F64(v) => {
                    v.push(x);
                    break;
                }
                Lane::Other(v) => {
                    v.push(Value::Float(x));
                    break;
                }
                _ if self.missing == self.rows => {
                    // No valid rows yet: re-lane cheaply (placeholders
                    // only), keeping the batch typed.
                    self.lane = Lane::F64(vec![0.0; self.rows]);
                }
                _ => self.demote(),
            }
        }
        self.note_valid();
    }

    fn lane_push_i64(&mut self, x: i64) {
        loop {
            match &mut self.lane {
                Lane::I64(v) => {
                    v.push(x);
                    break;
                }
                Lane::Other(v) => {
                    v.push(Value::Int(x));
                    break;
                }
                _ if self.missing == self.rows => {
                    self.lane = Lane::I64(vec![0; self.rows]);
                }
                _ => self.demote(),
            }
        }
        self.note_valid();
    }

    fn lane_push_code(&mut self, x: u32) {
        loop {
            match &mut self.lane {
                Lane::Code(v) => {
                    v.push(x);
                    break;
                }
                Lane::Other(v) => {
                    v.push(Value::Code(x));
                    break;
                }
                _ if self.missing == self.rows => {
                    self.lane = Lane::Code(vec![0; self.rows]);
                }
                _ => self.demote(),
            }
        }
        self.note_valid();
    }

    fn lane_push_other(&mut self, v: Value) {
        self.ensure_other();
        if let Lane::Other(vs) = &mut self.lane {
            vs.push(v);
        }
        self.note_valid();
    }

    /// Row-level pushes from the raw decode path: invalidate the run
    /// view once, up front.
    fn drop_run_view(&mut self) {
        self.run_lens = None;
    }
}

// ---- decoding straight from segment bytes ----------------------------

fn take_n<'a>(body: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DataError> {
    let s = body
        .get(*pos..*pos + n)
        .ok_or(DataError::Decode("value payload truncated"))?;
    *pos += n;
    Ok(s)
}

fn take_arr<const N: usize>(body: &[u8], pos: &mut usize) -> Result<[u8; N], DataError> {
    take_n(body, pos, N)?
        .try_into()
        .map_err(|_| DataError::Decode("value payload truncated"))
}

/// Decode rows `[lo, hi)` of an encoded segment record into `out`,
/// appending. Mirrors [`crate::segment::decode_segment_range`] exactly
/// — same clamping, same error strings — but builds a typed batch with
/// no per-row `Value` materialization on the RLE and dictionary paths.
pub fn decode_batch_range(
    buf: &[u8],
    lo: usize,
    hi: usize,
    out: &mut ColumnBatch,
) -> Result<(), DataError> {
    let n = crate::read_u16(buf, 0, "segment header truncated")? as usize;
    let tag = *buf.get(2).ok_or(DataError::Decode("segment tag missing"))?;
    let body = &buf[3..];
    let lo = lo.min(n);
    let hi = hi.min(n);
    if lo >= hi {
        return Ok(());
    }
    match tag {
        0 => {
            // Raw rows arrive one by one: no run structure to keep.
            out.drop_run_view();
            let mut pos = 0usize;
            for i in 0..hi {
                let vtag = *body
                    .get(pos)
                    .ok_or(DataError::Decode("value tag missing"))?;
                pos += 1;
                match vtag {
                    0 => {
                        if i >= lo {
                            out.lane_push_missing();
                        }
                    }
                    1 => {
                        let b = take_arr::<8>(body, &mut pos)?;
                        if i >= lo {
                            out.lane_push_i64(i64::from_le_bytes(b));
                        }
                    }
                    2 => {
                        let b = take_arr::<8>(body, &mut pos)?;
                        if i >= lo {
                            out.lane_push_f64(f64::from_bits(u64::from_le_bytes(b)));
                        }
                    }
                    3 => {
                        let len = u16::from_le_bytes(take_arr::<2>(body, &mut pos)?) as usize;
                        let sb = take_n(body, &mut pos, len)?;
                        let s = std::str::from_utf8(sb)
                            .map_err(|_| DataError::Decode("string not UTF-8"))?;
                        if i >= lo {
                            out.lane_push_other(Value::Str(s.to_string()));
                        }
                    }
                    4 => {
                        let b = take_arr::<4>(body, &mut pos)?;
                        if i >= lo {
                            out.lane_push_code(u32::from_le_bytes(b));
                        }
                    }
                    _ => return Err(DataError::Decode("unknown value tag")),
                }
            }
            Ok(())
        }
        1 => {
            let mut row = 0usize;
            let mut pushed = 0usize;
            for run in rle::RunCursor::new(body)? {
                let (v, len) = run?;
                let start = row;
                row += len;
                if row <= lo {
                    continue;
                }
                let take = row.min(hi) - start.max(lo);
                out.push_run(&v, take);
                pushed += take;
                if row >= hi {
                    break;
                }
            }
            if pushed != hi - lo {
                return Err(DataError::Decode("rle segment shorter than header count"));
            }
            Ok(())
        }
        2 => {
            let dict_size = crate::read_u16(body, 0, "dict size truncated")? as usize;
            let mut pos = 2usize;
            let mut dict = Vec::with_capacity(dict_size);
            for _ in 0..dict_size {
                dict.push(Value::decode(body, &mut pos)?);
            }
            // Codes are fixed-width: jump straight into the window and
            // coalesce equal adjacent codes into runs (2-byte compares,
            // never value compares — mirrors `segment_runs`).
            let mut i = lo;
            while i < hi {
                let code = crate::read_u16(body, pos + 2 * i, "dict code truncated")? as usize;
                let mut j = i + 1;
                while j < hi
                    && crate::read_u16(body, pos + 2 * j, "dict code truncated")? as usize == code
                {
                    j += 1;
                }
                let v = dict
                    .get(code)
                    .ok_or(DataError::Decode("dict code out of range"))?;
                out.push_run(v, j - i);
                i = j;
            }
            Ok(())
        }
        _ => Err(DataError::Decode("unknown segment encoding tag")),
    }
}

/// Decode a whole segment record as a fresh batch. Equivalent to
/// [`decode_batch_range`] over `[0, count)`.
pub fn decode_batch(buf: &[u8]) -> Result<ColumnBatch, DataError> {
    let n = crate::read_u16(buf, 0, "segment header truncated")? as usize;
    let mut out = ColumnBatch::new();
    decode_batch_range(buf, 0, n, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{decode_segment, decode_segment_range, encode_segment, Compression};

    const ALL: [Compression; 3] = [Compression::None, Compression::Rle, Compression::Dictionary];

    /// Bit-exact vector equality: `group_eq` is `total_cmp == Equal`,
    /// so NaN payloads and -0.0 vs 0.0 are distinguished — unlike
    /// derived `PartialEq`, under which NaN != NaN.
    fn bit_eq(a: &[Value], b: &[Value]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.group_eq(y))
    }

    fn mixed() -> Vec<Value> {
        let nan2 = f64::from_bits(0x7ff8_0000_0000_0001);
        vec![
            Value::Str("M".into()),
            Value::Str("M".into()),
            Value::Str("F".into()),
            Value::Missing,
            Value::Missing,
            Value::Code(4),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Float(nan2),
            Value::Float(-0.0),
        ]
    }

    fn floats_with_gaps() -> Vec<Value> {
        (0..200)
            .map(|i| {
                if i % 13 == 0 {
                    Value::Missing
                } else if i % 31 == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float(f64::from(i) * 0.5 - 40.0)
                }
            })
            .collect()
    }

    fn blocky_codes() -> Vec<Value> {
        (0..256)
            .map(|i| match (i / 32) % 3 {
                0 => Value::Code(u32::try_from(i / 64).unwrap()),
                1 => Value::Missing,
                _ => Value::Code(7),
            })
            .collect()
    }

    #[test]
    fn from_values_roundtrips_exactly() {
        for vals in [mixed(), floats_with_gaps(), blocky_codes(), Vec::new()] {
            let b = ColumnBatch::from_values(&vals);
            assert_eq!(b.rows(), vals.len());
            assert!(bit_eq(&b.to_values(), &vals));
            assert!(b.run_lens().is_none() || vals.is_empty());
            let missing = vals.iter().filter(|v| v.is_missing()).count();
            assert_eq!(b.missing(), missing);
        }
        // NaN payloads survive bit-exactly.
        let b = ColumnBatch::from_values(&mixed());
        let out = b.to_values();
        if let (Value::Float(a), Value::Float(e)) = (&out[9], &mixed()[9]) {
            assert_eq!(a.to_bits(), e.to_bits());
        } else {
            panic!("lane lost the float");
        }
    }

    #[test]
    fn typed_lanes_for_homogeneous_columns() {
        let b = ColumnBatch::from_values(&floats_with_gaps());
        assert!(
            matches!(b.values(), BatchValues::F64(_)),
            "floats+missing stay typed"
        );
        let ints: Vec<Value> = (0..50).map(Value::Int).collect();
        assert!(matches!(
            ColumnBatch::from_values(&ints).values(),
            BatchValues::I64(_)
        ));
        let codes: Vec<Value> = (0..50u32).map(Value::Code).collect();
        assert!(matches!(
            ColumnBatch::from_values(&codes).values(),
            BatchValues::Code(_)
        ));
        // Leading missings re-lane cheaply once the first typed value
        // arrives.
        let late = [Value::Missing, Value::Missing, Value::Int(9)];
        assert!(matches!(
            ColumnBatch::from_values(&late).values(),
            BatchValues::I64(_)
        ));
        // Mixed types and strings demote to the exact fallback.
        assert!(matches!(
            ColumnBatch::from_values(&mixed()).values(),
            BatchValues::Other(_)
        ));
        let mixed_num = [Value::Int(1), Value::Float(2.0)];
        assert!(matches!(
            ColumnBatch::from_values(&mixed_num).values(),
            BatchValues::Other(_)
        ));
    }

    #[test]
    fn validity_bitmap_matches_missingness_and_masks_tail() {
        let vals = floats_with_gaps();
        let b = ColumnBatch::from_values(&vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(b.is_valid(i), !v.is_missing(), "row {i}");
        }
        let bits: u32 = b.validity_words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(
            bits as usize,
            vals.len() - b.missing(),
            "no stray tail bits"
        );
    }

    #[test]
    fn decode_batch_equals_decode_segment() {
        for vals in [mixed(), floats_with_gaps(), blocky_codes(), Vec::new()] {
            for c in ALL {
                let buf = encode_segment(&vals, c);
                let batch = decode_batch(&buf).unwrap();
                assert!(
                    bit_eq(&batch.to_values(), &decode_segment(&buf).unwrap()),
                    "{c:?}"
                );
            }
        }
    }

    #[test]
    fn decode_batch_range_equals_decode_segment_range() {
        let vals = blocky_codes();
        for c in ALL {
            let buf = encode_segment(&vals, c);
            for (lo, hi) in [
                (0, 256),
                (0, 1),
                (100, 200),
                (255, 256),
                (40, 40),
                (250, 999),
            ] {
                let mut b = ColumnBatch::new();
                decode_batch_range(&buf, lo, hi, &mut b).unwrap();
                assert_eq!(
                    b.to_values(),
                    decode_segment_range(&buf, lo, hi).unwrap(),
                    "{c:?} [{lo}, {hi})"
                );
            }
        }
    }

    #[test]
    fn batches_accumulate_across_segments() {
        // One batch built from three segments of different encodings
        // must equal the concatenation of their scalar decodes.
        let parts = [mixed(), blocky_codes(), floats_with_gaps()];
        let mut b = ColumnBatch::new();
        let mut want = Vec::new();
        for (vals, c) in parts.iter().zip(ALL) {
            let buf = encode_segment(vals, c);
            decode_batch_range(&buf, 0, vals.len(), &mut b).unwrap();
            want.extend(decode_segment(&buf).unwrap());
        }
        assert!(bit_eq(&b.to_values(), &want));
    }

    #[test]
    fn run_view_present_for_run_encodings_and_consistent() {
        for c in [Compression::Rle, Compression::Dictionary] {
            let buf = encode_segment(&blocky_codes(), c);
            let b = decode_batch(&buf).unwrap();
            let runs = b.run_lens().unwrap_or_else(|| panic!("{c:?} lost runs"));
            assert_eq!(runs.iter().sum::<usize>(), b.rows(), "{c:?}");
            assert!(runs.len() * 4 < b.rows(), "{c:?}: runs actually coalesce");
            // Within a run every row reconstructs the same value.
            let mut row = 0;
            for &n in runs {
                let v = b.value_at(row);
                for i in row..row + n {
                    assert!(b.value_at(i).group_eq(&v), "{c:?} row {i}");
                }
                row += n;
            }
        }
        // The raw path yields no run view.
        let buf = encode_segment(&blocky_codes(), Compression::None);
        assert!(decode_batch(&buf).unwrap().run_lens().is_none());
    }

    #[test]
    fn push_value_drops_run_view() {
        let buf = encode_segment(&blocky_codes(), Compression::Rle);
        let mut b = decode_batch(&buf).unwrap();
        assert!(b.run_lens().is_some());
        b.push_value(&Value::Code(1));
        assert!(b.run_lens().is_none());
    }

    #[test]
    fn decode_rejects_damage_like_scalar_path() {
        for c in ALL {
            let buf = encode_segment(&mixed(), c);
            let mut bad = buf.clone();
            bad[2] = 9;
            assert_eq!(
                decode_batch(&bad).unwrap_err(),
                decode_segment(&bad).unwrap_err(),
                "{c:?} bad tag"
            );
            let trunc = &buf[..buf.len() - 1];
            assert!(decode_batch(trunc).is_err(), "{c:?} truncated");
        }
        assert!(decode_batch(&[0]).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_decode_batch_matches_scalar(
            cells in proptest::collection::vec((0u8..5, -400i64..400), 0..crate::SEGMENT_ROWS),
            tag in 0u8..3,
            window in (0usize..260, 0usize..260),
        ) {
            let vals: Vec<Value> = cells
                .iter()
                .map(|&(kind, x)| match kind {
                    0 => Value::Missing,
                    1 => Value::Int(x),
                    2 if x % 17 == 0 => Value::Float(f64::NAN),
                    2 => Value::Float(x as f64 * 0.25),
                    3 => Value::Code(x.unsigned_abs() as u32 % 6),
                    _ => Value::Str(format!("s{}", x % 4)),
                })
                .collect();
            let c = match tag {
                0 => Compression::None,
                1 => Compression::Rle,
                _ => Compression::Dictionary,
            };
            let buf = encode_segment(&vals, c);
            let batch = decode_batch(&buf).unwrap();
            proptest::prop_assert!(bit_eq(&batch.to_values(), &decode_segment(&buf).unwrap()));
            let (lo, hi) = window;
            let mut b = ColumnBatch::new();
            decode_batch_range(&buf, lo, hi, &mut b).unwrap();
            proptest::prop_assert!(bit_eq(
                &b.to_values(),
                &decode_segment_range(&buf, lo, hi).unwrap()
            ));
        }
    }
}
