//! Transposed (fully decomposed) view storage: one file per column.
//!
//! §2.6: "Both [ALDS/SDB and RAPID] rely on the use of transposed files
//! to minimize access time to a column of a data set… a transposed file
//! organization will minimize the number of I/O operations needed to
//! retrieve all entries in a column", at the price of poor
//! "informational" (whole-row) queries. Each column is a chain of
//! [`crate::segment`] records in its own heap file; a small in-memory
//! directory maps row ranges to segment records.

use std::borrow::Cow;
use std::sync::Arc;

use sdbms_data::{DataError, DataSet, DataType, Schema, Value};
use sdbms_storage::{BufferPool, HeapFile, MmapSegmentSource, PageId, Rid};

use crate::batch::{decode_batch_range, ColumnBatch};
use crate::segment::{
    decode_segment, decode_segment_range, encode_segment, segment_runs, Compression, SEGMENT_ROWS,
};
use crate::store::{Result, TableStore};
use crate::zonemap::ZoneMap;

#[derive(Debug, Clone, Copy)]
struct SegmentInfo {
    rid: Rid,
    start_row: usize,
    len: usize,
    /// Record holding this segment's persisted [`ZoneMap`], in the
    /// column's *zones* file. `None` means no map: the segment is
    /// scanned unpruned. Writers clear this before touching segment
    /// data and only restore it after a map for the *new* contents is
    /// durably written, so a map is never stale.
    zone: Option<Rid>,
}

struct Column {
    file: HeapFile,
    /// Zone-map records, one per segment, in a separate heap file so
    /// map pages and data pages fail independently (and fault
    /// injection can target one without the other).
    zones: HeapFile,
    segments: Vec<SegmentInfo>,
    compression: Compression,
}

/// A view stored column-at-a-time (transposed files).
pub struct TransposedFile {
    pool: Arc<BufferPool>,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    /// Version generation stamped into every persisted zone map. A map
    /// whose stamp disagrees is ignored ("scan unpruned"), so maps from
    /// a retired store version — or from before a rebuild — can never
    /// prune this version's scans.
    generation: u64,
    /// Scan seal: CRC-verified images of the data pages, captured by
    /// [`TableStore::seal_for_scan`]. While present, every segment
    /// read is served zero-copy from the images instead of the buffer
    /// pool. Every mutator clears it (mutation unseals); the seal dies
    /// with the store, so MVCC-lite epoch retirement of a superseded
    /// store version is what finally "unmaps" it — never under a
    /// pinned snapshot.
    mmap: Option<MmapSegmentSource>,
}

impl std::fmt::Debug for TransposedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransposedFile")
            .field("rows", &self.rows)
            .field("columns", &self.columns.len())
            .field("sealed", &self.mmap.is_some())
            .finish()
    }
}

/// Pick a default compression per attribute: RLE for category-like
/// types (codes, strings, ints — long runs in cross-product order),
/// raw for floats (runs are rare in measurements).
#[must_use]
pub fn default_compression(dtype: DataType) -> Compression {
    match dtype {
        DataType::Code => Compression::Rle,
        DataType::Str => Compression::Dictionary,
        DataType::Int => Compression::Rle,
        DataType::Float => Compression::None,
    }
}

impl TransposedFile {
    /// Create an empty transposed store; compression is chosen per
    /// column by [`default_compression`].
    pub fn create(pool: Arc<BufferPool>, schema: Schema) -> Result<Self> {
        let compressions: Vec<Compression> = schema
            .attributes()
            .iter()
            .map(|a| default_compression(a.dtype))
            .collect();
        Self::create_with(pool, schema, &compressions)
    }

    /// Create with an explicit compression per column.
    pub fn create_with(
        pool: Arc<BufferPool>,
        schema: Schema,
        compressions: &[Compression],
    ) -> Result<Self> {
        if compressions.len() != schema.len() {
            return Err(DataError::ArityMismatch {
                expected: schema.len(),
                got: compressions.len(),
            });
        }
        let mut columns = Vec::with_capacity(schema.len());
        for &compression in compressions {
            columns.push(Column {
                file: HeapFile::create(pool.clone()).map_err(DataError::Storage)?,
                zones: HeapFile::create(pool.clone()).map_err(DataError::Storage)?,
                segments: Vec::new(),
                compression,
            });
        }
        Ok(TransposedFile {
            pool,
            schema,
            columns,
            rows: 0,
            generation: 0,
            mmap: None,
        })
    }

    /// Bulk-load a data set (column at a time, full segments).
    pub fn from_dataset(pool: Arc<BufferPool>, ds: &DataSet) -> Result<Self> {
        Self::from_dataset_at(pool, ds, 0)
    }

    /// Bulk-load at a specific store generation — used when building
    /// the successor version of an existing store, so its zone maps are
    /// stamped correctly from the first write.
    pub fn from_dataset_at(pool: Arc<BufferPool>, ds: &DataSet, generation: u64) -> Result<Self> {
        let mut store = Self::create(pool, ds.schema().clone())?;
        store.generation = generation;
        store.bulk_append(ds)?;
        Ok(store)
    }

    /// The generation this store stamps into (and requires of) its
    /// persisted zone maps.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append all rows of `ds` (schema must match).
    pub fn bulk_append(&mut self, ds: &DataSet) -> Result<()> {
        if ds.schema() != &self.schema {
            return Err(DataError::Decode("bulk_append schema mismatch"));
        }
        self.mmap = None; // mutation unseals
        let generation = self.generation;
        for (ci, attr) in self.schema.attributes().iter().enumerate() {
            let values: Vec<Value> = ds.column(&attr.name)?.cloned().collect();
            let col = &mut self.columns[ci];
            let mut start = self.rows;
            for chunk in values.chunks(SEGMENT_ROWS) {
                let bytes = encode_segment(chunk, col.compression);
                let rid = col.file.insert(&bytes).map_err(DataError::Storage)?;
                let zone = Self::write_zone(&mut col.zones, chunk, generation);
                col.segments.push(SegmentInfo {
                    rid,
                    start_row: start,
                    len: chunk.len(),
                    zone,
                });
                start += chunk.len();
            }
        }
        self.rows += ds.len();
        self.repack_tail()?;
        Ok(())
    }

    /// Total disk pages across all column files.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.columns.iter().map(|c| c.file.page_count()).sum()
    }

    /// Pages of one column's file.
    pub fn column_page_count(&self, attribute: &str) -> Result<usize> {
        let ci = self.schema.require(attribute)?;
        Ok(self.columns[ci].file.page_count())
    }

    /// The compression of one column.
    pub fn column_compression(&self, attribute: &str) -> Result<Compression> {
        let ci = self.schema.require(attribute)?;
        Ok(self.columns[ci].compression)
    }

    fn segment_index_for_row(col: &Column, row: usize) -> Option<usize> {
        let i = col.segments.partition_point(|s| s.start_row + s.len <= row);
        (i < col.segments.len()).then_some(i)
    }

    /// Persist a zone map for `values`, stamped with `generation`,
    /// returning its record id. Returns `None` on any write failure —
    /// zone maps are advisory, so losing one degrades scans to
    /// unpruned, never fails the data operation that triggered it.
    fn write_zone(zones: &mut HeapFile, values: &[Value], generation: u64) -> Option<Rid> {
        zones
            .insert(&ZoneMap::build(values).encode_tagged(generation))
            .ok()
    }

    /// Load one segment's zone map. Returns `None` — "scan unpruned" —
    /// when the segment has no map, the record read fails (torn or
    /// corrupt page fails its checksum), the bytes don't decode, the
    /// map's generation stamp disagrees with the store's, or the map
    /// disagrees with the directory about the row count.
    fn load_zone(col: &Column, si: usize, generation: u64) -> Option<ZoneMap> {
        let info = col.segments[si];
        let bytes = col.zones.get(info.zone?).ok()?;
        let (zm, stamp) = ZoneMap::decode_tagged(&bytes).ok()?;
        (stamp == generation && zm.rows == info.len).then_some(zm)
    }

    fn load_segment(col: &Column, si: usize) -> Result<Vec<Value>> {
        let info = col.segments[si];
        let bytes = col.file.get(info.rid).map_err(DataError::Storage)?;
        let vals = decode_segment(&bytes)?;
        if vals.len() != info.len {
            return Err(DataError::Decode("segment directory out of sync"));
        }
        Ok(vals)
    }

    /// Fetch one segment's raw record, verifying the stored row count
    /// against the directory (partial decoders skip the full-decode
    /// length check).
    fn segment_bytes(col: &Column, si: usize) -> Result<Vec<u8>> {
        let info = col.segments[si];
        let bytes = col.file.get(info.rid).map_err(DataError::Storage)?;
        let n = crate::read_u16(&bytes, 0, "segment header truncated")? as usize;
        if n != info.len {
            return Err(DataError::Decode("segment directory out of sync"));
        }
        Ok(bytes)
    }

    /// Fetch one segment's raw record for a read path, serving it
    /// zero-copy from the scan seal when one is in place and from the
    /// buffer pool otherwise. Both sides verify the stored row count
    /// against the directory, so the bytes handed to decoders are
    /// interchangeable.
    fn segment_bytes_view<'a>(&'a self, col: &'a Column, si: usize) -> Result<Cow<'a, [u8]>> {
        if let Some(m) = &self.mmap {
            let info = col.segments[si];
            let bytes = m.record_bytes(info.rid).map_err(DataError::Storage)?;
            let n = crate::read_u16(bytes, 0, "segment header truncated")? as usize;
            if n != info.len {
                return Err(DataError::Decode("segment directory out of sync"));
            }
            return Ok(Cow::Borrowed(bytes));
        }
        Self::segment_bytes(col, si).map(Cow::Owned)
    }

    fn store_segment(col: &mut Column, si: usize, values: &[Value], generation: u64) -> Result<()> {
        // Invalidate-first: drop the old zone map before the data
        // changes so a failure between the two writes leaves the
        // segment unpruned rather than pruned by a stale map.
        if let Some(z) = col.segments[si].zone.take() {
            // lint: allow(swallowed-error): the zone entry is already detached — a failed delete leaks a dead zone-map page, never a stale pruning decision
            let _ = col.zones.delete(z);
        }
        let bytes = encode_segment(values, col.compression);
        let info = col.segments[si];
        let new_rid = col
            .file
            .update(info.rid, &bytes)
            .map_err(DataError::Storage)?;
        col.segments[si].rid = new_rid;
        col.segments[si].len = values.len();
        col.segments[si].zone = Self::write_zone(&mut col.zones, values, generation);
        Ok(())
    }

    /// Merge undersized tail segments created by row-at-a-time appends.
    fn repack_tail(&mut self) -> Result<()> {
        let generation = self.generation;
        for col in &mut self.columns {
            while col.segments.len() >= 2 {
                let last = col.segments[col.segments.len() - 1];
                let prev = col.segments[col.segments.len() - 2];
                if prev.len + last.len > SEGMENT_ROWS {
                    break;
                }
                let mut vals = Self::load_segment(col, col.segments.len() - 2)?;
                vals.extend(Self::load_segment(col, col.segments.len() - 1)?);
                col.file.delete(last.rid).map_err(DataError::Storage)?;
                if let Some(z) = last.zone {
                    // lint: allow(swallowed-error): the merged segment's zone is rebuilt below — a failed delete leaks a dead page, never a stale map
                    let _ = col.zones.delete(z);
                }
                col.segments.pop();
                let si = col.segments.len() - 1;
                Self::store_segment(col, si, &vals, generation)?;
            }
        }
        Ok(())
    }

    /// Pages holding zone-map records (across all columns), disjoint
    /// from data pages. Exposed so fault-injection tests can corrupt
    /// exactly the advisory statistics and assert scans degrade to
    /// unpruned rather than answer wrongly.
    #[must_use]
    pub fn zone_page_ids(&self) -> Vec<PageId> {
        let mut out: Vec<PageId> = self.columns.iter().flat_map(|c| c.zones.pages()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// How many segments of one column currently have a readable zone
    /// map (diagnostics and tests).
    pub fn zone_map_count(&self, attribute: &str) -> Result<usize> {
        let ci = self.schema.require(attribute)?;
        let col = &self.columns[ci];
        Ok((0..col.segments.len())
            .filter(|&si| Self::load_zone(col, si, self.generation).is_some())
            .count())
    }
}

impl TableStore for TransposedFile {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn len(&self) -> usize {
        self.rows
    }

    fn read_column(&self, attribute: &str) -> Result<Vec<Value>> {
        let ci = self.schema.require(attribute)?;
        let col = &self.columns[ci];
        let mut out = Vec::with_capacity(self.rows);
        for si in 0..col.segments.len() {
            let bytes = self.segment_bytes_view(col, si)?;
            let vals = decode_segment(&bytes)?;
            if vals.len() != col.segments[si].len {
                return Err(DataError::Decode("segment directory out of sync"));
            }
            out.extend(vals);
        }
        Ok(out)
    }

    fn read_column_range(&self, attribute: &str, start: usize, len: usize) -> Result<Vec<Value>> {
        let ci = self.schema.require(attribute)?;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.rows)
            .ok_or(DataError::NoSuchRow(start.saturating_add(len).max(1) - 1))?;
        if start == end {
            return Ok(Vec::new());
        }
        // Decode only the segments overlapping [start, end) — a morsel
        // aligned to SEGMENT_ROWS touches exactly its own segments, so
        // parallel workers never fetch each other's pages — and within
        // a partially-covered segment, decode only the covered rows.
        let col = &self.columns[ci];
        let first = Self::segment_index_for_row(col, start)
            .ok_or(DataError::Decode("segment directory out of sync"))?;
        let mut out = Vec::with_capacity(len);
        for si in first..col.segments.len() {
            let info = col.segments[si];
            if info.start_row >= end {
                break;
            }
            let bytes = self.segment_bytes_view(col, si)?;
            let lo = start.saturating_sub(info.start_row);
            let hi = (end - info.start_row).min(info.len);
            out.extend(decode_segment_range(&bytes, lo, hi)?);
        }
        Ok(out)
    }

    fn read_column_batch(&self, attribute: &str, start: usize, len: usize) -> Result<ColumnBatch> {
        let ci = self.schema.require(attribute)?;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.rows)
            .ok_or(DataError::NoSuchRow(start.saturating_add(len).max(1) - 1))?;
        let mut out = ColumnBatch::new();
        if start == end {
            return Ok(out);
        }
        // Same segment walk as `read_column_range`, but decoded
        // straight into the typed batch: RLE and dictionary segments
        // contribute runs (one `Value` per run), raw segments decode
        // primitive payloads directly into the lane.
        let col = &self.columns[ci];
        let first = Self::segment_index_for_row(col, start)
            .ok_or(DataError::Decode("segment directory out of sync"))?;
        for si in first..col.segments.len() {
            let info = col.segments[si];
            if info.start_row >= end {
                break;
            }
            let bytes = self.segment_bytes_view(col, si)?;
            let lo = start.saturating_sub(info.start_row);
            let hi = (end - info.start_row).min(info.len);
            decode_batch_range(&bytes, lo, hi, &mut out)?;
        }
        Ok(out)
    }

    fn seal_for_scan(&mut self) -> Result<bool> {
        if self.mmap.is_some() {
            return Ok(true);
        }
        let pages = self.data_page_ids();
        // lint: allow(mmap-seam-bypass): the one sanctioned door — map() flushes the pool and CRC-verifies every data page before any zero-copy read is served
        let src = MmapSegmentSource::map(&self.pool, &pages).map_err(DataError::Storage)?;
        self.mmap = Some(src);
        Ok(true)
    }

    fn scan_sealed(&self) -> bool {
        self.mmap.is_some()
    }

    fn range_stats(&self, attribute: &str, start: usize, len: usize) -> Option<ZoneMap> {
        let ci = self.schema.require(attribute).ok()?;
        let end = start.checked_add(len).filter(|&e| e <= self.rows)?;
        if start == end {
            return Some(ZoneMap::default());
        }
        let col = &self.columns[ci];
        let first = Self::segment_index_for_row(col, start)?;
        let mut merged = ZoneMap::default();
        for si in first..col.segments.len() {
            let info = col.segments[si];
            if info.start_row >= end {
                break;
            }
            // Pruning decisions cover whole segments: a map describes
            // its full segment, so partial overlap still merges the
            // whole map (conservative — a superset of the range).
            merged.merge(&Self::load_zone(col, si, self.generation)?);
        }
        Some(merged)
    }

    fn read_column_runs(
        &self,
        attribute: &str,
        start: usize,
        len: usize,
    ) -> Result<Vec<(Value, usize)>> {
        let ci = self.schema.require(attribute)?;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.rows)
            .ok_or(DataError::NoSuchRow(start.saturating_add(len).max(1) - 1))?;
        if start == end {
            return Ok(Vec::new());
        }
        let col = &self.columns[ci];
        let first = Self::segment_index_for_row(col, start)
            .ok_or(DataError::Decode("segment directory out of sync"))?;
        let mut out: Vec<(Value, usize)> = Vec::new();
        for si in first..col.segments.len() {
            let info = col.segments[si];
            if info.start_row >= end {
                break;
            }
            let bytes = self.segment_bytes_view(col, si)?;
            let lo = start.saturating_sub(info.start_row);
            let hi = (end - info.start_row).min(info.len);
            if lo == 0 && hi == info.len {
                // Fully-covered segment: runs come straight off the
                // encoded record, no row materialization.
                out.extend(segment_runs(&bytes)?);
            } else {
                for v in decode_segment_range(&bytes, lo, hi)? {
                    match out.last_mut() {
                        Some((rv, n)) if rv.group_eq(&v) => *n += 1,
                        _ => out.push((v, 1)),
                    }
                }
            }
        }
        Ok(out)
    }

    fn read_row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(DataError::NoSuchRow(row));
        }
        // One segment fetch *per column* — the informational-query
        // penalty of transposed files. Only the addressed row is
        // decoded from each record.
        let mut out = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            let si = Self::segment_index_for_row(col, row)
                .ok_or(DataError::Decode("segment directory out of sync"))?;
            let off = row - col.segments[si].start_row;
            let bytes = self.segment_bytes_view(col, si)?;
            let mut vals = decode_segment_range(&bytes, off, off + 1)?;
            out.push(
                vals.pop()
                    .ok_or(DataError::Decode("segment directory out of sync"))?,
            );
        }
        Ok(out)
    }

    fn get_cell(&self, row: usize, attribute: &str) -> Result<Value> {
        let ci = self.schema.require(attribute)?;
        if row >= self.rows {
            return Err(DataError::NoSuchRow(row));
        }
        let col = &self.columns[ci];
        let si = Self::segment_index_for_row(col, row)
            .ok_or(DataError::Decode("segment directory out of sync"))?;
        let off = row - col.segments[si].start_row;
        let bytes = self.segment_bytes_view(col, si)?;
        decode_segment_range(&bytes, off, off + 1)?
            .pop()
            .ok_or(DataError::Decode("segment directory out of sync"))
    }

    fn set_cell(&mut self, row: usize, attribute: &str, value: Value) -> Result<Value> {
        let ci = self.schema.require(attribute)?;
        let attr = self.schema.attribute_at(ci);
        if !value.conforms_to(attr.dtype) {
            return Err(DataError::TypeMismatch {
                attribute: attr.name.clone(),
                expected: "declared attribute type",
                got: value.type_name(),
            });
        }
        if row >= self.rows {
            return Err(DataError::NoSuchRow(row));
        }
        self.mmap = None; // mutation unseals
        let generation = self.generation;
        let col = &mut self.columns[ci];
        let si = Self::segment_index_for_row(col, row)
            .ok_or(DataError::Decode("segment directory out of sync"))?;
        let mut vals = Self::load_segment(col, si)?;
        let off = row - col.segments[si].start_row;
        let old = std::mem::replace(&mut vals[off], value);
        Self::store_segment(col, si, &vals, generation)?;
        Ok(old)
    }

    fn add_column(&mut self, attr: sdbms_data::Attribute, values: Vec<Value>) -> Result<()> {
        if values.len() != self.rows {
            return Err(DataError::ArityMismatch {
                expected: self.rows,
                got: values.len(),
            });
        }
        self.mmap = None; // mutation unseals
        let compression = default_compression(attr.dtype);
        let new_schema = self.schema.with_appended(attr)?;
        // A new column file — no existing data moves (the transposed
        // layout's schema-growth advantage).
        let mut col = Column {
            file: HeapFile::create(self.pool.clone()).map_err(DataError::Storage)?,
            zones: HeapFile::create(self.pool.clone()).map_err(DataError::Storage)?,
            segments: Vec::new(),
            compression,
        };
        let mut start = 0usize;
        for chunk in values.chunks(SEGMENT_ROWS) {
            let bytes = encode_segment(chunk, compression);
            let rid = col.file.insert(&bytes).map_err(DataError::Storage)?;
            let zone = Self::write_zone(&mut col.zones, chunk, self.generation);
            col.segments.push(SegmentInfo {
                rid,
                start_row: start,
                len: chunk.len(),
                zone,
            });
            start += chunk.len();
        }
        self.columns.push(col);
        self.schema = new_schema;
        Ok(())
    }

    fn data_page_ids(&self) -> Vec<PageId> {
        let mut out: Vec<PageId> = self.columns.iter().flat_map(|c| c.file.pages()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn zone_map_page_ids(&self) -> Vec<PageId> {
        self.zone_page_ids()
    }

    fn rebuild_zone_maps(&mut self) -> Result<usize> {
        self.mmap = None; // mutation unseals
        let pool = self.pool.clone();
        // Move to the next generation before writing anything: even if
        // an abandoned pre-rebuild map page were somehow consulted
        // again, its stamp no longer matches and it cannot prune.
        self.generation += 1;
        let generation = self.generation;
        let mut written = 0usize;
        for col in &mut self.columns {
            // The old zones file may hold damaged pages, and inserting
            // into a damaged heap can itself fail — so rebuilt maps go
            // to a fresh file and the old pages are abandoned. Maps are
            // derived purely from segment data (the rung's authority);
            // an unreadable segment propagates as an error, telling the
            // caller this damage is above the zone-map rung.
            let mut zones = HeapFile::create(pool.clone()).map_err(DataError::Storage)?;
            for si in 0..col.segments.len() {
                let vals = Self::load_segment(col, si)?;
                col.segments[si].zone = Self::write_zone(&mut zones, &vals, generation);
                if col.segments[si].zone.is_some() {
                    written += 1;
                }
            }
            col.zones = zones;
        }
        Ok(written)
    }

    fn boxed_clone(&self) -> Result<Box<dyn TableStore + Send + Sync>> {
        // The clone is the successor version in the making: fresh pages
        // throughout (the original's are never written) and the next
        // generation, so its zone maps can never be confused with the
        // original's.
        let ds = self.to_dataset("shadow")?;
        Ok(Box::new(Self::from_dataset_at(
            self.pool.clone(),
            &ds,
            self.generation + 1,
        )?))
    }

    fn store_generation(&self) -> u64 {
        self.generation
    }

    fn segment_count(&self, attribute: &str) -> usize {
        self.schema
            .require(attribute)
            .map_or(0, |ci| self.columns[ci].segments.len())
    }

    fn encoded_segment(&self, attribute: &str, segment: usize) -> Result<Option<Vec<u8>>> {
        let ci = self.schema.require(attribute)?;
        let col = &self.columns[ci];
        if segment >= col.segments.len() {
            return Ok(None);
        }
        Self::segment_bytes(col, segment).map(Some)
    }

    fn append_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.schema.check_row(&row)?;
        self.mmap = None; // mutation unseals
        let generation = self.generation;
        for (ci, v) in row.into_iter().enumerate() {
            let col = &mut self.columns[ci];
            match col.segments.last().copied() {
                Some(last) if last.len < SEGMENT_ROWS => {
                    let si = col.segments.len() - 1;
                    let mut vals = Self::load_segment(col, si)?;
                    vals.push(v);
                    Self::store_segment(col, si, &vals, generation)?;
                }
                _ => {
                    let bytes = encode_segment(std::slice::from_ref(&v), col.compression);
                    let rid = col.file.insert(&bytes).map_err(DataError::Storage)?;
                    let zone =
                        Self::write_zone(&mut col.zones, std::slice::from_ref(&v), generation);
                    col.segments.push(SegmentInfo {
                        rid,
                        start_row: self.rows,
                        len: 1,
                        zone,
                    });
                }
            }
        }
        self.rows += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_data::census::{figure1, microdata_census, CensusConfig};
    use sdbms_storage::StorageEnv;

    fn micro(rows: usize) -> DataSet {
        microdata_census(&CensusConfig {
            rows,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn roundtrip_figure1() {
        let env = StorageEnv::new(64);
        let t = TransposedFile::from_dataset(env.pool, &figure1()).unwrap();
        assert_eq!(t.len(), 9);
        let ds = t.to_dataset("check").unwrap();
        assert_eq!(ds.rows(), figure1().rows());
    }

    #[test]
    fn roundtrip_large_multisegment() {
        let env = StorageEnv::new(256);
        let ds = micro(1000);
        let t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        assert_eq!(t.len(), 1000);
        for attr in ["AGE", "INCOME", "SEX", "REGION"] {
            let col = t.read_column(attr).unwrap();
            let expect: Vec<Value> = ds.column(attr).unwrap().cloned().collect();
            assert_eq!(col, expect, "column {attr}");
        }
        assert_eq!(t.read_row(999).unwrap(), ds.rows()[999]);
        assert!(t.read_row(1000).is_err());
    }

    #[test]
    fn column_read_touches_fewer_pages_than_row_store() {
        use crate::rowstore::RowStore;
        let ds = micro(4000);
        // Tiny pools so I/O actually happens.
        let env_t = StorageEnv::new(4);
        let mut t = TransposedFile::from_dataset(env_t.pool.clone(), &ds).unwrap();
        let env_r = StorageEnv::new(4);
        let r = RowStore::from_dataset(env_r.pool.clone(), &ds).unwrap();

        env_t.tracker.reset();
        let _ = t.read_column("INCOME").unwrap();
        let t_reads = env_t.tracker.snapshot().page_reads;

        env_r.tracker.reset();
        let _ = r.read_column("INCOME").unwrap();
        let r_reads = env_r.tracker.snapshot().page_reads;

        assert!(
            t_reads * 3 < r_reads,
            "transposed {t_reads} pages vs row {r_reads} pages"
        );

        // And the informational query reverses the comparison.
        env_t.tracker.reset();
        let _ = t.read_row(2000).unwrap();
        let t_row = env_t.tracker.snapshot().page_reads;
        env_r.tracker.reset();
        let _ = r.read_row(2000).unwrap();
        let r_row = env_r.tracker.snapshot().page_reads;
        assert!(
            r_row <= t_row,
            "row store row read {r_row} should not exceed transposed {t_row}"
        );
        // Silence unused-mut lint (set_cell exercised elsewhere).
        let _ = t.set_cell(0, "AGE", Value::Int(30)).unwrap();
    }

    #[test]
    fn set_cell_preserves_neighbors() {
        let env = StorageEnv::new(64);
        let ds = micro(600);
        let mut t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        let old = t.set_cell(300, "AGE", Value::Int(77)).unwrap();
        assert_eq!(old, ds.rows()[300][4]);
        assert_eq!(t.get_cell(300, "AGE").unwrap(), Value::Int(77));
        assert_eq!(t.get_cell(299, "AGE").unwrap(), ds.rows()[299][4]);
        assert_eq!(t.get_cell(301, "AGE").unwrap(), ds.rows()[301][4]);
        // Invalidation: mark missing.
        t.set_cell(300, "AGE", Value::Missing).unwrap();
        let (nums, skipped) = t.read_column_f64("AGE").unwrap();
        assert_eq!(nums.len(), 599);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn append_rows_one_at_a_time() {
        let env = StorageEnv::new(64);
        let mut t = TransposedFile::create(env.pool, figure1().schema().clone()).unwrap();
        for row in figure1().rows() {
            t.append_row(row.clone()).unwrap();
        }
        assert_eq!(t.len(), 9);
        assert_eq!(t.to_dataset("x").unwrap().rows(), figure1().rows());
    }

    #[test]
    fn bulk_append_after_partial_segment() {
        let env = StorageEnv::new(128);
        let ds = micro(300);
        let mut t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        let ds2 = micro(300);
        // Appending again must keep all rows addressable even though the
        // previous tail segment was partial.
        t.bulk_append(&ds2).unwrap();
        assert_eq!(t.len(), 600);
        assert_eq!(t.read_row(0).unwrap(), ds.rows()[0]);
        assert_eq!(t.read_row(300).unwrap(), ds2.rows()[0]);
        assert_eq!(t.read_row(599).unwrap(), ds2.rows()[299]);
        let ages = t.read_column("AGE").unwrap();
        assert_eq!(ages.len(), 600);
    }

    #[test]
    fn range_reads_match_full_column() {
        let env = StorageEnv::new(256);
        let ds = micro(1000);
        let t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        let full = t.read_column("INCOME").unwrap();
        // Segment-aligned, straddling, single-row, empty, and tail ranges.
        for (start, len) in [(0, 256), (200, 300), (999, 1), (500, 0), (768, 232)] {
            let got = t.read_column_range("INCOME", start, len).unwrap();
            assert_eq!(got, full[start..start + len], "range ({start}, {len})");
        }
        assert_eq!(t.read_column_range("INCOME", 0, 1000).unwrap(), full);
        assert!(t.read_column_range("INCOME", 900, 101).is_err());
        assert!(t.read_column_range("NOPE", 0, 1).is_err());
    }

    #[test]
    fn range_read_touches_only_its_segments() {
        let env = StorageEnv::new(4);
        let ds = micro(4000);
        let t = TransposedFile::from_dataset(env.pool.clone(), &ds).unwrap();
        env.tracker.reset();
        let _ = t.read_column("INCOME").unwrap();
        let full_reads = env.tracker.snapshot().page_reads;
        env.tracker.reset();
        let _ = t.read_column_range("INCOME", 0, SEGMENT_ROWS).unwrap();
        let range_reads = env.tracker.snapshot().page_reads;
        assert!(
            range_reads * 4 < full_reads.max(4),
            "one-segment range read {range_reads} pages vs full column {full_reads}"
        );
    }

    #[test]
    fn compression_metadata_exposed() {
        let env = StorageEnv::new(64);
        let t = TransposedFile::from_dataset(env.pool, &figure1()).unwrap();
        assert_eq!(t.column_compression("AGE_GROUP").unwrap(), Compression::Rle);
        assert_eq!(
            t.column_compression("SEX").unwrap(),
            Compression::Dictionary
        );
        assert!(t.column_page_count("SEX").unwrap() >= 1);
        assert!(t.column_compression("NOPE").is_err());
    }

    #[test]
    fn zone_maps_cover_every_segment_after_bulk_load() {
        let env = StorageEnv::new(256);
        let ds = micro(1000);
        let t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        for attr in ["AGE", "INCOME", "SEX", "REGION"] {
            assert_eq!(t.zone_map_count(attr).unwrap(), 4, "{attr}");
            let zm = t.range_stats(attr, 0, 1000).expect("full-column stats");
            assert_eq!(zm.rows, 1000);
            let col = t.read_column(attr).unwrap();
            assert_eq!(zm, crate::zonemap::ZoneMap::build(&col), "{attr}");
        }
        // Per-morsel stats merge exactly too (two segments).
        let zm = t.range_stats("AGE", 256, 512).unwrap();
        let col = t.read_column_range("AGE", 256, 512).unwrap();
        assert_eq!(zm, crate::zonemap::ZoneMap::build(&col));
        // Out-of-bounds range: no stats.
        assert!(t.range_stats("AGE", 900, 200).is_none());
        assert!(t.range_stats("NOPE", 0, 10).is_none());
    }

    #[test]
    fn set_cell_recomputes_zone_map_not_stale() {
        let env = StorageEnv::new(256);
        let ds = micro(600);
        let mut t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        let before = t.range_stats("AGE", 256, 256).expect("stats");
        assert!(!before.may_contain(&Value::Int(5000)));
        t.set_cell(300, "AGE", Value::Int(5000)).unwrap();
        let after = t.range_stats("AGE", 256, 256).expect("stats recomputed");
        assert!(
            after.may_contain(&Value::Int(5000)),
            "map must not be stale"
        );
        assert_eq!(after.max, Some(Value::Int(5000)));
    }

    #[test]
    fn corrupt_zone_page_degrades_to_no_stats_reads_still_work() {
        let env = StorageEnv::new(64);
        let ds = micro(700);
        let t = TransposedFile::from_dataset(env.pool.clone(), &ds).unwrap();
        assert!(t.range_stats("AGE", 0, 700).is_some());
        env.pool.flush_all().unwrap();
        env.pool.discard_frames().unwrap();
        for pid in t.zone_page_ids() {
            env.disk.corrupt_page(pid, 5).unwrap();
        }
        // Stats gone (checksum rejects the pages)…
        assert!(t.range_stats("AGE", 0, 700).is_none());
        // …but data reads are untouched: zone pages are disjoint.
        let col = t.read_column("AGE").unwrap();
        assert_eq!(col.len(), 700);
    }

    #[test]
    fn column_runs_expand_to_column_values() {
        let env = StorageEnv::new(256);
        let ds = micro(900);
        let t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        for attr in ["SEX", "INCOME", "REGION"] {
            let full = t.read_column(attr).unwrap();
            for (start, len) in [(0, 900), (0, 256), (100, 400), (899, 1), (450, 0)] {
                let runs = t.read_column_runs(attr, start, len).unwrap();
                let expanded: Vec<Value> = runs
                    .iter()
                    .flat_map(|(v, n)| std::iter::repeat_n(v.clone(), *n))
                    .collect();
                assert_eq!(expanded, full[start..start + len], "{attr} ({start},{len})");
            }
        }
        assert!(t.read_column_runs("SEX", 800, 200).is_err());
    }

    #[test]
    fn append_and_repack_keep_zone_maps_fresh() {
        let env = StorageEnv::new(128);
        let mut t = TransposedFile::create(env.pool, figure1().schema().clone()).unwrap();
        for row in figure1().rows() {
            t.append_row(row.clone()).unwrap();
        }
        let zm = t.range_stats("AGE_GROUP", 0, t.len()).expect("stats");
        let col = t.read_column("AGE_GROUP").unwrap();
        assert_eq!(zm, crate::zonemap::ZoneMap::build(&col));
        // Bulk append triggers repack of the partial tail.
        let ds = micro(300);
        let mut t2 = TransposedFile::from_dataset(StorageEnv::new(128).pool, &ds).unwrap();
        t2.bulk_append(&micro(300)).unwrap();
        let zm = t2.range_stats("AGE", 0, 600).expect("stats after repack");
        assert_eq!(
            zm,
            crate::zonemap::ZoneMap::build(&t2.read_column("AGE").unwrap())
        );
    }

    #[test]
    fn boxed_clone_is_successor_version_on_fresh_pages() {
        let env = StorageEnv::new(256);
        let ds = micro(600);
        let t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        assert_eq!(t.store_generation(), 0);
        let mut shadow = t.boxed_clone().unwrap();
        assert_eq!(shadow.store_generation(), 1);
        assert_eq!(shadow.len(), t.len());
        // Disjoint pages: mutating the clone leaves the original alone.
        let t_pages: std::collections::HashSet<_> = t
            .data_page_ids()
            .into_iter()
            .chain(t.zone_map_page_ids())
            .collect();
        assert!(shadow
            .data_page_ids()
            .iter()
            .chain(shadow.zone_map_page_ids().iter())
            .all(|p| !t_pages.contains(p)));
        let before = t.get_cell(10, "AGE").unwrap();
        shadow.set_cell(10, "AGE", Value::Int(101)).unwrap();
        assert_eq!(t.get_cell(10, "AGE").unwrap(), before);
        // The clone's zone maps are live at its own generation.
        let zm = shadow.range_stats("AGE", 0, 600).expect("clone has maps");
        assert_eq!(zm.rows, 600);
    }

    #[test]
    fn rebuild_bumps_generation_and_old_maps_cannot_prune() {
        let env = StorageEnv::new(256);
        let ds = micro(400);
        let mut t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        assert_eq!(t.generation(), 0);
        t.rebuild_zone_maps().unwrap();
        assert_eq!(t.generation(), 1);
        // Rebuilt maps serve the new generation exactly.
        let zm = t.range_stats("AGE", 0, 400).expect("rebuilt maps");
        assert_eq!(
            zm,
            crate::zonemap::ZoneMap::build(&t.read_column("AGE").unwrap())
        );
    }

    #[test]
    fn batch_reads_match_range_reads() {
        let env = StorageEnv::new(256);
        let ds = micro(1000);
        let t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        for attr in ["AGE", "INCOME", "SEX", "REGION"] {
            for (start, len) in [
                (0, 1000),
                (0, 256),
                (200, 300),
                (999, 1),
                (500, 0),
                (768, 232),
            ] {
                let batch = t.read_column_batch(attr, start, len).unwrap();
                let want = t.read_column_range(attr, start, len).unwrap();
                assert_eq!(batch.to_values(), want, "{attr} ({start},{len})");
                assert_eq!(batch.rows(), len, "{attr} ({start},{len})");
            }
        }
        assert!(t.read_column_batch("INCOME", 900, 101).is_err());
        assert!(t.read_column_batch("NOPE", 0, 1).is_err());
    }

    #[test]
    fn sealed_reads_byte_identical_to_pool_reads() {
        let env = StorageEnv::new(256);
        let ds = micro(900);
        let mut t = TransposedFile::from_dataset(env.pool, &ds).unwrap();
        assert!(!t.scan_sealed());
        let attrs = ["AGE", "INCOME", "SEX", "REGION"];
        let before: Vec<Vec<Value>> = attrs.iter().map(|a| t.read_column(a).unwrap()).collect();
        assert!(t.seal_for_scan().unwrap());
        assert!(t.scan_sealed());
        // Sealing is idempotent.
        assert!(t.seal_for_scan().unwrap());
        for (a, want) in attrs.iter().zip(&before) {
            assert_eq!(&t.read_column(a).unwrap(), want, "{a}");
            let batch = t.read_column_batch(a, 100, 500).unwrap();
            assert_eq!(batch.to_values(), want[100..600], "{a} batch");
            let runs = t.read_column_runs(a, 0, 900).unwrap();
            let expanded: Vec<Value> = runs
                .iter()
                .flat_map(|(v, n)| std::iter::repeat_n(v.clone(), *n))
                .collect();
            assert_eq!(&expanded, want, "{a} runs");
        }
        assert_eq!(t.read_row(456).unwrap(), ds.rows()[456]);
        // Encoded segments compare byte-for-byte across the two paths.
        let sealed_seg = t.encoded_segment("AGE", 1).unwrap().unwrap();
        let info_bytes = t
            .segment_bytes_view(&t.columns[t.schema.require("AGE").unwrap()], 1)
            .unwrap();
        assert_eq!(&sealed_seg[..], &info_bytes[..]);
    }

    #[test]
    fn sealed_scans_do_no_io_and_mutation_unseals() {
        let env = StorageEnv::new(8); // tiny pool: unsealed scans must fault
        let ds = micro(2000);
        let mut t = TransposedFile::from_dataset(env.pool.clone(), &ds).unwrap();
        t.seal_for_scan().unwrap();
        env.pool.discard_frames().unwrap();
        env.tracker.reset();
        let sealed_col = t.read_column("INCOME").unwrap();
        assert_eq!(
            env.tracker.snapshot().page_reads,
            0,
            "sealed scan bypasses the pool entirely"
        );
        // Mutation unseals; the same scan now reads through the pool.
        t.set_cell(0, "INCOME", Value::Float(1.5)).unwrap();
        assert!(!t.scan_sealed());
        env.tracker.reset();
        let unsealed_col = t.read_column("INCOME").unwrap();
        assert!(env.tracker.snapshot().page_reads > 0);
        assert_eq!(sealed_col[1..], unsealed_col[1..]);
    }

    #[test]
    fn corrupt_data_page_fails_seal_and_pool_path_still_reports_it() {
        let env = StorageEnv::new(64);
        let ds = micro(700);
        let mut t = TransposedFile::from_dataset(env.pool.clone(), &ds).unwrap();
        env.pool.flush_all().unwrap();
        env.pool.discard_frames().unwrap();
        let victim = t.data_page_ids()[0];
        env.disk.corrupt_page(victim, 21).unwrap();
        // The seal CRC-verifies at map time: corruption surfaces as an
        // error and the store stays unsealed (degrades to pool path).
        let err = t.seal_for_scan().unwrap_err();
        assert!(
            matches!(
                err,
                DataError::Storage(sdbms_storage::StorageError::ChecksumMismatch { .. })
            ),
            "{err:?}"
        );
        assert!(!t.scan_sealed());
    }

    #[test]
    fn mismatched_compressions_rejected() {
        let env = StorageEnv::new(16);
        let r =
            TransposedFile::create_with(env.pool, figure1().schema().clone(), &[Compression::None]);
        assert!(r.is_err());
    }
}
