//! Per-segment zone maps: small statistics that let a scan refute a
//! predicate for a whole segment without decoding it.
//!
//! A [`ZoneMap`] records, for one column segment: the row count, the
//! missing count, the run count, the extreme values under
//! [`Value::total_cmp`] (the same total order predicates compare with,
//! so bounds-based refutation is exact), the first/last values (which
//! make run counts merge exactly), and — when the segment's domain is
//! small, as coded attributes' usually are — the full distinct set,
//! which upgrades equality pruning from range checks to membership
//! checks.
//!
//! Zone maps are *advisory*: every consumer must treat a missing or
//! unreadable map as "may match" and fall back to scanning the
//! segment. That is what makes a torn or corrupted zone-map page
//! degrade to an unpruned scan instead of a wrong answer.

use std::cmp::Ordering;

use sdbms_data::{DataError, Value};

use crate::read_u16;

/// Maximum distinct (non-missing) values a zone map records verbatim.
/// Above this the distinct set is dropped and only min/max survive —
/// coded attributes stay under it, free-ranging measurements don't.
pub const ZONE_DISTINCT_CAP: usize = 16;

/// Leading magic of an encoded zone map, so a stale or garbage record
/// fails decoding instead of pruning with fiction.
const ZONE_MAGIC: u16 = 0x5A4D; // "ZM"

/// Statistics over one column segment (or a merged row range).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZoneMap {
    /// Rows covered.
    pub rows: usize,
    /// Rows whose value is [`Value::Missing`].
    pub null_count: usize,
    /// Maximal runs of [`Value::group_eq`]-equal values.
    pub run_count: usize,
    /// Smallest non-missing value under [`Value::total_cmp`] (`None`
    /// when every row is missing).
    pub min: Option<Value>,
    /// Largest non-missing value under [`Value::total_cmp`].
    pub max: Option<Value>,
    /// First value of the range (missing included) — lets
    /// [`ZoneMap::merge`] count boundary-spanning runs exactly.
    pub first: Option<Value>,
    /// Last value of the range.
    pub last: Option<Value>,
    /// All distinct non-missing values, sorted by
    /// [`Value::total_cmp`], if there are at most
    /// [`ZONE_DISTINCT_CAP`] of them.
    pub distinct: Option<Vec<Value>>,
}

/// `total_cmp`-ordered insert keeping `set` sorted and duplicate-free;
/// returns `false` (and leaves `set` alone) once the cap is exceeded.
fn distinct_insert(set: &mut Vec<Value>, v: &Value) -> bool {
    match set.binary_search_by(|probe| probe.total_cmp(v)) {
        Ok(_) => true,
        Err(i) => {
            if set.len() >= ZONE_DISTINCT_CAP {
                return false;
            }
            set.insert(i, v.clone());
            true
        }
    }
}

impl ZoneMap {
    /// Build the map of one segment's values in a single pass.
    #[must_use]
    pub fn build(values: &[Value]) -> ZoneMap {
        let mut zm = ZoneMap {
            rows: values.len(),
            first: values.first().cloned(),
            last: values.last().cloned(),
            distinct: Some(Vec::new()),
            ..ZoneMap::default()
        };
        let mut prev: Option<&Value> = None;
        for v in values {
            if !prev.is_some_and(|p| p.group_eq(v)) {
                zm.run_count += 1;
            }
            prev = Some(v);
            if v.is_missing() {
                zm.null_count += 1;
                continue;
            }
            match &mut zm.min {
                Some(m) if m.total_cmp(v) != Ordering::Greater => {}
                slot => *slot = Some(v.clone()),
            }
            match &mut zm.max {
                Some(m) if m.total_cmp(v) != Ordering::Less => {}
                slot => *slot = Some(v.clone()),
            }
            if let Some(set) = &mut zm.distinct {
                if !distinct_insert(set, v) {
                    zm.distinct = None;
                }
            }
        }
        zm
    }

    /// Absorb the map of the row range immediately *following* this
    /// one. Exact: merging per-segment maps reproduces
    /// [`ZoneMap::build`] over the concatenated values, which is what
    /// lets morsel-sized pruning decisions combine segment maps.
    pub fn merge(&mut self, other: &ZoneMap) {
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            *self = other.clone();
            return;
        }
        self.run_count += other.run_count;
        if let (Some(l), Some(f)) = (&self.last, &other.first) {
            if l.group_eq(f) {
                self.run_count -= 1;
            }
        }
        self.rows += other.rows;
        self.null_count += other.null_count;
        self.last = other.last.clone();
        for v in other.min.iter() {
            match &mut self.min {
                Some(m) if m.total_cmp(v) != Ordering::Greater => {}
                slot => *slot = Some(v.clone()),
            }
        }
        for v in other.max.iter() {
            match &mut self.max {
                Some(m) if m.total_cmp(v) != Ordering::Less => {}
                slot => *slot = Some(v.clone()),
            }
        }
        self.distinct = match (self.distinct.take(), &other.distinct) {
            (Some(mut mine), Some(theirs)) => {
                let mut ok = true;
                for v in theirs {
                    if !distinct_insert(&mut mine, v) {
                        ok = false;
                        break;
                    }
                }
                ok.then_some(mine)
            }
            _ => None,
        };
    }

    /// True if any covered row might hold a non-missing value equal to
    /// `v` under [`Value::total_cmp`]. Conservative: `true` whenever
    /// the map cannot prove absence.
    #[must_use]
    pub fn may_contain(&self, v: &Value) -> bool {
        if self.rows == self.null_count {
            return false;
        }
        if let Some(set) = &self.distinct {
            return set.binary_search_by(|probe| probe.total_cmp(v)).is_ok();
        }
        match (&self.min, &self.max) {
            (Some(lo), Some(hi)) => {
                lo.total_cmp(v) != Ordering::Greater && hi.total_cmp(v) != Ordering::Less
            }
            _ => true,
        }
    }

    /// Serialize for persistence alongside the column's data pages.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&ZONE_MAGIC.to_le_bytes());
        buf.extend_from_slice(&(self.rows as u16).to_le_bytes());
        buf.extend_from_slice(&(self.null_count as u16).to_le_bytes());
        buf.extend_from_slice(&(self.run_count as u16).to_le_bytes());
        let mut flags = 0u8;
        if self.min.is_some() {
            flags |= 1;
        }
        if self.first.is_some() {
            flags |= 2;
        }
        if self.distinct.is_some() {
            flags |= 4;
        }
        buf.push(flags);
        for v in self.min.iter().chain(self.max.iter()) {
            v.encode(&mut buf);
        }
        for v in self.first.iter().chain(self.last.iter()) {
            v.encode(&mut buf);
        }
        if let Some(set) = &self.distinct {
            buf.extend_from_slice(&(set.len() as u16).to_le_bytes());
            for v in set {
                v.encode(&mut buf);
            }
        }
        buf
    }

    /// Serialize with a leading store-generation stamp. A map written
    /// under one view version must never prune a scan of another, even
    /// if a page holding it is somehow resurrected — readers check the
    /// stamp via [`ZoneMap::decode_tagged`] and treat a mismatch as "no
    /// map".
    #[must_use]
    pub fn encode_tagged(&self, generation: u64) -> Vec<u8> {
        let mut buf = generation.to_le_bytes().to_vec();
        buf.extend_from_slice(&self.encode());
        buf
    }

    /// Decode a generation-stamped zone map, returning the map and the
    /// generation it was written under.
    pub fn decode_tagged(buf: &[u8]) -> Result<(ZoneMap, u64), DataError> {
        let gen_bytes: [u8; 8] = buf
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .ok_or(DataError::Decode("zone map generation truncated"))?;
        let zm = ZoneMap::decode(&buf[8..])?;
        Ok((zm, u64::from_le_bytes(gen_bytes)))
    }

    /// Decode a persisted zone map. Any structural damage is an error —
    /// callers treat it as "no zone map" and scan unpruned.
    pub fn decode(buf: &[u8]) -> Result<ZoneMap, DataError> {
        if read_u16(buf, 0, "zone map truncated")? != ZONE_MAGIC {
            return Err(DataError::Decode("zone map magic mismatch"));
        }
        let rows = read_u16(buf, 2, "zone map truncated")? as usize;
        let null_count = read_u16(buf, 4, "zone map truncated")? as usize;
        let run_count = read_u16(buf, 6, "zone map truncated")? as usize;
        let flags = *buf.get(8).ok_or(DataError::Decode("zone map truncated"))?;
        let mut pos = 9usize;
        let (min, max) = if flags & 1 != 0 {
            (
                Some(Value::decode(buf, &mut pos)?),
                Some(Value::decode(buf, &mut pos)?),
            )
        } else {
            (None, None)
        };
        let (first, last) = if flags & 2 != 0 {
            (
                Some(Value::decode(buf, &mut pos)?),
                Some(Value::decode(buf, &mut pos)?),
            )
        } else {
            (None, None)
        };
        let distinct = if flags & 4 != 0 {
            let n = read_u16(buf, pos, "zone map distinct truncated")? as usize;
            pos += 2;
            if n > ZONE_DISTINCT_CAP {
                return Err(DataError::Decode("zone map distinct set oversized"));
            }
            let mut set = Vec::with_capacity(n);
            for _ in 0..n {
                set.push(Value::decode(buf, &mut pos)?);
            }
            Some(set)
        } else {
            None
        };
        if pos != buf.len() {
            return Err(DataError::Decode("trailing bytes after zone map"));
        }
        if null_count > rows || (rows > 0) != (run_count > 0) {
            return Err(DataError::Decode("zone map counters inconsistent"));
        }
        Ok(ZoneMap {
            rows,
            null_count,
            run_count,
            min,
            max,
            first,
            last,
            distinct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| match i % 11 {
                0 => Value::Missing,
                1 => Value::Code(u32::try_from(i % 3).unwrap()),
                2 => Value::Float(i as f64 / 4.0 - 30.0),
                3 => Value::Float(f64::NAN),
                4 => Value::Str(if i % 2 == 0 { "a" } else { "b" }.into()),
                _ => Value::Int(i as i64 % 37 - 18),
            })
            .collect()
    }

    #[test]
    fn build_counts_runs_nulls_extremes() {
        let vals = vec![
            Value::Int(5),
            Value::Int(5),
            Value::Missing,
            Value::Int(-2),
            Value::Int(9),
            Value::Int(9),
        ];
        let zm = ZoneMap::build(&vals);
        assert_eq!(zm.rows, 6);
        assert_eq!(zm.null_count, 1);
        assert_eq!(zm.run_count, 4);
        assert_eq!(zm.min, Some(Value::Int(-2)));
        assert_eq!(zm.max, Some(Value::Int(9)));
        assert_eq!(zm.first, Some(Value::Int(5)));
        assert_eq!(zm.last, Some(Value::Int(9)));
        let set = zm
            .distinct
            .clone()
            .expect("small domain keeps distinct set");
        assert_eq!(set, vec![Value::Int(-2), Value::Int(5), Value::Int(9)]);
        assert!(zm.may_contain(&Value::Int(5)));
        assert!(!zm.may_contain(&Value::Int(6)));
    }

    #[test]
    fn all_missing_segment() {
        let zm = ZoneMap::build(&[Value::Missing, Value::Missing]);
        assert_eq!(zm.null_count, 2);
        assert_eq!(zm.run_count, 1);
        assert_eq!(zm.min, None);
        assert!(!zm.may_contain(&Value::Int(0)));
    }

    #[test]
    fn wide_domain_drops_distinct_but_keeps_bounds() {
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let zm = ZoneMap::build(&vals);
        assert!(zm.distinct.is_none());
        assert_eq!(zm.min, Some(Value::Int(0)));
        assert_eq!(zm.max, Some(Value::Int(99)));
        assert!(zm.may_contain(&Value::Int(50)));
        assert!(!zm.may_contain(&Value::Int(100)));
    }

    #[test]
    fn roundtrip_encode_decode() {
        for vals in [mixed(200), Vec::new(), vec![Value::Missing; 7], mixed(3)] {
            let zm = ZoneMap::build(&vals);
            assert_eq!(ZoneMap::decode(&zm.encode()).unwrap(), zm);
        }
    }

    #[test]
    fn decode_rejects_damage() {
        let zm = ZoneMap::build(&mixed(50));
        let good = zm.encode();
        assert!(ZoneMap::decode(&good[..good.len() - 1]).is_err());
        let mut bad = good.clone();
        bad[0] ^= 0xFF; // magic
        assert!(ZoneMap::decode(&bad).is_err());
        let mut junk = good;
        junk.push(0);
        assert!(ZoneMap::decode(&junk).is_err());
        assert!(ZoneMap::decode(&[]).is_err());
    }

    #[test]
    fn tagged_roundtrip_carries_generation() {
        let zm = ZoneMap::build(&mixed(80));
        let bytes = zm.encode_tagged(7);
        let (got, generation) = ZoneMap::decode_tagged(&bytes).unwrap();
        assert_eq!(got, zm);
        assert_eq!(generation, 7);
        // Too short for even the stamp.
        assert!(ZoneMap::decode_tagged(&bytes[..5]).is_err());
        // An untagged record's first bytes are not a valid stamp+map.
        assert!(ZoneMap::decode_tagged(&zm.encode()).is_err());
    }

    #[test]
    fn merge_equals_build_of_concatenation() {
        let whole = mixed(500);
        for cut in [0, 1, 127, 256, 499, 500] {
            let (a, b) = whole.split_at(cut);
            let mut merged = ZoneMap::build(a);
            merged.merge(&ZoneMap::build(b));
            assert_eq!(merged, ZoneMap::build(&whole), "cut at {cut}");
        }
    }

    #[test]
    fn merge_counts_boundary_spanning_runs_once() {
        let a = vec![Value::Code(1), Value::Code(2)];
        let b = vec![Value::Code(2), Value::Code(2), Value::Code(3)];
        let mut merged = ZoneMap::build(&a);
        merged.merge(&ZoneMap::build(&b));
        assert_eq!(merged.run_count, 3);
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_associative_and_exact(
            parts in proptest::collection::vec((0u8..5, 0i64..60), 0..300),
            cut in 0usize..300,
        ) {
            let whole: Vec<Value> = parts
                .iter()
                .map(|&(k, x)| match k {
                    0 => Value::Missing,
                    1 => Value::Code(u32::try_from(x % 4).unwrap()),
                    2 => Value::Float(x as f64 / 2.0),
                    _ => Value::Int(x % 23),
                })
                .collect();
            let cut = cut.min(whole.len());
            let (a, b) = whole.split_at(cut);
            let mut merged = ZoneMap::build(a);
            merged.merge(&ZoneMap::build(b));
            proptest::prop_assert_eq!(merged, ZoneMap::build(&whole));
        }
    }
}
