//! # sdbms-core — the statistical DBMS
//!
//! This crate assembles the architecture of paper Figure 3:
//!
//! ```text
//!      raw database (tape)          Management Database
//!            │                     (catalog · histories · rules)
//!     materialize (relational ops)         │
//!            ▼                             │ drives
//!   concrete views (disk, row or transposed layout)
//!            │                             │
//!            ├── Summary Database per view ┘
//!            ▼
//!   statistical functions (cached, incrementally maintained)
//! ```
//!
//! [`dbms::StatDbms`] is the façade: load raw data sets onto archive
//! storage, materialize per-analyst views (with the §2.3 duplicate
//! check), run statistical functions through each view's Summary
//! Database, update by predicate with automatic cache maintenance and
//! derived-column rules, checkpoint/rollback/publish through the
//! Management Database, and reorganize storage when the observed
//! access pattern favors the other layout.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dbms;
pub mod error;
pub mod repair;
pub mod session;
pub mod view;

pub use dbms::{paper_demo_dbms, DurabilityPolicy, RecoveryReport, StatDbms, MMAP_ENV};
pub use error::{CoreError, Result};
pub use repair::RepairReport;
pub use session::{BatchId, BatchOp, Snapshot};
pub use view::{AccessTracker, ConcreteView, UpdateReport};

// Re-export the vocabulary types callers need, so examples and tests
// can depend on `sdbms-core` alone.
pub use sdbms_columnar::Layout;
pub use sdbms_relational::{
    AggFunc, Aggregate, BinOp, CmpOp, Expr, Predicate, ScalarFunc, ViewDefinition, ViewStep,
};
pub use sdbms_repair::{
    Authority, Component, CorruptionFinding, HealthRecord, RepairGate, RepairLadder, ScrubReport,
    ViewHealth,
};
pub use sdbms_summary::{
    AccuracyPolicy, ComputeSource, MaintenancePolicy, StatFunction, SummaryValue,
};
pub use sdbms_txn::{LockError, SessionId};
