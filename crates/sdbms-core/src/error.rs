//! Error type for the DBMS core.

use std::fmt;

use sdbms_data::DataError;
use sdbms_management::ManagementError;
use sdbms_repair::RepairGate;
use sdbms_stats::StatsError;
use sdbms_storage::StorageError;
use sdbms_summary::SummaryError;
use sdbms_txn::LockError;

/// Errors raised by the statistical DBMS.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No concrete view with this name.
    NoSuchView(String),
    /// A view with this name already exists.
    ViewExists(String),
    /// An equivalent view already exists (the §2.3 duplicate check);
    /// the caller should use it instead of re-materializing.
    EquivalentViewExists {
        /// Name of the existing equivalent view.
        existing: String,
        /// Its owner.
        owner: String,
    },
    /// The caller does not own the view.
    NotOwner {
        /// View name.
        view: String,
        /// Actual owner.
        owner: String,
    },
    /// Summaries requested for an attribute whose metadata says they
    /// are meaningless (§3.2's AGE_GROUP median example).
    NotSummarizable {
        /// The attribute.
        attribute: String,
    },
    /// A repair attempt was refused by the health registry's admission
    /// gate (backoff window, spent retry budget, or the view is already
    /// unrecoverable).
    RepairRefused {
        /// View name.
        view: String,
        /// Why the gate refused.
        gate: RepairGate,
    },
    /// A repair ran to completion but the post-repair verification
    /// pass still found damage; the view stays degraded and a later
    /// attempt may be admitted after backoff.
    RepairIncomplete {
        /// View name.
        view: String,
        /// Findings remaining after the attempt.
        remaining: usize,
    },
    /// The view cannot be repaired: its authoritative archive copy
    /// failed verification, so there is no sound source to regenerate
    /// from.
    Unrecoverable {
        /// View name.
        view: String,
        /// What failed.
        reason: String,
    },
    /// A view lock could not be taken (another batch, scrub, or
    /// repair holds it, or the acquisition violated the documented
    /// lock order). Acquisition never blocks, so this surfaces
    /// immediately and the caller may retry.
    Lock(LockError),
    /// No open update batch with this id (never begun, or already
    /// committed/aborted).
    NoSuchBatch(u64),
    /// The request driving this operation was cancelled. A cooperative
    /// stop, not a failure: storage state is intact, an in-flight batch
    /// aborts cleanly, and no partial result is ever returned. Budget
    /// trips arriving from any lower layer (storage, data, summary) are
    /// normalised to this variant at the `From` boundary so callers can
    /// match one shape.
    Cancelled,
    /// The request driving this operation ran out of deadline budget.
    /// Like [`CoreError::Cancelled`], a clean typed stop — never a
    /// partial result.
    DeadlineExceeded,
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying data-model failure.
    Data(DataError),
    /// Underlying statistics failure.
    Stats(StatsError),
    /// Underlying Summary Database failure.
    Summary(SummaryError),
    /// Underlying Management Database failure.
    Management(ManagementError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoSuchView(name) => write!(f, "no view named {name:?}"),
            CoreError::ViewExists(name) => write!(f, "view {name:?} already exists"),
            CoreError::EquivalentViewExists { existing, owner } => write!(
                f,
                "an equivalent view already exists: {existing:?} (owner {owner})"
            ),
            CoreError::NotOwner { view, owner } => {
                write!(f, "view {view:?} is owned by {owner}")
            }
            CoreError::NotSummarizable { attribute } => write!(
                f,
                "summary statistics are not meaningful for attribute {attribute:?} \
                 (encoded/categorical; see its metadata)"
            ),
            CoreError::RepairRefused { view, gate } => {
                write!(f, "repair of view {view:?} refused: {gate}")
            }
            CoreError::RepairIncomplete { view, remaining } => write!(
                f,
                "repair of view {view:?} left {remaining} finding(s); \
                 the view remains degraded"
            ),
            CoreError::Unrecoverable { view, reason } => {
                write!(f, "view {view:?} is unrecoverable: {reason}")
            }
            CoreError::Lock(e) => write!(f, "lock error: {e}"),
            CoreError::NoSuchBatch(id) => write!(f, "no open update batch {id}"),
            CoreError::Cancelled => write!(f, "request cancelled"),
            CoreError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
            CoreError::Summary(e) => write!(f, "summary error: {e}"),
            CoreError::Management(e) => write!(f, "management error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lock(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Summary(e) => Some(e),
            CoreError::Management(e) => Some(e),
            _ => None,
        }
    }
}

impl CoreError {
    /// True for the cooperative-stop errors ([`CoreError::Cancelled`] /
    /// [`CoreError::DeadlineExceeded`]). These are *not* engine faults:
    /// the circuit breaker counts deadline trips against a view but
    /// must never count client cancellations, and neither may trigger
    /// quarantine or repair.
    #[must_use]
    pub fn is_budget(&self) -> bool {
        matches!(self, CoreError::Cancelled | CoreError::DeadlineExceeded)
    }
}

/// Normalise a budget-tripped [`StorageError`] to the typed core
/// variant; `None` for everything else.
fn budget_core(e: &StorageError) -> Option<CoreError> {
    match e {
        StorageError::Cancelled => Some(CoreError::Cancelled),
        StorageError::DeadlineExceeded => Some(CoreError::DeadlineExceeded),
        _ => None,
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        budget_core(&e).unwrap_or(CoreError::Storage(e))
    }
}
impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        if let DataError::Storage(se) = &e {
            if let Some(b) = budget_core(se) {
                return b;
            }
        }
        CoreError::Data(e)
    }
}
impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}
impl From<SummaryError> for CoreError {
    fn from(e: SummaryError) -> Self {
        match &e {
            SummaryError::Storage(se) | SummaryError::Data(DataError::Storage(se)) => {
                if let Some(b) = budget_core(se) {
                    return b;
                }
            }
            _ => {}
        }
        CoreError::Summary(e)
    }
}
impl From<sdbms_storage::budget::CancelError> for CoreError {
    fn from(e: sdbms_storage::budget::CancelError) -> Self {
        CoreError::from(StorageError::from(e))
    }
}
impl From<ManagementError> for CoreError {
    fn from(e: ManagementError) -> Self {
        CoreError::Management(e)
    }
}
impl From<LockError> for CoreError {
    fn from(e: LockError) -> Self {
        CoreError::Lock(e)
    }
}

/// Convenient result alias for DBMS operations.
pub type Result<T> = std::result::Result<T, CoreError>;
