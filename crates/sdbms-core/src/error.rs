//! Error type for the DBMS core.

use std::fmt;

use sdbms_data::DataError;
use sdbms_management::ManagementError;
use sdbms_repair::RepairGate;
use sdbms_stats::StatsError;
use sdbms_storage::StorageError;
use sdbms_summary::SummaryError;
use sdbms_txn::LockError;

/// Errors raised by the statistical DBMS.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No concrete view with this name.
    NoSuchView(String),
    /// A view with this name already exists.
    ViewExists(String),
    /// An equivalent view already exists (the §2.3 duplicate check);
    /// the caller should use it instead of re-materializing.
    EquivalentViewExists {
        /// Name of the existing equivalent view.
        existing: String,
        /// Its owner.
        owner: String,
    },
    /// The caller does not own the view.
    NotOwner {
        /// View name.
        view: String,
        /// Actual owner.
        owner: String,
    },
    /// Summaries requested for an attribute whose metadata says they
    /// are meaningless (§3.2's AGE_GROUP median example).
    NotSummarizable {
        /// The attribute.
        attribute: String,
    },
    /// A repair attempt was refused by the health registry's admission
    /// gate (backoff window, spent retry budget, or the view is already
    /// unrecoverable).
    RepairRefused {
        /// View name.
        view: String,
        /// Why the gate refused.
        gate: RepairGate,
    },
    /// A repair ran to completion but the post-repair verification
    /// pass still found damage; the view stays degraded and a later
    /// attempt may be admitted after backoff.
    RepairIncomplete {
        /// View name.
        view: String,
        /// Findings remaining after the attempt.
        remaining: usize,
    },
    /// The view cannot be repaired: its authoritative archive copy
    /// failed verification, so there is no sound source to regenerate
    /// from.
    Unrecoverable {
        /// View name.
        view: String,
        /// What failed.
        reason: String,
    },
    /// A view lock could not be taken (another batch, scrub, or
    /// repair holds it, or the acquisition violated the documented
    /// lock order). Acquisition never blocks, so this surfaces
    /// immediately and the caller may retry.
    Lock(LockError),
    /// No open update batch with this id (never begun, or already
    /// committed/aborted).
    NoSuchBatch(u64),
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying data-model failure.
    Data(DataError),
    /// Underlying statistics failure.
    Stats(StatsError),
    /// Underlying Summary Database failure.
    Summary(SummaryError),
    /// Underlying Management Database failure.
    Management(ManagementError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoSuchView(name) => write!(f, "no view named {name:?}"),
            CoreError::ViewExists(name) => write!(f, "view {name:?} already exists"),
            CoreError::EquivalentViewExists { existing, owner } => write!(
                f,
                "an equivalent view already exists: {existing:?} (owner {owner})"
            ),
            CoreError::NotOwner { view, owner } => {
                write!(f, "view {view:?} is owned by {owner}")
            }
            CoreError::NotSummarizable { attribute } => write!(
                f,
                "summary statistics are not meaningful for attribute {attribute:?} \
                 (encoded/categorical; see its metadata)"
            ),
            CoreError::RepairRefused { view, gate } => {
                write!(f, "repair of view {view:?} refused: {gate}")
            }
            CoreError::RepairIncomplete { view, remaining } => write!(
                f,
                "repair of view {view:?} left {remaining} finding(s); \
                 the view remains degraded"
            ),
            CoreError::Unrecoverable { view, reason } => {
                write!(f, "view {view:?} is unrecoverable: {reason}")
            }
            CoreError::Lock(e) => write!(f, "lock error: {e}"),
            CoreError::NoSuchBatch(id) => write!(f, "no open update batch {id}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
            CoreError::Summary(e) => write!(f, "summary error: {e}"),
            CoreError::Management(e) => write!(f, "management error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lock(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::Data(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Summary(e) => Some(e),
            CoreError::Management(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}
impl From<StatsError> for CoreError {
    fn from(e: StatsError) -> Self {
        CoreError::Stats(e)
    }
}
impl From<SummaryError> for CoreError {
    fn from(e: SummaryError) -> Self {
        CoreError::Summary(e)
    }
}
impl From<ManagementError> for CoreError {
    fn from(e: ManagementError) -> Self {
        CoreError::Management(e)
    }
}
impl From<LockError> for CoreError {
    fn from(e: LockError) -> Self {
        CoreError::Lock(e)
    }
}

/// Convenient result alias for DBMS operations.
pub type Result<T> = std::result::Result<T, CoreError>;
