//! Concrete views and their access-pattern bookkeeping.

use std::collections::BTreeSet;
use std::sync::Arc;

use sdbms_columnar::{Layout, TableStore};
use sdbms_data::DataError;
use sdbms_storage::DiskManager;
use sdbms_summary::{IntentLog, MaintenancePolicy, SummaryDb};
use sdbms_txn::EpochRegistry;

/// Counts of how a view has been accessed, driving the §2.3
/// "intelligent access methods that interpret reference patterns to
/// the view and dynamically reorganize the storage structures".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessTracker {
    /// Whole-column (statistical) reads.
    pub column_reads: u64,
    /// Whole-row (informational) reads.
    pub row_reads: u64,
}

impl AccessTracker {
    /// The layout this access pattern favors, if the evidence is
    /// strong (at least 10 accesses and a 3:1 skew); `None` = no
    /// recommendation.
    #[must_use]
    pub fn recommended_layout(&self) -> Option<Layout> {
        let total = self.column_reads + self.row_reads;
        if total < 10 {
            return None;
        }
        if self.column_reads >= 3 * self.row_reads.max(1) {
            Some(Layout::Transposed)
        } else if self.row_reads >= 3 * self.column_reads.max(1) {
            Some(Layout::Row)
        } else {
            None
        }
    }
}

/// A materialized (concrete) view: on-disk data + its private Summary
/// Database (§3.2: "Associated with each view is a Summary Database").
pub struct ConcreteView {
    /// View name (catalog key).
    pub name: String,
    /// Owning analyst.
    pub owner: String,
    /// The on-disk data in its current layout. `Send + Sync` so the
    /// morsel-driven executor can scan it from worker threads, and
    /// behind an `Arc` so a [`crate::Snapshot`] can pin the version it
    /// opened against while later commits install successors.
    pub store: Arc<dyn TableStore + Send + Sync>,
    /// Monotone version counter, bumped every time a new store is
    /// installed (batch commit, copy-on-write mutation, reorganize,
    /// repair regeneration). A snapshot records the version it pinned.
    pub version: u64,
    /// Current layout.
    pub layout: Layout,
    /// The view's Summary Database.
    pub summary: SummaryDb,
    /// Maintenance policy for the Summary Database under updates.
    pub policy: MaintenancePolicy,
    /// Access-pattern counters.
    pub tracker: AccessTracker,
    /// Derived columns currently marked out-of-date (the
    /// [`sdbms_management::DerivedRule::MarkStale`] rule).
    pub stale_columns: BTreeSet<String>,
    /// Write-ahead intent log, present when the DBMS runs under
    /// [`crate::DurabilityPolicy::CrashConsistent`]. `None` means the
    /// view's summaries are volatile (the historical default).
    pub wal: Option<IntentLog>,
    /// The DBMS-wide epoch registry, for retiring replaced store
    /// versions only after the last pinned snapshot drains.
    pub(crate) epochs: Arc<EpochRegistry>,
    /// The disk, so retired versions can return their pages.
    pub(crate) disk: Arc<DiskManager>,
}

impl ConcreteView {
    /// Mutable access to the store for in-place edits. If a pinned
    /// snapshot still shares the current version, the store is first
    /// shadow-copied onto fresh pages (copy-on-write) so the
    /// snapshot's version stays byte-stable; the displaced version is
    /// retired through the epoch registry.
    pub fn store_mut(
        &mut self,
    ) -> std::result::Result<&mut (dyn TableStore + Send + Sync), DataError> {
        if Arc::get_mut(&mut self.store).is_none() {
            let clone = self.store.boxed_clone()?;
            self.install_store(Arc::from(clone));
        }
        match Arc::get_mut(&mut self.store) {
            Some(s) => Ok(s),
            // Unreachable: the shadow copy above leaves exactly one
            // strong reference. Kept as an error, not a panic.
            None => Err(DataError::Decode(
                "store version still shared after shadow copy",
            )),
        }
    }

    /// Install `store` as the view's current version: bump the version
    /// counter, and retire the displaced version through the epoch
    /// registry — its pages return to the free list only once every
    /// snapshot pinned before the install has dropped.
    pub fn install_store(&mut self, store: Arc<dyn TableStore + Send + Sync>) {
        // lint: allow(snapshot-bypass): this IS the sanctioned install point every other site routes through
        let old = std::mem::replace(&mut self.store, store);
        self.version += 1;
        let mut pages = old.data_page_ids();
        pages.extend(old.zone_map_page_ids());
        let disk = Arc::clone(&self.disk);
        self.epochs.retire(move || {
            drop(old);
            for pid in pages {
                // Best-effort: a page that cannot be zeroed right now
                // is merely leaked, never reused while referenced.
                let _ = disk.deallocate(pid);
            }
        });
    }
}

impl std::fmt::Debug for ConcreteView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcreteView")
            .field("name", &self.name)
            .field("owner", &self.owner)
            .field("rows", &self.store.len())
            .field("layout", &self.layout)
            .field("cached", &self.summary.len())
            .finish()
    }
}

/// What an update statement did (returned by
/// [`crate::dbms::StatDbms::update_where`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateReport {
    /// Rows matching the predicate.
    pub rows_matched: usize,
    /// Cells actually changed (per assignment).
    pub cells_changed: usize,
    /// Summary Database maintenance work, summed over attributes.
    pub maintenance: sdbms_summary::MaintenanceReport,
    /// Derived columns touched, with the rule cost class applied.
    pub derived_updates: Vec<(String, &'static str)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_recommendations() {
        let mut t = AccessTracker::default();
        assert_eq!(t.recommended_layout(), None, "no evidence yet");
        t.column_reads = 30;
        t.row_reads = 2;
        assert_eq!(t.recommended_layout(), Some(Layout::Transposed));
        let t = AccessTracker {
            column_reads: 2,
            row_reads: 40,
        };
        assert_eq!(t.recommended_layout(), Some(Layout::Row));
        let t = AccessTracker {
            column_reads: 10,
            row_reads: 12,
        };
        assert_eq!(t.recommended_layout(), None, "mixed workload");
        let t = AccessTracker {
            column_reads: 12,
            row_reads: 0,
        };
        assert_eq!(t.recommended_layout(), Some(Layout::Transposed));
    }
}
