//! The statistical DBMS façade — paper Figure 3 assembled.
//!
//! One [`StatDbms`] owns: the raw database on archive storage, any
//! number of per-analyst concrete views on disk (row or transposed
//! layout), one Summary Database per view, and the single Management
//! Database (view catalog + histories + rules). Every byte of view and
//! summary data moves through one simulated storage environment, so
//! the shared tracker sees the whole system's I/O.

use std::collections::HashMap;
use std::sync::Arc;

use sdbms_columnar::{Layout, RowStore, TableStore, TransposedFile};
use sdbms_data::{
    census, codebook::CodeBook, dataset::DataSet, metadata::MetadataGraph, metadata::NodeKind,
    rawdb::RawDatabase, schema::Attribute, value::DataType, value::Value,
};
use sdbms_management::{
    ChangeRecord, DerivedRule, ManagementError, RuleStore, VectorGenerator, Version, ViewCatalog,
};
use sdbms_relational::{Expr, Predicate, ViewDefinition};
use sdbms_repair::{CursorStore, HealthRegistry};
use sdbms_stats::regression;
use sdbms_storage::{IoSnapshot, StorageEnv};
use sdbms_summary::{
    apply_updates, get_or_compute_resilient, quarantinable, AccuracyPolicy, CacheStats,
    ComputeSource, Intent, IntentLog, MaintenancePolicy, StatFunction, SummaryDb, SummaryError,
    SummaryValue, UpdateDelta,
};
use sdbms_txn::{EpochRegistry, LockTable};

use crate::error::{CoreError, Result};
use crate::session::{BatchId, PendingBatch};
use crate::view::{ConcreteView, UpdateReport};

/// How hard the DBMS works to keep Summary Databases consistent with
/// their views across a crash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// No crash protection (the historical behavior): summaries live in
    /// buffered pages and a crash may leave them silently stale. Zero
    /// extra I/O.
    #[default]
    Volatile,
    /// Write-ahead intent logging: every update first records the
    /// affected attributes on a durable log page, and commits by
    /// flushing the pool before clearing the intent. After a crash,
    /// [`StatDbms::recover`] invalidates (or rebuilds) exactly the
    /// entries the interrupted update could have left stale.
    CrashConsistent,
}

/// What [`StatDbms::recover`] did after a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Dirty buffer frames discarded by the restart (data the crash
    /// lost).
    pub frames_lost: usize,
    /// Summary entries invalidated because an intent was pending.
    pub entries_invalidated: usize,
    /// Summary Databases rebuilt from scratch because they (or their
    /// logs) were too damaged to invalidate selectively.
    pub caches_rebuilt: usize,
    /// Views that had a pending intent (in no particular order).
    pub views_recovered: Vec<String>,
}

/// Environment variable opting scans into the sealed-segment mmap
/// read path (`SDBMS_MMAP=1`). Unset, or any other value, keeps the
/// buffer-pool read path — the default, and the only path fault
/// schedules exercise.
pub const MMAP_ENV: &str = "SDBMS_MMAP";

/// Parse the `SDBMS_MMAP` opt-in from the environment.
fn mmap_from_env() -> bool {
    std::env::var(MMAP_ENV).is_ok_and(|v| matches!(v.trim(), "1" | "true" | "on"))
}

/// The statistical database management system.
pub struct StatDbms {
    pub(crate) env: StorageEnv,
    pub(crate) raw: RawDatabase,
    pub(crate) codebooks: HashMap<String, CodeBook>,
    metadata: MetadataGraph,
    pub(crate) catalog: ViewCatalog,
    pub(crate) rules: RuleStore,
    pub(crate) views: HashMap<String, ConcreteView>,
    /// Policy given to newly materialized views.
    pub default_policy: MaintenancePolicy,
    /// Layout given to newly materialized views (§2.6 recommends
    /// transposed).
    pub default_layout: Layout,
    durability: DurabilityPolicy,
    /// Morsel-driven executor configuration for parallel column scans.
    pub(crate) exec: sdbms_exec::ExecConfig,
    /// Whether summary warm-up/regeneration scans may seal stores for
    /// zero-copy mmap reads (`SDBMS_MMAP=1` opt-in; buffer pool is the
    /// default).
    mmap_scans: bool,
    /// Per-view health states driving the self-healing subsystem.
    pub(crate) health: HealthRegistry,
    /// Durable scrub-resume cursor, created lazily on the first scrub.
    pub(crate) scrub_cursor: Option<CursorStore>,
    /// Epoch registry retiring replaced store versions after the last
    /// pinned snapshot drains.
    pub(crate) epochs: Arc<EpochRegistry>,
    /// Per-view lock table coordinating batches, legacy updates,
    /// scrubs, and repairs.
    pub(crate) locks: Arc<LockTable>,
    /// Open (staged, uncommitted) update batches by id.
    pub(crate) batches: HashMap<BatchId, PendingBatch>,
}

impl std::fmt::Debug for StatDbms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatDbms")
            .field("raw_datasets", &self.raw.dataset_names().len())
            .field("views", &self.views.len())
            .finish()
    }
}

impl StatDbms {
    /// A DBMS over a fresh storage environment with `pool_pages`
    /// buffer frames.
    #[must_use]
    pub fn new(pool_pages: usize) -> Self {
        Self::with_env(StorageEnv::new(pool_pages))
    }

    /// A DBMS over an existing storage environment — typically one
    /// built with [`StorageEnv::with_faults`] for robustness testing.
    #[must_use]
    pub fn with_env(env: StorageEnv) -> Self {
        let raw = RawDatabase::new(env.archive.clone());
        StatDbms {
            env,
            raw,
            codebooks: HashMap::new(),
            metadata: MetadataGraph::new(),
            catalog: ViewCatalog::new(),
            rules: RuleStore::new(),
            views: HashMap::new(),
            default_policy: MaintenancePolicy::Incremental,
            default_layout: Layout::Transposed,
            durability: DurabilityPolicy::Volatile,
            exec: sdbms_exec::ExecConfig::from_env(),
            mmap_scans: mmap_from_env(),
            health: HealthRegistry::new(),
            scrub_cursor: None,
            epochs: Arc::new(EpochRegistry::new()),
            locks: Arc::new(LockTable::new()),
            batches: HashMap::new(),
        }
    }

    /// The executor configuration driving parallel column scans.
    #[must_use]
    pub fn exec_config(&self) -> sdbms_exec::ExecConfig {
        self.exec
    }

    /// Override the scan worker count (1 = serial). Results are
    /// bit-identical across worker counts; only the wall clock moves.
    pub fn set_workers(&mut self, workers: usize) {
        self.exec = sdbms_exec::ExecConfig::with_workers(workers);
    }

    /// Replace the whole executor configuration. Worker count never
    /// affects results; changing `morsel_rows` changes the partition
    /// (and thus the accumulator merge tree), so bit-identity is only
    /// guaranteed between runs sharing a morsel size.
    pub fn set_exec_config(&mut self, cfg: sdbms_exec::ExecConfig) {
        self.exec = cfg;
    }

    /// Whether warm-up/regeneration scans may use the sealed-segment
    /// mmap read path (the [`MMAP_ENV`] opt-in).
    #[must_use]
    pub fn mmap_scans(&self) -> bool {
        self.mmap_scans
    }

    /// Opt scans in or out of the sealed-segment mmap read path at
    /// runtime, overriding the [`MMAP_ENV`] default. Enabling only
    /// permits future seals; disabling does not unseal an already
    /// sealed store (the next mutation does).
    pub fn set_mmap_scans(&mut self, enabled: bool) {
        self.mmap_scans = enabled;
    }

    /// Try to seal a view's store for zero-copy scanning: flush and
    /// CRC-verify its data pages into a point-in-time capture served
    /// without buffer-pool I/O (the simulated `mmap` path). Returns
    /// `false` — leaving the buffer-pool path in effect — when the
    /// layout does not support sealing or when the current store
    /// version is shared with a pinned snapshot (a seal must never
    /// touch a pinned version; the snapshot keeps its store alive
    /// through the epoch registry, so reclamation can never unmap
    /// under it). A page that fails CRC verification during the
    /// capture surfaces as a corruption error and the store stays
    /// unsealed.
    pub fn seal_view_for_scan(&mut self, view: &str) -> Result<bool> {
        let v = self.view_mut(view)?;
        match Arc::get_mut(&mut v.store) {
            Some(store) => Ok(store.seal_for_scan()?),
            None => Ok(false),
        }
    }

    /// True while `view`'s store serves reads from a scan seal.
    pub fn view_scan_sealed(&self, view: &str) -> Result<bool> {
        Ok(self.view(view)?.store.scan_sealed())
    }

    /// The current durability policy.
    #[must_use]
    pub fn durability(&self) -> DurabilityPolicy {
        self.durability
    }

    /// Switch the durability policy. Under
    /// [`DurabilityPolicy::CrashConsistent`] every view (existing and
    /// future) gets a write-ahead intent log; switching back to
    /// [`DurabilityPolicy::Volatile`] drops the logs.
    pub fn set_durability(&mut self, policy: DurabilityPolicy) -> Result<()> {
        self.durability = policy;
        for v in self.views.values_mut() {
            match policy {
                DurabilityPolicy::CrashConsistent => {
                    if v.wal.is_none() {
                        v.wal = Some(IntentLog::create(self.env.disk.clone())?);
                    }
                }
                DurabilityPolicy::Volatile => v.wal = None,
            }
        }
        if matches!(policy, DurabilityPolicy::CrashConsistent) {
            // Establish the durable baseline: everything materialized so
            // far must survive a crash, or recovery would find the view
            // data itself torn.
            self.env.pool.flush_all()?;
        }
        Ok(())
    }

    /// The storage environment (for I/O accounting in experiments).
    #[must_use]
    pub fn env(&self) -> &StorageEnv {
        &self.env
    }

    /// Snapshot of all I/O counters.
    #[must_use]
    pub fn io(&self) -> IoSnapshot {
        self.env.tracker.snapshot()
    }

    // ---- raw database & metadata ---------------------------------------

    /// Load a data set into the raw database (archive storage) and
    /// register its structure in the metadata graph.
    pub fn load_raw(&mut self, ds: &DataSet) -> Result<()> {
        self.raw.store(ds)?;
        let ds_node = ds.name().to_string();
        self.metadata.add_node(
            &ds_node,
            NodeKind::DataSet {
                dataset: ds_node.clone(),
            },
            &format!("raw data set ({} rows)", ds.len()),
        );
        for a in ds.schema().attributes() {
            let node = format!("{}.{}", ds_node, a.name);
            self.metadata.add_node(
                &node,
                NodeKind::Attribute {
                    dataset: ds_node.clone(),
                    attribute: a.name.clone(),
                },
                &format!("{} attribute ({})", a.role, a.name),
            );
            self.metadata.add_edge(&ds_node, &node)?;
        }
        Ok(())
    }

    /// Register a code book (usable as a join source named
    /// `<attribute>_codes`).
    pub fn register_codebook(&mut self, cb: CodeBook) {
        self.codebooks
            .insert(format!("{}_codes", cb.attribute()), cb);
    }

    /// The code book registered under `name` (e.g. `AGE_GROUP_codes`).
    #[must_use]
    pub fn codebook(&self, name: &str) -> Option<&CodeBook> {
        self.codebooks.get(name)
    }

    /// The raw database.
    #[must_use]
    pub fn raw(&self) -> &RawDatabase {
        &self.raw
    }

    /// The metadata graph (SUBJECT-style navigation).
    #[must_use]
    pub fn metadata(&self) -> &MetadataGraph {
        &self.metadata
    }

    /// Mutable metadata graph (topic nodes, generalizations).
    pub fn metadata_mut(&mut self) -> &mut MetadataGraph {
        &mut self.metadata
    }

    // ---- view materialization -------------------------------------------

    pub(crate) fn resolve_source(
        &self,
        name: &str,
    ) -> std::result::Result<DataSet, sdbms_data::DataError> {
        if let Some(cb) = self.codebooks.get(name) {
            return Ok(cb.to_dataset());
        }
        self.raw.extract(name, None, None)
    }

    /// Materialize a concrete view with the default layout and policy.
    ///
    /// Enforces the §2.3 duplicate check: if an equivalent view is
    /// visible to `owner`, returns
    /// [`CoreError::EquivalentViewExists`] instead of re-reading the
    /// archive.
    pub fn materialize(&mut self, def: ViewDefinition, owner: &str) -> Result<()> {
        let layout = self.default_layout;
        self.materialize_with(def, owner, layout)
    }

    /// Materialize with an explicit layout.
    pub fn materialize_with(
        &mut self,
        def: ViewDefinition,
        owner: &str,
        layout: Layout,
    ) -> Result<()> {
        if self.views.contains_key(&def.name) {
            return Err(CoreError::ViewExists(def.name));
        }
        if let Some(existing) = self.catalog.find_equivalent(&def, owner) {
            return Err(CoreError::EquivalentViewExists {
                existing: existing.definition.name.clone(),
                owner: existing.owner.clone(),
            });
        }
        let mut resolve = |name: &str| -> std::result::Result<DataSet, sdbms_data::DataError> {
            self.resolve_source(name)
        };
        let ds = def.execute(&mut resolve)?;
        let store: Arc<dyn TableStore + Send + Sync> = match layout {
            Layout::Row => Arc::new(RowStore::from_dataset(self.env.pool.clone(), &ds)?),
            Layout::Transposed => {
                Arc::new(TransposedFile::from_dataset(self.env.pool.clone(), &ds)?)
            }
        };
        let summary = SummaryDb::create(self.env.pool.clone())?;
        let wal = match self.durability {
            DurabilityPolicy::CrashConsistent => Some(IntentLog::create(self.env.disk.clone())?),
            DurabilityPolicy::Volatile => None,
        };
        let name = def.name.clone();
        self.catalog.register(def, owner)?;
        self.views.insert(
            name.clone(),
            ConcreteView {
                name: name.clone(),
                owner: owner.to_string(),
                store,
                version: 0,
                layout,
                summary,
                policy: self.default_policy,
                tracker: Default::default(),
                stale_columns: Default::default(),
                wal,
                epochs: Arc::clone(&self.epochs),
                disk: self.env.disk.clone(),
            },
        );
        if matches!(self.durability, DurabilityPolicy::CrashConsistent) {
            // The new view's pages must be on disk before any durable
            // section trusts them as the recovery baseline.
            self.env.pool.flush_all()?;
        }
        Ok(())
    }

    /// Names of all materialized views, sorted.
    #[must_use]
    pub fn view_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.views.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// A view handle.
    pub fn view(&self, name: &str) -> Result<&ConcreteView> {
        self.views
            .get(name)
            .ok_or_else(|| CoreError::NoSuchView(name.to_string()))
    }

    pub(crate) fn view_mut(&mut self, name: &str) -> Result<&mut ConcreteView> {
        self.views
            .get_mut(name)
            .ok_or_else(|| CoreError::NoSuchView(name.to_string()))
    }

    /// Destroy a view (store, summary, catalog entry, rules).
    pub fn drop_view(&mut self, name: &str, owner: &str) -> Result<()> {
        let v = self.view(name)?;
        if v.owner != owner {
            return Err(CoreError::NotOwner {
                view: name.to_string(),
                owner: v.owner.clone(),
            });
        }
        self.views.remove(name);
        self.catalog.deregister(name)?;
        self.rules.drop_view(name);
        Ok(())
    }

    // ---- reading views ---------------------------------------------------

    /// One column of a view (statistical access; tracked). Morsels are
    /// fetched by the parallel executor and concatenated in morsel
    /// order, so the result matches a serial `read_column` exactly.
    pub fn column(&mut self, view: &str, attribute: &str) -> Result<Vec<Value>> {
        let exec = self.exec;
        let v = self.view_mut(view)?;
        v.tracker.column_reads += 1;
        Ok(sdbms_exec::read_table_column(&*v.store, attribute, &exec)?)
    }

    /// One row of a view (informational access; tracked).
    pub fn row(&mut self, view: &str, row: usize) -> Result<Vec<Value>> {
        let v = self.view_mut(view)?;
        v.tracker.row_reads += 1;
        Ok(v.store.read_row(row)?)
    }

    /// The whole view as an in-memory data set.
    pub fn dataset(&self, view: &str) -> Result<DataSet> {
        let v = self.view(view)?;
        Ok(v.store.to_dataset(view)?)
    }

    /// A simple random sample of the view's rows (§2.2 exploratory
    /// sampling).
    pub fn sample(&self, view: &str, k: usize, seed: u64) -> Result<DataSet> {
        let v = self.view(view)?;
        let ds = v.store.to_dataset(view)?;
        Ok(sdbms_stats::sample::sample_dataset(
            &ds,
            k.min(ds.len()),
            seed,
        )?)
    }

    /// Rows of `view` whose `attribute` value falls outside its
    /// declared plausibility range (§2.2 data checking).
    pub fn suspicious_rows(&mut self, view: &str, attribute: &str) -> Result<Vec<usize>> {
        let v = self.view_mut(view)?;
        let schema = v.store.schema();
        let attr = schema.attribute(attribute)?;
        let Some((lo, hi)) = attr.valid_range else {
            return Ok(Vec::new());
        };
        v.tracker.column_reads += 1;
        let col = v.store.read_column(attribute)?;
        Ok(col
            .iter()
            .enumerate()
            .filter(|(_, val)| match val.as_f64() {
                Some(x) => !(lo..=hi).contains(&x),
                None => false,
            })
            .map(|(i, _)| i)
            .collect())
    }

    // ---- the Summary Database path ----------------------------------------

    /// Compute `function(attribute)` on a view, through the view's
    /// Summary Database (§3.2 search: serve from cache, else compute
    /// and insert). Respects attribute metadata: numeric summaries of
    /// encoded attributes are rejected.
    ///
    /// The lookup degrades gracefully: a damaged cache entry is
    /// quarantined and treated as a miss, and if the view's own store
    /// is unreadable the answer is recomputed from the raw database by
    /// re-executing the view definition
    /// ([`ComputeSource::Fallback`] — correct, but served without
    /// caching until the view is repaired).
    pub fn compute(
        &mut self,
        view: &str,
        attribute: &str,
        function: &StatFunction,
        accuracy: AccuracyPolicy,
    ) -> Result<(SummaryValue, ComputeSource)> {
        // Health gate: while the view is degraded, repairing, or
        // unrecoverable, its store and cache are off-limits — serve
        // straight from the raw archive and never touch the Summary DB,
        // so nothing computed from suspect data can be cached.
        if self.health.is_impaired(view) {
            return self.compute_degraded(view, attribute, function);
        }
        // Split borrows: the fallback closure re-executes the view's
        // definition against the raw database / code books while the
        // view itself is mutably borrowed for the primary path.
        let catalog = &self.catalog;
        let codebooks = &self.codebooks;
        let raw = &self.raw;
        let v = self
            .views
            .get_mut(view)
            .ok_or_else(|| CoreError::NoSuchView(view.to_string()))?;
        let attr = v.store.schema().attribute(attribute)?.clone();
        if function.needs_numeric() && !attr.is_summarizable() {
            return Err(CoreError::NotSummarizable {
                attribute: attribute.to_string(),
            });
        }
        let store = &v.store;
        let tracker = &mut v.tracker;
        let exec = &self.exec;
        let mut column = || {
            tracker.column_reads += 1;
            sdbms_exec::read_table_column(&**store, &attr.name, exec).map_err(SummaryError::Data)
        };
        let mut fb;
        let fallback: Option<&mut dyn FnMut() -> sdbms_summary::Result<Vec<Value>>> =
            match catalog.view(view) {
                Ok(rec) => {
                    let def = &rec.definition;
                    let attr_name = attr.name.clone();
                    fb = move || -> sdbms_summary::Result<Vec<Value>> {
                        let mut resolve =
                            |name: &str| -> std::result::Result<DataSet, sdbms_data::DataError> {
                                if let Some(cb) = codebooks.get(name) {
                                    return Ok(cb.to_dataset());
                                }
                                raw.extract(name, None, None)
                            };
                        let ds = def.execute(&mut resolve).map_err(SummaryError::Data)?;
                        let col = ds.column(&attr_name).map_err(SummaryError::Data)?;
                        Ok(col.cloned().collect())
                    };
                    Some(&mut fb)
                }
                Err(_) => None,
            };
        let (value, source) = get_or_compute_resilient(
            &v.summary,
            attribute,
            function,
            accuracy,
            &mut column,
            fallback,
        )?;
        Ok((value, source))
    }

    /// Like [`StatDbms::compute`], but before touching data, try to
    /// *infer* the answer from other cached entries (§5.1's Database
    /// Abstract rules): exactly (mean from sum/count, std-dev from
    /// variance, …) or as a histogram-based estimate. Exact inferences
    /// are cached like computed results; estimates are returned but not
    /// cached (they would poison exact reads).
    pub fn compute_with_inference(
        &mut self,
        view: &str,
        attribute: &str,
        function: &StatFunction,
        accuracy: AccuracyPolicy,
    ) -> Result<(SummaryValue, ComputeSource, Option<String>)> {
        {
            let v = self.view(view)?;
            if v.summary.lookup_fresh(attribute, function)?.is_none() {
                match sdbms_summary::infer(&v.summary, attribute, function)? {
                    Some(sdbms_summary::Inferred::Exact(value)) => {
                        v.summary.put(&sdbms_summary::Entry {
                            attribute: attribute.to_string(),
                            function: function.clone(),
                            result: value.clone(),
                            freshness: sdbms_summary::Freshness::Fresh,
                            // Inferred without data, so there is no
                            // incremental state; updates invalidate it.
                            aux: None,
                            updates_since_refresh: 0,
                        })?;
                        return Ok((value, ComputeSource::Cache, Some("inferred".into())));
                    }
                    Some(sdbms_summary::Inferred::Estimate { value, basis }) => {
                        return Ok((
                            SummaryValue::Scalar(value),
                            ComputeSource::Cache,
                            Some(format!("estimate from {basis}")),
                        ));
                    }
                    None => {}
                }
            }
        }
        let (value, source) = self.compute(view, attribute, function, accuracy)?;
        Ok((value, source, None))
    }

    /// Pre-compute the §3.2 standing summary set for every
    /// summarizable attribute of a view.
    pub fn warm_standing_summaries(&mut self, view: &str) -> Result<usize> {
        let names: Vec<String> = {
            let v = self.view(view)?;
            v.store
                .schema()
                .attributes()
                .iter()
                .filter(|a| a.is_summarizable())
                .map(|a| a.name.clone())
                .collect()
        };
        let exec = self.exec;
        let fns = sdbms_summary::standing_summary_functions();
        if self.mmap_scans {
            // Best-effort seal: the whole warm-up then scans zero-copy
            // page captures instead of going through the buffer pool.
            // A failed seal (unsupported layout, pinned snapshot, a
            // page failing CRC verification) degrades to the pool
            // path without affecting a single result.
            let _ = self.seal_view_for_scan(view);
        }
        let mut warmed = 0;
        for attr in names {
            // One parallel batch scan answers the whole standing set
            // for the attribute. If the scan or a cache write fails (a
            // faulty page, damaged cache bytes), fall back to the
            // per-function compute path, which degrades gracefully
            // instead of aborting the warm-up.
            let by_profile = {
                let v = self.view_mut(view)?;
                v.tracker.column_reads += 1;
                match sdbms_exec::profile_table_column(&*v.store, &attr, &exec) {
                    Ok(p) => sdbms_summary::warm_attribute(&v.summary, &attr, &p, &fns).ok(),
                    Err(_) => None,
                }
            };
            match by_profile {
                Some(n) => warmed += n,
                None => {
                    for f in &fns {
                        // Skip functions that fail on degenerate
                        // columns (all missing) rather than aborting.
                        if self.compute(view, &attr, f, AccuracyPolicy::Exact).is_ok() {
                            warmed += 1;
                        }
                    }
                }
            }
        }
        Ok(warmed)
    }

    /// Cache-effectiveness counters of a view's Summary Database.
    pub fn cache_stats(&self, view: &str) -> Result<CacheStats> {
        Ok(self.view(view)?.summary.stats())
    }

    /// Set a view's maintenance policy.
    pub fn set_policy(&mut self, view: &str, policy: MaintenancePolicy) -> Result<()> {
        self.view_mut(view)?.policy = policy;
        Ok(())
    }

    // ---- updates -----------------------------------------------------------

    /// Update cells by predicate (§4.1): for every row satisfying
    /// `predicate`, assign each `(attribute, expression)`. Records
    /// history, maintains every affected Summary Database entry under
    /// the view's policy, and fires derived-attribute rules.
    ///
    /// Under [`DurabilityPolicy::CrashConsistent`] the update follows
    /// the write-ahead intent protocol: the affected attributes
    /// (assignments plus the derived columns they trigger) are logged
    /// durably *before* any cell changes, and the intent is cleared
    /// only after the buffer pool has been flushed. A crash anywhere in
    /// between leaves a pending intent for [`StatDbms::recover`].
    pub fn update_where(
        &mut self,
        view: &str,
        predicate: &Predicate,
        assignments: &[(&str, Expr)],
    ) -> Result<UpdateReport> {
        self.view(view)?;
        // Writers exclude each other (and scrubs/repairs) per view; a
        // held lock surfaces immediately as `CoreError::Lock`.
        let session = self.locks.session();
        let _lock = self.locks.acquire(session, &[view])?;
        let intent =
            self.intent_attributes(view, assignments.iter().map(|(a, _)| (*a).to_string()));
        self.durable_section(view, &intent, |dbms| {
            dbms.update_where_inner(view, predicate, assignments)
        })
    }

    fn update_where_inner(
        &mut self,
        view: &str,
        predicate: &Predicate,
        assignments: &[(&str, Expr)],
    ) -> Result<UpdateReport> {
        let mut report = UpdateReport::default();
        let exec = self.exec;
        // Phase 1: locate matching rows and apply base assignments.
        let mut deltas: HashMap<String, Vec<UpdateDelta>> = HashMap::new();
        let matching: Vec<usize>;
        {
            let v = self.view_mut(view)?;
            let schema = v.store.schema().clone();
            let bound: Vec<(String, sdbms_relational::BoundExpr, DataType)> = assignments
                .iter()
                .map(|(attr, expr)| {
                    let a = schema.attribute(attr)?;
                    Ok((a.name.clone(), expr.bind(&schema)?, a.dtype))
                })
                .collect::<Result<_>>()?;
            // Evaluate the predicate column-wise with zone-map pruning:
            // each morsel reads only the referenced columns, and morsels
            // whose per-segment statistics refute the predicate are
            // skipped without decoding a page. Matches come back in
            // ascending row order regardless of worker count, identical
            // to an unpruned scan.
            v.tracker.column_reads += predicate.referenced_columns().len() as u64;
            matching = sdbms_relational::filter_table_rows(&*v.store, predicate, &exec)?;
            report.rows_matched = matching.len();
            let mut records: Vec<ChangeRecord> = Vec::new();
            let store = v.store_mut()?;
            for &i in &matching {
                let row = store.read_row(i)?;
                for (attr, bexpr, dtype) in &bound {
                    let new = coerce(bexpr.eval(&row), *dtype);
                    let old = store.set_cell(i, attr, new.clone())?;
                    if old != new {
                        report.cells_changed += 1;
                        deltas.entry(attr.clone()).or_default().push(UpdateDelta {
                            old: old.clone(),
                            new: new.clone(),
                        });
                        records.push(ChangeRecord::CellUpdate {
                            row: i,
                            attribute: attr.clone(),
                            old,
                            new,
                        });
                    }
                }
            }
            let history = &mut self.catalog.view_mut(view)?.history;
            for r in records {
                history.record(r);
            }
        }
        // Phase 2: fire derived-attribute rules.
        self.fire_derived_rules(view, &matching, &mut deltas, &mut report)?;
        // Phase 3: Summary Database maintenance per affected attribute.
        self.maintain_summaries(view, deltas, &mut report)?;
        Ok(report)
    }

    /// The attributes an update to `base_attrs` can touch: the
    /// attributes themselves plus every derived column their rules
    /// trigger. This is what the intent log records.
    fn intent_attributes(
        &self,
        view: &str,
        base_attrs: impl IntoIterator<Item = String>,
    ) -> Vec<String> {
        let mut attrs: Vec<String> = base_attrs.into_iter().collect();
        let mut derived: Vec<String> = Vec::new();
        for attr in &attrs {
            for (d, _) in self.rules.triggered_by(view, attr) {
                derived.push(d.to_string());
            }
        }
        attrs.extend(derived);
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// Run `body` under the write-ahead intent protocol if the view has
    /// an intent log; plain passthrough otherwise.
    ///
    /// Protocol: `begin(intent)` durably → body (cells + summary
    /// maintenance, all buffered) → `flush_all` → `clear()`. On a
    /// non-crash error the summaries of the intent attributes are
    /// invalidated before the intent is retired, so the cache is left
    /// cleanly invalidated rather than possibly stale. On a crash the
    /// intent stays pending for [`StatDbms::recover`].
    fn durable_section<T>(
        &mut self,
        view: &str,
        intent: &[String],
        body: impl FnOnce(&mut Self) -> Result<T>,
    ) -> Result<T> {
        let Some(wal) = self.views.get(view).and_then(|v| v.wal.as_ref()) else {
            return body(self);
        };
        wal.begin(intent)?;
        let result = body(self);
        match &result {
            Ok(_) => {
                match self.commit_intent(view) {
                    Ok(()) => {}
                    // A crash while committing must surface: the update
                    // may not be durable and the intent stays pending.
                    Err(e) if error_is_crash(&e) => return Err(e),
                    // Other trouble committing: the pending intent is
                    // conservative (recovery will invalidate), so the
                    // successful update still reports success.
                    Err(_) => {}
                }
            }
            Err(e) if !error_is_crash(e) => {
                // The update failed mid-flight without a crash. Leave
                // the cache cleanly invalidated, then retire the
                // intent — all best-effort; a pending intent is safe.
                if let Some(v) = self.views.get(view) {
                    for a in intent {
                        // lint: allow(swallowed-error): invalidation failure only widens the recompute set; the pending intent already guards correctness
                        let _ = v.summary.invalidate_attribute(a);
                    }
                }
                // lint: allow(swallowed-error): retiring the intent is best-effort on this path — a pending intent is safe and recovery replays it
                let _ = self.commit_intent(view);
            }
            Err(_) => {} // crash: intent stays pending
        }
        result
    }

    /// Flush everything buffered, then durably clear the view's intent.
    pub(crate) fn commit_intent(&self, view: &str) -> Result<()> {
        self.env.pool.flush_all()?;
        if let Some(wal) = self.views.get(view).and_then(|v| v.wal.as_ref()) {
            wal.clear()?;
        }
        Ok(())
    }

    /// Whether the simulated machine is down (a crash fault fired).
    /// All I/O fails until [`StatDbms::recover`] is called.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.env.is_crashed()
    }

    /// Restart after a crash and repair every view's Summary Database
    /// from its write-ahead intent log: pending intents invalidate the
    /// named attributes' entries (or rebuild the cache when even that
    /// is impossible), so no summary is ever served stale. Each action
    /// is recorded in the view's history as a
    /// [`ChangeRecord::Recovery`] so analysts can see what happened.
    ///
    /// Safe to call when no crash happened (it is then a plain restart:
    /// dirty frames are dropped and any pending intents are honored).
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport {
            frames_lost: self.env.restart()?,
            ..RecoveryReport::default()
        };
        let names: Vec<String> = self.views.keys().cloned().collect();
        let pool = self.env.pool.clone();
        for name in names {
            let mut repair_interrupted = false;
            let v = match self.views.get_mut(&name) {
                Some(v) => v,
                None => continue,
            };
            let Some(wal) = v.wal.as_ref() else { continue };
            let detail = match wal.pending() {
                Ok(None) => continue,
                Ok(Some(Intent::Attributes(attrs))) => {
                    let mut invalidated = 0usize;
                    let mut damaged = false;
                    for a in &attrs {
                        match v.summary.invalidate_attribute(a) {
                            Ok(n) => invalidated += n,
                            Err(_) => {
                                damaged = true;
                                break;
                            }
                        }
                    }
                    if damaged {
                        v.summary = SummaryDb::create(pool.clone())?;
                        report.caches_rebuilt += 1;
                        format!(
                            "crash recovery: summary cache rebuilt \
                             (damaged while invalidating {attrs:?})"
                        )
                    } else {
                        report.entries_invalidated += invalidated;
                        format!(
                            "crash recovery: invalidated {invalidated} summary \
                             entries for {attrs:?}"
                        )
                    }
                }
                // A whole-view repair was interrupted mid-flight: the
                // store and caches may be half-swapped. Rebuild the
                // cache and leave the view degraded — reads fall back
                // to the archive until [`StatDbms::repair_view`] is
                // re-run and verifies clean.
                Ok(Some(Intent::Repair)) => {
                    v.summary = SummaryDb::create(pool.clone())?;
                    report.caches_rebuilt += 1;
                    repair_interrupted = true;
                    "crash recovery: a view repair was interrupted; view \
                     degraded until the repair is re-run"
                        .to_string()
                }
                // A transactional batch was interrupted mid-commit. The
                // view data is whole-version atomic (the shadow store is
                // only installed by an in-memory pointer swap after its
                // pages are durable), so the data is either all
                // pre-batch or all post-batch. The summary cache cannot
                // tell which, so rebuild it conservatively — running
                // recovery again reaches the same state (idempotent).
                Ok(Some(Intent::Txn)) => {
                    v.summary = SummaryDb::create(pool.clone())?;
                    report.caches_rebuilt += 1;
                    "crash recovery: a transactional batch was interrupted; \
                     summary cache rebuilt (view data is version-atomic)"
                        .to_string()
                }
                // "Everything" intent, or a log page we cannot read:
                // maximal conservatism — rebuild the cache.
                Ok(Some(Intent::All)) | Err(_) => {
                    v.summary = SummaryDb::create(pool.clone())?;
                    report.caches_rebuilt += 1;
                    "crash recovery: summary cache rebuilt (intent covered \
                     all attributes or log was unreadable)"
                        .to_string()
                }
            };
            // Make the repair durable before retiring the intent, then
            // leave an audit trail. An interrupted *view repair* keeps
            // its intent pending — only a verified repair_view() clears
            // it — so the degraded marking survives further restarts.
            if repair_interrupted {
                self.env.pool.flush_all()?;
                self.health.mark_degraded(&name, &detail);
            } else {
                self.commit_intent(&name)?;
                // With the intent honored, the log's history is dead
                // weight: truncate the chain so crash after crash can
                // never grow it without bound. Best-effort — an
                // uncompacted chain is only longer, never wrong.
                if let Some(wal) = self.views.get(&name).and_then(|v| v.wal.as_ref()) {
                    let _ = wal.compact();
                }
            }
            self.catalog
                .view_mut(&name)?
                .history
                .record(ChangeRecord::Recovery {
                    detail: detail.clone(),
                });
            report.views_recovered.push(name);
        }
        Ok(report)
    }

    /// Mark cells missing by predicate (§3.1 "marked as invalid").
    pub fn invalidate_where(
        &mut self,
        view: &str,
        predicate: &Predicate,
        attribute: &str,
    ) -> Result<UpdateReport> {
        self.update_where(
            view,
            predicate,
            &[(attribute, Expr::Literal(Value::Missing))],
        )
    }

    fn fire_derived_rules(
        &mut self,
        view: &str,
        affected_rows: &[usize],
        deltas: &mut HashMap<String, Vec<UpdateDelta>>,
        report: &mut UpdateReport,
    ) -> Result<()> {
        let updated_attrs: Vec<String> = deltas.keys().cloned().collect();
        let mut fired: Vec<(String, DerivedRule)> = Vec::new();
        for attr in &updated_attrs {
            for (derived, rule) in self.rules.triggered_by(view, attr) {
                if !fired.iter().any(|(d, _)| d == derived) {
                    fired.push((derived.to_string(), rule.clone()));
                }
            }
        }
        for (derived, rule) in fired {
            report
                .derived_updates
                .push((derived.clone(), rule.cost_class()));
            match rule {
                DerivedRule::Local { expr } => {
                    let mut records: Vec<ChangeRecord> = Vec::new();
                    {
                        let v = self.view_mut(view)?;
                        let schema = v.store.schema().clone();
                        let bexpr = expr.bind(&schema)?;
                        let dtype = schema.attribute(&derived)?.dtype;
                        let store = v.store_mut()?;
                        for &i in affected_rows {
                            let row = store.read_row(i)?;
                            let new = coerce(bexpr.eval(&row), dtype);
                            let old = store.set_cell(i, &derived, new.clone())?;
                            if old != new {
                                deltas
                                    .entry(derived.clone())
                                    .or_default()
                                    .push(UpdateDelta {
                                        old: old.clone(),
                                        new: new.clone(),
                                    });
                                records.push(ChangeRecord::CellUpdate {
                                    row: i,
                                    attribute: derived.clone(),
                                    old,
                                    new,
                                });
                            }
                        }
                    }
                    let history = &mut self.catalog.view_mut(view)?.history;
                    for r in records {
                        history.record(r);
                    }
                }
                DerivedRule::Regenerate { ref generator } => {
                    self.regenerate_vector(view, &derived, generator)?;
                    self.catalog
                        .view_mut(view)?
                        .history
                        .record(ChangeRecord::Annotation {
                            text: format!("regenerated derived column {derived}"),
                        });
                    // The whole column changed: invalidate its summaries.
                    let v = self.view(view)?;
                    v.summary.invalidate_attribute(&derived)?;
                }
                DerivedRule::MarkStale { .. } => {
                    let v = self.view_mut(view)?;
                    v.stale_columns.insert(derived.clone());
                    v.summary.invalidate_attribute(&derived)?;
                }
            }
        }
        Ok(())
    }

    pub(crate) fn regenerate_vector(
        &mut self,
        view: &str,
        derived: &str,
        generator: &VectorGenerator,
    ) -> Result<()> {
        let values: Vec<Value> = match generator {
            VectorGenerator::Residuals { x, y } => {
                let v = self.view_mut(view)?;
                v.tracker.column_reads += 2;
                let xs_raw = v.store.read_column(x)?;
                let ys_raw = v.store.read_column(y)?;
                residual_column(&xs_raw, &ys_raw)?
            }
            VectorGenerator::Expression(expr) => {
                let v = self.view(view)?;
                let schema = v.store.schema().clone();
                let bexpr = expr.bind(&schema)?;
                let dtype = schema.attribute(derived)?.dtype;
                (0..v.store.len())
                    .map(|i| {
                        let row = v.store.read_row(i)?;
                        Ok(coerce(bexpr.eval(&row), dtype))
                    })
                    .collect::<Result<_>>()?
            }
        };
        let v = self.view_mut(view)?;
        let store = v.store_mut()?;
        for (i, val) in values.into_iter().enumerate() {
            store.set_cell(i, derived, val)?;
        }
        v.stale_columns.remove(derived);
        Ok(())
    }

    /// Regenerate a derived column on demand (for
    /// [`DerivedRule::MarkStale`] columns).
    pub fn regenerate_column(&mut self, view: &str, derived: &str) -> Result<()> {
        let rule = self.rules.rule(view, derived)?.clone();
        match rule {
            DerivedRule::Local { expr } => {
                self.regenerate_vector(view, derived, &VectorGenerator::Expression(expr))
            }
            DerivedRule::Regenerate { generator } => {
                self.regenerate_vector(view, derived, &generator)
            }
            DerivedRule::MarkStale { .. } => {
                // MarkStale columns carry no generator; re-deriving is
                // the analyst's job. Clear the flag only.
                self.view_mut(view)?.stale_columns.remove(derived);
                Ok(())
            }
        }
    }

    fn maintain_summaries(
        &mut self,
        view: &str,
        deltas: HashMap<String, Vec<UpdateDelta>>,
        report: &mut UpdateReport,
    ) -> Result<()> {
        let pool = self.env.pool.clone();
        let exec = self.exec;
        let v = self.view_mut(view)?;
        let policy = v.policy;
        for (attr, ds) in deltas {
            if matches!(policy, MaintenancePolicy::EagerRecompute) {
                // Eager maintenance recomputes every entry anyway, so
                // one parallel batch scan feeds all of them. On any
                // failure fall through to the serial per-entry path,
                // which carries the quarantine / rebuild degradation
                // logic.
                v.tracker.column_reads += 1;
                let regenerated = sdbms_exec::profile_table_column(&*v.store, &attr, &exec)
                    .ok()
                    .and_then(|p| sdbms_summary::regenerate_attribute(&v.summary, &attr, &p).ok());
                if let Some(r) = regenerated {
                    report.maintenance.recomputed += r.recomputed;
                    continue;
                }
            }
            let store = &v.store;
            let tracker = &mut v.tracker;
            let mut column = || {
                tracker.column_reads += 1;
                store.read_column(&attr).map_err(SummaryError::Data)
            };
            let r = match apply_updates(&v.summary, &attr, &ds, policy, &mut column) {
                Ok(r) => r,
                // Degrade gracefully: if maintenance hit damage (bad
                // cache bytes, a dead page) rather than a crash, fall
                // back to invalidating this attribute's entries — and
                // if even that fails, rebuild the cache. Either way the
                // update itself succeeds and nothing stale survives.
                Err(e) if quarantinable(&e) => {
                    v.summary.note_quarantine();
                    match v.summary.invalidate_attribute(&attr) {
                        Ok(n) => {
                            report.maintenance.invalidated += n;
                            continue;
                        }
                        Err(_) => {
                            v.summary = SummaryDb::create(pool.clone())?;
                            continue;
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            };
            report.maintenance.incremental += r.incremental;
            report.maintenance.recomputed += r.recomputed;
            report.maintenance.invalidated += r.invalidated;
        }
        Ok(())
    }

    // ---- derived columns ----------------------------------------------------

    /// Add a derived column defined by a row expression, with the
    /// row-local maintenance rule (§3.2's log / row-sum example).
    pub fn add_derived_column(
        &mut self,
        view: &str,
        name: &str,
        dtype: DataType,
        expr: Expr,
    ) -> Result<()> {
        let values = {
            let v = self.view(view)?;
            let schema = v.store.schema().clone();
            let bexpr = expr.bind(&schema)?;
            (0..v.store.len())
                .map(|i| {
                    let row = v.store.read_row(i)?;
                    Ok(coerce(bexpr.eval(&row), dtype))
                })
                .collect::<Result<Vec<Value>>>()?
        };
        let v = self.view_mut(view)?;
        v.store_mut()?
            .add_column(Attribute::derived(name, dtype), values)?;
        self.rules.register(view, name, DerivedRule::Local { expr });
        self.catalog
            .view_mut(view)?
            .history
            .record(ChangeRecord::ColumnAppended {
                attribute: name.to_string(),
            });
        Ok(())
    }

    /// Add a regression-residual column `y ~ x` with the
    /// regenerate-whole-vector rule (§3.2's residuals example).
    pub fn add_residuals_column(&mut self, view: &str, name: &str, x: &str, y: &str) -> Result<()> {
        let values = {
            let v = self.view_mut(view)?;
            v.tracker.column_reads += 2;
            let xs_raw = v.store.read_column(x)?;
            let ys_raw = v.store.read_column(y)?;
            residual_column(&xs_raw, &ys_raw)?
        };
        let v = self.view_mut(view)?;
        v.store_mut()?
            .add_column(Attribute::derived(name, DataType::Float), values)?;
        self.rules.register(
            view,
            name,
            DerivedRule::Regenerate {
                generator: VectorGenerator::Residuals {
                    x: x.to_string(),
                    y: y.to_string(),
                },
            },
        );
        self.catalog
            .view_mut(view)?
            .history
            .record(ChangeRecord::ColumnAppended {
                attribute: name.to_string(),
            });
        Ok(())
    }

    /// Override the maintenance rule of an existing derived column
    /// (§3.2 lets the analyst choose; e.g. demote an expensive
    /// regenerate rule to mark-stale during heavy editing).
    pub fn set_derived_rule(
        &mut self,
        view: &str,
        attribute: &str,
        rule: DerivedRule,
    ) -> Result<()> {
        // Both the view and the column must exist.
        self.view(view)?.store.schema().require(attribute)?;
        self.rules.rule(view, attribute)?; // must already be derived
        self.rules.register(view, attribute, rule);
        Ok(())
    }

    /// Derived columns of a view currently marked out-of-date.
    pub fn stale_columns(&self, view: &str) -> Result<Vec<String>> {
        Ok(self.view(view)?.stale_columns.iter().cloned().collect())
    }

    /// The rule store (Management Database rules).
    #[must_use]
    pub fn rules(&self) -> &RuleStore {
        &self.rules
    }

    // ---- history: checkpoints, undo, publishing ------------------------------

    /// Record a named checkpoint in a view's history.
    pub fn checkpoint(&mut self, view: &str, label: &str) -> Result<Version> {
        self.view(view)?; // existence check
        Ok(self
            .catalog
            .view_mut(view)?
            .history
            .record(ChangeRecord::Checkpoint {
                label: label.to_string(),
            }))
    }

    /// Append a free-text annotation (data-checking notes).
    pub fn annotate(&mut self, view: &str, text: &str) -> Result<Version> {
        self.view(view)?;
        Ok(self
            .catalog
            .view_mut(view)?
            .history
            .record(ChangeRecord::Annotation {
                text: text.to_string(),
            }))
    }

    /// Current history version of a view.
    pub fn history_version(&self, view: &str) -> Result<Version> {
        Ok(self.catalog.view(view)?.history.version())
    }

    /// Roll a view back to an earlier version (§3.2 "roll a view back
    /// to a previous state"). The rollback itself is recorded, so the
    /// history stays append-only and an undo can itself be undone.
    pub fn rollback_to(&mut self, view: &str, version: Version) -> Result<usize> {
        self.view(view)?;
        let session = self.locks.session();
        let _lock = self.locks.acquire(session, &[view])?;
        // The inverse records are known before anything is applied, so
        // a rollback can follow the same write-ahead intent protocol as
        // a forward update.
        let base_attrs: Vec<String> = self
            .catalog
            .view(view)?
            .history
            .undo_to(version)?
            .iter()
            .filter_map(|inv| match inv {
                ChangeRecord::CellUpdate { attribute, .. } => Some(attribute.clone()),
                _ => None,
            })
            .collect();
        let intent = self.intent_attributes(view, base_attrs);
        self.durable_section(view, &intent, |dbms| dbms.rollback_inner(view, version))
    }

    fn rollback_inner(&mut self, view: &str, version: Version) -> Result<usize> {
        let inverses = self.catalog.view(view)?.history.undo_to(version)?;
        let mut deltas: HashMap<String, Vec<UpdateDelta>> = HashMap::new();
        {
            let v = self.view_mut(view)?;
            let store = v.store_mut()?;
            for inv in &inverses {
                if let ChangeRecord::CellUpdate {
                    row,
                    attribute,
                    new,
                    ..
                } = inv
                {
                    let old = store.set_cell(*row, attribute, new.clone())?;
                    deltas
                        .entry(attribute.clone())
                        .or_default()
                        .push(UpdateDelta {
                            old,
                            new: new.clone(),
                        });
                }
            }
        }
        let n = inverses.len();
        // Rows whose base attributes changed, for derived-rule firing.
        let affected_rows: Vec<usize> = {
            let mut rows: Vec<usize> = inverses
                .iter()
                .filter_map(|inv| match inv {
                    ChangeRecord::CellUpdate { row, .. } => Some(*row),
                    _ => None,
                })
                .collect();
            rows.sort_unstable();
            rows.dedup();
            rows
        };
        for inv in inverses {
            self.catalog.view_mut(view)?.history.record(inv);
        }
        let mut report = UpdateReport::default();
        // Restoring base attributes must also re-derive dependent
        // columns (residuals etc.), exactly as a forward update would.
        self.fire_derived_rules(view, &affected_rows, &mut deltas, &mut report)?;
        self.maintain_summaries(view, deltas, &mut report)?;
        Ok(n)
    }

    /// Roll back to the most recent checkpoint with this label.
    pub fn rollback_to_checkpoint(&mut self, view: &str, label: &str) -> Result<usize> {
        let version =
            self.catalog
                .view(view)?
                .history
                .checkpoint(label)
                .ok_or(CoreError::Management(ManagementError::NoSuchVersion {
                    version: 0,
                    current: 0,
                }))?;
        self.rollback_to(view, version)
    }

    /// Publish a view so other analysts can find it, use it, and read
    /// its cleaning log (§2.3).
    pub fn publish(&mut self, view: &str, owner: &str) -> Result<()> {
        let v = self.view(view)?;
        if v.owner != owner {
            return Err(CoreError::NotOwner {
                view: view.to_string(),
                owner: v.owner.clone(),
            });
        }
        self.catalog.publish(view, owner)?;
        Ok(())
    }

    /// The data-cleaning actions of a view, if it is visible to
    /// `analyst`.
    pub fn cleaning_log(&self, view: &str, analyst: &str) -> Result<Vec<String>> {
        let rec = self.catalog.view(view)?;
        let visible =
            rec.owner == analyst || rec.visibility == sdbms_management::Visibility::Published;
        if !visible {
            return Err(CoreError::NotOwner {
                view: view.to_string(),
                owner: rec.owner.clone(),
            });
        }
        Ok(rec
            .history
            .cleaning_log()
            .iter()
            .map(ToString::to_string)
            .collect())
    }

    /// The Management Database's view catalog.
    #[must_use]
    pub fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    // ---- reorganization --------------------------------------------------------

    /// Rebuild a view's store in a different layout. Summary entries
    /// stay valid (the data is unchanged); only the storage moves.
    pub fn reorganize(&mut self, view: &str, layout: Layout) -> Result<()> {
        let v = self.view(view)?;
        if v.layout == layout {
            return Ok(());
        }
        let ds = v.store.to_dataset(view)?;
        let store: Arc<dyn TableStore + Send + Sync> = match layout {
            Layout::Row => Arc::new(RowStore::from_dataset(self.env.pool.clone(), &ds)?),
            Layout::Transposed => {
                Arc::new(TransposedFile::from_dataset(self.env.pool.clone(), &ds)?)
            }
        };
        let v = self.view_mut(view)?;
        v.install_store(store);
        v.layout = layout;
        v.tracker = Default::default();
        Ok(())
    }

    /// Reorganize if the access pattern recommends a different layout
    /// (the §2.3 "intelligent access method"). Returns the new layout
    /// if a reorganization happened.
    pub fn auto_reorganize(&mut self, view: &str) -> Result<Option<Layout>> {
        let v = self.view(view)?;
        match v.tracker.recommended_layout() {
            Some(rec) if rec != v.layout => {
                self.reorganize(view, rec)?;
                Ok(Some(rec))
            }
            _ => Ok(None),
        }
    }
}

/// Whether an error means the simulated machine went down (as opposed
/// to data damage or a logic error). Crashes leave the write-ahead
/// intent pending; everything else is handled in place.
pub(crate) fn error_is_crash(e: &CoreError) -> bool {
    match e {
        CoreError::Storage(se) => se.is_crash(),
        CoreError::Summary(SummaryError::Storage(se)) => se.is_crash(),
        CoreError::Data(sdbms_data::DataError::Storage(se)) => se.is_crash(),
        _ => false,
    }
}

/// Coerce expression results to the column type where lossless
/// (arithmetic yields floats; integer columns take integral floats).
pub(crate) fn coerce(v: Value, dtype: DataType) -> Value {
    match (&v, dtype) {
        (Value::Float(x), DataType::Int) if x.fract() == 0.0 && x.is_finite() => {
            Value::Int(*x as i64)
        }
        _ => v,
    }
}

/// Residuals of `y ~ x` as a value column; rows where either input is
/// missing get a missing residual.
fn residual_column(xs_raw: &[Value], ys_raw: &[Value]) -> Result<Vec<Value>> {
    let pairs: Vec<(f64, f64)> = xs_raw
        .iter()
        .zip(ys_raw)
        .filter_map(|(x, y)| Some((x.as_f64()?, y.as_f64()?)))
        .collect();
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let fit = regression::linear_fit(&xs, &ys)?;
    Ok(xs_raw
        .iter()
        .zip(ys_raw)
        .map(|(x, y)| match (x.as_f64(), y.as_f64()) {
            (Some(xv), Some(yv)) => Value::Float(fit.residual(xv, yv)),
            _ => Value::Missing,
        })
        .collect())
}

/// Convenience: build a DBMS pre-loaded with the paper's running
/// example — Figure 1 in the raw database and the Figure 2 code book
/// registered.
pub fn paper_demo_dbms(pool_pages: usize) -> Result<StatDbms> {
    let mut dbms = StatDbms::new(pool_pages);
    dbms.load_raw(&census::figure1())?;
    dbms.register_codebook(CodeBook::figure2_age_group());
    Ok(dbms)
}
