//! Self-healing views: background scrubbing, corruption triage, and
//! lineage-based repair with update-history replay.
//!
//! Everything below the raw archive in paper Figure 3 is *derived*
//! state: concrete views come from re-executing their Management-DB
//! definition against the raw database, zone maps come from segment
//! data, and Summary-DB entries come from view columns. This module
//! exploits that redundancy to survive media damage:
//!
//! 1. **Detect** — [`StatDbms::scrub`] walks data pages, zone-map
//!    pages, and Summary-DB entries on a cooperative budget, verifying
//!    checksums and cross-checking a sample of cached entries against
//!    from-scratch recomputes. The resume cursor is persisted (same
//!    direct-disk protocol as the summary intent log), so a paused or
//!    crashed scrub continues where it stopped.
//! 2. **Triage** — findings are classified by blast radius
//!    ([`sdbms_repair::Component`]) and matched against the standard
//!    repair ladder, which names the *authority* each repair reads
//!    from (checked by `sdbms-lint`'s repair-soundness rule).
//! 3. **Repair** — [`StatDbms::repair_view`] applies the cheapest
//!    sound rung: zone maps rebuild from segment data; damaged view
//!    data regenerates from the raw archive via the catalog's view
//!    definition and is then **re-cleaned by replaying the view's
//!    update history**, restoring the analyst's edits; a damaged
//!    Summary DB is reset (entries recompute lazily from the repaired
//!    view). Repair runs under a durable `Repair` WAL intent, so a
//!    crash mid-repair leaves the view degraded rather than trusting
//!    half-swapped state.
//! 4. **Verify & readmit** — a clean post-repair detection pass flips
//!    the view back to `Healthy`. While `Degraded`/`Repairing`, reads
//!    are admitted from the archive as `ComputeSource::Fallback`
//!    results that are never cached.
//!
//! `Unrecoverable` is reserved for the one case with no sound
//! authority left: the archive itself fails, or the bounded retry
//! budget is spent.

use sdbms_columnar::{Layout, RowStore, TableStore, TransposedFile};
use sdbms_data::{schema::Attribute, value::DataType, value::Value, DataError};
use sdbms_management::{ChangeRecord, DerivedRule, VectorGenerator};
use sdbms_repair::{
    Component, CorruptionFinding, CursorStore, HealthRecord, RepairLadder, ScrubCursor, ScrubPhase,
    ScrubReport, ViewHealth,
};
use sdbms_storage::{Page, PageId};
use sdbms_summary::{
    quarantinable, ComputeSource, Freshness, StatFunction, SummaryDb, SummaryValue,
};

use crate::dbms::{coerce, error_is_crash, StatDbms};
use crate::error::{CoreError, Result};

/// Every `SUMMARY_SAMPLE_EVERY`-th Summary-DB entry a scrub pass walks
/// is semantically cross-checked against a from-scratch recompute (the
/// rest get the cheap structural check only).
const SUMMARY_SAMPLE_EVERY: usize = 4;

/// Relative tolerance for the sampled cross-check. Recomputes follow
/// the same code path as the original computation, so anything beyond
/// rounding noise is damage.
const CROSS_CHECK_TOL: f64 = 1e-9;

/// What one [`StatDbms::repair_view`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Damage located by the pre-repair detection pass.
    pub findings: Vec<CorruptionFinding>,
    /// Descriptions of the ladder rungs applied, cheapest first.
    pub actions: Vec<String>,
    /// Zone maps rebuilt from segment data.
    pub zone_maps_rebuilt: usize,
    /// True when the store was regenerated from the raw archive and
    /// the update history replayed onto it.
    pub store_regenerated: bool,
    /// History records replayed onto the regenerated store.
    pub history_replayed: usize,
    /// True when the Summary DB was reset (entries recompute lazily
    /// from the repaired view).
    pub summary_reset: bool,
}

fn data_error_is_crash(e: &DataError) -> bool {
    matches!(e, DataError::Storage(se) if se.is_crash())
}

impl StatDbms {
    // ---- health ---------------------------------------------------------

    /// Current health of a view as tracked by the self-healing
    /// subsystem. Views never found damaged are `Healthy`.
    pub fn health(&self, view: &str) -> Result<ViewHealth> {
        self.view(view)?;
        Ok(self.health.health(view))
    }

    /// Full health record (attempt counters, backoff deadline, last
    /// finding), if the view was ever found damaged.
    #[must_use]
    pub fn health_record(&self, view: &str) -> Option<&HealthRecord> {
        self.health.record(view)
    }

    // ---- scrubbing ------------------------------------------------------

    /// One budgeted scrub pass over every view's data pages, zone-map
    /// pages, and Summary-DB entries, resuming from the persisted
    /// cursor. `budget` is counted in pages/entries examined; the
    /// underlying I/O is charged to the shared cost tracker like any
    /// other work. Damage is reported and marks the view `Degraded`
    /// (reads degrade to archive fallback until repaired) — the scrub
    /// itself never mutates data.
    pub fn scrub(&mut self, budget: u64) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let mut remaining = budget;
        if self.scrub_cursor.is_none() {
            self.scrub_cursor = Some(CursorStore::create(self.env.disk.clone())?);
        }
        let cursor = match &self.scrub_cursor {
            Some(cs) => cs.load(),
            None => ScrubCursor::start(),
        };
        let names: Vec<String> = {
            let mut n: Vec<String> = self.views.keys().cloned().collect();
            n.sort_unstable();
            n
        };
        let (mut vi, mut phase, mut index) = match cursor.view {
            Some(v) => match names.iter().position(|n| *n == v) {
                Some(i) => (i, cursor.phase, cursor.index as usize),
                // The cursor's view was dropped since the last pass:
                // restart the cycle rather than skipping anything.
                None => (0, ScrubPhase::Data, 0),
            },
            None => (0, ScrubPhase::Data, 0),
        };
        let scrub_session = self.locks.session();
        while vi < names.len() {
            let name = names[vi].clone();
            // The scrubber takes the same per-view lock class as update
            // batches and repairs. A view someone is writing is simply
            // skipped this pass (never blocked on) and comes back on
            // the next cycle.
            let _view_lock = match self.locks.acquire(scrub_session, &[name.as_str()]) {
                Ok(g) => g,
                Err(_) => {
                    report.views_skipped += 1;
                    vi += 1;
                    phase = ScrubPhase::Data;
                    index = 0;
                    continue;
                }
            };
            // Page phases: raw checksum verification through the disk.
            while !matches!(phase, ScrubPhase::Summary) {
                let pages: Vec<PageId> = match self.views.get(&name) {
                    Some(v) if matches!(phase, ScrubPhase::Data) => v.store.data_page_ids(),
                    Some(v) => v.store.zone_map_page_ids(),
                    None => Vec::new(),
                };
                while index < pages.len() {
                    if remaining == 0 {
                        return self.scrub_pause(report, &name, phase, index);
                    }
                    remaining -= 1;
                    let pid = pages[index];
                    index += 1;
                    let mut page = Page::new();
                    match self.env.disk.read_page(pid, &mut page) {
                        Ok(()) => report.pages_verified += 1,
                        Err(e) if e.is_crash() => return Err(e.into()),
                        Err(e) => {
                            let component = if matches!(phase, ScrubPhase::Data) {
                                Component::Segment
                            } else {
                                Component::ZoneMap
                            };
                            let finding = CorruptionFinding {
                                view: name.clone(),
                                component,
                                page: Some(u64::from(pid)),
                                detail: e.to_string(),
                            };
                            self.health.mark_degraded(&name, &finding.to_string());
                            report.findings.push(finding);
                        }
                    }
                }
                phase = match phase {
                    ScrubPhase::Data => ScrubPhase::Zones,
                    _ => ScrubPhase::Summary,
                };
                index = 0;
            }
            // Summary phase: enumerate entries (structural check), and
            // semantically cross-check a sample of fresh entries
            // against a from-scratch recompute from the view.
            let entries = match self.views.get(&name) {
                Some(v) => match v.summary.all_entries() {
                    Ok(es) => es,
                    Err(e) if quarantinable(&e) => {
                        let finding = CorruptionFinding {
                            view: name.clone(),
                            component: Component::SummaryEntry,
                            page: None,
                            detail: format!("summary enumeration failed: {e}"),
                        };
                        self.health.mark_degraded(&name, &finding.to_string());
                        report.findings.push(finding);
                        Vec::new()
                    }
                    Err(e) => return Err(e.into()),
                },
                None => Vec::new(),
            };
            while index < entries.len() {
                if remaining == 0 {
                    return self.scrub_pause(report, &name, ScrubPhase::Summary, index);
                }
                remaining -= 1;
                let entry = &entries[index];
                let sampled = index % SUMMARY_SAMPLE_EVERY == 0;
                index += 1;
                report.entries_checked += 1;
                if !sampled || entry.freshness != Freshness::Fresh {
                    continue;
                }
                if let Some(finding) = self.cross_check_entry(&name, entry)? {
                    self.health.mark_degraded(&name, &finding.to_string());
                    report.findings.push(finding);
                }
            }
            vi += 1;
            phase = ScrubPhase::Data;
            index = 0;
        }
        // Cycle complete: reset the cursor so the next pass starts a
        // fresh walk from the first view.
        if let Some(cs) = &self.scrub_cursor {
            cs.save(&ScrubCursor::start())?;
        }
        report.completed_cycle = true;
        Ok(report)
    }

    /// Persist the resume point and report budget exhaustion.
    fn scrub_pause(
        &self,
        mut report: ScrubReport,
        view: &str,
        phase: ScrubPhase,
        index: usize,
    ) -> Result<ScrubReport> {
        if let Some(cs) = &self.scrub_cursor {
            cs.save(&ScrubCursor {
                view: Some(view.to_string()),
                phase,
                index: index as u64,
            })?;
        }
        report.exhausted_budget = true;
        Ok(report)
    }

    /// Recompute one fresh Summary-DB entry from the view column and
    /// compare. `Ok(None)` means clean (or unverifiable without a
    /// numeric recompute); `Ok(Some(_))` is a mismatch finding.
    fn cross_check_entry(
        &self,
        view: &str,
        entry: &sdbms_summary::Entry,
    ) -> Result<Option<CorruptionFinding>> {
        let Some(v) = self.views.get(view) else {
            return Ok(None);
        };
        let col = match v.store.read_column(&entry.attribute) {
            Ok(col) => col,
            Err(e) if data_error_is_crash(&e) => return Err(e.into()),
            // The column itself is unreadable — page-level damage the
            // page phases report with better granularity; the entry
            // cannot be judged either way.
            Err(_) => return Ok(None),
        };
        let Ok(fresh) = entry.function.compute(&col) else {
            return Ok(None);
        };
        if fresh.approx_eq(&entry.result, CROSS_CHECK_TOL) {
            return Ok(None);
        }
        Ok(Some(CorruptionFinding {
            view: view.to_string(),
            component: Component::SummaryEntry,
            page: None,
            detail: format!(
                "cached {} of {:?} disagrees with recompute",
                entry.function, entry.attribute
            ),
        }))
    }

    // ---- repair ---------------------------------------------------------

    /// Detect, triage, and repair damage to one view, then verify and
    /// readmit it. Idempotent on a healthy view (a clean detection
    /// pass returns an empty report without entering repair). Repair
    /// admission is gated by the health registry's bounded-retry /
    /// backoff policy; the whole attempt runs under a durable `Repair`
    /// WAL intent so a crash mid-repair keeps the view degraded until
    /// a later attempt verifies clean.
    pub fn repair_view(&mut self, view: &str) -> Result<RepairReport> {
        self.view(view)?;
        // Repairs exclude writers (and the scrubber) on this view for
        // the whole detect → repair → verify span.
        let session = self.locks.session();
        let _lock = self.locks.acquire(session, &[view])?;
        let mut report = RepairReport {
            findings: self.detect_damage(view)?,
            ..RepairReport::default()
        };
        if report.findings.is_empty() && !self.health.is_impaired(view) {
            return Ok(report);
        }
        for f in &report.findings {
            self.health.mark_degraded(view, &f.to_string());
        }
        let now = self.env.injector.ops();
        self.health
            .begin_repair(view, now)
            .map_err(|gate| CoreError::RepairRefused {
                view: view.to_string(),
                gate,
            })?;
        if let Some(wal) = self.views.get(view).and_then(|v| v.wal.as_ref()) {
            wal.begin_repair()?;
        }
        match self.apply_repairs(view, &mut report) {
            Ok(()) => {}
            // A crash mid-repair: the Repair intent stays pending, so
            // recovery keeps the view degraded for a re-run.
            Err(e) if error_is_crash(&e) => return Err(e),
            Err(e) => {
                if !matches!(self.health.health(view), ViewHealth::Unrecoverable) {
                    let now = self.env.injector.ops();
                    self.health.repair_failed(view, now, &e.to_string());
                }
                return Err(e);
            }
        }
        // Verify: only a clean detection pass readmits the view.
        let leftover = self.detect_damage(view)?;
        if leftover.is_empty() {
            self.commit_intent(view)?;
            self.health.repair_succeeded(view);
            let detail = format!(
                "self-heal: repaired view ({} finding(s); {} zone map(s) rebuilt; \
                 store regenerated: {}; {} history record(s) replayed; \
                 summary reset: {})",
                report.findings.len(),
                report.zone_maps_rebuilt,
                report.store_regenerated,
                report.history_replayed,
                report.summary_reset,
            );
            self.catalog
                .view_mut(view)?
                .history
                .record(ChangeRecord::Recovery { detail });
            Ok(report)
        } else {
            let now = self.env.injector.ops();
            let detail = leftover
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            self.health.repair_failed(view, now, &detail);
            Err(CoreError::RepairIncomplete {
                view: view.to_string(),
                remaining: leftover.len(),
            })
        }
    }

    /// Checksum-verify every data and zone-map page and enumerate the
    /// Summary DB. Pure detection — no mutation.
    fn detect_damage(&self, view: &str) -> Result<Vec<CorruptionFinding>> {
        let mut findings = Vec::new();
        let v = self.view(view)?;
        for (component, pages) in [
            (Component::Segment, v.store.data_page_ids()),
            (Component::ZoneMap, v.store.zone_map_page_ids()),
        ] {
            for pid in pages {
                let mut page = Page::new();
                match self.env.disk.read_page(pid, &mut page) {
                    Ok(()) => {}
                    Err(e) if e.is_crash() => return Err(e.into()),
                    Err(e) => findings.push(CorruptionFinding {
                        view: view.to_string(),
                        component,
                        page: Some(u64::from(pid)),
                        detail: e.to_string(),
                    }),
                }
            }
        }
        match v.summary.all_entries() {
            Ok(_) => {}
            Err(e) if quarantinable(&e) => findings.push(CorruptionFinding {
                view: view.to_string(),
                component: Component::SummaryEntry,
                page: None,
                detail: format!("summary enumeration failed: {e}"),
            }),
            Err(e) => return Err(e.into()),
        }
        Ok(findings)
    }

    /// Apply the cheapest sound rung of the standard repair ladder for
    /// each damaged component class.
    fn apply_repairs(&mut self, view: &str, report: &mut RepairReport) -> Result<()> {
        let ladder = RepairLadder::standard();
        let has_data = report.findings.iter().any(|f| {
            matches!(
                f.component,
                Component::Cell | Component::Segment | Component::WholeView
            )
        });
        let has_zone = report
            .findings
            .iter()
            .any(|f| f.component == Component::ZoneMap);
        let has_summary = report
            .findings
            .iter()
            .any(|f| f.component == Component::SummaryEntry);
        // A view impaired with no locatable findings (typically after
        // an interrupted repair left half-swapped state) gets the most
        // conservative treatment: regenerate everything.
        let conservative = report.findings.is_empty();
        let mut need_store = has_data || conservative;
        let need_summary = has_summary || conservative;

        if has_zone && !need_store {
            // Cheapest rung: zone maps are pure derivations of the
            // (intact) segment data.
            if let Some(action) = ladder.action_for(Component::ZoneMap) {
                report.actions.push(action.description.to_string());
            }
            let v = self.view_mut(view)?;
            match v.store_mut().and_then(|s| s.rebuild_zone_maps()) {
                Ok(n) => report.zone_maps_rebuilt += n,
                Err(e) if data_error_is_crash(&e) => return Err(e.into()),
                // A segment the rebuild needs is itself unreadable:
                // the damage reaches above this rung, so escalate to
                // archive regeneration.
                Err(_) => need_store = true,
            }
        }
        if need_store {
            let rung = if conservative {
                Component::WholeView
            } else {
                Component::Segment
            };
            if let Some(action) = ladder.action_for(rung) {
                report.actions.push(action.description.to_string());
            }
            self.regenerate_store(view, report)?;
        }
        if need_summary {
            if let Some(action) = ladder.action_for(Component::SummaryEntry) {
                report.actions.push(action.description.to_string());
            }
            let pool = self.env.pool.clone();
            let v = self.view_mut(view)?;
            v.summary = SummaryDb::create(pool)?;
            report.summary_reset = true;
        }
        Ok(())
    }

    /// Regenerate the view's store from the raw archive (authority:
    /// the Management-DB view definition over the raw database), then
    /// replay the view's recorded update history onto it — restoring
    /// the analyst's cleaning edits so the repaired view matches the
    /// pre-damage one byte for byte. An archive failure here is
    /// terminal: there is no sound source left.
    fn regenerate_store(&mut self, view: &str, report: &mut RepairReport) -> Result<()> {
        let def = self.catalog.view(view)?.definition.clone();
        let ds = {
            let mut resolve =
                |name: &str| -> std::result::Result<sdbms_data::dataset::DataSet, DataError> {
                    self.resolve_source(name)
                };
            match def.execute(&mut resolve) {
                Ok(ds) => ds,
                Err(e) if data_error_is_crash(&e) => return Err(e.into()),
                Err(e) => {
                    let reason = format!("archive regeneration failed: {e}");
                    self.health.mark_unrecoverable(view, &reason);
                    return Err(CoreError::Unrecoverable {
                        view: view.to_string(),
                        reason,
                    });
                }
            }
        };
        let layout = self.view(view)?.layout;
        let mut store: Box<dyn TableStore + Send + Sync> = match layout {
            Layout::Row => Box::new(RowStore::from_dataset(self.env.pool.clone(), &ds)?),
            Layout::Transposed => {
                Box::new(TransposedFile::from_dataset(self.env.pool.clone(), &ds)?)
            }
        };
        // Replay the recorded history in order. Cell updates re-apply
        // directly (rollbacks recorded their inverses, so replaying
        // the whole stream reproduces them too); column appends
        // re-derive from the column's maintenance rule; whole-vector
        // (Regenerate) columns are filled at the end, from the final
        // base data, exactly as live maintenance would have left them.
        let records: Vec<ChangeRecord> = self
            .catalog
            .view(view)?
            .history
            .records()
            .iter()
            .map(|(_, r)| r.clone())
            .collect();
        let mut regenerate_at_end: Vec<(String, VectorGenerator)> = Vec::new();
        for rec in &records {
            match rec {
                ChangeRecord::CellUpdate {
                    row,
                    attribute,
                    new,
                    ..
                } if store.schema().require(attribute).is_ok() && *row < store.len() => {
                    store.set_cell(*row, attribute, new.clone())?;
                    report.history_replayed += 1;
                }
                ChangeRecord::ColumnAppended { attribute } => {
                    if store.schema().require(attribute).is_ok() {
                        continue; // already present (defensive)
                    }
                    self.replay_column_append(view, &mut store, attribute, &mut regenerate_at_end)?;
                    report.history_replayed += 1;
                }
                ChangeRecord::RowAppended { values } => {
                    store.append_row(values.clone())?;
                    report.history_replayed += 1;
                }
                _ => {}
            }
        }
        let v = self.view_mut(view)?;
        v.install_store(std::sync::Arc::from(store));
        report.store_regenerated = true;
        for (attr, generator) in regenerate_at_end {
            self.regenerate_vector(view, &attr, &generator)?;
        }
        Ok(())
    }

    /// Re-append one derived column during history replay, deriving
    /// its initial values from the column's current maintenance rule
    /// (row-local expressions re-evaluate against the replayed store
    /// state at append time; whole-vector generators are deferred to
    /// the end of the replay; rules with no generator come back as
    /// missing and are refilled by the recorded cell updates).
    fn replay_column_append(
        &self,
        view: &str,
        store: &mut Box<dyn TableStore + Send + Sync>,
        attribute: &str,
        regenerate_at_end: &mut Vec<(String, VectorGenerator)>,
    ) -> Result<()> {
        // The live schema survives in memory even when the data pages
        // are damaged, so it is the best source for the attribute's
        // declared shape.
        let attr: Attribute = self
            .views
            .get(view)
            .and_then(|v| v.store.schema().attribute(attribute).ok().cloned())
            .unwrap_or_else(|| Attribute::derived(attribute, DataType::Float));
        let n = store.len();
        let rule = self.rules.rule(view, attribute).ok().cloned();
        let values: Vec<Value> = match &rule {
            Some(DerivedRule::Local { expr }) => {
                let schema = store.schema().clone();
                let bexpr = expr.bind(&schema)?;
                (0..n)
                    .map(|i| {
                        let row = store.read_row(i)?;
                        Ok(coerce(bexpr.eval(&row), attr.dtype))
                    })
                    .collect::<Result<_>>()?
            }
            Some(DerivedRule::Regenerate { generator }) => {
                regenerate_at_end.push((attribute.to_string(), generator.clone()));
                vec![Value::Missing; n]
            }
            Some(DerivedRule::MarkStale { .. }) | None => vec![Value::Missing; n],
        };
        store.add_column(attr, values)?;
        Ok(())
    }

    // ---- degraded reads -------------------------------------------------

    /// Serve a read of an impaired view straight from the raw archive:
    /// re-execute the view definition, replay the recorded cell edits
    /// of the requested attribute, and compute. The Summary DB is
    /// never consulted and never written — a [`ComputeSource::Fallback`]
    /// result must not be cached while the view is suspect.
    pub(crate) fn compute_degraded(
        &self,
        view: &str,
        attribute: &str,
        function: &StatFunction,
    ) -> Result<(SummaryValue, ComputeSource)> {
        let v = self
            .views
            .get(view)
            .ok_or_else(|| CoreError::NoSuchView(view.to_string()))?;
        let attr = v.store.schema().attribute(attribute)?.clone();
        if function.needs_numeric() && !attr.is_summarizable() {
            return Err(CoreError::NotSummarizable {
                attribute: attribute.to_string(),
            });
        }
        let def = self.catalog.view(view)?.definition.clone();
        let mut resolve =
            |name: &str| -> std::result::Result<sdbms_data::dataset::DataSet, DataError> {
                self.resolve_source(name)
            };
        let ds = def.execute(&mut resolve)?;
        let mut col: Vec<Value> = ds.column(&attr.name)?.cloned().collect();
        let ci = v.store.schema().require(&attr.name)?;
        for (_, rec) in self.catalog.view(view)?.history.records() {
            match rec {
                ChangeRecord::CellUpdate {
                    row,
                    attribute: a,
                    new,
                    ..
                } if a == &attr.name && *row < col.len() => {
                    col[*row] = new.clone();
                }
                // Batch-appended rows are not in the archive-derived
                // data set; extend the column from the recorded values
                // (schema order at append time).
                ChangeRecord::RowAppended { values } => {
                    col.push(values.get(ci).cloned().unwrap_or(Value::Missing));
                }
                _ => {}
            }
        }
        let value = function.compute(&col)?;
        Ok((value, ComputeSource::Fallback))
    }
}
