//! Multi-analyst sessions: pinned snapshot reads and transactional
//! update batches.
//!
//! The paper's workload is several analysts sharing long-lived cleaned
//! views. This module gives each of them a safe seat:
//!
//! - [`Snapshot`] — a read session pinning one view *version* (the
//!   store generation plus the Summary-DB generation at open time).
//!   Reads never block and never observe a concurrent batch, because a
//!   commit installs a brand-new store on fresh pages and retires the
//!   old one through the epoch registry only after the last pinned
//!   snapshot drains. Each snapshot accounts the I/O *it* incurs on a
//!   private counter set (scoped through [`sdbms_storage::IoScope`]),
//!   so shared-tracker totals stay exact while every analyst sees
//!   their own bill.
//! - [`StatDbms::begin_batch`] / [`StatDbms::commit_batch`] — a writer
//!   session staging [`BatchOp`]s against a view, holding the view's
//!   exclusive lock from begin to commit/abort. Commit is shadowed:
//!   the staged ops apply to a copy-on-write clone, the clone is made
//!   durable, and only then is it installed in memory — one pointer
//!   swap, so readers see the whole batch or none of it. Under
//!   [`crate::DurabilityPolicy::CrashConsistent`] the commit runs
//!   inside a durable `Txn` WAL intent; a crash at any point recovers
//!   to the full pre-batch or full post-batch state, idempotently.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use sdbms_columnar::TableStore;
use sdbms_data::{schema::Schema, value::Value};
use sdbms_management::ChangeRecord;
use sdbms_relational::{Expr, Predicate};
use sdbms_storage::{IoScope, IoSnapshot, IoStats};
use sdbms_summary::{ComputeSource, StatFunction, SummaryValue};
use sdbms_txn::{EpochPin, LockGuard};

use crate::dbms::{coerce, error_is_crash, StatDbms};
use crate::error::{CoreError, Result};
use crate::view::UpdateReport;

/// Identifies one open update batch (also its lock-table session id).
pub type BatchId = u64;

/// One staged operation inside an update batch. Nothing touches the
/// view until [`StatDbms::commit_batch`]; staging is pure bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp {
    /// Assign expressions to every row matching a predicate (the batch
    /// form of [`StatDbms::update_where`]).
    UpdateWhere {
        /// Row filter.
        predicate: Predicate,
        /// `(attribute, expression)` assignments.
        assignments: Vec<(String, Expr)>,
    },
    /// Overwrite one cell.
    SetCell {
        /// Row index.
        row: usize,
        /// Attribute name.
        attribute: String,
        /// The new value.
        value: Value,
    },
    /// Append one row (schema order).
    AppendRow {
        /// The row's values.
        values: Vec<Value>,
    },
}

/// A writer session: staged ops plus the view lock held from begin to
/// commit/abort (the guard's drop releases it).
pub(crate) struct PendingBatch {
    pub(crate) view: String,
    pub(crate) ops: Vec<BatchOp>,
    _guard: LockGuard,
}

/// A pinned, non-blocking read session on one version of one view.
///
/// The snapshot owns an `Arc` to the exact store it opened against and
/// an epoch pin that keeps that version's pages from being reclaimed.
/// Every read goes straight to the pinned store — concurrent batch
/// commits, scrubs, and repairs are invisible until the analyst opens
/// a fresh snapshot. Results are memoized per `(attribute, function)`,
/// mirroring the Summary-DB serve-from-cache behavior at session
/// scope.
pub struct Snapshot {
    view: String,
    version: u64,
    summary_generation: u64,
    store: Arc<dyn TableStore + Send + Sync>,
    stats: Arc<IoStats>,
    memo: Mutex<HashMap<(String, String), SummaryValue>>,
    _pin: EpochPin,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("view", &self.view)
            .field("version", &self.version)
            .field("rows", &self.store.len())
            .finish()
    }
}

impl Snapshot {
    /// The view this snapshot pinned.
    #[must_use]
    pub fn view(&self) -> &str {
        &self.view
    }

    /// The store version pinned at open time.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The Summary-DB generation current at open time.
    #[must_use]
    pub fn summary_generation(&self) -> u64 {
        self.summary_generation
    }

    /// Rows in the pinned version.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the pinned version holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The pinned version's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        self.store.schema()
    }

    /// One full column of the pinned version. I/O is charged to this
    /// snapshot's private counters as well as the shared tracker.
    pub fn column(&self, attribute: &str) -> Result<Vec<Value>> {
        let _scope = IoScope::enter(Arc::clone(&self.stats));
        Ok(self.store.read_column(attribute)?)
    }

    /// One full row of the pinned version.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        let _scope = IoScope::enter(Arc::clone(&self.stats));
        Ok(self.store.read_row(row)?)
    }

    /// Compute `function(attribute)` on the pinned version. The first
    /// call per `(attribute, function)` reads the column
    /// ([`ComputeSource::Computed`]); repeats serve the memoized value
    /// ([`ComputeSource::Cache`]) with no I/O. The memo never outlives
    /// the snapshot, so it can never serve a value from another
    /// version.
    pub fn compute(
        &self,
        attribute: &str,
        function: &StatFunction,
    ) -> Result<(SummaryValue, ComputeSource)> {
        let key = (attribute.to_string(), function.to_string());
        if let Some(v) = self.memo.lock().get(&key) {
            return Ok((v.clone(), ComputeSource::Cache));
        }
        let value = {
            let _scope = IoScope::enter(Arc::clone(&self.stats));
            let col = self.store.read_column(attribute)?;
            function.compute(&col)?
        };
        self.memo.lock().insert(key, value.clone());
        Ok((value, ComputeSource::Computed))
    }

    /// The I/O this snapshot has incurred: only reads made through
    /// this session, never another analyst's.
    #[must_use]
    pub fn io(&self) -> IoSnapshot {
        self.stats.snapshot()
    }
}

impl StatDbms {
    // ---- snapshots -------------------------------------------------------

    /// Open a read snapshot of a view's current version. Never blocks
    /// and takes no lock: the returned [`Snapshot`] shares the live
    /// store `Arc` and pins the epoch, so concurrent batch commits
    /// neither wait for it nor disturb it.
    pub fn snapshot(&self, view: &str) -> Result<Snapshot> {
        let v = self.view(view)?;
        Ok(Snapshot {
            view: v.name.clone(),
            version: v.version,
            summary_generation: v.summary.generation(),
            store: Arc::clone(&v.store),
            stats: Arc::new(IoStats::default()),
            memo: Mutex::new(HashMap::new()),
            _pin: self.epochs.pin(),
        })
    }

    /// Live snapshot pins across the whole DBMS (diagnostics).
    #[must_use]
    pub fn pinned_snapshots(&self) -> usize {
        self.epochs.pinned()
    }

    /// The current global epoch and the oldest still-pinned epoch, if
    /// any. Their difference is the *pin lag* — how far behind the
    /// slowest reader sits, and therefore how much superseded store
    /// state reclamation must retain. The serving layer reports this
    /// in its metrics.
    #[must_use]
    pub fn epoch_status(&self) -> (u64, Option<u64>) {
        (self.epochs.epoch(), self.epochs.oldest_pinned())
    }

    /// A view's current store version, without pinning a snapshot.
    /// The serving layer polls this on every request to decide whether
    /// a session's pinned snapshot is still current.
    pub fn view_version(&self, view: &str) -> Result<u64> {
        Ok(self.view(view)?.version)
    }

    /// A view's current Summary-DB generation, without pinning a
    /// snapshot. Together with [`StatDbms::view_version`] this forms
    /// the freshness half of the serving layer's cache key.
    pub fn view_summary_generation(&self, view: &str) -> Result<u64> {
        Ok(self.view(view)?.summary.generation())
    }

    // ---- update batches --------------------------------------------------

    /// Open a transactional update batch on a view, taking its
    /// exclusive lock. The lock is held until [`StatDbms::commit_batch`]
    /// or [`StatDbms::abort_batch`]; a concurrent batch, legacy
    /// update, scrub, or repair on the same view surfaces as
    /// [`CoreError::Lock`] immediately (acquisition never blocks).
    pub fn begin_batch(&mut self, view: &str) -> Result<BatchId> {
        self.view(view)?;
        let session = self.locks.session();
        let guard = self.locks.acquire(session, &[view])?;
        self.batches.insert(
            session,
            PendingBatch {
                view: view.to_string(),
                ops: Vec::new(),
                _guard: guard,
            },
        );
        Ok(session)
    }

    fn batch_mut(&mut self, batch: BatchId) -> Result<&mut PendingBatch> {
        self.batches
            .get_mut(&batch)
            .ok_or(CoreError::NoSuchBatch(batch))
    }

    /// Stage a predicate update in a batch. Nothing is applied yet.
    pub fn batch_update_where(
        &mut self,
        batch: BatchId,
        predicate: &Predicate,
        assignments: &[(&str, Expr)],
    ) -> Result<()> {
        let op = BatchOp::UpdateWhere {
            predicate: predicate.clone(),
            assignments: assignments
                .iter()
                .map(|(a, e)| ((*a).to_string(), e.clone()))
                .collect(),
        };
        self.batch_mut(batch)?.ops.push(op);
        Ok(())
    }

    /// Stage one cell overwrite in a batch.
    pub fn batch_set_cell(
        &mut self,
        batch: BatchId,
        row: usize,
        attribute: &str,
        value: Value,
    ) -> Result<()> {
        let op = BatchOp::SetCell {
            row,
            attribute: attribute.to_string(),
            value,
        };
        self.batch_mut(batch)?.ops.push(op);
        Ok(())
    }

    /// Stage one row append in a batch.
    pub fn batch_append_row(&mut self, batch: BatchId, values: Vec<Value>) -> Result<()> {
        let op = BatchOp::AppendRow { values };
        self.batch_mut(batch)?.ops.push(op);
        Ok(())
    }

    /// Stage an already-constructed [`BatchOp`]. The serving layer's
    /// commit requests carry ops in this form; the typed
    /// `batch_update_where` / `batch_set_cell` / `batch_append_row`
    /// helpers all reduce to it.
    pub fn batch_stage(&mut self, batch: BatchId, op: BatchOp) -> Result<()> {
        self.batch_mut(batch)?.ops.push(op);
        Ok(())
    }

    /// Open batches as `(id, view, staged ops)` (diagnostics).
    #[must_use]
    pub fn open_batches(&self) -> Vec<(BatchId, &str, usize)> {
        let mut out: Vec<(BatchId, &str, usize)> = self
            .batches
            .iter()
            .map(|(id, b)| (*id, b.view.as_str(), b.ops.len()))
            .collect();
        out.sort_unstable();
        out
    }

    /// Discard a batch's staged ops and release its view lock. The
    /// view is untouched — nothing was applied.
    pub fn abort_batch(&mut self, batch: BatchId) -> Result<()> {
        self.batches
            .remove(&batch)
            .map(|_| ())
            .ok_or(CoreError::NoSuchBatch(batch))
    }

    /// Commit a batch atomically. The staged ops apply to a shadow
    /// clone of the view's store (the live version's pages are never
    /// written); the clone is flushed durable, then installed with one
    /// in-memory pointer swap, the Summary-DB generation is bumped
    /// (retiring every cached entry of the old version without I/O),
    /// and the displaced version is epoch-retired for draining
    /// snapshots.
    ///
    /// Under [`crate::DurabilityPolicy::CrashConsistent`] the whole
    /// commit runs inside a durable `Txn` WAL intent: a crash at any
    /// I/O operation leaves either the full pre-batch state (swap not
    /// reached — the shadow pages are orphaned, the live version
    /// untouched) or the full post-batch state (swap done, shadow
    /// already durable). [`StatDbms::recover`] then conservatively
    /// rebuilds the summary cache and retires the intent; running it
    /// again changes nothing.
    ///
    /// On a non-crash failure (bad staged op, unreadable page) the
    /// batch aborts cleanly: the error is returned, the live version
    /// stays as it was, and the lock is released.
    pub fn commit_batch(&mut self, batch: BatchId) -> Result<UpdateReport> {
        let pending = self
            .batches
            .remove(&batch)
            .ok_or(CoreError::NoSuchBatch(batch))?;
        let view = pending.view.clone();
        if let Some(wal) = self.views.get(&view).and_then(|v| v.wal.as_ref()) {
            wal.begin_txn()?;
        }
        let result = self.apply_batch(&view, &pending.ops);
        match &result {
            Ok(_) => match self.commit_intent(&view) {
                Ok(()) => {}
                // A crash while committing must surface: the intent
                // stays pending for recovery.
                Err(e) if error_is_crash(&e) => return Err(e),
                // Non-crash trouble clearing the intent: a pending
                // Txn intent is conservative (recovery rebuilds the
                // cache), so the committed batch still reports success.
                Err(_) => {}
            },
            Err(e) if !error_is_crash(e) => {
                // The shadow apply failed without a crash: the live
                // version was never touched, so just retire the
                // intent. Best-effort — pending is safe.
                // lint: allow(swallowed-error): a pending intent is safe (recovery replays it); the apply error is the one to surface
                let _ = self.commit_intent(&view);
            }
            Err(_) => {} // crash: intent stays pending
        }
        // The lock guard (inside `pending`) drops here.
        result
    }

    /// Apply staged ops to a shadow clone and install it. Only called
    /// with the view lock held.
    fn apply_batch(&mut self, view: &str, ops: &[BatchOp]) -> Result<UpdateReport> {
        let exec = self.exec;
        let mut report = UpdateReport::default();
        let mut records: Vec<ChangeRecord> = Vec::new();
        let mut touched: Vec<String> = Vec::new();
        let mut new_store = {
            let v = self.view(view)?;
            v.store.boxed_clone()?
        };
        for op in ops {
            match op {
                BatchOp::UpdateWhere {
                    predicate,
                    assignments,
                } => {
                    let schema = new_store.schema().clone();
                    let bound: Vec<(String, sdbms_relational::BoundExpr, _)> = assignments
                        .iter()
                        .map(|(attr, expr)| {
                            let a = schema.attribute(attr)?;
                            Ok((a.name.clone(), expr.bind(&schema)?, a.dtype))
                        })
                        .collect::<Result<_>>()?;
                    let matching =
                        sdbms_relational::filter_table_rows(&*new_store, predicate, &exec)?;
                    report.rows_matched += matching.len();
                    for &i in &matching {
                        let row = new_store.read_row(i)?;
                        for (attr, bexpr, dtype) in &bound {
                            let new = coerce(bexpr.eval(&row), *dtype);
                            let old = new_store.set_cell(i, attr, new.clone())?;
                            if old != new {
                                report.cells_changed += 1;
                                touched.push(attr.clone());
                                records.push(ChangeRecord::CellUpdate {
                                    row: i,
                                    attribute: attr.clone(),
                                    old,
                                    new,
                                });
                            }
                        }
                    }
                }
                BatchOp::SetCell {
                    row,
                    attribute,
                    value,
                } => {
                    let old = new_store.set_cell(*row, attribute, value.clone())?;
                    if old != *value {
                        report.cells_changed += 1;
                        touched.push(attribute.clone());
                        records.push(ChangeRecord::CellUpdate {
                            row: *row,
                            attribute: attribute.clone(),
                            old,
                            new: value.clone(),
                        });
                    }
                }
                BatchOp::AppendRow { values } => {
                    new_store.append_row(values.clone())?;
                    records.push(ChangeRecord::RowAppended {
                        values: values.clone(),
                    });
                }
            }
        }
        // Durability point: every shadow page reaches disk before the
        // in-memory swap makes the version reachable.
        self.env.pool.flush_all()?;
        // Last cancellation checkpoint: past this line the install is
        // pure in-memory and must run to completion (a half-installed
        // version would be torn state). A budget trip here aborts the
        // batch cleanly — the shadow pages are orphaned, the live
        // version was never touched, and the typed error takes the
        // non-crash path in `commit_batch` (intent retired, lock
        // released), indistinguishable from any other aborted batch.
        sdbms_storage::budget::charge_ambient_ops(0)?;
        // Derived columns triggered by the touched attributes are not
        // recomputed inside a batch — they are marked stale for
        // on-demand regeneration, the cheapest sound rule.
        touched.sort_unstable();
        touched.dedup();
        let mut stale: Vec<String> = Vec::new();
        for attr in &touched {
            for (d, rule) in self.rules.triggered_by(view, attr) {
                if !stale.contains(&d.to_string()) {
                    report
                        .derived_updates
                        .push((d.to_string(), rule.cost_class()));
                    stale.push(d.to_string());
                }
            }
        }
        // Atomic in-memory install: one pointer swap plus a pure
        // in-memory generation bump. Nothing here performs I/O, so a
        // crash cannot land between "new store visible" and "old
        // summaries retired".
        let v = self.view_mut(view)?;
        v.install_store(Arc::from(new_store));
        report.maintenance.invalidated += v.summary.len();
        v.summary.bump_generation();
        for d in stale {
            v.stale_columns.insert(d);
        }
        let history = &mut self.catalog.view_mut(view)?.history;
        for r in records {
            history.record(r);
        }
        Ok(report)
    }
}
