//! End-to-end tests of the DBMS façade: the full Figure 3 lifecycle.

use sdbms_core::{
    paper_demo_dbms, AccuracyPolicy, AggFunc, Aggregate, CmpOp, ComputeSource, CoreError, Expr,
    Layout, MaintenancePolicy, Predicate, ScalarFunc, StatDbms, StatFunction, SummaryValue,
    ViewDefinition,
};
use sdbms_data::census::{microdata_census, CensusConfig};
use sdbms_data::{DataType, Value};

fn micro_dbms(rows: usize) -> StatDbms {
    let mut dbms = StatDbms::new(512);
    let ds = microdata_census(&CensusConfig {
        rows,
        invalid_fraction: 0.0,
        outlier_fraction: 0.0,
        ..Default::default()
    })
    .unwrap();
    dbms.load_raw(&ds).unwrap();
    dbms
}

#[test]
fn materialize_and_read_figure1() {
    let mut dbms = paper_demo_dbms(128).unwrap();
    dbms.materialize(ViewDefinition::scan("v", "figure1"), "alice")
        .unwrap();
    assert_eq!(dbms.view_names(), vec!["v"]);
    let ds = dbms.dataset("v").unwrap();
    assert_eq!(ds.len(), 9);
    let pops = dbms.column("v", "POPULATION").unwrap();
    assert_eq!(pops[0], Value::Int(12_300_347));
    assert_eq!(dbms.row("v", 8).unwrap()[3], Value::Int(2_143_924));
}

#[test]
fn codebook_join_decodes_age_groups() {
    let mut dbms = paper_demo_dbms(128).unwrap();
    let def =
        ViewDefinition::scan("decoded", "figure1").join("AGE_GROUP_codes", "AGE_GROUP", "CATEGORY");
    dbms.materialize(def, "alice").unwrap();
    let labels = dbms.column("decoded", "VALUE").unwrap();
    assert_eq!(labels[0], Value::Str("0 to 20".into()));
    assert_eq!(labels[3], Value::Str("over 60".into()));
}

#[test]
fn duplicate_view_detection_across_analysts() {
    let mut dbms = paper_demo_dbms(128).unwrap();
    let def =
        |name: &str| ViewDefinition::scan(name, "figure1").select(Predicate::col_eq("SEX", "M"));
    dbms.materialize(def("males"), "alice").unwrap();
    // Alice re-creating the same computation is caught.
    let err = dbms.materialize(def("males2"), "alice").unwrap_err();
    assert!(matches!(err, CoreError::EquivalentViewExists { .. }));
    // Bob can't see Alice's private view, so he may build his own…
    dbms.materialize(def("bob_males"), "bob").unwrap();
    // …but once Alice publishes, Carol is redirected.
    dbms.publish("males", "alice").unwrap();
    let err = dbms.materialize(def("carol_males"), "carol").unwrap_err();
    match err {
        CoreError::EquivalentViewExists { existing, .. } => {
            assert!(existing == "males" || existing == "bob_males");
        }
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn summary_cache_saves_column_reads() {
    let mut dbms = micro_dbms(5_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let (v1, s1) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(s1, ComputeSource::Computed);
    let io_before = dbms.io();
    let (v2, s2) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(s2, ComputeSource::Cache);
    assert!(v1.approx_eq(&v2, 1e-12));
    let d = dbms.io().since(&io_before);
    // A cache hit touches the summary index/heap, not the 5000-row
    // column: a handful of page reads at most.
    assert!(
        d.page_reads + d.pool_hits < 30,
        "cache hit did {} reads / {} hits",
        d.page_reads,
        d.pool_hits
    );
    let stats = dbms.cache_stats("v").unwrap();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn summaries_of_encoded_attributes_rejected() {
    let mut dbms = paper_demo_dbms(128).unwrap();
    dbms.materialize(ViewDefinition::scan("v", "figure1"), "a")
        .unwrap();
    // §3.2: the median of AGE_GROUP does not make sense.
    let err = dbms
        .compute(
            "v",
            "AGE_GROUP",
            &StatFunction::Median,
            AccuracyPolicy::Exact,
        )
        .unwrap_err();
    assert!(matches!(err, CoreError::NotSummarizable { .. }));
    // But the mode of a coded attribute is fine.
    let (mode, _) = dbms
        .compute("v", "AGE_GROUP", &StatFunction::Mode, AccuracyPolicy::Exact)
        .unwrap();
    assert!(matches!(mode, SummaryValue::ModalValue(Value::Code(_), _)));
}

#[test]
fn update_where_maintains_cache_incrementally() {
    let mut dbms = micro_dbms(2_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    dbms.set_policy("v", MaintenancePolicy::Incremental)
        .unwrap();
    // Cache a few summaries.
    for f in [StatFunction::Mean, StatFunction::Sum, StatFunction::Count] {
        dbms.compute("v", "HOURS_WORKED", &f, AccuracyPolicy::Exact)
            .unwrap();
    }
    // Update one person's hours.
    let report = dbms
        .update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", 42i64),
            &[("HOURS_WORKED", Expr::lit(80i64))],
        )
        .unwrap();
    assert_eq!(report.rows_matched, 1);
    assert!(report.maintenance.incremental >= 2);
    assert_eq!(report.maintenance.recomputed, 0);
    // Cached mean matches a from-scratch recompute.
    let (cached, src) = dbms
        .compute(
            "v",
            "HOURS_WORKED",
            &StatFunction::Mean,
            AccuracyPolicy::Exact,
        )
        .unwrap();
    assert_eq!(src, ComputeSource::Cache);
    let ds = dbms.dataset("v").unwrap();
    let (col, _) = ds.column_f64("HOURS_WORKED").unwrap();
    let direct = sdbms_stats::descriptive::mean(&col).unwrap();
    assert!(cached.approx_eq(&SummaryValue::Scalar(direct), 1e-9));
}

#[test]
fn invalidate_where_marks_missing_and_updates_count() {
    let mut dbms = micro_dbms(1_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let (count_before, _) = dbms
        .compute("v", "INCOME", &StatFunction::Count, AccuracyPolicy::Exact)
        .unwrap();
    let report = dbms
        .invalidate_where(
            "v",
            &Predicate::cmp(Expr::col("INCOME"), CmpOp::Gt, Expr::lit(60_000.0)),
            "INCOME",
        )
        .unwrap();
    assert!(report.rows_matched > 0);
    let (count_after, src) = dbms
        .compute("v", "INCOME", &StatFunction::Count, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(src, ComputeSource::Cache, "count maintained incrementally");
    let (SummaryValue::Count(b), SummaryValue::Count(a)) = (count_before, count_after) else {
        panic!("counts expected")
    };
    assert_eq!(a, b - report.rows_matched as u64);
}

#[test]
fn derived_local_column_follows_updates() {
    let mut dbms = micro_dbms(500);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    dbms.add_derived_column(
        "v",
        "LOG_INCOME",
        DataType::Float,
        Expr::col("INCOME").apply(ScalarFunc::Ln),
    )
    .unwrap();
    let before = dbms.row("v", 7).unwrap();
    let income = before[6].as_f64().unwrap();
    let log_income = before[8].as_f64().unwrap();
    assert!((log_income - income.ln()).abs() < 1e-9);
    // Update the income of person 7: the rule recomputes only that row.
    let report = dbms
        .update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", 7i64),
            &[("INCOME", Expr::lit(54_321.0))],
        )
        .unwrap();
    assert_eq!(
        report.derived_updates,
        vec![("LOG_INCOME".to_string(), "local(1 row)")]
    );
    let after = dbms.row("v", 7).unwrap();
    assert!((after[8].as_f64().unwrap() - 54_321.0f64.ln()).abs() < 1e-9);
    // Other rows untouched.
    let other = dbms.row("v", 8).unwrap();
    assert!((other[8].as_f64().unwrap() - other[6].as_f64().unwrap().ln()).abs() < 1e-9);
}

#[test]
fn residuals_column_regenerates_wholesale() {
    let mut dbms = micro_dbms(800);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    dbms.add_residuals_column("v", "RESID", "AGE", "INCOME")
        .unwrap();
    // Residuals sum to ~0 by construction.
    let ds = dbms.dataset("v").unwrap();
    let (resid, _) = ds.column_f64("RESID").unwrap();
    let sum: f64 = resid.iter().sum();
    assert!(sum.abs() < 1e-6 * resid.len() as f64);
    // Updating an INCOME regenerates the whole vector (model changed).
    let report = dbms
        .update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", 3i64),
            &[("INCOME", Expr::lit(200_000.0))],
        )
        .unwrap();
    assert_eq!(
        report.derived_updates,
        vec![("RESID".to_string(), "regenerate(n rows)")]
    );
    let ds2 = dbms.dataset("v").unwrap();
    let (resid2, _) = ds2.column_f64("RESID").unwrap();
    let sum2: f64 = resid2.iter().sum();
    assert!(sum2.abs() < 1e-6 * resid2.len() as f64, "still a valid fit");
    let changed = resid
        .iter()
        .zip(&resid2)
        .filter(|(a, b)| (*a - *b).abs() > 1e-12)
        .count();
    assert!(
        changed > resid.len() / 2,
        "the model moved, so most residuals moved"
    );
}

#[test]
fn checkpoint_and_rollback_restore_data_and_cache() {
    let mut dbms = micro_dbms(300);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let (mean_before, _) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    let cp = dbms.checkpoint("v", "clean").unwrap();
    // A destructive edit.
    dbms.update_where(
        "v",
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Lt, Expr::lit(50i64)),
        &[("INCOME", Expr::lit(0.0))],
    )
    .unwrap();
    let (mean_mid, _) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert!(!mean_mid.approx_eq(&mean_before, 1e-6), "edit visible");
    // Roll back.
    let undone = dbms.rollback_to("v", cp).unwrap();
    assert!(undone > 0);
    let (mean_after, _) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert!(
        mean_after.approx_eq(&mean_before, 1e-9),
        "{mean_after:?} vs {mean_before:?}"
    );
    // rollback_to_checkpoint goes to the same place.
    let again = dbms.rollback_to_checkpoint("v", "clean").unwrap();
    let _ = again;
    let data = dbms.dataset("v").unwrap();
    let original = microdata_census(&CensusConfig {
        rows: 300,
        invalid_fraction: 0.0,
        outlier_fraction: 0.0,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(data.rows(), original.rows());
}

#[test]
fn publishing_and_cleaning_log_visibility() {
    let mut dbms = micro_dbms(100);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "alice")
        .unwrap();
    dbms.annotate("v", "checked AGE for impossible values")
        .unwrap();
    dbms.update_where(
        "v",
        &Predicate::col_eq("PERSON_ID", 5i64),
        &[("AGE", Expr::lit(30i64))],
    )
    .unwrap();
    // Bob can't read the log yet.
    assert!(dbms.cleaning_log("v", "bob").is_err());
    assert!(matches!(
        dbms.publish("v", "bob").unwrap_err(),
        CoreError::NotOwner { .. }
    ));
    dbms.publish("v", "alice").unwrap();
    let log = dbms.cleaning_log("v", "bob").unwrap();
    assert!(log.iter().any(|l| l.contains("checked AGE")));
    assert!(log.iter().any(|l| l.contains("AGE")));
}

#[test]
fn sampling_gives_fast_estimates() {
    let mut dbms = micro_dbms(10_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let sample = dbms.sample("v", 500, 42).unwrap();
    assert_eq!(sample.len(), 500);
    let (s_inc, _) = sample.column_f64("INCOME").unwrap();
    let full = dbms.dataset("v").unwrap();
    let (f_inc, _) = full.column_f64("INCOME").unwrap();
    let se = sdbms_stats::descriptive::mean(&s_inc).unwrap();
    let fe = sdbms_stats::descriptive::mean(&f_inc).unwrap();
    assert!((se - fe).abs() / fe < 0.1, "sample {se} vs full {fe}");
}

#[test]
fn materialized_sample_views() {
    let mut dbms = micro_dbms(5_000);
    let def = ViewDefinition::scan("peek", "census_microdata").sample(250, 7);
    dbms.materialize(def, "a").unwrap();
    assert_eq!(dbms.dataset("peek").unwrap().len(), 250);
}

#[test]
fn aggregation_pipeline_view() {
    let mut dbms = paper_demo_dbms(128).unwrap();
    // The paper's §2.2 merge: collapse M/F within RACE×AGE_GROUP.
    let def = ViewDefinition::scan("merged", "figure1").aggregate(
        &["RACE", "AGE_GROUP"],
        vec![
            Aggregate::new("POPULATION", AggFunc::Sum, "POPULATION"),
            Aggregate::new(
                "AVE_SALARY",
                AggFunc::WeightedMean {
                    weight: "POPULATION".into(),
                },
                "AVE_SALARY",
            ),
        ],
    );
    dbms.materialize(def, "a").unwrap();
    let ds = dbms.dataset("merged").unwrap();
    assert_eq!(ds.len(), 5);
}

#[test]
fn reorganization_follows_access_pattern() {
    let mut dbms = micro_dbms(500);
    dbms.materialize_with(
        ViewDefinition::scan("v", "census_microdata"),
        "a",
        Layout::Row,
    )
    .unwrap();
    assert_eq!(dbms.view("v").unwrap().layout, Layout::Row);
    // Hammer it with column (statistical) reads.
    for _ in 0..20 {
        dbms.column("v", "INCOME").unwrap();
    }
    let new_layout = dbms.auto_reorganize("v").unwrap();
    assert_eq!(new_layout, Some(Layout::Transposed));
    assert_eq!(dbms.view("v").unwrap().layout, Layout::Transposed);
    // Data survives the reorganization.
    assert_eq!(dbms.dataset("v").unwrap().len(), 500);
    // Already-optimal: no further change.
    for _ in 0..20 {
        dbms.column("v", "INCOME").unwrap();
    }
    assert_eq!(dbms.auto_reorganize("v").unwrap(), None);
}

#[test]
fn suspicious_rows_and_data_cleaning_flow() {
    let mut dbms = StatDbms::new(256);
    let ds = microdata_census(&CensusConfig {
        rows: 3_000,
        invalid_fraction: 0.01,
        outlier_fraction: 0.0,
        ..Default::default()
    })
    .unwrap();
    dbms.load_raw(&ds).unwrap();
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let bad = dbms.suspicious_rows("v", "AGE").unwrap();
    assert!(!bad.is_empty());
    // Invalidate the impossible ages (the §3.1 workflow).
    let report = dbms
        .invalidate_where(
            "v",
            &Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(110i64)),
            "AGE",
        )
        .unwrap();
    assert_eq!(report.rows_matched, bad.len());
    assert!(dbms.suspicious_rows("v", "AGE").unwrap().is_empty());
    let ds_after = dbms.dataset("v").unwrap();
    assert_eq!(ds_after.missing_count("AGE").unwrap(), bad.len());
}

#[test]
fn warm_standing_summaries_covers_numeric_attributes() {
    let mut dbms = micro_dbms(400);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let warmed = dbms.warm_standing_summaries("v").unwrap();
    // 4 numeric attributes (PERSON_ID, AGE, INCOME, HOURS_WORKED) × 9
    // standing functions.
    assert_eq!(warmed, 4 * 9);
    // All subsequent reads are hits.
    let (_, src) = dbms
        .compute("v", "AGE", &StatFunction::Median, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(src, ComputeSource::Cache);
}

#[test]
fn drop_view_requires_owner_and_cleans_up() {
    let mut dbms = paper_demo_dbms(128).unwrap();
    dbms.materialize(ViewDefinition::scan("v", "figure1"), "alice")
        .unwrap();
    assert!(matches!(
        dbms.drop_view("v", "bob").unwrap_err(),
        CoreError::NotOwner { .. }
    ));
    dbms.drop_view("v", "alice").unwrap();
    assert!(dbms.view("v").is_err());
    assert!(dbms.catalog().view("v").is_err());
    // The name is reusable.
    dbms.materialize(ViewDefinition::scan("v", "figure1"), "carol")
        .unwrap();
}

#[test]
fn metadata_navigation_to_view_request() {
    let mut dbms = micro_dbms(50);
    dbms.metadata_mut().add_node(
        "Economics",
        sdbms_data::NodeKind::Topic,
        "income-related attributes",
    );
    dbms.metadata_mut()
        .add_edge("Economics", "census_microdata.INCOME")
        .unwrap();
    let mut session = dbms.metadata().navigate_from("Economics").unwrap();
    session.descend("census_microdata.INCOME").unwrap();
    let req = session.view_request();
    assert!(req.datasets.contains("census_microdata"));
    assert!(req.attributes["census_microdata"].contains("INCOME"));
}

#[test]
fn tolerated_staleness_serves_old_answers() {
    let mut dbms = micro_dbms(1_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    dbms.set_policy("v", MaintenancePolicy::InvalidateLazy)
        .unwrap();
    let (median_before, _) = dbms
        .compute("v", "INCOME", &StatFunction::Median, AccuracyPolicy::Exact)
        .unwrap();
    dbms.update_where(
        "v",
        &Predicate::col_eq("PERSON_ID", 10i64),
        &[("INCOME", Expr::lit(99_999.0))],
    )
    .unwrap();
    // Tolerant read: the slightly-stale median comes straight back.
    let (median_tolerated, src) = dbms
        .compute(
            "v",
            "INCOME",
            &StatFunction::Median,
            AccuracyPolicy::Tolerate(5),
        )
        .unwrap();
    assert_eq!(src, ComputeSource::CacheTolerated);
    assert!(median_tolerated.approx_eq(&median_before, 1e-12));
    // Exact read recomputes.
    let (_, src) = dbms
        .compute("v", "INCOME", &StatFunction::Median, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(src, ComputeSource::Computed);
}

#[test]
fn inference_answers_without_data_access() {
    let mut dbms = micro_dbms(3_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    // Cache sum and count; the mean is then inferable.
    for f in [StatFunction::Sum, StatFunction::Count] {
        dbms.compute("v", "INCOME", &f, AccuracyPolicy::Exact)
            .unwrap();
    }
    let (mean, src, how) = dbms
        .compute_with_inference("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(src, ComputeSource::Cache);
    assert_eq!(how.as_deref(), Some("inferred"));
    // Must equal a direct computation.
    let ds = dbms.dataset("v").unwrap();
    let (col, _) = ds.column_f64("INCOME").unwrap();
    let direct = sdbms_stats::descriptive::mean(&col).unwrap();
    assert!(mean.approx_eq(&sdbms_core::SummaryValue::Scalar(direct), 1e-9));
    // The inferred value is now a regular cache entry.
    let (_, src2, how2) = dbms
        .compute_with_inference("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(src2, ComputeSource::Cache);
    assert_eq!(how2, None, "plain hit the second time");

    // A histogram enables a median *estimate*, clearly labelled.
    dbms.compute(
        "v",
        "AGE",
        &StatFunction::Histogram(30),
        AccuracyPolicy::Exact,
    )
    .unwrap();
    let (est, _, how) = dbms
        .compute_with_inference("v", "AGE", &StatFunction::Median, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(how.as_deref(), Some("estimate from histogram_30"));
    let (ages, _) = dbms.dataset("v").unwrap().column_f64("AGE").unwrap();
    let true_median = sdbms_stats::quantile::median(&ages).unwrap();
    let err = (est.as_scalar().unwrap() - true_median).abs() / true_median;
    assert!(err < 0.1, "estimate error {err}");
    // And the estimate was NOT cached as if exact.
    let (_, src, _) = dbms
        .compute_with_inference("v", "AGE", &StatFunction::Median, AccuracyPolicy::Exact)
        .unwrap();
    // Second call re-estimates (still no exact entry).
    assert_eq!(src, ComputeSource::Cache);
}

#[test]
fn mark_stale_rule_defers_derived_maintenance() {
    let mut dbms = micro_dbms(400);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    dbms.add_derived_column(
        "v",
        "LOG_INCOME",
        DataType::Float,
        Expr::col("INCOME").apply(ScalarFunc::Ln),
    )
    .unwrap();
    // Demote the rule: heavy editing ahead, defer recomputation.
    dbms.set_derived_rule(
        "v",
        "LOG_INCOME",
        sdbms_management::DerivedRule::MarkStale {
            inputs: vec!["INCOME".into()],
        },
    )
    .unwrap();
    let report = dbms
        .update_where(
            "v",
            &Predicate::col_eq("PERSON_ID", 9i64),
            &[("INCOME", Expr::lit(77_000.0))],
        )
        .unwrap();
    assert_eq!(
        report.derived_updates,
        vec![("LOG_INCOME".to_string(), "deferred")]
    );
    assert_eq!(dbms.stale_columns("v").unwrap(), vec!["LOG_INCOME"]);
    // The stale value was NOT recomputed.
    let row = dbms.row("v", 9).unwrap();
    assert!(
        (row[8].as_f64().unwrap() - 77_000.0f64.ln()).abs() > 0.1,
        "derived cell deliberately stale"
    );
    // Switch back to the local rule and regenerate on demand.
    dbms.set_derived_rule(
        "v",
        "LOG_INCOME",
        sdbms_management::DerivedRule::Local {
            expr: Expr::col("INCOME").apply(ScalarFunc::Ln),
        },
    )
    .unwrap();
    dbms.regenerate_column("v", "LOG_INCOME").unwrap();
    assert!(dbms.stale_columns("v").unwrap().is_empty());
    let row = dbms.row("v", 9).unwrap();
    assert!((row[8].as_f64().unwrap() - 77_000.0f64.ln()).abs() < 1e-9);
    // Overriding a non-derived column is rejected.
    assert!(dbms
        .set_derived_rule(
            "v",
            "AGE",
            sdbms_management::DerivedRule::MarkStale { inputs: vec![] }
        )
        .is_err());
}

#[test]
fn reorganize_preserves_summaries_and_data() {
    let mut dbms = micro_dbms(1_000);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    let (mean_before, _) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    let before = dbms.dataset("v").unwrap();
    dbms.reorganize("v", Layout::Row).unwrap();
    // The data is identical and the cache still answers without
    // recomputation (the data did not change, only its layout).
    assert_eq!(dbms.dataset("v").unwrap().rows(), before.rows());
    let (mean_after, src) = dbms
        .compute("v", "INCOME", &StatFunction::Mean, AccuracyPolicy::Exact)
        .unwrap();
    assert_eq!(src, ComputeSource::Cache);
    assert!(mean_after.approx_eq(&mean_before, 1e-12));
    // Round-trip back.
    dbms.reorganize("v", Layout::Transposed).unwrap();
    assert_eq!(dbms.dataset("v").unwrap().rows(), before.rows());
}

#[test]
fn rollback_rederives_dependent_columns() {
    let mut dbms = micro_dbms(400);
    dbms.materialize(ViewDefinition::scan("v", "census_microdata"), "a")
        .unwrap();
    dbms.add_residuals_column("v", "RESID", "AGE", "INCOME")
        .unwrap();
    let resid_before = dbms.column("v", "RESID").unwrap();
    let cp = dbms.checkpoint("v", "t0").unwrap();
    // Change incomes (moves the regression model and all residuals).
    dbms.update_where(
        "v",
        &Predicate::cmp(Expr::col("AGE"), CmpOp::Lt, Expr::lit(40i64)),
        &[("INCOME", Expr::lit(5_000.0))],
    )
    .unwrap();
    let resid_mid = dbms.column("v", "RESID").unwrap();
    assert_ne!(resid_before, resid_mid, "model moved");
    // Undo: base incomes restored AND residuals re-derived.
    dbms.rollback_to("v", cp).unwrap();
    let resid_after = dbms.column("v", "RESID").unwrap();
    for (a, b) in resid_before.iter().zip(&resid_after) {
        let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
        assert!((x - y).abs() < 1e-6, "{x} vs {y}");
    }
}
