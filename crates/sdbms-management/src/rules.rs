//! Derived-attribute maintenance rules.
//!
//! §3.2 gives the two poles: regression residuals, where "updating even
//! a single value in the attribute upon which the residuals depend
//! requires regeneration of the entire vector (since the model may
//! change)", versus "the sum of three attributes, or the logarithm of
//! some attribute", where "the effect of the update to the input
//! attribute is 'local', i.e., it will require the computation of only
//! one value." The rule for each derived attribute lives in the
//! Management Database; the view layer consults it on every update.

use std::collections::HashMap;
use std::fmt;

use sdbms_relational::Expr;

use crate::error::{ManagementError, Result};

/// How a derived attribute reacts when one of its inputs changes.
#[derive(Debug, Clone, PartialEq)]
pub enum DerivedRule {
    /// Row-local: recompute only the affected row from `expr`
    /// (log / row-sum style columns).
    Local {
        /// Defining expression over the same row.
        expr: Expr,
    },
    /// Whole-vector: regenerate the entire column (residual-style
    /// columns where the model itself changes).
    Regenerate {
        /// How the vector is produced.
        generator: VectorGenerator,
    },
    /// Neither: just mark the column out of date and let the analyst
    /// regenerate on demand ("or simply marking it as out of date").
    MarkStale {
        /// Input attributes whose updates stale this column.
        inputs: Vec<String>,
    },
}

/// A whole-column generator for [`DerivedRule::Regenerate`].
#[derive(Debug, Clone, PartialEq)]
pub enum VectorGenerator {
    /// Residuals of a simple linear regression `y ~ x`.
    Residuals {
        /// Predictor attribute.
        x: String,
        /// Response attribute.
        y: String,
    },
    /// Re-evaluate a row expression over every row (for expressions
    /// whose *definition* depends on global state, rerun wholesale).
    Expression(Expr),
}

impl fmt::Display for DerivedRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerivedRule::Local { expr } => write!(f, "LOCAL {expr}"),
            DerivedRule::Regenerate { generator } => match generator {
                VectorGenerator::Residuals { x, y } => {
                    write!(f, "REGENERATE residuals({y} ~ {x})")
                }
                VectorGenerator::Expression(e) => write!(f, "REGENERATE {e}"),
            },
            DerivedRule::MarkStale { inputs } => write!(f, "MARK-STALE on {inputs:?}"),
        }
    }
}

impl DerivedRule {
    /// The input attributes whose updates trigger this rule.
    #[must_use]
    pub fn input_attributes(&self) -> Vec<String> {
        match self {
            DerivedRule::Local { expr } => expr.referenced_columns(),
            DerivedRule::Regenerate { generator } => match generator {
                VectorGenerator::Residuals { x, y } => vec![x.clone(), y.clone()],
                VectorGenerator::Expression(e) => e.referenced_columns(),
            },
            DerivedRule::MarkStale { inputs } => inputs.clone(),
        }
    }

    /// Cost class, for reporting: 1 = one row, n = whole column,
    /// 0 = nothing now.
    #[must_use]
    pub fn cost_class(&self) -> &'static str {
        match self {
            DerivedRule::Local { .. } => "local(1 row)",
            DerivedRule::Regenerate { .. } => "regenerate(n rows)",
            DerivedRule::MarkStale { .. } => "deferred",
        }
    }
}

/// The rule store: `(view, derived attribute) → rule`.
#[derive(Debug, Clone, Default)]
pub struct RuleStore {
    rules: HashMap<(String, String), DerivedRule>,
}

impl RuleStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the rule for a derived attribute.
    pub fn register(&mut self, view: &str, attribute: &str, rule: DerivedRule) {
        self.rules
            .insert((view.to_string(), attribute.to_string()), rule);
    }

    /// The rule for one derived attribute.
    pub fn rule(&self, view: &str, attribute: &str) -> Result<&DerivedRule> {
        self.rules
            .get(&(view.to_string(), attribute.to_string()))
            .ok_or_else(|| ManagementError::NoSuchRule {
                view: view.to_string(),
                attribute: attribute.to_string(),
            })
    }

    /// Every derived attribute of `view` whose rule is triggered by an
    /// update to `updated_attribute`, with its rule.
    #[must_use]
    pub fn triggered_by(&self, view: &str, updated_attribute: &str) -> Vec<(&str, &DerivedRule)> {
        let mut out: Vec<(&str, &DerivedRule)> = self
            .rules
            .iter()
            .filter(|((v, _), rule)| {
                v == view
                    && rule
                        .input_attributes()
                        .iter()
                        .any(|a| a == updated_attribute)
            })
            .map(|((_, attr), rule)| (attr.as_str(), rule))
            .collect();
        out.sort_by_key(|(attr, _)| attr.to_string());
        out
    }

    /// All rules of one view, sorted by attribute.
    #[must_use]
    pub fn rules_for_view(&self, view: &str) -> Vec<(&str, &DerivedRule)> {
        let mut out: Vec<(&str, &DerivedRule)> = self
            .rules
            .iter()
            .filter(|((v, _), _)| v == view)
            .map(|((_, attr), rule)| (attr.as_str(), rule))
            .collect();
        out.sort_by_key(|(attr, _)| attr.to_string());
        out
    }

    /// Drop every rule of a view (when the view is destroyed).
    pub fn drop_view(&mut self, view: &str) {
        self.rules.retain(|(v, _), _| v != view);
    }

    /// Every view that has at least one rule, sorted and deduplicated.
    #[must_use]
    pub fn views(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.rules.keys().map(|(v, _)| v.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Is there a rule for this derived attribute?
    #[must_use]
    pub fn has_rule(&self, view: &str, attribute: &str) -> bool {
        self.rules
            .contains_key(&(view.to_string(), attribute.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_relational::{BinOp, ScalarFunc};

    fn store() -> RuleStore {
        let mut s = RuleStore::new();
        s.register(
            "v1",
            "LOG_INCOME",
            DerivedRule::Local {
                expr: Expr::col("INCOME").apply(ScalarFunc::Ln),
            },
        );
        s.register(
            "v1",
            "TOTAL",
            DerivedRule::Local {
                expr: Expr::col("A").binary(BinOp::Add, Expr::col("B")),
            },
        );
        s.register(
            "v1",
            "RESID",
            DerivedRule::Regenerate {
                generator: VectorGenerator::Residuals {
                    x: "AGE".into(),
                    y: "INCOME".into(),
                },
            },
        );
        s.register(
            "v2",
            "NOTES_COL",
            DerivedRule::MarkStale {
                inputs: vec!["NOTES".into()],
            },
        );
        s
    }

    #[test]
    fn lookup_and_missing() {
        let s = store();
        assert!(matches!(
            s.rule("v1", "LOG_INCOME").unwrap(),
            DerivedRule::Local { .. }
        ));
        assert!(matches!(
            s.rule("v1", "NOPE"),
            Err(ManagementError::NoSuchRule { .. })
        ));
    }

    #[test]
    fn triggering_follows_inputs() {
        let s = store();
        let hit = s.triggered_by("v1", "INCOME");
        let names: Vec<&str> = hit.iter().map(|(a, _)| *a).collect();
        assert_eq!(names, vec!["LOG_INCOME", "RESID"]);
        let age_hit = s.triggered_by("v1", "AGE");
        assert_eq!(age_hit.len(), 1);
        assert_eq!(age_hit[0].0, "RESID");
        assert!(s.triggered_by("v1", "UNRELATED").is_empty());
        assert!(s.triggered_by("v2", "INCOME").is_empty(), "view-scoped");
        assert_eq!(s.triggered_by("v2", "NOTES").len(), 1);
    }

    #[test]
    fn cost_classes() {
        let s = store();
        assert_eq!(
            s.rule("v1", "LOG_INCOME").unwrap().cost_class(),
            "local(1 row)"
        );
        assert_eq!(
            s.rule("v1", "RESID").unwrap().cost_class(),
            "regenerate(n rows)"
        );
        assert_eq!(s.rule("v2", "NOTES_COL").unwrap().cost_class(), "deferred");
    }

    #[test]
    fn drop_view_removes_all() {
        let mut s = store();
        s.drop_view("v1");
        assert!(s.rules_for_view("v1").is_empty());
        assert_eq!(s.rules_for_view("v2").len(), 1);
    }

    #[test]
    fn display_readable() {
        let s = store();
        let txt = s.rule("v1", "RESID").unwrap().to_string();
        assert_eq!(txt, "REGENERATE residuals(INCOME ~ AGE)");
        assert!(s
            .rule("v1", "LOG_INCOME")
            .unwrap()
            .to_string()
            .starts_with("LOCAL"));
    }
}
