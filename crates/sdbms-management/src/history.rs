//! Per-view update histories with undo.
//!
//! §3.2: "Keeping a history of updates for each view will enable the
//! DBMS to roll a view back to a previous state should such an action
//! be desired by the analyst. The update history of a view may also be
//! used by other analysts who wish to use some of the data in the view.
//! Rather than repeating the mundane and time consuming data checking
//! operations they can examine what actions were taken by their
//! predecessors and use the 'clean' data for their needs."
//!
//! [`UpdateHistory`] is an append-only log of logical change records.
//! Rolling back produces the *inverse* records for the view layer to
//! apply (the history itself stays append-only, so a rollback is also
//! in the history — nothing is ever lost).

use std::fmt;

use sdbms_data::Value;

/// Monotone version counter; one per applied change record.
pub type Version = u64;

/// One logical change to a view.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRecord {
    /// A cell was overwritten.
    CellUpdate {
        /// Row index in the view.
        row: usize,
        /// Attribute name.
        attribute: String,
        /// Value before.
        old: Value,
        /// Value after.
        new: Value,
    },
    /// A derived column was appended.
    ColumnAppended {
        /// The new attribute's name.
        attribute: String,
    },
    /// A whole row was appended (transactional batch inserts). The
    /// values are kept so history replay can reconstruct the row.
    RowAppended {
        /// The appended row, in schema order.
        values: Vec<Value>,
    },
    /// A free annotation (data-checking notes other analysts read).
    Annotation {
        /// The note text.
        text: String,
    },
    /// A named checkpoint the analyst can roll back to.
    Checkpoint {
        /// Checkpoint label.
        label: String,
    },
    /// A crash-recovery action taken by the DBMS itself, so later
    /// analysts can see that (and why) cached summaries were
    /// invalidated or rebuilt rather than silently changed.
    Recovery {
        /// Human-readable description of what recovery did.
        detail: String,
    },
}

impl ChangeRecord {
    /// The inverse record, if the change is invertible. Annotations and
    /// checkpoints have no effect to invert; column appends invert to
    /// a drop, which the view layer handles by name.
    #[must_use]
    pub fn inverse(&self) -> Option<ChangeRecord> {
        match self {
            ChangeRecord::CellUpdate {
                row,
                attribute,
                old,
                new,
            } => Some(ChangeRecord::CellUpdate {
                row: *row,
                attribute: attribute.clone(),
                old: new.clone(),
                new: old.clone(),
            }),
            _ => None,
        }
    }
}

impl fmt::Display for ChangeRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeRecord::CellUpdate {
                row,
                attribute,
                old,
                new,
            } => write!(f, "row {row}: {attribute} {old} -> {new}"),
            ChangeRecord::ColumnAppended { attribute } => {
                write!(f, "appended column {attribute}")
            }
            ChangeRecord::RowAppended { values } => {
                write!(f, "appended row of {} values", values.len())
            }
            ChangeRecord::Annotation { text } => write!(f, "note: {text}"),
            ChangeRecord::Checkpoint { label } => write!(f, "checkpoint {label:?}"),
            ChangeRecord::Recovery { detail } => write!(f, "recovery: {detail}"),
        }
    }
}

/// The append-only history of one view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateHistory {
    records: Vec<(Version, ChangeRecord)>,
    next_version: Version,
}

impl UpdateHistory {
    /// An empty history at version 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current version (number of records applied).
    #[must_use]
    pub fn version(&self) -> Version {
        self.next_version
    }

    /// Append a record, returning its version.
    pub fn record(&mut self, change: ChangeRecord) -> Version {
        self.next_version += 1;
        self.records.push((self.next_version, change));
        self.next_version
    }

    /// All records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[(Version, ChangeRecord)] {
        &self.records
    }

    /// Records after `version` (exclusive), oldest first.
    #[must_use]
    pub fn records_since(&self, version: Version) -> &[(Version, ChangeRecord)] {
        let start = self.records.partition_point(|(v, _)| *v <= version);
        &self.records[start..]
    }

    /// Version of the most recent checkpoint named `label`, if any.
    #[must_use]
    pub fn checkpoint(&self, label: &str) -> Option<Version> {
        self.records
            .iter()
            .rev()
            .find(|(_, r)| matches!(r, ChangeRecord::Checkpoint { label: l } if l == label))
            .map(|(v, _)| *v)
    }

    /// The inverse records needed to roll the view back to `version`,
    /// newest change first (apply them in order). Errors if the
    /// version never existed.
    pub fn undo_to(&self, version: Version) -> crate::error::Result<Vec<ChangeRecord>> {
        if version > self.next_version {
            return Err(crate::error::ManagementError::NoSuchVersion {
                version,
                current: self.next_version,
            });
        }
        Ok(self
            .records_since(version)
            .iter()
            .rev()
            .filter_map(|(_, r)| r.inverse())
            .collect())
    }

    /// The data-cleaning actions a later analyst would replay (§3.2's
    /// "use the clean data"): every cell update and annotation, in
    /// order.
    #[must_use]
    pub fn cleaning_log(&self) -> Vec<&ChangeRecord> {
        self.records
            .iter()
            .filter(|(_, r)| {
                matches!(
                    r,
                    ChangeRecord::CellUpdate { .. } | ChangeRecord::Annotation { .. }
                )
            })
            .map(|(_, r)| r)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(row: usize, old: i64, new: i64) -> ChangeRecord {
        ChangeRecord::CellUpdate {
            row,
            attribute: "X".into(),
            old: Value::Int(old),
            new: Value::Int(new),
        }
    }

    #[test]
    fn versions_monotone() {
        let mut h = UpdateHistory::new();
        assert_eq!(h.version(), 0);
        let v1 = h.record(upd(0, 1, 2));
        let v2 = h.record(upd(1, 3, 4));
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(h.version(), 2);
        assert_eq!(h.records().len(), 2);
    }

    #[test]
    fn undo_produces_reversed_inverses() {
        let mut h = UpdateHistory::new();
        h.record(upd(0, 1, 2));
        h.record(upd(0, 2, 3));
        h.record(upd(5, 10, 20));
        let undo = h.undo_to(1).unwrap();
        assert_eq!(undo.len(), 2);
        // Newest first: 5:20->10, then 0:3->2.
        assert_eq!(
            undo[0],
            ChangeRecord::CellUpdate {
                row: 5,
                attribute: "X".into(),
                old: Value::Int(20),
                new: Value::Int(10),
            }
        );
        assert_eq!(
            undo[1],
            ChangeRecord::CellUpdate {
                row: 0,
                attribute: "X".into(),
                old: Value::Int(3),
                new: Value::Int(2),
            }
        );
        // Rolling back to the current version is a no-op.
        assert!(h.undo_to(3).unwrap().is_empty());
        assert!(h.undo_to(99).is_err());
    }

    #[test]
    fn checkpoints_found_latest_first() {
        let mut h = UpdateHistory::new();
        h.record(ChangeRecord::Checkpoint {
            label: "clean".into(),
        });
        h.record(upd(0, 1, 2));
        h.record(ChangeRecord::Checkpoint {
            label: "clean".into(),
        });
        assert_eq!(h.checkpoint("clean"), Some(3));
        assert_eq!(h.checkpoint("nope"), None);
        // Undo to the first checkpoint: inverse of the single update.
        let undo = h.undo_to(1).unwrap();
        assert_eq!(undo.len(), 1);
    }

    #[test]
    fn annotations_not_invertible_but_logged() {
        let mut h = UpdateHistory::new();
        h.record(ChangeRecord::Annotation {
            text: "row 17 income 999999 marked invalid: data-entry error".into(),
        });
        h.record(upd(17, 999_999, 0));
        h.record(ChangeRecord::ColumnAppended {
            attribute: "LOG_INCOME".into(),
        });
        let undo = h.undo_to(0).unwrap();
        assert_eq!(undo.len(), 1, "only the cell update inverts");
        let clean = h.cleaning_log();
        assert_eq!(clean.len(), 2, "annotation + cell update");
    }

    #[test]
    fn records_since_boundary() {
        let mut h = UpdateHistory::new();
        for i in 0..5 {
            h.record(upd(i, 0, 1));
        }
        assert_eq!(h.records_since(0).len(), 5);
        assert_eq!(h.records_since(3).len(), 2);
        assert_eq!(h.records_since(5).len(), 0);
    }

    #[test]
    fn recovery_records_logged_but_not_invertible() {
        let mut h = UpdateHistory::new();
        h.record(upd(0, 1, 2));
        let v = h.record(ChangeRecord::Recovery {
            detail: "invalidated 3 summary entries for AGE".into(),
        });
        assert_eq!(v, 2);
        assert!(h.undo_to(0).unwrap().len() == 1, "recovery has no inverse");
        assert!(
            h.cleaning_log().len() == 1,
            "recovery is not a cleaning action"
        );
        let shown = h.records().last().unwrap().1.to_string();
        assert_eq!(shown, "recovery: invalidated 3 summary entries for AGE");
    }

    #[test]
    fn missing_value_updates_invert() {
        let mut h = UpdateHistory::new();
        h.record(ChangeRecord::CellUpdate {
            row: 2,
            attribute: "AGE".into(),
            old: Value::Int(1000),
            new: Value::Missing,
        });
        let undo = h.undo_to(0).unwrap();
        assert_eq!(
            undo[0],
            ChangeRecord::CellUpdate {
                row: 2,
                attribute: "AGE".into(),
                old: Value::Missing,
                new: Value::Int(1000),
            }
        );
    }
}
