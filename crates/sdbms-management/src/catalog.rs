//! The view catalog.
//!
//! §2.3 requires "a mechanism … to insure that an analyst does not
//! recreate (from the raw database) a view that is either identical to
//! one that has already been created by another analyst", plus "a means
//! by which the results of an analyst's data editing can be made
//! public". The catalog tracks every view's definition (lineage), its
//! owner, its visibility, and its update history.

use std::collections::BTreeMap;

use sdbms_relational::ViewDefinition;

use crate::error::{ManagementError, Result};
use crate::history::UpdateHistory;

/// Visibility of a view to other analysts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Only the owner sees it (the default; §3.2: "each view is
    /// private to a single user (or a group of users)").
    Private,
    /// Published: other analysts may read the view and replay its
    /// cleaning log.
    Published,
}

/// Catalog record of one concrete view.
#[derive(Debug, Clone)]
pub struct ViewRecord {
    /// The materialization lineage.
    pub definition: ViewDefinition,
    /// Analyst who owns the view.
    pub owner: String,
    /// Current visibility.
    pub visibility: Visibility,
    /// Update history (undo log + cleaning log).
    pub history: UpdateHistory,
}

/// The catalog: view name → record.
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    views: BTreeMap<String, ViewRecord>,
}

impl ViewCatalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new view. Fails if the name is taken.
    pub fn register(&mut self, definition: ViewDefinition, owner: &str) -> Result<()> {
        let name = definition.name.clone();
        if self.views.contains_key(&name) {
            return Err(ManagementError::ViewExists(name));
        }
        self.views.insert(
            name,
            ViewRecord {
                definition,
                owner: owner.to_string(),
                visibility: Visibility::Private,
                history: UpdateHistory::new(),
            },
        );
        Ok(())
    }

    /// The record for `name`.
    pub fn view(&self, name: &str) -> Result<&ViewRecord> {
        self.views
            .get(name)
            .ok_or_else(|| ManagementError::NoSuchView(name.to_string()))
    }

    /// Mutable record for `name` (to append history).
    pub fn view_mut(&mut self, name: &str) -> Result<&mut ViewRecord> {
        self.views
            .get_mut(name)
            .ok_or_else(|| ManagementError::NoSuchView(name.to_string()))
    }

    /// Remove a view from the catalog.
    pub fn deregister(&mut self, name: &str) -> Result<ViewRecord> {
        self.views
            .remove(name)
            .ok_or_else(|| ManagementError::NoSuchView(name.to_string()))
    }

    /// Number of registered views.
    #[must_use]
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no views are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// All view names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// Find an existing view that computes the same thing as `def`
    /// (§2.3's duplicate check). Only the owner's private views and all
    /// published views are candidates for `asker`.
    #[must_use]
    pub fn find_equivalent(&self, def: &ViewDefinition, asker: &str) -> Option<&ViewRecord> {
        self.views.values().find(|r| {
            r.definition.computes_same_as(def)
                && (r.owner == asker || r.visibility == Visibility::Published)
        })
    }

    /// Publish a view (owner only).
    pub fn publish(&mut self, name: &str, owner: &str) -> Result<()> {
        let rec = self.view_mut(name)?;
        if rec.owner != owner {
            return Err(ManagementError::NoSuchView(format!(
                "{name} (not owned by {owner})"
            )));
        }
        rec.visibility = Visibility::Published;
        Ok(())
    }

    /// Views visible to `analyst`: their own plus published ones.
    #[must_use]
    pub fn visible_to(&self, analyst: &str) -> Vec<&ViewRecord> {
        self.views
            .values()
            .filter(|r| r.owner == analyst || r.visibility == Visibility::Published)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::ChangeRecord;
    use sdbms_relational::Predicate;

    fn def(name: &str, sex: &str) -> ViewDefinition {
        ViewDefinition::scan(name, "census").select(Predicate::col_eq("SEX", sex))
    }

    #[test]
    fn register_and_lookup() {
        let mut c = ViewCatalog::new();
        c.register(def("males", "M"), "alice").unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.view("males").unwrap().owner, "alice");
        assert!(matches!(
            c.register(def("males", "M"), "bob"),
            Err(ManagementError::ViewExists(_))
        ));
        assert!(c.view("nope").is_err());
    }

    #[test]
    fn duplicate_detection_respects_visibility() {
        let mut c = ViewCatalog::new();
        c.register(def("males", "M"), "alice").unwrap();
        // Alice asking about her own private view: found.
        assert!(c.find_equivalent(&def("anything", "M"), "alice").is_some());
        // Bob can't see Alice's private view.
        assert!(c.find_equivalent(&def("anything", "M"), "bob").is_none());
        // After publishing, Bob is told about it.
        c.publish("males", "alice").unwrap();
        let found = c.find_equivalent(&def("anything", "M"), "bob").unwrap();
        assert_eq!(found.definition.name, "males");
        // A different computation is never "equivalent".
        assert!(c.find_equivalent(&def("x", "F"), "alice").is_none());
    }

    #[test]
    fn publish_requires_owner() {
        let mut c = ViewCatalog::new();
        c.register(def("males", "M"), "alice").unwrap();
        assert!(c.publish("males", "bob").is_err());
        c.publish("males", "alice").unwrap();
        assert_eq!(c.view("males").unwrap().visibility, Visibility::Published);
    }

    #[test]
    fn visibility_lists() {
        let mut c = ViewCatalog::new();
        c.register(def("a_view", "M"), "alice").unwrap();
        c.register(def("b_view", "F"), "bob").unwrap();
        c.publish("b_view", "bob").unwrap();
        let alice_sees = c.visible_to("alice");
        assert_eq!(alice_sees.len(), 2, "her own + bob's published");
        let carol_sees = c.visible_to("carol");
        assert_eq!(carol_sees.len(), 1);
    }

    #[test]
    fn history_lives_in_catalog() {
        let mut c = ViewCatalog::new();
        c.register(def("v", "M"), "alice").unwrap();
        c.view_mut("v")
            .unwrap()
            .history
            .record(ChangeRecord::Annotation {
                text: "checked incomes".into(),
            });
        assert_eq!(c.view("v").unwrap().history.version(), 1);
        let rec = c.deregister("v").unwrap();
        assert_eq!(rec.history.version(), 1);
        assert!(c.is_empty());
    }
}
