//! Finite differencing of aggregate definitions.
//!
//! §4.2: "since new statistical methods are evolving it would be
//! desirable to have some means for automatically generating an
//! incrementally recomputable algorithm for a function given the
//! function definition in some high-level form… Koenig and Paige
//! discuss the application of finite differencing to the generation of
//! the incrementally recomputable code for several commonly used
//! aggregate operators. In particular, they consider totals and
//! averages."
//!
//! [`AggExpr`] is that high-level form: an algebra of per-row power
//! sums combined arithmetically. [`differentiate`] performs the
//! "derivative" step: it extracts the base accumulators (count and
//! Σxᵏ) and returns a [`DifferentialProgram`] whose state updates in
//! O(1) per changed value and whose result is re-evaluated from state
//! alone. Expressions containing order-dependent subterms
//! ([`AggExpr::MedianOf`]) are rejected — exactly the limitation §4.2
//! identifies ("there are no methods for describing the ordering of
//! the data in some concise manner").

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{ManagementError, Result};

/// A per-row term inside an aggregate (the thing summed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RowTerm {
    /// The column value raised to a small power (`Power(1)` = x,
    /// `Power(2)` = x², …, `Power(0)` = 1 i.e. a count).
    Power(u8),
}

impl fmt::Display for RowTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowTerm::Power(0) => write!(f, "1"),
            RowTerm::Power(1) => write!(f, "x"),
            RowTerm::Power(k) => write!(f, "x^{k}"),
        }
    }
}

/// An aggregate function definition in high-level form.
#[derive(Debug, Clone, PartialEq)]
pub enum AggExpr {
    /// Number of observations.
    Count,
    /// Σ over rows of a row term.
    SumOf(RowTerm),
    /// A constant.
    Const(f64),
    /// Addition.
    Add(Box<AggExpr>, Box<AggExpr>),
    /// Subtraction.
    Sub(Box<AggExpr>, Box<AggExpr>),
    /// Multiplication.
    Mul(Box<AggExpr>, Box<AggExpr>),
    /// Division (0/0 handled as an evaluation error by callers).
    Div(Box<AggExpr>, Box<AggExpr>),
    /// An order statistic — present in the language so definitions can
    /// *mention* it, but not differentiable (§4.2).
    MedianOf,
    /// Minimum — not differentiable under deletion.
    MinOf,
    /// Maximum — not differentiable under deletion.
    MaxOf,
}

impl AggExpr {
    /// `Σx / n` — the running example of Koenig & Paige.
    #[must_use]
    pub fn mean() -> AggExpr {
        AggExpr::Div(
            Box::new(AggExpr::SumOf(RowTerm::Power(1))),
            Box::new(AggExpr::Count),
        )
    }

    /// Sample variance `(Σx² − (Σx)²/n) / (n−1)`.
    #[must_use]
    pub fn variance() -> AggExpr {
        let sum = AggExpr::SumOf(RowTerm::Power(1));
        let sumsq = AggExpr::SumOf(RowTerm::Power(2));
        AggExpr::Div(
            Box::new(AggExpr::Sub(
                Box::new(sumsq),
                Box::new(AggExpr::Div(
                    Box::new(AggExpr::Mul(Box::new(sum.clone()), Box::new(sum))),
                    Box::new(AggExpr::Count),
                )),
            )),
            Box::new(AggExpr::Sub(
                Box::new(AggExpr::Count),
                Box::new(AggExpr::Const(1.0)),
            )),
        )
    }

    /// Collect the base accumulators this expression needs; errors on
    /// non-differentiable subterms.
    fn collect_terms(&self, terms: &mut BTreeSet<RowTerm>) -> Result<()> {
        match self {
            AggExpr::Count => {
                terms.insert(RowTerm::Power(0));
                Ok(())
            }
            AggExpr::SumOf(t) => {
                terms.insert(*t);
                Ok(())
            }
            AggExpr::Const(_) => Ok(()),
            AggExpr::Add(a, b) | AggExpr::Sub(a, b) | AggExpr::Mul(a, b) | AggExpr::Div(a, b) => {
                a.collect_terms(terms)?;
                b.collect_terms(terms)
            }
            AggExpr::MedianOf => Err(ManagementError::NotDifferentiable(
                "median: the result depends on the ordering of the data, which has no \
                 constant-size differential state",
            )),
            AggExpr::MinOf => Err(ManagementError::NotDifferentiable(
                "min: deleting the current minimum requires a rescan",
            )),
            AggExpr::MaxOf => Err(ManagementError::NotDifferentiable(
                "max: deleting the current maximum requires a rescan",
            )),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggExpr::Count => write!(f, "n"),
            AggExpr::SumOf(t) => write!(f, "Σ{t}"),
            AggExpr::Const(c) => write!(f, "{c}"),
            AggExpr::Add(a, b) => write!(f, "({a} + {b})"),
            AggExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            AggExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            AggExpr::Div(a, b) => write!(f, "({a} / {b})"),
            AggExpr::MedianOf => write!(f, "median"),
            AggExpr::MinOf => write!(f, "min"),
            AggExpr::MaxOf => write!(f, "max"),
        }
    }
}

/// The "derivative": an incrementally maintainable program equivalent
/// to an [`AggExpr`].
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialProgram {
    expr: AggExpr,
    /// Which power sums the state tracks (sorted).
    terms: Vec<RowTerm>,
    /// Current value of each power sum.
    state: Vec<f64>,
}

impl DifferentialProgram {
    /// State size (number of base accumulators) — constant in the data
    /// size, which is the whole point.
    #[must_use]
    pub fn state_size(&self) -> usize {
        self.terms.len()
    }

    /// Initialize the state with a full pass over the data.
    pub fn initialize(&mut self, data: &[f64]) {
        for (t, s) in self.terms.iter().zip(self.state.iter_mut()) {
            let RowTerm::Power(k) = t;
            *s = data.iter().map(|&x| x.powi(i32::from(*k))).sum();
        }
    }

    /// Apply one value insertion — O(state_size).
    pub fn insert(&mut self, x: f64) {
        for (t, s) in self.terms.iter().zip(self.state.iter_mut()) {
            let RowTerm::Power(k) = t;
            *s += x.powi(i32::from(*k));
        }
    }

    /// Apply one value deletion — O(state_size).
    pub fn delete(&mut self, x: f64) {
        for (t, s) in self.terms.iter().zip(self.state.iter_mut()) {
            let RowTerm::Power(k) = t;
            *s -= x.powi(i32::from(*k));
        }
    }

    /// Apply one value replacement — O(state_size). This is `f'` in
    /// the paper's Figure 5: the loop body recomputes the function
    /// from the changed argument alone.
    pub fn replace(&mut self, old: f64, new: f64) {
        self.delete(old);
        self.insert(new);
    }

    /// Evaluate the aggregate from state alone (no data access).
    /// Returns `None` on domain errors (division by zero).
    #[must_use]
    pub fn evaluate(&self) -> Option<f64> {
        self.eval_expr(&self.expr)
    }

    fn term_value(&self, t: RowTerm) -> f64 {
        let i = self
            .terms
            .iter()
            .position(|&x| x == t)
            // lint: allow(no-panic): differentiate() registers every RowTerm the expression mentions before this runs
            .expect("terms collected at differentiation time");
        self.state[i]
    }

    fn eval_expr(&self, e: &AggExpr) -> Option<f64> {
        match e {
            AggExpr::Count => Some(self.term_value(RowTerm::Power(0))),
            AggExpr::SumOf(t) => Some(self.term_value(*t)),
            AggExpr::Const(c) => Some(*c),
            AggExpr::Add(a, b) => Some(self.eval_expr(a)? + self.eval_expr(b)?),
            AggExpr::Sub(a, b) => Some(self.eval_expr(a)? - self.eval_expr(b)?),
            AggExpr::Mul(a, b) => Some(self.eval_expr(a)? * self.eval_expr(b)?),
            AggExpr::Div(a, b) => {
                let d = self.eval_expr(b)?;
                if d == 0.0 {
                    None
                } else {
                    Some(self.eval_expr(a)? / d)
                }
            }
            AggExpr::MedianOf | AggExpr::MinOf | AggExpr::MaxOf => {
                // lint: allow(no-panic): differentiate() returns NotDifferentiable for these variants, so no DifferencedAggregate holds them
                unreachable!("rejected at differentiation time")
            }
        }
    }
}

/// Differentiate an aggregate definition, producing a program whose
/// per-update cost is O(1) in the data size. Errors for definitions
/// with order-dependent subterms.
pub fn differentiate(expr: &AggExpr) -> Result<DifferentialProgram> {
    let mut terms = BTreeSet::new();
    expr.collect_terms(&mut terms)?;
    let terms: Vec<RowTerm> = terms.into_iter().collect();
    let state = vec![0.0; terms.len()];
    Ok(DifferentialProgram {
        expr: expr.clone(),
        terms,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_stats::descriptive;

    fn data() -> Vec<f64> {
        (0..500).map(|i| ((i * 37) % 101) as f64 - 17.0).collect()
    }

    #[test]
    fn mean_program_tracks_batch() {
        let mut d = data();
        let mut p = differentiate(&AggExpr::mean()).unwrap();
        assert_eq!(p.state_size(), 2, "n and Σx");
        p.initialize(&d);
        assert!((p.evaluate().unwrap() - descriptive::mean(&d).unwrap()).abs() < 1e-9);
        // A hundred replacements, no data access.
        for x in d.iter_mut().take(100) {
            let old = *x;
            *x = old * 2.0 + 1.0;
            p.replace(old, *x);
        }
        assert!((p.evaluate().unwrap() - descriptive::mean(&d).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn variance_program_tracks_batch() {
        let mut d = data();
        let mut p = differentiate(&AggExpr::variance()).unwrap();
        assert_eq!(p.state_size(), 3, "n, Σx, Σx²");
        p.initialize(&d);
        let got = p.evaluate().unwrap();
        let want = descriptive::variance(&d).unwrap();
        assert!((got - want).abs() < 1e-6 * want.max(1.0), "{got} vs {want}");
        for i in (0..d.len()).step_by(7) {
            let old = d[i];
            d[i] = -old + 3.0;
            p.replace(old, d[i]);
        }
        let got = p.evaluate().unwrap();
        let want = descriptive::variance(&d).unwrap();
        assert!((got - want).abs() < 1e-6 * want.max(1.0), "{got} vs {want}");
    }

    #[test]
    fn insert_delete_change_count() {
        let mut p = differentiate(&AggExpr::Count).unwrap();
        p.initialize(&[1.0, 2.0, 3.0]);
        assert_eq!(p.evaluate().unwrap(), 3.0);
        p.insert(9.0);
        p.insert(10.0);
        p.delete(1.0);
        assert_eq!(p.evaluate().unwrap(), 4.0);
    }

    #[test]
    fn median_min_max_rejected() {
        for e in [AggExpr::MedianOf, AggExpr::MinOf, AggExpr::MaxOf] {
            assert!(matches!(
                differentiate(&e),
                Err(ManagementError::NotDifferentiable(_))
            ));
        }
        // Rejection propagates through composition.
        let nested = AggExpr::Div(Box::new(AggExpr::MedianOf), Box::new(AggExpr::Count));
        assert!(differentiate(&nested).is_err());
    }

    #[test]
    fn empty_state_degenerates_gracefully() {
        let p = differentiate(&AggExpr::mean()).unwrap();
        // n = 0: division by zero -> None, not a panic.
        assert_eq!(p.evaluate(), None);
    }

    #[test]
    fn shared_terms_deduplicated() {
        // (Σx * Σx) / n uses Σx twice but stores it once.
        let e = AggExpr::Div(
            Box::new(AggExpr::Mul(
                Box::new(AggExpr::SumOf(RowTerm::Power(1))),
                Box::new(AggExpr::SumOf(RowTerm::Power(1))),
            )),
            Box::new(AggExpr::Count),
        );
        let p = differentiate(&e).unwrap();
        assert_eq!(p.state_size(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AggExpr::mean().to_string(), "(Σx / n)");
        assert!(AggExpr::variance().to_string().contains("Σx^2"));
    }

    proptest::proptest! {
        #[test]
        fn prop_program_matches_recompute(
            base in proptest::collection::vec(-100.0f64..100.0, 3..100),
            updates in proptest::collection::vec(
                (proptest::prelude::any::<proptest::sample::Index>(), -100.0f64..100.0), 0..40)
        ) {
            let mut d = base;
            let mut mean_p = differentiate(&AggExpr::mean()).unwrap();
            let mut var_p = differentiate(&AggExpr::variance()).unwrap();
            mean_p.initialize(&d);
            var_p.initialize(&d);
            for (idx, new) in updates {
                let i = idx.index(d.len());
                let old = d[i];
                d[i] = new;
                mean_p.replace(old, new);
                var_p.replace(old, new);
            }
            let m = mean_p.evaluate().unwrap();
            let want_m = descriptive::mean(&d).unwrap();
            proptest::prop_assert!((m - want_m).abs() < 1e-6 * want_m.abs().max(1.0));
            let v = var_p.evaluate().unwrap();
            let want_v = descriptive::variance(&d).unwrap();
            proptest::prop_assert!((v - want_v).abs() < 1e-4 * want_v.abs().max(1.0),
                "var {} vs {}", v, want_v);
        }
    }
}
