//! # sdbms-management — the Management Database
//!
//! §3.2: "One Management Database is associated with the DBMS. [Its]
//! purpose … is to serve as a repository for information that describes
//! the organization of the data, the functions that are applied to it,
//! rules for manipulating information in the Summary Databases, view
//! definitions, update histories of the views, and other control
//! information."
//!
//! - [`catalog`] — view definitions/lineage, ownership, publishing, and
//!   the §2.3 duplicate-view check.
//! - [`history`] — append-only per-view update histories with undo /
//!   rollback-to-checkpoint and the shareable cleaning log.
//! - [`rules`] — derived-attribute maintenance rules: row-local,
//!   regenerate-whole-vector (residuals), or mark-stale.
//! - [`differencing`] — automatic finite differencing of aggregate
//!   definitions (Koenig & Paige, §4.2): an [`differencing::AggExpr`]
//!   in "high-level form" becomes a [`differencing::DifferentialProgram`]
//!   with O(1) per-update cost, or is rejected when the definition
//!   contains order statistics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod differencing;
pub mod error;
pub mod history;
pub mod rules;

pub use catalog::{ViewCatalog, ViewRecord, Visibility};
pub use differencing::{differentiate, AggExpr, DifferentialProgram, RowTerm};
pub use error::{ManagementError, Result};
pub use history::{ChangeRecord, UpdateHistory, Version};
pub use rules::{DerivedRule, RuleStore, VectorGenerator};
